// Regenerates the §3.3 claim: "the modified CAN-based matchmaking mechanism
// dramatically improves the quality of load balancing compared to the basic
// scheme ... still with low matchmaking cost" — on the scenario where basic
// CAN fails hardest: lightly-constrained jobs on mixed (heterogeneous)
// nodes, where most jobs map near the origin of the space.
//
//   can_push_ablation [--nodes=1000] [--jobs=5000] ...
//
// Also sweeps the push budget (max_push, where 0 == basic CAN) — the
// DESIGN.md §8 ablation — and reports the centralized scheduler and RN-Tree
// as reference points.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  // Default below paper scale (7 grid simulations); pass --nodes=1000
  // --jobs=5000 for the full setup.
  if (!config.has("nodes")) scale.nodes = 500;
  if (!config.has("jobs")) scale.jobs = 2500;

  // The pathological quadrant: mixed nodes, lightly constrained jobs.
  const auto spec =
      make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4, scale.seed + 5);

  struct Variant {
    const char* label;
    MatchmakerKind kind;
    std::uint32_t max_push;
  };
  const std::vector<Variant> variants{
      {"can basic (push=0)", MatchmakerKind::kCanBasic, 0},
      {"can-push budget=1", MatchmakerKind::kCanPush, 1},
      {"can-push budget=2", MatchmakerKind::kCanPush, 2},
      {"can-push budget=4", MatchmakerKind::kCanPush, 4},
      {"can-push budget=8", MatchmakerKind::kCanPush, 8},
      {"rn-tree (reference)", MatchmakerKind::kRnTree, 0},
      {"centralized (target)", MatchmakerKind::kCentralized, 0},
  };

  std::printf("can_push_ablation: mixed nodes, lightly-constrained jobs; "
              "%zu nodes, %zu jobs\n",
              scale.nodes, scale.jobs);

  const auto results = sim::run_sweep<CellResult>(
      variants.size(), scale.threads, [&](std::size_t i) {
        grid::GridConfig gc =
            make_grid_config(variants[i].kind, scale.seed + 31);
        gc.node.can_max_push = variants[i].max_push;
        grid::GridSystem system(gc, workload::generate(spec));
        system.run();
        return summarize(system);
      });

  print_header("Load-balance quality (paper: push dramatically improves it)");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "variant", "wait-avg",
              "wait-sd", "load-cv", "pushes", "forwards", "msgs/job");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const CellResult& r = results[i];
    std::printf("%-22s %10.1f %10.1f %10.3f %10llu %10llu %10.0f\n",
                variants[i].label, r.wait_avg, r.wait_stdev,
                r.jobs_per_node_cv,
                static_cast<unsigned long long>(r.pushes),
                static_cast<unsigned long long>(r.forwards),
                static_cast<double>(r.messages) /
                    static_cast<double>(scale.jobs));
  }
  return 0;
}
