#pragma once
// Shared plumbing for the experiment benches: config flags, cell sweeps run
// in parallel (deterministic per-cell seeds), and fixed-width table output
// matching the rows/series the paper reports.

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "grid/grid_system.h"
#include "sim/runner.h"
#include "workload/workload.h"

namespace pgrid::bench {

/// Experiment scale, overridable from the command line. Defaults reproduce
/// the paper's setup (1000 nodes, 5000 jobs, exp(100 s) service, Poisson
/// 0.1 s inter-arrival); pass --nodes/--jobs/... to rescale.
struct Scale {
  std::size_t nodes = 1000;
  std::size_t jobs = 5000;
  double mean_runtime_sec = 100.0;
  double mean_interarrival_sec = 0.1;
  std::size_t replicates = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 1;

  static Scale from_config(const Config& config) {
    Scale s;
    s.nodes = static_cast<std::size_t>(config.get_int("nodes", 1000));
    s.jobs = static_cast<std::size_t>(config.get_int("jobs", 5000));
    s.mean_runtime_sec = config.get_double("runtime", 100.0);
    s.mean_interarrival_sec = config.get_double("interarrival", 0.1);
    s.replicates = static_cast<std::size_t>(config.get_int("replicates", 1));
    s.threads = static_cast<std::size_t>(config.get_int("threads", 0));
    s.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
    return s;
  }
};

inline workload::WorkloadSpec make_spec(const Scale& scale,
                                        workload::Mix node_mix,
                                        workload::Mix job_mix,
                                        double constraint_probability,
                                        std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.node_count = scale.nodes;
  spec.job_count = scale.jobs;
  spec.node_mix = node_mix;
  spec.job_mix = job_mix;
  spec.constraint_probability = constraint_probability;
  spec.mean_runtime_sec = scale.mean_runtime_sec;
  spec.mean_interarrival_sec = scale.mean_interarrival_sec;
  spec.seed = seed;
  return spec;
}

inline grid::GridConfig make_grid_config(grid::MatchmakerKind kind,
                                         std::uint64_t seed) {
  grid::GridConfig config;
  config.kind = kind;
  config.seed = seed;
  config.light_maintenance = true;  // no churn in steady-state experiments
  // The paper's steady-state experiments have no failures, so client
  // resubmission is effectively disabled: every job runs exactly once and
  // overloaded schemes show up as long waits, not duplicated work.
  config.client.resubmit_base_sec = 1e9;
  config.horizon_slack_sec = 150000.0;
  return config;
}

/// One experiment cell result, averaged over replicates by the caller.
struct CellResult {
  double wait_avg = 0.0;
  double wait_stdev = 0.0;
  double match_hops_avg = 0.0;
  double injection_hops_avg = 0.0;
  double jobs_per_node_cv = 0.0;
  double completed_fraction = 0.0;
  double makespan_sec = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t requeues = 0;
  std::uint64_t pushes = 0;
  std::uint64_t forwards = 0;
};

inline CellResult summarize(const grid::GridSystem& system) {
  CellResult r;
  const auto& c = system.collector();
  const Samples waits = c.wait_times();
  if (!waits.empty()) {
    r.wait_avg = waits.mean();
    r.wait_stdev = waits.stdev();
  }
  const Samples hops = c.matchmaking_hops();
  if (!hops.empty()) r.match_hops_avg = hops.mean();
  const Samples inj = c.injection_hops();
  if (!inj.empty()) r.injection_hops_avg = inj.mean();
  r.jobs_per_node_cv = c.jobs_per_node().cv();
  r.completed_fraction = c.job_count() == 0
                             ? 1.0
                             : static_cast<double>(c.completed_count()) /
                                   static_cast<double>(c.job_count());
  r.makespan_sec = c.makespan_sec();
  r.messages = system.net_stats().messages_sent;
  r.resubmissions = c.total_resubmissions();
  r.requeues = c.total_requeues();
  const auto node_stats = system.aggregate_node_stats();
  r.pushes = node_stats.can_pushes;
  r.forwards = node_stats.can_forwards;
  return r;
}

inline CellResult average(const std::vector<CellResult>& cells) {
  CellResult avg;
  if (cells.empty()) return avg;
  for (const CellResult& c : cells) {
    avg.wait_avg += c.wait_avg;
    avg.wait_stdev += c.wait_stdev;
    avg.match_hops_avg += c.match_hops_avg;
    avg.injection_hops_avg += c.injection_hops_avg;
    avg.jobs_per_node_cv += c.jobs_per_node_cv;
    avg.completed_fraction += c.completed_fraction;
    avg.makespan_sec += c.makespan_sec;
    avg.messages += c.messages;
    avg.resubmissions += c.resubmissions;
    avg.requeues += c.requeues;
    avg.pushes += c.pushes;
    avg.forwards += c.forwards;
  }
  const auto n = static_cast<double>(cells.size());
  avg.wait_avg /= n;
  avg.wait_stdev /= n;
  avg.match_hops_avg /= n;
  avg.injection_hops_avg /= n;
  avg.jobs_per_node_cv /= n;
  avg.completed_fraction /= n;
  avg.makespan_sec /= n;
  avg.messages /= cells.size();
  return avg;
}

inline void print_header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '-').c_str());
}

}  // namespace pgrid::bench
