#pragma once
// Shared plumbing for the experiment benches: config flags, cell sweeps run
// in parallel (deterministic per-cell seeds), and fixed-width table output
// matching the rows/series the paper reports.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/hash.h"
#include "grid/grid_system.h"
#include "net/message_pool.h"
#include "obs/memory.h"
#include "sim/runner.h"
#include "workload/workload.h"

namespace pgrid::bench {

/// Version of the BENCH_*.json row layout. Bump when fields change meaning
/// or move; downstream tooling keys parsing off this.
///  1: original layout (implicit — rows had no version field)
///  2: adds schema_version and the mem_* per-subsystem byte fields
///  3: adds detector-quality fields (fp_evictions, fn_evictions,
///     anti_entropy_repairs, recovery_latency_p50/p99)
///  4: adds maintenance-batching fields (batching flag, batches_sent,
///     batch_parts_sent, batches_delivered, batch_parts_delivered)
///  5: adds sharded-execution fields (shards = worker shard count, 0 for the
///     sequential engine; wall_ms = build+run wall clock in milliseconds)
inline constexpr int kBenchJsonSchemaVersion = 5;

/// Build flavor baked into every JSON row so downstream tooling (and
/// reviewers of results/*.txt) can reject numbers recorded from an
/// unoptimized binary. Derived from NDEBUG: the only signal that tracks
/// what the optimizer actually saw.
#ifdef NDEBUG
inline constexpr const char* kBuildType = "release";
#else
inline constexpr const char* kBuildType = "debug";
#endif

/// Experiment scale, overridable from the command line. Defaults reproduce
/// the paper's setup (1000 nodes, 5000 jobs, exp(100 s) service, Poisson
/// 0.1 s inter-arrival); pass --nodes/--jobs/... to rescale.
struct Scale {
  std::size_t nodes = 1000;
  std::size_t jobs = 5000;
  double mean_runtime_sec = 100.0;
  double mean_interarrival_sec = 0.1;
  std::size_t replicates = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 1;

  static Scale from_config(const Config& config) {
    Scale s;
    s.nodes = static_cast<std::size_t>(config.get_int("nodes", 1000));
    s.jobs = static_cast<std::size_t>(config.get_int("jobs", 5000));
    s.mean_runtime_sec = config.get_double("runtime", 100.0);
    s.mean_interarrival_sec = config.get_double("interarrival", 0.1);
    s.replicates = static_cast<std::size_t>(config.get_int("replicates", 1));
    s.threads = static_cast<std::size_t>(config.get_int("threads", 0));
    s.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
    return s;
  }
};

/// Named derivation streams: every bench draws its workload and system seeds
/// from disjoint regions of the 64-bit space instead of ad-hoc `base + k`
/// offsets. The old scheme collided silently — e.g. scalability's workload
/// seed (`base + nodes`) equals its system seed (`base + 13`) whenever a
/// sweep ever includes 13-node cells, and two benches run with the same
/// --seed reused each other's streams outright.
enum class SeedStream : std::uint64_t {
  kWorkload = 0x9001,
  kSystem = 0x9002,
};

/// Derive a per-cell seed: mix the user's base seed, the stream tag, and a
/// cell-specific salt through the splitmix64-based hash_combine. Bijective
/// mixing means distinct (base, stream, salt) triples collide with only
/// generic birthday probability rather than by construction.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base,
                                               SeedStream stream,
                                               std::uint64_t salt = 0) {
  return hash_combine(hash_combine(mix64(base),
                                   static_cast<std::uint64_t>(stream)),
                      mix64(salt));
}

/// Fail fast if any two derived seeds collide: a collision would silently
/// correlate cells that the bench treats as independent.
inline void assert_distinct_seeds(const std::vector<std::uint64_t>& seeds) {
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      if (seeds[i] == seeds[j]) {
        std::fprintf(stderr,
                     "bench: derived seed collision between cells %zu and %zu "
                     "(0x%016" PRIx64 ")\n",
                     i, j, seeds[i]);
        std::abort();
      }
    }
  }
}

inline workload::WorkloadSpec make_spec(const Scale& scale,
                                        workload::Mix node_mix,
                                        workload::Mix job_mix,
                                        double constraint_probability,
                                        std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.node_count = scale.nodes;
  spec.job_count = scale.jobs;
  spec.node_mix = node_mix;
  spec.job_mix = job_mix;
  spec.constraint_probability = constraint_probability;
  spec.mean_runtime_sec = scale.mean_runtime_sec;
  spec.mean_interarrival_sec = scale.mean_interarrival_sec;
  spec.seed = seed;
  return spec;
}

inline grid::GridConfig make_grid_config(grid::MatchmakerKind kind,
                                         std::uint64_t seed) {
  grid::GridConfig config;
  config.kind = kind;
  config.seed = seed;
  config.light_maintenance = true;  // no churn in steady-state experiments
  // The paper's steady-state experiments have no failures, so client
  // resubmission is effectively disabled: every job runs exactly once and
  // overloaded schemes show up as long waits, not duplicated work.
  config.client.resubmit_base_sec = 1e9;
  config.horizon_slack_sec = 150000.0;
  return config;
}

/// One experiment cell result, averaged over replicates by the caller.
struct CellResult {
  double wait_avg = 0.0;
  double wait_stdev = 0.0;
  double match_hops_avg = 0.0;
  double injection_hops_avg = 0.0;
  double jobs_per_node_cv = 0.0;
  double completed_fraction = 0.0;
  double makespan_sec = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t requeues = 0;
  std::uint64_t pushes = 0;
  std::uint64_t forwards = 0;
  // Maintenance batching (DESIGN.md §16): envelopes on the wire and the
  // logical messages they carried. Zero when GridConfig::batching is off.
  std::uint64_t batches_sent = 0;
  std::uint64_t batch_parts_sent = 0;
  std::uint64_t batches_delivered = 0;
  std::uint64_t batch_parts_delivered = 0;
  // Sharded execution (DESIGN.md §17): shard count the cell ran with (0 =
  // sequential engine) and total wall clock, the quantity the sharded
  // speedup series compares.
  std::uint64_t shards = 0;
  double wall_ms = 0.0;
  // Profiling (wall clock of the simulator itself, not sim time).
  double build_wall_sec = 0.0;
  double run_wall_sec = 0.0;
  std::uint64_t sim_events = 0;
  double events_per_wall_sec = 0.0;
  std::uint64_t sim_queue_peak = 0;
  std::uint64_t sim_tombstone_peak = 0;
  // Message-pool recycling over the cell (thread-local delta; see
  // attach_pool_stats). A healthy steady state reuses nearly every block.
  std::uint64_t pool_fresh = 0;
  std::uint64_t pool_reused = 0;
  double pool_reuse_fraction = 0.0;
  // Detector quality (nonzero only when GridConfig::track_liveness injected
  // the ground-truth oracle) and online anti-entropy repair volume.
  std::uint64_t fp_evictions = 0;       // evicted a peer that was alive
  std::uint64_t fn_evictions = 0;       // detected later than the fixed rule
  std::uint64_t anti_entropy_repairs = 0;  // owner records re-homed by audit
  double recovery_latency_p50 = 0.0;  // actual death -> eviction, seconds
  double recovery_latency_p99 = 0.0;
  // End-of-run per-subsystem memory footprint (peak across replicates when
  // averaged); always filled — the breakdown walk is cold and obs-independent.
  obs::MemoryAccountant memory;
  std::uint64_t mem_total_bytes = 0;
};

/// Fold the calling thread's MessagePool counters since `before` into `r`.
/// Call on the same thread that ran the cell (the sweep worker), with
/// `before` sampled just before the system was built.
inline void attach_pool_stats(CellResult& r,
                              const net::MessagePool::Stats& before) {
  const net::MessagePool::Stats now = net::MessagePool::stats();
  r.pool_fresh = now.fresh - before.fresh;
  r.pool_reused = now.reused - before.reused;
  const auto total = r.pool_fresh + r.pool_reused;
  r.pool_reuse_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(r.pool_reused) /
                       static_cast<double>(total);
}

inline CellResult summarize(const grid::GridSystem& system) {
  CellResult r;
  const auto& c = system.collector();
  // Streaming-safe accessors: identical quantities in batch mode, O(buckets)
  // storage when the driver enables obs.streaming_metrics.
  const RunningStats waits = c.wait_stats();
  if (waits.count() > 0) {
    r.wait_avg = waits.mean();
    r.wait_stdev = waits.sample_stdev();
  }
  const RunningStats hops = c.match_hops_stats();
  if (hops.count() > 0) r.match_hops_avg = hops.mean();
  const RunningStats inj = c.injection_hops_stats();
  if (inj.count() > 0) r.injection_hops_avg = inj.mean();
  r.jobs_per_node_cv = c.jobs_per_node().cv();
  r.completed_fraction = c.job_count() == 0
                             ? 1.0
                             : static_cast<double>(c.completed_count()) /
                                   static_cast<double>(c.job_count());
  r.makespan_sec = c.makespan_sec();
  r.messages = system.net_stats().messages_sent;
  r.messages_delivered = system.net_stats().messages_delivered;
  r.bytes_sent = system.net_stats().bytes_sent;
  r.bytes_delivered = system.net_stats().bytes_delivered;
  r.batches_sent = system.net_stats().batches_sent;
  r.batch_parts_sent = system.net_stats().batch_parts_sent;
  r.batches_delivered = system.net_stats().batches_delivered;
  r.batch_parts_delivered = system.net_stats().batch_parts_delivered;
  r.build_wall_sec = system.profile().phase_sec("build");
  r.run_wall_sec = system.profile().phase_sec("run");
  r.shards = system.config().shards;
  r.wall_ms = (r.build_wall_sec + r.run_wall_sec) * 1000.0;
  r.sim_events = system.profile().events();
  r.events_per_wall_sec = system.profile().events_per_sec();
  // Engine-agnostic peaks: the sharded engine's Simulators are per-shard, so
  // system.simulator() would read an empty queue there.
  r.sim_queue_peak = system.sim_queue_peak();
  r.sim_tombstone_peak = system.sim_tombstone_peak();
  r.resubmissions = c.total_resubmissions();
  r.requeues = c.total_requeues();
  const auto node_stats = system.aggregate_node_stats();
  r.pushes = node_stats.can_pushes;
  r.forwards = node_stats.can_forwards;
  r.fp_evictions = node_stats.fp_evictions;
  r.fn_evictions = node_stats.fn_evictions;
  r.anti_entropy_repairs = node_stats.owner_audit_repairs;
  if (!node_stats.detection_latency.empty()) {
    r.recovery_latency_p50 = node_stats.detection_latency.median();
    r.recovery_latency_p99 = node_stats.detection_latency.quantile(0.99);
  }
  r.memory = system.memory_breakdown();
  r.mem_total_bytes = r.memory.total();
  return r;
}

inline CellResult average(const std::vector<CellResult>& cells) {
  CellResult avg;
  if (cells.empty()) return avg;
  for (const CellResult& c : cells) {
    avg.wait_avg += c.wait_avg;
    avg.wait_stdev += c.wait_stdev;
    avg.match_hops_avg += c.match_hops_avg;
    avg.injection_hops_avg += c.injection_hops_avg;
    avg.jobs_per_node_cv += c.jobs_per_node_cv;
    avg.completed_fraction += c.completed_fraction;
    avg.makespan_sec += c.makespan_sec;
    avg.messages += c.messages;
    avg.messages_delivered += c.messages_delivered;
    avg.bytes_sent += c.bytes_sent;
    avg.bytes_delivered += c.bytes_delivered;
    avg.resubmissions += c.resubmissions;
    avg.requeues += c.requeues;
    avg.pushes += c.pushes;
    avg.forwards += c.forwards;
    avg.batches_sent += c.batches_sent;
    avg.batch_parts_sent += c.batch_parts_sent;
    avg.batches_delivered += c.batches_delivered;
    avg.batch_parts_delivered += c.batch_parts_delivered;
    avg.fp_evictions += c.fp_evictions;
    avg.fn_evictions += c.fn_evictions;
    avg.anti_entropy_repairs += c.anti_entropy_repairs;
    avg.recovery_latency_p50 += c.recovery_latency_p50;
    avg.recovery_latency_p99 += c.recovery_latency_p99;
    avg.shards = std::max(avg.shards, c.shards);
    avg.wall_ms += c.wall_ms;
    avg.build_wall_sec += c.build_wall_sec;
    avg.run_wall_sec += c.run_wall_sec;
    avg.sim_events += c.sim_events;
    avg.events_per_wall_sec += c.events_per_wall_sec;
    avg.sim_queue_peak = std::max(avg.sim_queue_peak, c.sim_queue_peak);
    avg.sim_tombstone_peak =
        std::max(avg.sim_tombstone_peak, c.sim_tombstone_peak);
    avg.pool_fresh += c.pool_fresh;
    avg.pool_reused += c.pool_reused;
    avg.memory.merge_peak(c.memory);  // peak, not mean: a footprint bound
  }
  avg.mem_total_bytes = avg.memory.total();
  const auto n = static_cast<double>(cells.size());
  avg.wait_avg /= n;
  avg.wait_stdev /= n;
  avg.match_hops_avg /= n;
  avg.injection_hops_avg /= n;
  avg.jobs_per_node_cv /= n;
  avg.completed_fraction /= n;
  avg.makespan_sec /= n;
  avg.messages /= cells.size();
  avg.messages_delivered /= cells.size();
  avg.bytes_sent /= cells.size();
  avg.bytes_delivered /= cells.size();
  avg.batches_sent /= cells.size();
  avg.batch_parts_sent /= cells.size();
  avg.batches_delivered /= cells.size();
  avg.batch_parts_delivered /= cells.size();
  avg.wall_ms /= n;
  avg.build_wall_sec /= n;
  avg.run_wall_sec /= n;
  avg.sim_events /= cells.size();
  avg.events_per_wall_sec /= n;
  avg.recovery_latency_p50 /= n;
  avg.recovery_latency_p99 /= n;
  const auto pool_total = avg.pool_fresh + avg.pool_reused;
  avg.pool_reuse_fraction =
      pool_total == 0 ? 0.0
                      : static_cast<double>(avg.pool_reused) /
                            static_cast<double>(pool_total);
  return avg;
}

inline void print_header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '-').c_str());
}

/// The bench summary line: network traffic plus simulator throughput for one
/// cell, printed under the result tables.
inline void print_summary_line(const std::string& label, const CellResult& r) {
  std::printf("summary %-14s msgs %" PRIu64 "/%" PRIu64
              " (sent/delivered), bytes %" PRIu64 "/%" PRIu64
              ", run %.2fs wall, %" PRIu64 " events, %.0fk ev/s"
              ", pool reuse %.1f%%\n",
              label.c_str(), r.messages, r.messages_delivered, r.bytes_sent,
              r.bytes_delivered, r.run_wall_sec, r.sim_events,
              r.events_per_wall_sec / 1000.0, r.pool_reuse_fraction * 100.0);
}

/// JSONL writer for bench results: one object per cell so downstream tooling
/// can track wait times *and* simulator throughput across commits. Enabled
/// with --json=1 (default path BENCH_<name>.json) or --json=path.
class BenchJson {
 public:
  BenchJson() = default;
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  BenchJson(BenchJson&& other) noexcept
      : file_(other.file_), bench_(std::move(other.bench_)) {
    other.file_ = nullptr;
  }
  ~BenchJson() {
    if (file_ != nullptr) std::fclose(file_);
  }

  static BenchJson open(const Config& config, const std::string& bench_name) {
    BenchJson out;
    std::string path = config.get_string("json", "");
    if (path == "1" || path == "true") path = "BENCH_" + bench_name + ".json";
    if (path.empty()) return out;
    out.file_ = std::fopen(path.c_str(), "w");
    if (out.file_ == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
    }
    out.bench_ = bench_name;
    out.path_ = path;
    return out;
  }

  [[nodiscard]] bool active() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void row(const std::string& label, const CellResult& r) {
    if (file_ == nullptr) return;
    std::fprintf(
        file_,
        "{\"schema_version\":%d,"
        "\"bench\":\"%s\",\"build_type\":\"%s\",\"cell\":\"%s\","
        "\"wait_avg\":%.6f,"
        "\"wait_stdev\":%.6f,\"match_hops_avg\":%.6f,"
        "\"injection_hops_avg\":%.6f,\"jobs_per_node_cv\":%.6f,"
        "\"completed_fraction\":%.6f,\"makespan_sec\":%.3f,"
        "\"messages_sent\":%" PRIu64 ",\"messages_delivered\":%" PRIu64
        ",\"bytes_sent\":%" PRIu64 ",\"bytes_delivered\":%" PRIu64
        ",\"resubmissions\":%" PRIu64 ",\"requeues\":%" PRIu64
        ",\"batches_sent\":%" PRIu64 ",\"batch_parts_sent\":%" PRIu64
        ",\"batches_delivered\":%" PRIu64 ",\"batch_parts_delivered\":%" PRIu64
        ",\"shards\":%" PRIu64 ",\"wall_ms\":%.3f"
        ",\"build_wall_sec\":%.6f,\"run_wall_sec\":%.6f,"
        "\"sim_events\":%" PRIu64 ",\"events_per_wall_sec\":%.1f,"
        "\"sim_queue_peak\":%" PRIu64 ",\"sim_tombstone_peak\":%" PRIu64
        ",\"pool_fresh\":%" PRIu64 ",\"pool_reused\":%" PRIu64
        ",\"pool_reuse_fraction\":%.4f"
        ",\"fp_evictions\":%" PRIu64 ",\"fn_evictions\":%" PRIu64
        ",\"anti_entropy_repairs\":%" PRIu64
        ",\"recovery_latency_p50\":%.6f,\"recovery_latency_p99\":%.6f",
        kBenchJsonSchemaVersion, bench_.c_str(), kBuildType, label.c_str(),
        r.wait_avg, r.wait_stdev, r.match_hops_avg, r.injection_hops_avg,
        r.jobs_per_node_cv, r.completed_fraction, r.makespan_sec, r.messages,
        r.messages_delivered, r.bytes_sent, r.bytes_delivered,
        r.resubmissions, r.requeues, r.batches_sent, r.batch_parts_sent,
        r.batches_delivered, r.batch_parts_delivered, r.shards, r.wall_ms,
        r.build_wall_sec, r.run_wall_sec,
        r.sim_events, r.events_per_wall_sec,
        static_cast<std::uint64_t>(r.sim_queue_peak),
        static_cast<std::uint64_t>(r.sim_tombstone_peak),
        r.pool_fresh, r.pool_reused, r.pool_reuse_fraction,
        r.fp_evictions, r.fn_evictions, r.anti_entropy_repairs,
        r.recovery_latency_p50, r.recovery_latency_p99);
    // Per-subsystem memory breakdown: one field per MemClass plus the total.
    for (std::size_t c = 0; c < obs::MemoryAccountant::kClasses; ++c) {
      const auto cls = static_cast<obs::MemClass>(c);
      std::fprintf(file_, ",\"mem_%s\":%" PRIu64, obs::mem_class_name(cls),
                   r.memory.of(cls));
    }
    std::fprintf(file_, ",\"mem_total_bytes\":%" PRIu64 "}\n",
                 r.mem_total_bytes);
  }

 private:
  std::FILE* file_ = nullptr;
  std::string bench_;
  std::string path_;
};

}  // namespace pgrid::bench
