// Regenerates Figure 2 of the paper: average and standard deviation of job
// wait time for clustered and mixed workloads, lightly (avg 1.2/3) vs
// heavily (avg 2.4/3) constrained jobs, comparing CAN-based matchmaking,
// the RN-Tree, and the omniscient centralized scheduler.
//
//   fig2_wait_time [--nodes=1000] [--jobs=5000] [--replicates=1]
//                  [--threads=N] [--seed=1] [--with-push=0]
//
// Expected shape (paper §3.3): centralized <= RN ~ CAN in most scenarios;
// CAN degrades badly on lightly-constrained mixed workloads (Fig. 2(c,d)).

#include <array>

#include "bench/bench_util.h"

namespace {

using namespace pgrid;
using namespace pgrid::bench;
using grid::MatchmakerKind;
using workload::Mix;

struct Cell {
  Mix mix;            // both nodes and jobs (the paper's two panels)
  double constraint;  // 0.4 light, 0.8 heavy
  MatchmakerKind kind;
  std::size_t replicate;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const Scale scale = Scale::from_config(config);
  const bool with_push = config.get_bool("with-push", false);

  std::vector<MatchmakerKind> kinds{MatchmakerKind::kCanBasic,
                                    MatchmakerKind::kRnTree,
                                    MatchmakerKind::kCentralized};
  if (with_push) kinds.push_back(MatchmakerKind::kCanPush);

  const std::array<Mix, 2> mixes{Mix::kClustered, Mix::kMixed};
  const std::array<double, 2> constraints{0.4, 0.8};

  // Enumerate all cells, run them in parallel, then group for printing.
  std::vector<Cell> cells;
  for (Mix mix : mixes) {
    for (double p : constraints) {
      for (MatchmakerKind kind : kinds) {
        for (std::size_t r = 0; r < scale.replicates; ++r) {
          cells.push_back(Cell{mix, p, kind, r});
        }
      }
    }
  }

  std::printf("fig2_wait_time: %zu nodes, %zu jobs, %zu replicate(s), "
              "mean runtime %.0fs, mean inter-arrival %.2fs\n",
              scale.nodes, scale.jobs, scale.replicates,
              scale.mean_runtime_sec, scale.mean_interarrival_sec);

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        // The workload (hence its seed) is shared by all schemes in a cell
        // group, so every matchmaker sees the identical job stream.
        const std::uint64_t wl_seed =
            hash_combine(scale.seed,
                         hash_combine(static_cast<std::uint64_t>(cell.mix),
                                      mix64(cell.replicate * 1000 +
                                            (cell.constraint > 0.5 ? 1 : 0))));
        const auto spec = make_spec(scale, cell.mix, cell.mix,
                                    cell.constraint, wl_seed);
        grid::GridConfig gc = make_grid_config(cell.kind, wl_seed ^ 0x5bd1e995);
        // Streaming aggregates: no per-job record vector, so sweeping very
        // large --jobs values holds O(buckets) per cell instead of O(jobs).
        gc.obs.streaming_metrics = true;
        const auto pool_before = net::MessagePool::stats();
        grid::GridSystem system(gc, workload::generate(spec));
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  auto cell_avg = [&](Mix mix, double p, MatchmakerKind kind) {
    std::vector<CellResult> group;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].mix == mix && cells[i].constraint == p &&
          cells[i].kind == kind) {
        group.push_back(results[i]);
      }
    }
    return average(group);
  };

  const char* panel_names[2][2] = {{"Figure 2(a): Average Job Wait Time (s)",
                                    "Figure 2(b): STDEV of Job Wait Time (s)"},
                                   {"Figure 2(c): Average Job Wait Time (s)",
                                    "Figure 2(d): STDEV of Job Wait Time (s)"}};

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (int panel = 0; panel < 2; ++panel) {
      print_header(std::string(panel_names[m][panel]) + " — " +
                   workload::mix_name(mixes[m]) + " workloads");
      std::printf("%-22s", "constraints");
      for (MatchmakerKind kind : kinds) {
        std::printf("%14s", grid::matchmaker_name(kind));
      }
      std::printf("\n");
      for (double p : constraints) {
        std::printf("%-22s", p < 0.5 ? "light (avg 1.2/3)" : "heavy (avg 2.4/3)");
        for (MatchmakerKind kind : kinds) {
          const CellResult r = cell_avg(mixes[m], p, kind);
          std::printf("%14.1f", panel == 0 ? r.wait_avg : r.wait_stdev);
        }
        std::printf("\n");
      }
    }
  }

  // Sanity footer: completion rates (all schemes must finish the workload).
  print_header("Completion fraction (sanity)");
  for (Mix mix : mixes) {
    for (double p : constraints) {
      std::printf("%-10s %-7s", workload::mix_name(mix),
                  p < 0.5 ? "light" : "heavy");
      for (MatchmakerKind kind : kinds) {
        std::printf("%14.3f", cell_avg(mix, p, kind).completed_fraction);
      }
      std::printf("\n");
    }
  }

  // Traffic + simulator-throughput summary, one line per cell average, and
  // an optional JSONL dump for regression tracking (--json=1 or --json=path).
  print_header("Traffic & throughput");
  BenchJson json = BenchJson::open(config, "fig2_wait_time");
  for (Mix mix : mixes) {
    for (double p : constraints) {
      for (MatchmakerKind kind : kinds) {
        const std::string label = std::string(workload::mix_name(mix)) + "/" +
                                  (p < 0.5 ? "light" : "heavy") + "/" +
                                  grid::matchmaker_name(kind);
        const CellResult r = cell_avg(mix, p, kind);
        print_summary_line(label, r);
        json.row(label, r);
      }
    }
  }
  if (json.active()) std::printf("\nwrote %s\n", json.path().c_str());
  return 0;
}
