// Steady-state hot-path microbenchmark (DESIGN.md §13): the send ->
// deliver -> handler cycle that dominates every experiment's wall clock,
// isolated from matchmaking logic so pool recycling and the plain-delivery
// fast path are directly visible.
//
// Cells:
//   ping_pong        — closed-loop request/response between two handlers on
//                      a plain network (fast path active). Every delivery
//                      frees one pooled message and the response allocates
//                      one, so the pool's reuse fraction approaches 1.
//   ping_pong_lossy  — identical topology with a vanishingly small base
//                      loss probability, which disables the plain-delivery
//                      predicate: the per-send cost of the general path,
//                      for comparison against ping_pong.
//   clone_fanout     — one sender clones a message to 32 receivers per
//                      round (the ZoneUpdate broadcast shape); exercises
//                      clone() through the pool.
//   heartbeat_storm  — 512 periodic senders firing at one sink (the grid
//                      layer's heartbeat fan-in shape), driven by
//                      PeriodicTask like GridNode itself.
//
// Flags: --messages=N (default 1M deliveries per cell), --smoke=1 (50k, for
// CI), --json[=path] (one row per cell, BENCH_steady_state_micro.json by
// default), --seed=S, --obs=1 (attach an enabled TraceBus to every cell's
// network: the obs-on leg of CI's A/B against the default obs-off run),
// --detector=1 (append a heartbeat_storm_phi cell that runs a φ-accrual
// detector per sender on the fan-in path — the A/B that bounds the
// detector's bookkeeping cost; default output is unchanged),
// --threads=N (accepted for CLI uniformity with the experiment benches;
// these cells time a single hot loop each and co-scheduling them would
// contaminate the wall clocks, so they always run serially).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/phi_detector.h"
#include "common/rng.h"
#include "net/message.h"
#include "net/message_pool.h"
#include "net/network.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace {

using namespace pgrid;

#ifdef NDEBUG
constexpr const char* kBuildType = "release";
#else
constexpr const char* kBuildType = "debug";
#endif

struct CellResult {
  std::string cell;
  std::uint64_t messages = 0;   // deliveries observed by handlers
  std::uint64_t sim_events = 0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  double msgs_per_sec = 0.0;
  bool obs = false;              // TraceBus attached for this cell
  net::MessagePool::Stats pool;  // delta over the cell
};

/// Obs-on leg of the CI A/B: an enabled bus with a bounded ring, attached
/// before any traffic so every send/deliver pays the recording cost.
std::unique_ptr<obs::TraceBus> maybe_attach_trace(net::Network& network,
                                                  const sim::Simulator& sim,
                                                  bool obs) {
  if (!obs) return nullptr;
  auto bus = std::make_unique<obs::TraceBus>(sim, 1u << 16);
  network.set_trace(bus.get());
  return bus;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

net::MessagePool::Stats pool_delta(const net::MessagePool::Stats& before) {
  const net::MessagePool::Stats now = net::MessagePool::stats();
  net::MessagePool::Stats d;
  d.fresh = now.fresh - before.fresh;
  d.reused = now.reused - before.reused;
  d.oversize = now.oversize - before.oversize;
  d.foreign = now.foreign - before.foreign;
  d.cached_blocks = now.cached_blocks;
  d.cached_bytes = now.cached_bytes;
  return d;
}

void finish(CellResult& r, const sim::Simulator& sim, double wall,
            std::uint64_t messages, const net::MessagePool::Stats& before) {
  r.messages = messages;
  r.sim_events = sim.executed();
  r.wall_sec = wall;
  r.events_per_sec =
      wall > 0.0 ? static_cast<double>(r.sim_events) / wall : 0.0;
  r.msgs_per_sec = wall > 0.0 ? static_cast<double>(messages) / wall : 0.0;
  r.pool = pool_delta(before);
}

struct PingMsg final : net::Message {
  static constexpr std::uint16_t kType = net::kTagTestBase + 0x20;
  explicit PingMsg(std::uint64_t v) : Message(kType), value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 8;
  }
  PGRID_MESSAGE_CLONE(PingMsg)
};

/// Bounces every received message straight back until `target` deliveries.
struct Bouncer final : net::MessageHandler {
  net::Network& net;
  net::NodeAddr self = net::kNullAddr;
  net::NodeAddr peer = net::kNullAddr;
  std::uint64_t delivered = 0;
  std::uint64_t target = 0;

  explicit Bouncer(net::Network& network) : net(network) {
    self = network.add_handler(this);
  }
  void on_message(net::NodeAddr /*from*/, net::MessagePtr msg) override {
    if (++delivered >= target) return;
    const auto* m = net::msg_cast<PingMsg>(msg.get());
    net.send(self, peer, std::make_unique<PingMsg>(m->value + 1));
  }
};

CellResult bench_ping_pong(std::uint64_t target, std::uint64_t seed,
                           double loss, const char* name, bool obs) {
  CellResult r{.cell = name, .obs = obs};
  const net::MessagePool::Stats before = net::MessagePool::stats();
  sim::Simulator sim;
  net::Network network(
      sim, Rng{seed},
      net::LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(2)},
      loss);
  const auto bus = maybe_attach_trace(network, sim, obs);
  Bouncer a(network);
  Bouncer b(network);
  a.peer = b.self;
  b.peer = a.self;
  // Each side stops bouncing at its own cap, so the joint delivery count
  // lands on the cell's message budget.
  a.target = b.target = target / 2;
  const WallTimer timer;
  network.send(a.self, b.self, std::make_unique<PingMsg>(0));
  // Run until the combined delivery count reaches the target: each side
  // stops bouncing at its own cap, so the loop drains naturally.
  sim.run();
  finish(r, sim, timer.sec(), a.delivered + b.delivered, before);
  return r;
}

/// Counts deliveries and drops them (the fan-out sink).
struct Sink final : net::MessageHandler {
  net::NodeAddr self = net::kNullAddr;
  std::uint64_t delivered = 0;
  explicit Sink(net::Network& network) { self = network.add_handler(this); }
  void on_message(net::NodeAddr /*from*/, net::MessagePtr /*msg*/) override {
    ++delivered;
  }
};

CellResult bench_clone_fanout(std::uint64_t target, std::uint64_t seed,
                              bool obs) {
  constexpr std::size_t kReceivers = 32;
  CellResult r{.cell = "clone_fanout", .obs = obs};
  const net::MessagePool::Stats before = net::MessagePool::stats();
  sim::Simulator sim;
  net::Network network(
      sim, Rng{seed},
      net::LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(2)});
  const auto bus = maybe_attach_trace(network, sim, obs);
  Sink sender(network);
  std::vector<std::unique_ptr<Sink>> receivers;
  receivers.reserve(kReceivers);
  for (std::size_t i = 0; i < kReceivers; ++i) {
    receivers.push_back(std::make_unique<Sink>(network));
  }
  const std::uint64_t rounds = target / kReceivers;
  std::uint64_t round = 0;
  const WallTimer timer;
  // The broadcast shape: one template message per round, one clone per
  // receiver (the template itself is never sent, matching a node that
  // builds an update and fans copies to its neighbor set).
  struct Driver {
    sim::Simulator& sim;
    net::Network& net;
    Sink& sender;
    std::vector<std::unique_ptr<Sink>>& receivers;
    std::uint64_t& round;
    std::uint64_t rounds;
    void operator()() const {
      if (round++ >= rounds) return;
      const PingMsg tmpl(round);
      for (const auto& rx : receivers) {
        net.send(sender.self, rx->self, tmpl.clone());
      }
      sim.schedule_in(sim::SimTime::millis(5), *this);
    }
  };
  sim.schedule_in(sim::SimTime::millis(1),
                  Driver{sim, network, sender, receivers, round, rounds});
  sim.run();
  std::uint64_t delivered = 0;
  for (const auto& rx : receivers) delivered += rx->delivered;
  finish(r, sim, timer.sec(), delivered, before);
  return r;
}

/// Fan-in sink that also maintains one φ-accrual detector per sender,
/// like the grid layer's owner-side heartbeat monitor: heartbeat() per
/// delivery, plus a 1 s scan evaluating every detector. The sender index
/// rides in the message payload.
struct PhiSink final : net::MessageHandler {
  const sim::Simulator& sim;
  net::NodeAddr self = net::kNullAddr;
  std::uint64_t delivered = 0;
  std::uint64_t suspects = 0;
  std::vector<PhiDetector> detectors;
  PhiSink(net::Network& network, const sim::Simulator& s, std::size_t peers)
      : sim(s), detectors(peers) {
    self = network.add_handler(this);
  }
  void on_message(net::NodeAddr /*from*/, net::MessagePtr msg) override {
    ++delivered;
    const auto* m = net::msg_cast<PingMsg>(msg.get());
    detectors[static_cast<std::size_t>(m->value)].heartbeat(sim.now());
  }
};

CellResult bench_heartbeat_storm(std::uint64_t target, std::uint64_t seed,
                                 bool obs, bool phi) {
  constexpr std::size_t kSenders = 512;
  CellResult r{.cell = phi ? "heartbeat_storm_phi" : "heartbeat_storm",
               .obs = obs};
  const net::MessagePool::Stats before = net::MessagePool::stats();
  sim::Simulator sim;
  net::Network network(
      sim, Rng{seed},
      net::LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(2)});
  const auto bus = maybe_attach_trace(network, sim, obs);
  Sink owner(network);
  std::unique_ptr<PhiSink> phi_owner;
  if (phi) phi_owner = std::make_unique<PhiSink>(network, sim, kSenders);
  const net::NodeAddr owner_addr = phi ? phi_owner->self : owner.self;
  std::vector<std::unique_ptr<Sink>> senders;
  senders.reserve(kSenders);
  for (std::size_t i = 0; i < kSenders; ++i) {
    senders.push_back(std::make_unique<Sink>(network));
  }
  // One heartbeat per sender per simulated second, like GridNode's run side;
  // the horizon is sized so the total delivery count hits the target.
  const auto horizon_sec = static_cast<double>(target) / kSenders;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
  tasks.reserve(kSenders);
  const WallTimer timer;
  for (std::size_t i = 0; i < kSenders; ++i) {
    Sink* s = senders[i].get();
    net::Network* net = &network;
    net::NodeAddr to = owner_addr;
    tasks.push_back(std::make_unique<sim::PeriodicTask>(
        sim, sim::SimTime::seconds(1.0),
        [s, net, to, i] {
          net->send(s->self, to, std::make_unique<PingMsg>(i));
        },
        sim::SimTime::millis(static_cast<std::int64_t>(i % 997))));
  }
  // The monitor scan: like GridNode's eviction sweep, evaluate every
  // detector once per second against the suspect threshold.
  std::unique_ptr<sim::PeriodicTask> scan;
  if (phi) {
    PhiSink* sink = phi_owner.get();
    const sim::Simulator* sp = &sim;
    const PhiAccrualConfig pcfg{.enabled = true};
    std::uint64_t* suspects = &phi_owner->suspects;
    scan = std::make_unique<sim::PeriodicTask>(
        sim, sim::SimTime::seconds(1.0), [sink, sp, pcfg, suspects] {
          const sim::SimTime now = sp->now();
          const sim::SimTime fallback = sim::SimTime::seconds(3.0);
          for (const PhiDetector& d : sink->detectors) {
            if (d.seen() && d.suspect(now, pcfg, fallback)) ++*suspects;
          }
        },
        sim::SimTime::millis(499));
  }
  sim.run_until(sim::SimTime::seconds(horizon_sec));
  for (auto& t : tasks) t->stop();
  if (scan) scan->stop();
  sim.run();  // drain in-flight deliveries
  finish(r, sim, timer.sec(), phi ? phi_owner->delivered : owner.delivered,
         before);
  return r;
}

void print_cell(const CellResult& r) {
  std::printf("%-16s %10" PRIu64 " msgs in %6.3fs  %8.0fk ev/s  %8.0fk msg/s"
              "  pool reuse %4.1f%% (%" PRIu64 " fresh, %" PRIu64 " reused)\n",
              r.cell.c_str(), r.messages, r.wall_sec,
              r.events_per_sec / 1000.0, r.msgs_per_sec / 1000.0,
              r.pool.reuse_fraction() * 100.0, r.pool.fresh, r.pool.reused);
}

void json_row(std::FILE* f, const CellResult& r) {
  std::fprintf(
      f,
      "{\"bench\":\"steady_state_micro\",\"build_type\":\"%s\",\"cell\":\"%s\","
      "\"obs\":\"%s\","
      "\"messages\":%" PRIu64 ",\"sim_events\":%" PRIu64
      ",\"wall_sec\":%.6f,\"events_per_sec\":%.1f,\"msgs_per_sec\":%.1f,"
      "\"pool_fresh\":%" PRIu64 ",\"pool_reused\":%" PRIu64
      ",\"pool_oversize\":%" PRIu64 ",\"pool_reuse_fraction\":%.4f}\n",
      kBuildType, r.cell.c_str(), r.obs ? "on" : "off", r.messages,
      r.sim_events, r.wall_sec, r.events_per_sec, r.msgs_per_sec,
      r.pool.fresh, r.pool.reused, r.pool.oversize, r.pool.reuse_fraction());
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const bool smoke = config.get_bool("smoke", false);
  const auto target = static_cast<std::uint64_t>(
      config.get_int("messages", smoke ? 50'000 : 1'000'000));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  const bool obs = config.get_bool("obs", false);
  const bool detector = config.get_bool("detector", false);
  // Accepted so every bench takes --threads; timing cells stay serial (see
  // the header comment).
  (void)config.get_int("threads", 0);

  std::printf("steady_state_micro [%s%s]: %" PRIu64 " messages per cell%s\n",
              kBuildType, obs ? ", obs-on" : "", target,
              smoke ? " (smoke)" : "");

  std::vector<CellResult> cells;
  cells.push_back(bench_ping_pong(target, seed, 0.0, "ping_pong", obs));
  net::MessagePool::trim();
  cells.push_back(
      bench_ping_pong(target, seed, 1e-12, "ping_pong_lossy", obs));
  net::MessagePool::trim();
  cells.push_back(bench_clone_fanout(target, seed, obs));
  net::MessagePool::trim();
  cells.push_back(bench_heartbeat_storm(target, seed, obs, false));
  if (detector) {
    // φ leg appended last so the default four-cell output is unchanged.
    net::MessagePool::trim();
    cells.push_back(bench_heartbeat_storm(target, seed, obs, true));
  }
  for (const CellResult& r : cells) print_cell(r);

  std::string path = config.get_string("json", "");
  if (path == "1" || path == "true") path = "BENCH_steady_state_micro.json";
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "steady_state_micro: cannot open %s\n",
                   path.c_str());
      return 1;
    }
    for (const CellResult& r : cells) json_row(f, r);
    std::fclose(f);
    std::printf("json rows written to %s\n", path.c_str());
  }
  return 0;
}
