// Regenerates the §3.3 claim shown only in prose: "both the CAN and RN can
// find an appropriate run node for a job with a small number of hops
// through the P2P overlay network."
//
// Reports, for every workload quadrant (clustered/mixed nodes x jobs) and
// both constraint levels, the overlay hops per job split into injection
// (routing the job to its owner, including the RN random walk / CAN pushes
// and forwards) and matchmaking (the RN-Tree extended search; CAN decides
// from local neighbor state, so its matchmaking hops are zero by
// construction). Small here means O(log N).
//
//   matchmaking_cost [--nodes=1000] [--jobs=5000] [--sweep-k=0] ...
//
// --sweep-k=1 additionally sweeps the RN extended-search candidate target
// k in {1, 2, 4, 8} (the DESIGN.md ablation).

#include <cmath>

#include "bench/bench_util.h"

namespace {

using namespace pgrid;
using namespace pgrid::bench;
using grid::MatchmakerKind;
using workload::Mix;
using workload::paper_quadrants;

struct Cell {
  std::size_t quadrant;
  double constraint;
  MatchmakerKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  // Default below paper scale: this bench runs 16 grid simulations (all
  // four quadrants); pass --nodes=1000 --jobs=5000 for the full setup.
  if (!config.has("nodes")) scale.nodes = 400;
  if (!config.has("jobs")) scale.jobs = 2000;
  const bool sweep_k = config.get_bool("sweep-k", false);

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kCanBasic,
                                          MatchmakerKind::kRnTree};
  const std::array<double, 2> constraints{0.4, 0.8};

  std::vector<Cell> cells;
  for (std::size_t q = 0; q < paper_quadrants().size(); ++q) {
    for (double p : constraints) {
      for (MatchmakerKind kind : kinds) {
        cells.push_back(Cell{q, p, kind});
      }
    }
  }

  std::printf("matchmaking_cost: %zu nodes, %zu jobs (log2 N = %.1f)\n",
              scale.nodes, scale.jobs,
              std::log2(static_cast<double>(scale.nodes)));

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        const auto& quadrant = paper_quadrants()[cell.quadrant];
        const std::uint64_t wl_seed = hash_combine(
            scale.seed, mix64(cell.quadrant * 10 +
                              (cell.constraint > 0.5 ? 1 : 0)));
        const auto spec = make_spec(scale, quadrant.node_mix,
                                    quadrant.job_mix, cell.constraint,
                                    wl_seed);
        grid::GridSystem system(make_grid_config(cell.kind, wl_seed ^ 0xB0B),
                                workload::generate(spec));
        system.run();
        return summarize(system);
      });

  print_header("Overlay hops per job (injection + matchmaking)");
  std::printf("%-36s %-7s %12s %12s %12s\n", "workload", "constr",
              "inject-hops", "match-hops", "total");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    std::printf("%-28s (%s) %-7s %12.2f %12.2f %12.2f\n",
                paper_quadrants()[cell.quadrant].label,
                grid::matchmaker_name(cell.kind),
                cell.constraint < 0.5 ? "light" : "heavy",
                r.injection_hops_avg, r.match_hops_avg,
                r.injection_hops_avg + r.match_hops_avg);
  }

  if (sweep_k) {
    print_header("RN-Tree ablation: extended-search candidate target k");
    std::printf("%-6s %12s %12s %12s %12s\n", "k", "wait-avg", "wait-stdev",
                "match-hops", "load-cv");
    const std::array<std::uint32_t, 4> ks{1, 2, 4, 8};
    const auto k_results = sim::run_sweep<CellResult>(
        ks.size(), scale.threads, [&](std::size_t i) {
          const auto spec = make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                                      scale.seed + 99);
          grid::GridConfig gc =
              make_grid_config(MatchmakerKind::kRnTree, scale.seed + 7);
          gc.node.rn_search_k = ks[i];
          grid::GridSystem system(gc, workload::generate(spec));
          system.run();
          return summarize(system);
        });
    for (std::size_t i = 0; i < ks.size(); ++i) {
      std::printf("%-6u %12.1f %12.1f %12.2f %12.3f\n", ks[i],
                  k_results[i].wait_avg, k_results[i].wait_stdev,
                  k_results[i].match_hops_avg, k_results[i].jobs_per_node_cv);
    }
  }
  return 0;
}
