// Survival under hostile churn: detector quality and anti-entropy repair.
//
//   churn_survival [--nodes=100] [--jobs=400] [--json=1] ...
//
// Sweep A (detector quality) runs each overlay matchmaker under background
// churn plus a sustained "lying network" window — gray nodes (slow and
// lossy but alive) or congestion loss — once with the fixed heartbeat
// deadline and once with the φ-accrual detector. The ground-truth liveness
// oracle classifies every eviction, so the cells measure what the paper's
// fixed timeout cannot: false-positive evictions of healthy-but-slow nodes
// versus actual death-to-eviction latency. The φ detector should cut FP
// evictions while holding detection latency (its eviction threshold is
// calibrated to the legacy three-period deadline).
//
// Sweep B (correlated burst survival) crashes a contiguous 30% overlay
// arc/slab at once — a rack power loss in overlay coordinates, the worst
// case for neighbor-replicated state — with victims rejoining minutes
// later, and compares runs with the online anti-entropy machinery (owner
// audits, CAN gap audits, RN-tree token leases) off and on. With healing
// on, completion should stay >= 99%.
//
// --json=1 emits one BENCH row per cell (schema v3 carries the detector
// fields).

#include "bench/bench_util.h"

#include "net/fault_plane.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  // Well below paper scale by default: 18 full churn runs, and the
  // fixed-detector congestion cells burn real time on eviction storms
  // (every false positive is a requeue + re-match cycle). --nodes/--jobs
  // rescale.
  if (!config.has("nodes")) scale.nodes = 100;
  if (!config.has("jobs")) scale.jobs = 400;

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kRnTree,
                                          MatchmakerKind::kCanBasic,
                                          MatchmakerKind::kCanPush};

  std::printf("churn_survival: %zu nodes, %zu jobs\n", scale.nodes,
              scale.jobs);

  // Derived seeds, one workload/system pair per sweep. Cells *within* a
  // sweep intentionally share them: every detector/healing variant replays
  // the same workload under the same system stream, so differences are the
  // treatment, not sampling noise. The four streams must be distinct.
  const std::uint64_t seed_wl_a =
      derive_seed(scale.seed, SeedStream::kWorkload, /*salt=*/1);
  const std::uint64_t seed_sys_a =
      derive_seed(scale.seed, SeedStream::kSystem, /*salt=*/1);
  const std::uint64_t seed_wl_b =
      derive_seed(scale.seed, SeedStream::kWorkload, /*salt=*/2);
  const std::uint64_t seed_sys_b =
      derive_seed(scale.seed, SeedStream::kSystem, /*salt=*/2);
  assert_distinct_seeds({seed_wl_a, seed_sys_a, seed_wl_b, seed_sys_b});

  // --- sweep A: detector quality under lying networks ----------------------
  enum class Fault { kGray, kCongestion };
  struct Cell {
    MatchmakerKind kind;
    Fault fault;
    bool phi;
  };
  std::vector<Cell> cells;
  for (MatchmakerKind kind : kinds) {
    for (Fault fault : {Fault::kGray, Fault::kCongestion}) {
      for (bool phi : {false, true}) cells.push_back(Cell{kind, fault, phi});
    }
  }

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        const auto spec =
            make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4, seed_wl_a);
        grid::GridConfig gc = make_grid_config(cell.kind, seed_sys_a);
        gc.light_maintenance = false;
        gc.client.resubmit_base_sec = 300.0;
        gc.client.resubmit_runtime_factor = 8.0;
        gc.client.max_generations = 8;
        gc.node.heartbeat_period = sim::SimTime::seconds(5.0);
        gc.node.heartbeat_miss_threshold = 3;
        gc.node.phi.enabled = cell.phi;
        gc.obs.streaming_metrics = true;
        gc.track_liveness = true;  // the oracle classifies every eviction
        const auto pool_before = net::MessagePool::stats();
        grid::GridSystem system(gc, workload::generate(spec));
        system.build();
        // Background churn provides real deaths so detection latency is
        // measured on both detectors, not only FP behavior.
        sim::ChurnModel churn;
        churn.mean_lifetime_sec = 1200.0;
        churn.mean_downtime_sec = 120.0;
        churn.churn_fraction = 0.4;
        system.enable_churn(churn);
        net::FaultPlane& fp = system.network().fault_plane();
        sim::Simulator& simr = system.simulator();
        switch (cell.fault) {
          case Fault::kGray:
            // A sixth of the nodes go gray for a long window: alive, still
            // heartbeating, but 8x slower and dropping a quarter of traffic.
            simr.schedule_in(sim::SimTime::seconds(60.0), [&fp, &system] {
              for (net::NodeAddr n = 0;
                   n < system.node_count() / 6 && n < system.node_count();
                   ++n) {
                fp.set_gray(n, net::GrayFault{8.0, 0.25});
              }
            });
            simr.schedule_in(sim::SimTime::seconds(460.0), [&fp, &system] {
              for (net::NodeAddr n = 0;
                   n < system.node_count() / 6 && n < system.node_count();
                   ++n) {
                fp.clear_gray(n);
              }
            });
            break;
          case Fault::kCongestion:
            simr.schedule_in(sim::SimTime::seconds(60.0), [&fp] {
              fp.set_congestion(0.25, 2.0);
            });
            simr.schedule_in(sim::SimTime::seconds(460.0),
                             [&fp] { fp.clear_congestion(); });
            break;
        }
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("Detector quality under gray nodes / congestion (with churn)");
  std::printf("%-10s %-11s %-9s %10s %9s %9s %9s %9s\n", "matchmaker",
              "fault", "detector", "completed", "fp-evict", "fn-evict",
              "lat-p50", "lat-p99");
  BenchJson json = BenchJson::open(config, "churn_survival");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    const char* fault = cell.fault == Fault::kGray ? "gray" : "congestion";
    const char* det = cell.phi ? "phi" : "fixed";
    std::printf("%-10s %-11s %-9s %9.1f%% %9llu %9llu %8.1fs %8.1fs\n",
                grid::matchmaker_name(cell.kind), fault, det,
                100.0 * r.completed_fraction,
                static_cast<unsigned long long>(r.fp_evictions),
                static_cast<unsigned long long>(r.fn_evictions),
                r.recovery_latency_p50, r.recovery_latency_p99);
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s/%s",
                  grid::matchmaker_name(cell.kind), fault, det);
    json.row(label, r);
  }

  // Verdict: pair up fixed/phi cells (phi directly follows fixed).
  std::size_t pairs = 0, fewer_fp = 0;
  double fixed_p50 = 0.0, phi_p50 = 0.0;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    ++pairs;
    if (results[i + 1].fp_evictions < results[i].fp_evictions) ++fewer_fp;
    fixed_p50 += results[i].recovery_latency_p50;
    phi_p50 += results[i + 1].recovery_latency_p50;
  }
  std::printf("\nverdict: phi strictly fewer FP evictions in %zu/%zu cells; "
              "detection latency p50 fixed=%.1fs phi=%.1fs\n",
              fewer_fp, pairs,
              pairs ? fixed_p50 / static_cast<double>(pairs) : 0.0,
              pairs ? phi_p50 / static_cast<double>(pairs) : 0.0);

  // --- sweep B: 30% correlated crash burst, anti-entropy off vs on ---------
  struct BurstCell {
    MatchmakerKind kind;
    bool healing;
  };
  std::vector<BurstCell> bcells;
  for (MatchmakerKind kind : kinds) {
    for (bool healing : {false, true}) bcells.push_back(BurstCell{kind, healing});
  }

  const auto bresults = sim::run_sweep<CellResult>(
      bcells.size(), scale.threads, [&](std::size_t i) {
        const BurstCell& cell = bcells[i];
        const auto spec =
            make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4, seed_wl_b);
        grid::GridConfig gc = make_grid_config(cell.kind, seed_sys_b);
        gc.light_maintenance = false;
        gc.client.resubmit_base_sec = 300.0;
        gc.client.resubmit_runtime_factor = 8.0;
        gc.client.max_generations = 8;
        gc.node.heartbeat_period = sim::SimTime::seconds(5.0);
        gc.node.heartbeat_miss_threshold = 3;
        gc.node.phi.enabled = true;  // both legs detect; healing differs
        if (cell.healing) {
          gc.node.audit_period = sim::SimTime::seconds(15.0);
          gc.node.can.audit_period = sim::SimTime::seconds(15.0);
          gc.node.rntree.token_lease = sim::SimTime::seconds(10.0);
        }
        gc.obs.streaming_metrics = true;
        gc.track_liveness = true;
        const auto pool_before = net::MessagePool::stats();
        grid::GridSystem system(gc, workload::generate(spec));
        system.build();
        // Injector with no background churn: it only executes the burst and
        // the staggered rejoins.
        system.enable_churn(sim::ChurnModel{});
        sim::Simulator& simr = system.simulator();
        simr.schedule_in(sim::SimTime::seconds(120.0), [&system] {
          const auto victims = system.correlated_victims(0.30, 0.25);
          system.churn()->crash_burst_members(victims, 300.0);
        });
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("30% correlated crash burst (contiguous arc/slab, rejoin ~300s)");
  std::printf("%-10s %-13s %10s %10s %10s %10s\n", "matchmaker",
              "anti-entropy", "completed", "resubmits", "requeues", "repairs");
  for (std::size_t i = 0; i < bcells.size(); ++i) {
    const BurstCell& cell = bcells[i];
    const CellResult& r = bresults[i];
    std::printf("%-10s %-13s %9.1f%% %10llu %10llu %10llu\n",
                grid::matchmaker_name(cell.kind),
                cell.healing ? "on" : "off", 100.0 * r.completed_fraction,
                static_cast<unsigned long long>(r.resubmissions),
                static_cast<unsigned long long>(r.requeues),
                static_cast<unsigned long long>(r.anti_entropy_repairs));
    char label[64];
    std::snprintf(label, sizeof label, "%s/burst30/heal-%s",
                  grid::matchmaker_name(cell.kind),
                  cell.healing ? "on" : "off");
    json.row(label, bresults[i]);
  }

  std::size_t healed_ok = 0, healed = 0;
  for (std::size_t i = 0; i < bcells.size(); ++i) {
    if (!bcells[i].healing) continue;
    ++healed;
    if (bresults[i].completed_fraction >= 0.99) ++healed_ok;
  }
  std::printf("\nverdict: completion >= 99%% with anti-entropy on in %zu/%zu "
              "matchmakers\n",
              healed_ok, healed);
  if (json.active()) {
    std::printf("bench rows written to %s\n", json.path().c_str());
  }
  return 0;
}
