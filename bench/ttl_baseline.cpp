// Regenerates the §4 related-work critique: "TTL-based mechanisms are
// relatively simple but effective ways to find a resource ... However, such
// mechanisms may fail to find a resource capable of running a given job,
// even though such a resource exists somewhere in the network."
//
// Compares the TTL-bounded random walk against the RN-Tree on workloads
// where the eligible node population shrinks: jobs constrained to require
// the rarest machines. The walk's match failure rate rises as eligibility
// falls, while the RN-Tree's aggregate-pruned search stays exact.
//
//   ttl_baseline [--nodes=500] [--jobs=1500] [--ttl=20] ...

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace pgrid;
using namespace pgrid::bench;
using grid::MatchmakerKind;

/// Constrain every job so that only ~`eligible_fraction` of nodes qualify,
/// using joint dominance over all three resources: rank nodes by total
/// capability quantile, take the node at rank eligible_fraction*N from the
/// top as the constraint template. Eligible nodes are those dominating it
/// in every dimension (the template itself always qualifies).
workload::Workload rare_resource_workload(const Scale& scale,
                                          double eligible_fraction,
                                          std::uint64_t seed,
                                          std::size_t* eligible_out) {
  workload::WorkloadSpec spec;
  spec.node_count = scale.nodes;
  spec.job_count = scale.jobs;
  spec.mean_runtime_sec = scale.mean_runtime_sec;
  spec.mean_interarrival_sec = scale.mean_interarrival_sec;
  spec.constraint_probability = 0.0;
  spec.seed = seed;
  workload::Workload w = workload::generate(spec);

  const auto score = [](const grid::ResourceVector& caps) {
    double s = 0.0;
    for (std::size_t r = 0; r < grid::kNumResources; ++r) {
      s += grid::ResourceLadder::to_unit(r, caps.v[r]);
    }
    return s;
  };
  std::vector<std::size_t> order(w.node_caps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score(w.node_caps[a]) > score(w.node_caps[b]);
  });
  const auto rank = std::min(
      order.size() - 1,
      static_cast<std::size_t>(eligible_fraction *
                               static_cast<double>(order.size())));
  const grid::ResourceVector& tmpl = w.node_caps[order[rank]];

  grid::Constraints constraints;
  for (std::size_t r = 0; r < grid::kNumResources; ++r) {
    constraints.active[r] = true;
    constraints.min[r] = tmpl.v[r];
  }
  std::size_t eligible = 0;
  for (const auto& caps : w.node_caps) {
    eligible += constraints.satisfied_by(caps) ? 1 : 0;
  }
  if (eligible_out) *eligible_out = eligible;

  for (auto& job : w.jobs) job.constraints = constraints;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  if (!config.has("nodes")) scale.nodes = 400;
  if (!config.has("jobs")) scale.jobs = 800;
  if (!config.has("runtime")) scale.mean_runtime_sec = 50.0;
  if (!config.has("interarrival")) scale.mean_interarrival_sec = 0.5;
  const auto ttl = static_cast<std::uint32_t>(config.get_int("ttl", 20));

  const std::vector<double> fractions{0.5, 0.2, 0.1, 0.05, 0.02};
  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kTtlWalk,
                                          MatchmakerKind::kRnTree};

  struct Cell {
    double fraction;
    MatchmakerKind kind;
  };
  std::vector<Cell> cells;
  for (double f : fractions) {
    for (MatchmakerKind kind : kinds) cells.push_back(Cell{f, kind});
  }

  std::printf("ttl_baseline: %zu nodes, %zu jobs, walk TTL=%u "
              "(log2 N = %.1f)\n",
              scale.nodes, scale.jobs, ttl,
              std::log2(static_cast<double>(scale.nodes)));

  struct Row {
    CellResult result;
    std::size_t unmatched_generations = 0;
    std::size_t abandoned = 0;
    std::size_t eligible = 0;
    std::uint64_t walks = 0;
    std::uint64_t walk_failures = 0;
  };
  const auto rows = sim::run_sweep<Row>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        grid::GridConfig gc = make_grid_config(cell.kind, scale.seed + 9);
        gc.node.ttl_walk_ttl = ttl;
        // Fewer owner retries so single-search failures are visible; the
        // client may still resubmit a few times (realistic deployment).
        gc.node.match_max_attempts = 3;
        gc.client.max_generations = 6;
        Row row;
        grid::GridSystem system(
            gc, rare_resource_workload(scale, cell.fraction, scale.seed + 31,
                                       &row.eligible));
        system.run();
        row.result = summarize(system);
        row.unmatched_generations = system.collector().unmatched_count();
        for (std::size_t c = 0; c < system.client_count(); ++c) {
          row.abandoned += system.client(c).abandoned();
        }
        const auto stats = system.aggregate_node_stats();
        row.walks = stats.walks_started;
        row.walk_failures = stats.walks_failed;
        return row;
      });

  print_header("Match failures vs resource rarity (the paper's §4 critique)");
  std::printf("%-10s %-10s %10s %12s %10s %10s %10s %10s\n", "eligible",
              "scheme", "completed", "walk-fail%", "give-ups", "abandoned",
              "wait-avg", "hops/job");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const Row& row = rows[i];
    std::printf("%4zu/%-5zu %-10s %9.1f%% %11.1f%% %10zu %10zu %10.1f %10.2f\n",
                row.eligible, scale.nodes,
                grid::matchmaker_name(cell.kind),
                100.0 * row.result.completed_fraction,
                row.walks ? 100.0 * static_cast<double>(row.walk_failures) /
                                static_cast<double>(row.walks)
                          : 0.0,
                row.unmatched_generations, row.abandoned,
                row.result.wait_avg,
                row.result.match_hops_avg + row.result.injection_hops_avg);
    (void)cell;
  }
  std::printf("\nexpected: as eligibility shrinks, the TTL walk gives up on\n"
              "more generations and eventually abandons jobs outright, while\n"
              "the RN-Tree's pruned search keeps finding the rare nodes at\n"
              "O(log N) cost.\n");
  return 0;
}
