// Regenerates the §3.3 substrate validation: "an event-driven simulator to
// investigate the basic behavior of a P2P network, namely creating and
// maintaining the network and performing lookups into the distributed hash
// table based on peer IDs."
//
// google-benchmark microbenchmarks:
//   - Chord lookup: hops ~ 0.5 log2(N), resolution latency.
//   - CAN routing: hops ~ (d/4) N^(1/d) for d dimensions.
//   - Ring / space construction cost (instant wiring, per node).
// Counters report simulated hops and simulated latency; wall time measures
// simulator throughput.
//
// Accepts --threads=N for CLI uniformity with the experiment benches;
// google-benchmark times each case in isolation, so the flag is stripped
// before Initialize (which would otherwise reject it) and the cases run
// serially.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include <cmath>

#include "can/space.h"
#include "chord/ring.h"
#include "common/rng.h"
#include "net/network.h"
#include "pastry/mesh.h"
#include "sim/simulator.h"

namespace {

using namespace pgrid;

void BM_ChordLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  chord::ChordConfig config;
  config.run_maintenance = false;  // static membership: measure pure lookup
  chord::ChordRing ring(network, config, Rng{2});
  for (std::size_t i = 0; i < n; ++i) {
    ring.add_host(Guid::of(std::uint64_t{0x1234} + i * 2654435761ULL));
  }
  ring.wire_instantly();

  Rng rng{3};
  double total_hops = 0;
  double total_latency = 0;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    const Guid key{rng.next()};
    const auto start = simulator.now();
    bool done = false;
    sim::SimTime done_at = start;
    ring.host(rng.index(n)).node().lookup(key, [&](chord::Peer p, int hops) {
      benchmark::DoNotOptimize(p);
      total_hops += hops;
      done_at = simulator.now();
      done = true;
    });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(60));
    benchmark::DoNotOptimize(done);
    total_latency += (done_at - start).sec();
    ++lookups;
  }
  state.counters["hops"] = total_hops / static_cast<double>(lookups);
  state.counters["log2N"] = std::log2(static_cast<double>(n));
  state.counters["sim_latency_s"] =
      total_latency / static_cast<double>(lookups);
}
BENCHMARK(BM_ChordLookup)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_PastryLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  pastry::PastryConfig config;
  config.run_maintenance = false;
  pastry::PastryMesh mesh(network, config, Rng{2});
  for (std::size_t i = 0; i < n; ++i) {
    mesh.add_host(Guid::of(std::uint64_t{0xBEEF} + i * 2654435761ULL));
  }
  mesh.wire_instantly();

  Rng rng{3};
  double total_hops = 0;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    bool done = false;
    mesh.host(rng.index(n)).node().lookup(
        Guid{rng.next()}, [&](pastry::Peer p, int hops) {
          benchmark::DoNotOptimize(p);
          total_hops += hops;
          done = true;
        });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(60));
    benchmark::DoNotOptimize(done);
    ++lookups;
  }
  state.counters["hops"] = total_hops / static_cast<double>(lookups);
  state.counters["log16N"] =
      std::log2(static_cast<double>(n)) / 4.0;
}
BENCHMARK(BM_PastryLookup)->Arg(64)->Arg(256)->Arg(1024);

void BM_CanRoute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  can::CanConfig config;
  config.dims = dims;
  config.run_maintenance = false;
  can::CanSpace space(network, config, Rng{2});
  Rng point_rng{7};
  auto random_point = [&] {
    can::Point p(dims);
    for (std::size_t d = 0; d < dims; ++d) p[d] = point_rng.uniform();
    return p;
  };
  for (std::size_t i = 0; i < n; ++i) {
    space.add_host(Guid::of(std::uint64_t{0x77} + i * 31), random_point());
  }
  space.wire_instantly();

  Rng rng{3};
  double total_hops = 0;
  std::uint64_t routes = 0;
  for (auto _ : state) {
    bool done = false;
    space.host(rng.index(n)).node().route(
        random_point(), [&](can::Peer p, int hops) {
          benchmark::DoNotOptimize(p);
          total_hops += hops;
          done = true;
        });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(120));
    benchmark::DoNotOptimize(done);
    ++routes;
  }
  state.counters["hops"] = total_hops / static_cast<double>(routes);
  state.counters["dN^(1/d)/4"] =
      static_cast<double>(dims) / 4.0 *
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(dims));
}
BENCHMARK(BM_CanRoute)
    ->Args({64, 2})
    ->Args({256, 2})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({1024, 4})
    ->Args({256, 6});

void BM_ChordRingConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network network(simulator, Rng{1});
    chord::ChordConfig config;
    config.run_maintenance = false;
    chord::ChordRing ring(network, config, Rng{2});
    for (std::size_t i = 0; i < n; ++i) {
      ring.add_host(Guid::of(std::uint64_t{9} + i * 31));
    }
    ring.wire_instantly();
    benchmark::DoNotOptimize(ring.oracle_successor(Guid{42}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChordRingConstruction)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(10240)
    ->Unit(benchmark::kMillisecond);

void BM_CanSpaceConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Network network(simulator, Rng{1});
    can::CanConfig config;
    config.run_maintenance = false;
    can::CanSpace space(network, config, Rng{2});
    Rng rng{3};
    for (std::size_t i = 0; i < n; ++i) {
      can::Point p(config.dims);
      for (std::size_t d = 0; d < config.dims; ++d) p[d] = rng.uniform();
      space.add_host(Guid::of(std::uint64_t{11} + i * 17), p);
    }
    space.wire_instantly();
    // An O(log N)-ish oracle probe keeps the wiring honest without the
    // O(N²) zones_tile_space() sweep dominating the timing at large N
    // (the tiling invariant itself is covered by test_wiring_equivalence).
    can::Point probe(config.dims);
    for (std::size_t d = 0; d < config.dims; ++d) probe[d] = 0.5;
    benchmark::DoNotOptimize(space.oracle_owner(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CanSpaceConstruction)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(10240)
    ->Unit(benchmark::kMillisecond);

/// Raw event-queue throughput of the simulation substrate itself.
void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    for (int i = 0; i < 10000; ++i) {
      simulator.schedule_at(sim::SimTime::micros(i % 997), [&] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads", 9) == 0) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
