// Regenerates the §1/§2 scalability claim: matchmaking cost grows
// logarithmically (Chord) / sub-linearly (CAN) with system size while wait
// times stay flat when load is scaled proportionally.
//
//   scalability [--max-nodes=2048] ...
//
// Nodes sweep {128..max} with jobs = 5 x nodes (constant per-node load);
// reports wait time, overlay hops, and messages per job for RN and CAN.

#include <chrono>
#include <cmath>

#include "bench/bench_util.h"
#include "can/space.h"
#include "chord/ring.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale base = Scale::from_config(config);
  const auto max_nodes =
      static_cast<std::size_t>(config.get_int("max-nodes", 2048));

  std::vector<std::size_t> sizes;
  for (std::size_t n = 128; n <= max_nodes; n *= 2) sizes.push_back(n);

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kRnTree,
                                          MatchmakerKind::kCanBasic,
                                          MatchmakerKind::kCentralized};

  struct Cell {
    std::size_t nodes;
    MatchmakerKind kind;
  };
  std::vector<Cell> cells;
  for (std::size_t n : sizes) {
    for (MatchmakerKind kind : kinds) cells.push_back(Cell{n, kind});
  }

  std::printf("scalability: jobs = 5 x nodes, arrival rate scaled to keep "
              "per-node load constant\n");

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), base.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        Scale scale = base;
        scale.nodes = cell.nodes;
        scale.jobs = cell.nodes * 5;
        // Offered load ~ runtime / (interarrival * nodes); keep it constant
        // (~0.8) across sizes.
        scale.mean_interarrival_sec =
            scale.mean_runtime_sec / (0.8 * static_cast<double>(cell.nodes));
        const auto spec = make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                                    base.seed + cell.nodes);
        const auto pool_before = net::MessagePool::stats();
        grid::GridConfig gc = make_grid_config(cell.kind, base.seed + 13);
        // Streaming aggregates: the scaling sweep's job count grows with the
        // node count, so per-job records would dominate memory at the top end.
        gc.obs.streaming_metrics = true;
        grid::GridSystem system(gc, workload::generate(spec));
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("Scaling of wait time and overlay cost");
  std::printf("%-8s %-13s %10s %10s %12s %12s %12s\n", "nodes", "matchmaker",
              "wait-avg", "wait-sd", "hops/job", "msgs/job", "completed");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    std::printf("%-8zu %-13s %10.1f %10.1f %12.2f %12.0f %11.1f%%\n",
                cell.nodes, grid::matchmaker_name(cell.kind), r.wait_avg,
                r.wait_stdev, r.injection_hops_avg + r.match_hops_avg,
                static_cast<double>(r.messages) /
                    static_cast<double>(cell.nodes * 5),
                100.0 * r.completed_fraction);
  }

  print_header("Traffic & throughput");
  BenchJson json = BenchJson::open(config, "scalability");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const std::string label = std::to_string(cell.nodes) + "/" +
                              grid::matchmaker_name(cell.kind);
    print_summary_line(label, results[i]);
    json.row(label, results[i]);
  }
  // --- overlay construction throughput --------------------------------------
  // Instant-wiring cost alone, past the full-simulation sweep's sizes: the
  // O(N log N) bootstrap is what makes 10k+ node experiments feasible, so
  // track it (wall clock, one shot per cell) alongside the steady-state
  // numbers. Recorded rows carry build_type so debug-binary runs are
  // rejectable downstream.
  print_header("Overlay construction (instant wiring, wall clock)");
  std::printf("%-8s %-8s %12s %14s\n", "nodes", "overlay", "build-sec",
              "nodes/sec");
  const std::vector<std::size_t> construct_sizes{1024, 4096, 10240};
  for (std::size_t n : construct_sizes) {
    for (const bool is_chord : {true, false}) {
      sim::Simulator simulator;
      net::Network network(simulator, Rng{1});
      const auto start = std::chrono::steady_clock::now();
      if (is_chord) {
        chord::ChordConfig overlay_config;
        overlay_config.run_maintenance = false;
        chord::ChordRing ring(network, overlay_config, Rng{2});
        for (std::size_t i = 0; i < n; ++i) {
          ring.add_host(Guid::of(std::uint64_t{9} + i * 31));
        }
        ring.wire_instantly();
      } else {
        can::CanConfig overlay_config;
        overlay_config.run_maintenance = false;
        can::CanSpace space(network, overlay_config, Rng{2});
        Rng point_rng{3};
        for (std::size_t i = 0; i < n; ++i) {
          can::Point p(overlay_config.dims);
          for (std::size_t d = 0; d < overlay_config.dims; ++d) {
            p[d] = point_rng.uniform();
          }
          space.add_host(Guid::of(std::uint64_t{11} + i * 17), p);
        }
        space.wire_instantly();
      }
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const char* overlay = is_chord ? "chord" : "can";
      std::printf("%-8zu %-8s %12.4f %14.0f\n", n, overlay, sec,
                  static_cast<double>(n) / sec);
      CellResult r;
      r.build_wall_sec = sec;
      json.row("construct/" + std::string(overlay) + "/" + std::to_string(n),
               r);
    }
  }
  if (json.active()) std::printf("\nwrote %s\n", json.path().c_str());

  std::printf("\nExpected shape: hops/job grow ~log2(nodes) for RN and\n"
              "~(d/4)N^(1/d) for CAN; wait stays roughly flat; construction\n"
              "build-sec grows ~N log N (near-linear nodes/sec).\n");
  return 0;
}
