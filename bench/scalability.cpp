// Regenerates the §1/§2 scalability claim: matchmaking cost grows
// logarithmically (Chord) / sub-linearly (CAN) with system size while wait
// times stay flat when load is scaled proportionally.
//
//   scalability [--max-nodes=2048] [--max-batched=10240] [--mega-can=0] ...
//
// Nodes sweep {128..max} with jobs = 5 x nodes (constant per-node load);
// reports wait time, overlay hops, and messages per job for RN and CAN.
//
// A second series re-runs RN and CAN at {1024, 2048, 4096, 10240} (capped by
// --max-batched) with maintenance batching on (DESIGN.md §16): the large-N
// rows the unbatched protocols cannot reach in reasonable wall time, plus an
// A/B traffic ratio at the sizes both series cover. --mega-can=1 additionally
// runs a gated 100k-node CAN bootstrap + short steady-state smoke.
//
// Sharded engine (DESIGN.md §17): --shards=N re-runs the batched large-N
// series on N worker shards and reports wall_ms per row. --shards-ab=N runs
// the determinism + speedup gate on one cell (--ab-nodes=1024): shards=1 and
// shards=N must produce bit-identical aggregates, the sequential engine must
// agree on completion, and N shards must be >= 2x faster than one when the
// host has at least N cores (the speedup check is skipped, not failed, on
// smaller machines).

#include <chrono>
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "can/space.h"
#include "chord/ring.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale base = Scale::from_config(config);
  const auto max_nodes =
      static_cast<std::size_t>(config.get_int("max-nodes", 2048));
  const auto max_batched =
      static_cast<std::size_t>(config.get_int("max-batched", 10240));

  std::vector<std::size_t> sizes;
  for (std::size_t n = 128; n <= max_nodes; n *= 2) sizes.push_back(n);

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kRnTree,
                                          MatchmakerKind::kCanBasic,
                                          MatchmakerKind::kCentralized};

  struct Cell {
    std::size_t nodes;
    MatchmakerKind kind;
    bool batching;
  };
  std::vector<Cell> cells;
  for (std::size_t n : sizes) {
    for (MatchmakerKind kind : kinds) cells.push_back(Cell{n, kind, false});
  }
  // The batched large-N series (overlay matchmakers only: batching targets
  // maintenance traffic, which the centralized baseline does not generate).
  for (std::size_t n : {std::size_t{1024}, std::size_t{2048},
                        std::size_t{4096}, std::size_t{10240}}) {
    if (n > max_batched) continue;
    cells.push_back(Cell{n, MatchmakerKind::kRnTree, true});
    cells.push_back(Cell{n, MatchmakerKind::kCanBasic, true});
  }

  // Per-cell seeds: workload varies per size (same workload across the
  // matchmakers and across batching on/off at one size, so those rows stay
  // comparable); the system stream is disjoint from every workload stream.
  std::vector<std::uint64_t> seed_audit;
  for (std::size_t n : sizes) {
    seed_audit.push_back(derive_seed(base.seed, SeedStream::kWorkload, n));
  }
  seed_audit.push_back(derive_seed(base.seed, SeedStream::kSystem));
  assert_distinct_seeds(seed_audit);

  std::printf("scalability: jobs = 5 x nodes, arrival rate scaled to keep "
              "per-node load constant\n");

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), base.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        Scale scale = base;
        scale.nodes = cell.nodes;
        scale.jobs = cell.nodes * 5;
        // Offered load ~ runtime / (interarrival * nodes); keep it constant
        // (~0.8) across sizes.
        scale.mean_interarrival_sec =
            scale.mean_runtime_sec / (0.8 * static_cast<double>(cell.nodes));
        const auto spec =
            make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                      derive_seed(base.seed, SeedStream::kWorkload,
                                  cell.nodes));
        const auto pool_before = net::MessagePool::stats();
        grid::GridConfig gc = make_grid_config(
            cell.kind, derive_seed(base.seed, SeedStream::kSystem));
        gc.batching.enabled = cell.batching;
        // Streaming aggregates: the scaling sweep's job count grows with the
        // node count, so per-job records would dominate memory at the top end.
        gc.obs.streaming_metrics = true;
        grid::GridSystem system(gc, workload::generate(spec));
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("Scaling of wait time and overlay cost");
  std::printf("%-8s %-13s %-6s %10s %10s %12s %12s %12s\n", "nodes",
              "matchmaker", "batch", "wait-avg", "wait-sd", "hops/job",
              "msgs/job", "completed");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    std::printf("%-8zu %-13s %-6s %10.1f %10.1f %12.2f %12.0f %11.1f%%\n",
                cell.nodes, grid::matchmaker_name(cell.kind),
                cell.batching ? "on" : "off", r.wait_avg, r.wait_stdev,
                r.injection_hops_avg + r.match_hops_avg,
                static_cast<double>(r.messages) /
                    static_cast<double>(cell.nodes * 5),
                100.0 * r.completed_fraction);
  }

  print_header("Traffic & throughput");
  BenchJson json = BenchJson::open(config, "scalability");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const std::string label = std::to_string(cell.nodes) + "/" +
                              grid::matchmaker_name(cell.kind) +
                              (cell.batching ? "/batched" : "");
    print_summary_line(label, results[i]);
    json.row(label, results[i]);
  }

  // A/B traffic ratio at the sizes both series cover: the headline batching
  // win (wire messages and bytes saved by coalescing maintenance rounds).
  print_header("Batching A/B (same size+matchmaker, off vs on)");
  std::printf("%-8s %-13s %14s %14s %10s %10s\n", "nodes", "matchmaker",
              "msgs-off", "msgs-on", "msg-ratio", "byte-ratio");
  bool gate_failed = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].batching) continue;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[j].batching || cells[j].nodes != cells[i].nodes ||
          cells[j].kind != cells[i].kind) {
        continue;
      }
      const double msg_ratio = results[i].messages == 0
                                   ? 0.0
                                   : static_cast<double>(results[j].messages) /
                                         static_cast<double>(results[i].messages);
      const double byte_ratio =
          results[i].bytes_sent == 0
              ? 0.0
              : static_cast<double>(results[j].bytes_sent) /
                    static_cast<double>(results[i].bytes_sent);
      std::printf("%-8zu %-13s %14" PRIu64 " %14" PRIu64 " %9.2fx %9.2fx\n",
                  cells[i].nodes, grid::matchmaker_name(cells[i].kind),
                  results[j].messages, results[i].messages, msg_ratio,
                  byte_ratio);
      // The headline gate: CAN maintenance dominates wire traffic at scale,
      // so coalescing must buy >= 4x at 2048 nodes and beyond whenever both
      // series cover the size. RN-tree is reported but not gated — its
      // traffic is matchmaking tokens, which batching leaves alone.
      if (cells[i].kind == MatchmakerKind::kCanBasic &&
          cells[i].nodes >= 2048 && msg_ratio < 4.0) {
        std::fprintf(stderr,
                     "FAIL: CAN batching ratio %.2fx < 4x at %zu nodes\n",
                     msg_ratio, cells[i].nodes);
        gate_failed = true;
      }
    }
  }
  // --- sharded engine series (--shards=N, DESIGN.md §17) --------------------
  // The batched large-N cells again, on N worker shards. Cells run one at a
  // time — each already spawns its own shard workers, so sweeping them in
  // parallel on top would oversubscribe the host.
  const auto shard_count =
      static_cast<std::size_t>(config.get_int("shards", 0));
  if (shard_count > 0) {
    print_header("Sharded engine (batched maintenance, " +
                 std::to_string(shard_count) + " shards)");
    std::printf("%-8s %-13s %12s %12s %10s %10s\n", "nodes", "matchmaker",
                "wall-ms", "events", "ev/s-k", "completed");
    for (std::size_t n : {std::size_t{1024}, std::size_t{2048},
                          std::size_t{4096}, std::size_t{10240}}) {
      if (n > max_batched) continue;
      for (MatchmakerKind kind :
           {MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic}) {
        Scale scale = base;
        scale.nodes = n;
        scale.jobs = n * 5;
        scale.mean_interarrival_sec =
            scale.mean_runtime_sec / (0.8 * static_cast<double>(n));
        const auto spec =
            make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                      derive_seed(base.seed, SeedStream::kWorkload, n));
        grid::GridConfig gc = make_grid_config(
            kind, derive_seed(base.seed, SeedStream::kSystem));
        gc.batching.enabled = true;
        gc.shards = shard_count;
        grid::GridSystem system(gc, workload::generate(spec));
        system.run();
        const CellResult r = summarize(system);
        std::printf("%-8zu %-13s %12.0f %12" PRIu64 " %10.0f %9.1f%%\n", n,
                    grid::matchmaker_name(kind), r.wall_ms, r.sim_events,
                    r.events_per_wall_sec / 1000.0,
                    100.0 * r.completed_fraction);
        json.row(std::to_string(n) + "/" + grid::matchmaker_name(kind) +
                     "/sh" + std::to_string(shard_count),
                 r);
      }
    }
  }

  // --- sharded-vs-sequential A/B gate (--shards-ab=N) -----------------------
  const auto ab_shards =
      static_cast<std::size_t>(config.get_int("shards-ab", 0));
  if (ab_shards > 0) {
    const auto ab_nodes =
        static_cast<std::size_t>(config.get_int("ab-nodes", 1024));
    print_header("Sharded A/B gate (" + std::to_string(ab_nodes) +
                 " nodes, shards 1 vs " + std::to_string(ab_shards) + ")");
    Scale scale = base;
    scale.nodes = ab_nodes;
    scale.jobs = ab_nodes * 5;
    scale.mean_interarrival_sec =
        scale.mean_runtime_sec / (0.8 * static_cast<double>(ab_nodes));
    const auto spec =
        make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                  derive_seed(base.seed, SeedStream::kWorkload, ab_nodes));
    const workload::Workload w = workload::generate(spec);
    const auto run_cell = [&](std::size_t shards) {
      grid::GridConfig gc = make_grid_config(
          MatchmakerKind::kCanBasic, derive_seed(base.seed,
                                                 SeedStream::kSystem));
      gc.batching.enabled = true;
      gc.shards = shards;
      grid::GridSystem system(gc, w);
      system.run();
      return summarize(system);
    };
    const CellResult seq = run_cell(0);
    const CellResult sh1 = run_cell(1);
    const CellResult shn = run_cell(ab_shards);
    const std::string shn_name = "shards=" + std::to_string(ab_shards);
    const auto print_cell = [](const std::string& name, const CellResult& r) {
      std::printf("%-12s wall %8.0f ms, events %" PRIu64 ", msgs %" PRIu64
                  ", completed %.1f%%, makespan %.0fs, wait %.2fs\n",
                  name.c_str(), r.wall_ms, r.sim_events, r.messages,
                  100.0 * r.completed_fraction, r.makespan_sec, r.wait_avg);
    };
    print_cell("sequential", seq);
    print_cell("shards=1", sh1);
    print_cell(shn_name, shn);
    // Exact shard-count independence: every aggregate bit-identical between
    // shards=1 and shards=N (same keyed trajectory, merged the same way).
    const bool identical =
        sh1.sim_events == shn.sim_events && sh1.messages == shn.messages &&
        sh1.messages_delivered == shn.messages_delivered &&
        sh1.bytes_sent == shn.bytes_sent &&
        sh1.bytes_delivered == shn.bytes_delivered &&
        sh1.completed_fraction == shn.completed_fraction &&
        sh1.makespan_sec == shn.makespan_sec &&
        sh1.wait_avg == shn.wait_avg && sh1.wait_stdev == shn.wait_stdev &&
        sh1.match_hops_avg == shn.match_hops_avg &&
        sh1.jobs_per_node_cv == shn.jobs_per_node_cv;
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: sharded aggregates differ between 1 and %zu "
                   "shards\n",
                   ab_shards);
      gate_failed = true;
    }
    // The sequential engine runs a different RNG regime (DESIGN.md §17), so
    // only semantic invariants are compared: everything completes.
    if (seq.completed_fraction != shn.completed_fraction) {
      std::fprintf(stderr,
                   "FAIL: sequential completed %.4f != sharded %.4f\n",
                   seq.completed_fraction, shn.completed_fraction);
      gate_failed = true;
    }
    const unsigned cores = std::thread::hardware_concurrency();
    const double speedup =
        shn.run_wall_sec > 0.0 ? sh1.run_wall_sec / shn.run_wall_sec : 0.0;
    if (cores >= ab_shards) {
      std::printf("speedup: %.2fx at %zu shards (%u cores)\n", speedup,
                  ab_shards, cores);
      if (speedup < 2.0) {
        std::fprintf(stderr, "FAIL: sharded speedup %.2fx < 2x\n", speedup);
        gate_failed = true;
      }
    } else {
      std::printf("speedup: %.2fx at %zu shards — gate skipped (%u cores "
                  "< %zu)\n",
                  speedup, ab_shards, cores, ab_shards);
    }
    if (identical) {
      std::printf("aggregates: bit-identical across shard counts (events, "
                  "traffic, waits, makespan)\n");
    }
  }

  // --- overlay construction throughput --------------------------------------
  // Instant-wiring cost alone, past the full-simulation sweep's sizes: the
  // O(N log N) bootstrap is what makes 10k+ node experiments feasible, so
  // track it (wall clock, one shot per cell) alongside the steady-state
  // numbers. Recorded rows carry build_type so debug-binary runs are
  // rejectable downstream.
  print_header("Overlay construction (instant wiring, wall clock)");
  std::printf("%-8s %-8s %12s %14s\n", "nodes", "overlay", "build-sec",
              "nodes/sec");
  const std::vector<std::size_t> construct_sizes{1024, 4096, 10240};
  for (std::size_t n : construct_sizes) {
    for (const bool is_chord : {true, false}) {
      sim::Simulator simulator;
      net::Network network(simulator, Rng{1});
      const auto start = std::chrono::steady_clock::now();
      if (is_chord) {
        chord::ChordConfig overlay_config;
        overlay_config.run_maintenance = false;
        chord::ChordRing ring(network, overlay_config, Rng{2});
        for (std::size_t i = 0; i < n; ++i) {
          ring.add_host(Guid::of(std::uint64_t{9} + i * 31));
        }
        ring.wire_instantly();
      } else {
        can::CanConfig overlay_config;
        overlay_config.run_maintenance = false;
        can::CanSpace space(network, overlay_config, Rng{2});
        Rng point_rng{3};
        for (std::size_t i = 0; i < n; ++i) {
          can::Point p(overlay_config.dims);
          for (std::size_t d = 0; d < overlay_config.dims; ++d) {
            p[d] = point_rng.uniform();
          }
          space.add_host(Guid::of(std::uint64_t{11} + i * 17), p);
        }
        space.wire_instantly();
      }
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const char* overlay = is_chord ? "chord" : "can";
      std::printf("%-8zu %-8s %12.4f %14.0f\n", n, overlay, sec,
                  static_cast<double>(n) / sec);
      CellResult r;
      r.build_wall_sec = sec;
      json.row("construct/" + std::string(overlay) + "/" + std::to_string(n),
               r);
    }
  }
  // --- gated 100k-node CAN smoke (--mega-can=1) -----------------------------
  // Bootstrap (instant wiring) plus a fixed batched steady-state window: the
  // "does the 10k barrier actually move" check. The window is bounded (not
  // run-to-completion) on purpose: at this scale a handful of straggler jobs
  // would otherwise drag the cell to the 20000 s completion horizon, and the
  // smoke's question — does a 100k-node CAN build, stay live, and move jobs
  // under batched maintenance — is answered well before that. Excluded from
  // the default run because it needs a release build and a few GB of RAM.
  if (config.get_bool("mega-can", false)) {
    print_header("Mega-CAN smoke: 100k nodes, batched maintenance");
    Scale scale = base;
    scale.nodes = 100000;
    scale.jobs = 2000;  // a short arrival burst, not a full sweep cell
    scale.mean_interarrival_sec =
        scale.mean_runtime_sec / (0.8 * static_cast<double>(scale.nodes));
    const auto spec = make_spec(
        scale, Mix::kMixed, Mix::kMixed, 0.4,
        derive_seed(base.seed, SeedStream::kWorkload, scale.nodes));
    grid::GridConfig gc = make_grid_config(
        MatchmakerKind::kCanBasic, derive_seed(base.seed, SeedStream::kSystem));
    gc.batching.enabled = true;
    gc.obs.streaming_metrics = true;
    const auto pool_before = net::MessagePool::stats();
    grid::GridSystem system(gc, workload::generate(spec));
    system.run_for(config.get_double("mega-window", 900.0));
    CellResult r = summarize(system);
    attach_pool_stats(r, pool_before);
    print_summary_line("100000/can/batched", r);
    std::printf("completed %.1f%% within the %.0f s window, build %.1fs, "
                "peak table memory %.1f MB\n",
                100.0 * r.completed_fraction,
                config.get_double("mega-window", 900.0), r.build_wall_sec,
                static_cast<double>(r.mem_total_bytes) / 1e6);
    json.row("100000/can/batched", r);
    if (r.completed_fraction <= 0.0) {
      std::fprintf(stderr, "FAIL: mega-CAN smoke completed no jobs\n");
      gate_failed = true;
    }
  }

  if (json.active()) std::printf("\nwrote %s\n", json.path().c_str());

  std::printf("\nExpected shape: hops/job grow ~log2(nodes) for RN and\n"
              "~(d/4)N^(1/d) for CAN; wait stays roughly flat; construction\n"
              "build-sec grows ~N log N (near-linear nodes/sec).\n");
  return gate_failed ? 1 : 0;
}
