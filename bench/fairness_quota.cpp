// Regenerates the §5 future-work claims that this repository implements:
//
//  * Fairness: "the responsibility of the system to ... execute all
//    submitted jobs in a fair manner, allocating resources to requests from
//    both users submitting large numbers of jobs at once ... and from users
//    with smaller resource requirements." Measured as per-client mean
//    slowdown ((wait + run) / run) for a bulk submitter vs a small user,
//    FIFO vs fair-share run queues.
//
//  * Quotas: "generalized quotas to limit overall job resource usage ...
//    to minimize the effects of malicious or runaway jobs." Measured as the
//    wait-time damage a fraction of runaway jobs inflicts on honest jobs,
//    with and without the runaway kill factor.
//
//   fairness_quota [--nodes=100] [--jobs=1200] [--threads=N] ...
//
// The two cells of each table are independent fixed-seed runs, so they go
// through parallel_for_cells like every other bench; --threads=N caps the
// workers (0 = hardware concurrency). Output order is fixed regardless.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using namespace pgrid;
using namespace pgrid::bench;
using grid::MatchmakerKind;
using grid::QueuePolicy;

/// Mean slowdown of the given client's completed jobs.
double client_slowdown(const grid::GridSystem& system, std::uint32_t client) {
  const auto& w = system.workload();
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    if (w.jobs[j].client != client) continue;
    const auto& o = system.collector().job(j);
    if (!o.completed()) continue;
    total += (o.completed_sec - o.submit_sec) / w.jobs[j].runtime_sec;
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  if (!config.has("nodes")) scale.nodes = 100;
  if (!config.has("jobs")) scale.jobs = 1200;

  // ---- fairness: a bulk sweep (client 0) vs a small user (client 1) ------
  auto fairness_workload = [&] {
    workload::WorkloadSpec spec;
    spec.node_count = scale.nodes;
    spec.job_count = scale.jobs;
    spec.mean_runtime_sec = 60.0;
    spec.constraint_probability = 0.0;
    spec.client_count = 2;
    spec.seed = scale.seed + 1;
    workload::Workload w = workload::generate(spec);
    // Client 0 dumps 90% of the jobs as one parameter sweep at t=0; client
    // 1 trickles the rest in over the same period.
    const std::size_t bulk = scale.jobs * 9 / 10;
    for (std::size_t j = 0; j < w.jobs.size(); ++j) {
      if (j < bulk) {
        w.jobs[j].client = 0;
        w.jobs[j].arrival_sec = 0.001 * static_cast<double>(j);
      } else {
        w.jobs[j].client = 1;
        w.jobs[j].arrival_sec =
            10.0 + 5.0 * static_cast<double>(j - bulk);
      }
    }
    return w;
  }();

  print_header("Fairness: per-client mean slowdown ((wait+run)/run)");
  std::printf("%-12s %14s %14s %14s\n", "queue", "bulk client",
              "small client", "small/bulk");
  const QueuePolicy policies[] = {QueuePolicy::kFifo, QueuePolicy::kFairShare};
  struct FairnessRow {
    double bulk = 0.0;
    double small = 0.0;
  };
  FairnessRow fairness[2];
  sim::parallel_for_cells(2, scale.threads, [&](std::size_t i) {
    grid::GridConfig gc =
        make_grid_config(MatchmakerKind::kCentralized, scale.seed);
    gc.node.queue_policy = policies[i];
    grid::GridSystem system(gc, fairness_workload);
    system.run();
    fairness[i] = {client_slowdown(system, 0), client_slowdown(system, 1)};
  });
  for (std::size_t i = 0; i < 2; ++i) {
    std::printf("%-12s %14.2f %14.2f %14.2f\n",
                policies[i] == QueuePolicy::kFifo ? "fifo" : "fair-share",
                fairness[i].bulk, fairness[i].small,
                fairness[i].small / fairness[i].bulk);
  }
  std::printf("expected: fair-share pulls the small client's slowdown far\n"
              "below the bulk client's, at little cost to the bulk sweep.\n");

  // ---- quotas: runaway jobs with and without the kill factor --------------
  auto quota_workload = [&](double runaway_fraction) {
    workload::WorkloadSpec spec;
    spec.node_count = scale.nodes;
    spec.job_count = scale.jobs;
    spec.mean_runtime_sec = 60.0;
    spec.mean_interarrival_sec = scale.mean_interarrival_sec;
    spec.constraint_probability = 0.0;
    spec.seed = scale.seed + 2;
    workload::Workload w = workload::generate(spec);
    // The runaways arrive first — the worst case: they grab nodes while
    // the honest work queues up behind them.
    const auto runaways =
        static_cast<std::size_t>(static_cast<double>(w.jobs.size()) *
                                 runaway_fraction);
    for (std::size_t j = 0; j < runaways; ++j) {
      w.jobs[j].declared_runtime_sec = w.jobs[j].runtime_sec;
      w.jobs[j].runtime_sec *= 25.0;  // runs 25x longer than declared
    }
    return w;
  };

  print_header("Quotas: 5% runaway jobs (25x declared runtime)");
  std::printf("%-22s %12s %12s %12s %12s\n", "policy", "honest-wait",
              "honest-done", "killed", "busy-cv");
  const double kill_factors[] = {0.0, 3.0};
  struct QuotaRow {
    double wait = 0.0;
    std::size_t done = 0;
    std::size_t honest = 0;
    std::uint64_t killed = 0;
    double busy_cv = 0.0;
  };
  QuotaRow quota[2];
  sim::parallel_for_cells(2, scale.threads, [&](std::size_t i) {
    grid::GridConfig gc =
        make_grid_config(MatchmakerKind::kCentralized, scale.seed);
    gc.node.runaway_kill_factor = kill_factors[i];
    const workload::Workload w = quota_workload(0.05);
    grid::GridSystem system(gc, w);
    system.run();
    // Honest jobs only.
    QuotaRow& row = quota[i];
    for (std::size_t j = 0; j < w.jobs.size(); ++j) {
      if (w.jobs[j].declared_runtime_sec > 0.0) continue;  // runaway
      ++row.honest;
      const auto& o = system.collector().job(j);
      if (o.completed()) {
        ++row.done;
        row.wait += o.wait_sec();
      }
    }
    row.killed = system.aggregate_node_stats().jobs_killed_quota;
    row.busy_cv = system.collector().busy_per_node().cv();
  });
  for (std::size_t i = 0; i < 2; ++i) {
    std::printf("%-22s %12.1f %11zu/%zu %12llu %12.2f\n",
                kill_factors[i] > 0.0 ? "kill at 3x declared" : "no quota",
                quota[i].done
                    ? quota[i].wait / static_cast<double>(quota[i].done)
                    : 0.0,
                quota[i].done, quota[i].honest,
                static_cast<unsigned long long>(quota[i].killed),
                quota[i].busy_cv);
  }
  std::printf("expected: without quotas, runaways occupy nodes 25x longer\n"
              "and honest waits balloon; the kill factor caps the damage.\n");
  return 0;
}
