// Regenerates the §2 robustness claims: the owner/run pair replicates the
// job profile and heartbeats detect failures, so single failures are
// absorbed without client involvement and only owner+run double failures
// need client resubmission.
//
//   failure_recovery [--nodes=500] [--jobs=2000] ...
//
// Sweeps mean node lifetime (infinity, 3600 s, 1200 s, 600 s) for each
// matchmaker and reports completion, recoveries, resubmissions, and the
// wait-time degradation under churn.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  // Churn runs disable light maintenance (failure detection needs live
  // overlay repair), so default below paper scale; --nodes/--jobs rescale.
  if (!config.has("nodes")) scale.nodes = 300;
  if (!config.has("jobs")) scale.jobs = 1200;

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kCentralized,
                                          MatchmakerKind::kRnTree,
                                          MatchmakerKind::kCanBasic};
  const std::vector<double> lifetimes{0.0, 3600.0, 1200.0, 600.0};  // 0 = none

  struct Cell {
    MatchmakerKind kind;
    double lifetime;
  };
  std::vector<Cell> cells;
  for (MatchmakerKind kind : kinds) {
    for (double lifetime : lifetimes) cells.push_back(Cell{kind, lifetime});
  }

  std::printf("failure_recovery: %zu nodes, %zu jobs; exponential node "
              "lifetimes, mean downtime 120 s, half the nodes churn\n",
              scale.nodes, scale.jobs);

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        const auto spec = make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                                    scale.seed + 17);
        grid::GridConfig gc = make_grid_config(cell.kind, scale.seed + 3);
        // Churn experiments need live failure detection and real client
        // resubmission deadlines (unlike the steady-state benches).
        gc.light_maintenance = false;
        gc.client.resubmit_base_sec = 300.0;
        gc.client.resubmit_runtime_factor = 8.0;
        gc.client.max_generations = 8;
        gc.node.heartbeat_period = sim::SimTime::seconds(5.0);
        gc.node.heartbeat_miss_threshold = 3;
        grid::GridSystem system(gc, workload::generate(spec));
        system.build();
        if (cell.lifetime > 0.0) {
          sim::ChurnModel churn;
          churn.mean_lifetime_sec = cell.lifetime;
          churn.mean_downtime_sec = 120.0;
          churn.churn_fraction = 0.5;
          system.enable_churn(churn);
        }
        system.run();
        return summarize(system);
      });

  print_header("Job completion and recovery under churn");
  std::printf("%-13s %-10s %10s %10s %10s %10s %10s\n", "matchmaker",
              "lifetime", "completed", "wait-avg", "requeues", "resubmits",
              "wait-sd");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    char lifetime[24];
    if (cell.lifetime == 0.0) {
      std::snprintf(lifetime, sizeof lifetime, "none");
    } else {
      std::snprintf(lifetime, sizeof lifetime, "%.0fs", cell.lifetime);
    }
    std::printf("%-13s %-10s %9.1f%% %10.1f %10llu %10llu %10.1f\n",
                grid::matchmaker_name(cell.kind), lifetime,
                100.0 * r.completed_fraction, r.wait_avg,
                static_cast<unsigned long long>(r.requeues),
                static_cast<unsigned long long>(r.resubmissions), r.wait_stdev);
  }
  std::printf("\nExpected shape: single failures are absorbed (requeues and\n"
              "owner handoffs, near-100%% completion); resubmissions appear\n"
              "only for owner+run double failures and stay small.\n");
  return 0;
}
