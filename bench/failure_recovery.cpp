// Regenerates the §2 robustness claims: the owner/run pair replicates the
// job profile and heartbeats detect failures, so single failures are
// absorbed without client involvement and only owner+run double failures
// need client resubmission.
//
//   failure_recovery [--nodes=500] [--jobs=2000] [--json=1] ...
//
// Sweeps mean node lifetime (infinity, 3600 s, 1200 s, 600 s) for each
// matchmaker and reports completion, recoveries, resubmissions, and the
// wait-time degradation under churn. A second sweep drives the fault plane
// directly — a partition that heals mid-run, sustained congestion loss, and
// gray (slow-lossy) nodes — and reports each cell's completion relative to
// the fault-free baseline. --json=1 emits one BENCH row per cell.

#include "bench/bench_util.h"

#include "net/fault_plane.h"

int main(int argc, char** argv) {
  using namespace pgrid;
  using namespace pgrid::bench;
  using grid::MatchmakerKind;
  using workload::Mix;

  Config config;
  config.parse_args(argc, argv);
  Scale scale = Scale::from_config(config);
  // Churn runs disable light maintenance (failure detection needs live
  // overlay repair), so default below paper scale; --nodes/--jobs rescale.
  if (!config.has("nodes")) scale.nodes = 300;
  if (!config.has("jobs")) scale.jobs = 1200;

  const std::vector<MatchmakerKind> kinds{MatchmakerKind::kCentralized,
                                          MatchmakerKind::kRnTree,
                                          MatchmakerKind::kCanBasic};
  const std::vector<double> lifetimes{0.0, 3600.0, 1200.0, 600.0};  // 0 = none

  struct Cell {
    MatchmakerKind kind;
    double lifetime;
  };
  std::vector<Cell> cells;
  for (MatchmakerKind kind : kinds) {
    for (double lifetime : lifetimes) cells.push_back(Cell{kind, lifetime});
  }

  std::printf("failure_recovery: %zu nodes, %zu jobs; exponential node "
              "lifetimes, mean downtime 120 s, half the nodes churn\n",
              scale.nodes, scale.jobs);

  const auto results = sim::run_sweep<CellResult>(
      cells.size(), scale.threads, [&](std::size_t i) {
        const Cell& cell = cells[i];
        const auto spec = make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                                    scale.seed + 17);
        grid::GridConfig gc = make_grid_config(cell.kind, scale.seed + 3);
        // Churn experiments need live failure detection and real client
        // resubmission deadlines (unlike the steady-state benches).
        gc.light_maintenance = false;
        gc.client.resubmit_base_sec = 300.0;
        gc.client.resubmit_runtime_factor = 8.0;
        gc.client.max_generations = 8;
        gc.node.heartbeat_period = sim::SimTime::seconds(5.0);
        gc.node.heartbeat_miss_threshold = 3;
        gc.obs.streaming_metrics = true;
        // Oracle-classified evictions: FP (peer was alive) / late detection.
        gc.track_liveness = true;
        const auto pool_before = net::MessagePool::stats();
        grid::GridSystem system(gc, workload::generate(spec));
        system.build();
        if (cell.lifetime > 0.0) {
          sim::ChurnModel churn;
          churn.mean_lifetime_sec = cell.lifetime;
          churn.mean_downtime_sec = 120.0;
          churn.churn_fraction = 0.5;
          system.enable_churn(churn);
        }
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("Job completion and recovery under churn");
  std::printf("%-13s %-10s %10s %10s %10s %10s %10s\n", "matchmaker",
              "lifetime", "completed", "wait-avg", "requeues", "resubmits",
              "wait-sd");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellResult& r = results[i];
    char lifetime[24];
    if (cell.lifetime == 0.0) {
      std::snprintf(lifetime, sizeof lifetime, "none");
    } else {
      std::snprintf(lifetime, sizeof lifetime, "%.0fs", cell.lifetime);
    }
    std::printf("%-13s %-10s %9.1f%% %10.1f %10llu %10llu %10.1f\n",
                grid::matchmaker_name(cell.kind), lifetime,
                100.0 * r.completed_fraction, r.wait_avg,
                static_cast<unsigned long long>(r.requeues),
                static_cast<unsigned long long>(r.resubmissions), r.wait_stdev);
  }
  std::printf("\nExpected shape: single failures are absorbed (requeues and\n"
              "owner handoffs, near-100%% completion); resubmissions appear\n"
              "only for owner+run double failures and stay small.\n");

  BenchJson json = BenchJson::open(config, "failure_recovery");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof label, "%s/lifetime-%.0f",
                  grid::matchmaker_name(cells[i].kind), cells[i].lifetime);
    json.row(label, results[i]);
  }

  // --- fault-plane sweep ---------------------------------------------------
  // No churn here: the network itself misbehaves. A partition cuts the grid
  // in half and heals; congestion drops a fifth of all traffic; gray nodes
  // stay up but answer slowly and lossily. Completion is reported relative
  // to the fault-free baseline of the same matchmaker.
  enum class Fault { kNone, kPartition, kLoss, kGray };
  const std::vector<std::pair<Fault, const char*>> faults{
      {Fault::kNone, "baseline"},
      {Fault::kPartition, "partition-heal"},
      {Fault::kLoss, "loss-20%"},
      {Fault::kGray, "gray-nodes"}};
  const std::vector<MatchmakerKind> fault_kinds{MatchmakerKind::kRnTree,
                                                MatchmakerKind::kCanBasic,
                                                MatchmakerKind::kCanPush};
  struct FaultCell {
    MatchmakerKind kind;
    Fault fault;
  };
  std::vector<FaultCell> fcells;
  for (MatchmakerKind kind : fault_kinds) {
    for (const auto& [fault, name] : faults) {
      fcells.push_back(FaultCell{kind, fault});
    }
  }

  const auto fresults = sim::run_sweep<CellResult>(
      fcells.size(), scale.threads, [&](std::size_t i) {
        const FaultCell& cell = fcells[i];
        const auto spec = make_spec(scale, Mix::kMixed, Mix::kMixed, 0.4,
                                    scale.seed + 29);
        grid::GridConfig gc = make_grid_config(cell.kind, scale.seed + 7);
        gc.light_maintenance = false;
        gc.client.resubmit_base_sec = 300.0;
        gc.client.resubmit_runtime_factor = 8.0;
        gc.client.max_generations = 8;
        gc.obs.streaming_metrics = true;
        gc.track_liveness = true;
        const auto pool_before = net::MessagePool::stats();
        grid::GridSystem system(gc, workload::generate(spec));
        system.build();
        net::FaultPlane& fp = system.network().fault_plane();
        sim::Simulator& simr = system.simulator();
        switch (cell.fault) {
          case Fault::kNone:
            break;
          case Fault::kPartition: {
            // Even/odd split from t=60 s, healed at t=180 s.
            std::vector<net::NodeAddr> a, b;
            for (std::size_t n = 0; n < scale.nodes; ++n) {
              (n % 2 == 0 ? a : b).push_back(static_cast<net::NodeAddr>(n));
            }
            simr.schedule_in(sim::SimTime::seconds(60.0),
                             [&fp, a = std::move(a), b = std::move(b)] {
                               const auto id = fp.cut("bench", a, b);
                               fp.heal_after(id, sim::SimTime::seconds(120.0));
                             });
            break;
          }
          case Fault::kLoss:
            simr.schedule_in(sim::SimTime::seconds(60.0), [&fp] {
              fp.set_congestion(0.2, 1.5);
            });
            simr.schedule_in(sim::SimTime::seconds(240.0),
                             [&fp] { fp.clear_congestion(); });
            break;
          case Fault::kGray:
            simr.schedule_in(sim::SimTime::seconds(60.0), [&fp, &system] {
              for (net::NodeAddr n = 0; n < 4 && n < system.node_count();
                   ++n) {
                fp.set_gray(n, net::GrayFault{6.0, 0.1});
              }
            });
            simr.schedule_in(sim::SimTime::seconds(240.0), [&fp, &system] {
              for (net::NodeAddr n = 0; n < 4 && n < system.node_count();
                   ++n) {
                fp.clear_gray(n);
              }
            });
            break;
        }
        system.run();
        CellResult r = summarize(system);
        attach_pool_stats(r, pool_before);
        return r;
      });

  print_header("Completion under network faults (vs fault-free baseline)");
  std::printf("%-13s %-15s %10s %10s %10s %10s\n", "matchmaker", "fault",
              "completed", "vs-base", "wait-avg", "resubmits");
  for (std::size_t i = 0; i < fcells.size(); ++i) {
    const FaultCell& cell = fcells[i];
    const CellResult& r = fresults[i];
    // The baseline cell of this matchmaker leads its group of faults.
    const CellResult& base = fresults[(i / faults.size()) * faults.size()];
    const double ratio = base.completed_fraction > 0.0
                             ? r.completed_fraction / base.completed_fraction
                             : 0.0;
    std::printf("%-13s %-15s %9.1f%% %9.1f%% %10.1f %10llu\n",
                grid::matchmaker_name(cell.kind), faults[i % faults.size()].second,
                100.0 * r.completed_fraction, 100.0 * ratio, r.wait_avg,
                static_cast<unsigned long long>(r.resubmissions));
    char label[48];
    std::snprintf(label, sizeof label, "%s/%s",
                  grid::matchmaker_name(cell.kind),
                  faults[i % faults.size()].second);
    json.row(label, fresults[i]);
  }
  std::printf("\nExpected shape: the partitioned-then-healed grid completes\n"
              ">= 99%% of the fault-free baseline; loss and gray windows cost\n"
              "wait time (retries, backoff) but not completion.\n");

  // Detector quality across both sweeps: oracle-classified evictions and
  // death-to-eviction latency. p50/p99 are averaged over cells that saw at
  // least one real eviction.
  std::uint64_t fp_total = 0, fn_total = 0;
  double p50_sum = 0.0, p99_sum = 0.0;
  std::size_t latency_cells = 0;
  for (const auto* sweep : {&results, &fresults}) {
    for (const CellResult& r : *sweep) {
      fp_total += r.fp_evictions;
      fn_total += r.fn_evictions;
      if (r.recovery_latency_p50 > 0.0) {
        p50_sum += r.recovery_latency_p50;
        p99_sum += r.recovery_latency_p99;
        ++latency_cells;
      }
    }
  }
  std::printf("\ndetector: %llu false-positive evictions, %llu late "
              "detections; recovery latency p50=%.1fs p99=%.1fs (over %zu "
              "cells with evictions)\n",
              static_cast<unsigned long long>(fp_total),
              static_cast<unsigned long long>(fn_total),
              latency_cells ? p50_sum / static_cast<double>(latency_cells)
                            : 0.0,
              latency_cells ? p99_sum / static_cast<double>(latency_cells)
                            : 0.0,
              latency_cells);
  if (json.active()) {
    std::printf("bench rows written to %s\n", json.path().c_str());
  }
  return 0;
}
