// Simulation-core microbenchmark: raw events-per-second of the substrate
// every matchmaker and the chaos harness run on (DESIGN.md §11).
//
// Cells:
//   schedule_fire        — pure schedule/fire pump (pool + heap + SmallFn).
//   schedule_cancel_fire — each fired event schedules and cancels a far-
//                          future timeout, the RPC-success pattern that used
//                          to leave tombstones rotting for the full RTO
//                          horizon; reports tombstone/heap peaks so the
//                          O(live) bound is visible in the json trail.
//   rpc_echo             — full stack: RpcEndpoint call -> Network send ->
//                          handler -> reply -> continuation, with the
//                          timeout cancel on every success.
//   shard_barrier        — barrier-round cost of the sharded engine
//                          (DESIGN.md §17): every window fires exactly one
//                          event per shard, so windows/sec is the pure
//                          synchronization overhead a sharded run pays per
//                          lookahead window.
//   shard_handoff        — cross-shard inbox throughput: a 2-shard ping-pong
//                          through the production ShardBus path (send ->
//                          mailbox park -> drain -> keyed delivery), batched
//                          so the mailbox dominates the barriers.
//
// Flags: --events=N (default 2M; fired events per cell), --smoke=1 (50k
// events, for CI), --json[=path] (one row per cell, BENCH_simcore_micro.json
// by default), --seed=S, --threads=N (worker-thread count = shard count for
// the shard_barrier cell; 0 = default 4. The scalar cells are timing-
// sensitive and always run serially).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/rng.h"
#include "net/message.h"
#include "net/network.h"
#include "net/rpc.h"
#include "net/shard_bus.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace {

using namespace pgrid;

struct CellResult {
  std::string cell;
  std::uint64_t events = 0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t queue_peak = 0;
  std::uint64_t tombstone_peak = 0;
  std::uint64_t heap_peak = 0;
  std::uint64_t compactions = 0;
  // Sharded cells only (0 on the scalar cells).
  std::uint64_t shards = 0;
  std::uint64_t windows = 0;
  std::uint64_t handoffs = 0;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

void finish(CellResult& r, const sim::Simulator& sim, double wall,
            std::uint64_t heap_peak) {
  r.events = sim.executed();
  r.wall_sec = wall;
  r.events_per_sec = wall > 0.0 ? static_cast<double>(r.events) / wall : 0.0;
  r.queue_peak = sim.queue_high_water();
  r.tombstone_peak = sim.tombstone_high_water();
  r.heap_peak = heap_peak;
  r.compactions = sim.compactions();
}

CellResult bench_schedule_fire(std::uint64_t target) {
  CellResult r{.cell = "schedule_fire"};
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const WallTimer timer;
  // Self-rescheduling pump: every event schedules its successor, measuring
  // the steady-state schedule -> pop -> invoke cycle.
  struct Pump {
    sim::Simulator& sim;
    std::uint64_t& fired;
    std::uint64_t target;
    void operator()() const {
      if (++fired >= target) return;
      sim.schedule_in(sim::SimTime::millis(1), *this);
    }
  };
  sim.schedule_in(sim::SimTime::millis(1), Pump{sim, fired, target});
  sim.run();
  finish(r, sim, timer.sec(), sim.heap_size());
  return r;
}

CellResult bench_schedule_cancel_fire(std::uint64_t target) {
  CellResult r{.cell = "schedule_cancel_fire"};
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::uint64_t heap_peak = 0;
  const WallTimer timer;
  // The RPC-success pattern: every pump tick schedules a far-future timeout
  // (the retransmission RTO) and a near event that cancels it — one
  // tombstone per tick, exactly what call_retry leaves behind.
  struct Pump {
    sim::Simulator& sim;
    std::uint64_t& fired;
    std::uint64_t& heap_peak;
    std::uint64_t target;
    void operator()() const {
      if (++fired >= target) return;
      const sim::EventId timeout =
          sim.schedule_in(sim::SimTime::seconds(30), [] {});
      const Pump self = *this;
      sim.schedule_in(sim::SimTime::millis(1), [self, timeout] {
        self.sim.cancel(timeout);
        if (self.sim.heap_size() > self.heap_peak) {
          self.heap_peak = self.sim.heap_size();
        }
        self();
      });
    }
  };
  sim.schedule_in(sim::SimTime::millis(1), Pump{sim, fired, heap_peak, target});
  sim.run();
  finish(r, sim, timer.sec(), heap_peak);
  return r;
}

struct EchoMsg final : net::Message {
  static constexpr std::uint16_t kType = net::kTagTestBase + 0x10;
  explicit EchoMsg(std::uint64_t v) : Message(kType), value(v) {}
  std::uint64_t value;
};

struct EchoPeer final : net::MessageHandler {
  explicit EchoPeer(net::Network& network)
      : rpc(network, network.add_handler(this)) {}
  void on_message(net::NodeAddr from, net::MessagePtr msg) override {
    if (rpc.consume_reply(msg)) return;
    const auto* m = net::msg_cast<EchoMsg>(msg.get());
    rpc.reply(from, *m, std::make_unique<EchoMsg>(m->value + 1));
  }
  net::RpcEndpoint rpc;
};

CellResult bench_rpc_echo(std::uint64_t target, std::uint64_t seed) {
  CellResult r{.cell = "rpc_echo"};
  sim::Simulator sim;
  net::Network network(
      sim, Rng{seed},
      net::LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(2)});
  EchoPeer caller(network);
  EchoPeer callee(network);
  std::uint64_t completed = 0;
  const WallTimer timer;
  // Closed-loop echo: each completed round trip (which cancels its timeout
  // on success, feeding the tombstone path) immediately issues the next.
  struct Loop {
    EchoPeer& caller;
    EchoPeer& callee;
    std::uint64_t& completed;
    std::uint64_t target;
    void operator()() const {
      const Loop self = *this;
      caller.rpc.call(callee.rpc.self(), std::make_unique<EchoMsg>(completed),
                      sim::SimTime::seconds(10), [self](net::MessagePtr reply) {
                        if (reply == nullptr) return;
                        if (++self.completed >= self.target) return;
                        self();
                      });
    }
  };
  Loop{caller, callee, completed, target}();
  sim.run();
  finish(r, sim, timer.sec(), sim.heap_size());
  r.events = completed;  // report round trips, not raw events
  r.events_per_sec =
      r.wall_sec > 0.0 ? static_cast<double>(sim.executed()) / r.wall_sec : 0.0;
  return r;
}

CellResult bench_shard_barrier(std::size_t shards, std::uint64_t rounds) {
  CellResult r{.cell = "shard_barrier"};
  r.shards = shards;
  const sim::SimTime lookahead = sim::SimTime::millis(1);
  sim::ShardedEngine engine(shards, lookahead);
  // One self-rescheduling pump per shard, period == lookahead: every barrier
  // window executes exactly one event per shard and immediately exposes the
  // next, so the run is `rounds` back-to-back windows with no idle jumps —
  // wall time is almost entirely drain + barrier A + barrier B overhead.
  struct Pump {
    sim::Simulator& sim;
    sim::SimTime period;
    void operator()() const { sim.schedule_in(period, *this); }
  };
  for (std::size_t s = 0; s < shards; ++s) {
    engine.shard(s).schedule_in(lookahead, Pump{engine.shard(s), lookahead});
  }
  const WallTimer timer;
  engine.run_until(sim::SimTime::millis(static_cast<std::int64_t>(rounds)));
  r.wall_sec = timer.sec();
  r.events = engine.executed();
  r.windows = engine.windows();
  // The headline rate for this cell is windows/sec, not events/sec.
  r.events_per_sec =
      r.wall_sec > 0.0 ? static_cast<double>(r.windows) / r.wall_sec : 0.0;
  r.queue_peak = engine.queue_high_water();
  r.tombstone_peak = engine.tombstone_high_water();
  return r;
}

struct HandoffPeer final : net::MessageHandler {
  net::Network& net;
  net::NodeAddr self = 0;
  net::NodeAddr peer = 0;
  std::uint64_t batch = 0;
  std::uint64_t target = 0;
  std::uint64_t received = 0;

  explicit HandoffPeer(net::Network& network) : net(network) {}

  void send_batch() {
    for (std::uint64_t i = 0; i < batch; ++i) {
      net.send(self, peer, std::make_unique<EchoMsg>(received + i));
    }
  }
  void on_message(net::NodeAddr, net::MessagePtr) override {
    ++received;
    // Volley back once the whole batch has landed; stop at the target so the
    // queues drain and the engine's stop rule ends the run.
    if (received % batch == 0 && received < target) send_batch();
  }
};

CellResult bench_shard_handoff(std::uint64_t target) {
  CellResult r{.cell = "shard_handoff"};
  r.shards = 2;
  // Batched 2-shard ping-pong: every message crosses the shard boundary, and
  // 64 messages ride each window so mailbox park/drain/keyed-delivery — not
  // the barrier — dominates. handoffs/sec is the headline rate.
  constexpr std::uint64_t kBatch = 64;
  const sim::SimTime lookahead = sim::SimTime::millis(1);
  sim::ShardedEngine engine(2, lookahead);
  net::ShardBus bus(2, /*seed=*/42);
  const net::LatencyModel latency{sim::SimTime::millis(1),
                                  sim::SimTime::millis(2)};
  net::Network net0(engine.shard(0), Rng{1}, latency);
  net::Network net1(engine.shard(1), Rng{2}, latency);
  bus.attach(0, net0);
  bus.attach(1, net1);
  HandoffPeer a(net0);
  HandoffPeer b(net1);
  a.self = bus.register_handler(&a, 0);
  b.self = bus.register_handler(&b, 1);
  a.peer = b.self;
  b.peer = a.self;
  a.batch = b.batch = kBatch;
  a.target = b.target = target / 2;
  bus.freeze();
  engine.set_drain([&bus](std::size_t s) {
    bus.drain_into(static_cast<std::uint32_t>(s));
  });
  engine.shard(0).schedule_in(lookahead, [&a] { a.send_batch(); });

  const WallTimer timer;
  engine.run_until(sim::SimTime::max());
  r.wall_sec = timer.sec();
  r.events = engine.executed();
  r.windows = engine.windows();
  r.handoffs = bus.handoffs();
  r.events_per_sec =
      r.wall_sec > 0.0 ? static_cast<double>(r.handoffs) / r.wall_sec : 0.0;
  r.queue_peak = engine.queue_high_water();
  r.tombstone_peak = engine.tombstone_high_water();
  return r;
}

void print_cell(const CellResult& r) {
  if (r.shards > 0) {
    std::printf("%-22s %10" PRIu64 " events in %6.3fs  %8.0fk %s/s  shards %"
                PRIu64 "  windows %" PRIu64 "  handoffs %" PRIu64 "\n",
                r.cell.c_str(), r.events, r.wall_sec,
                r.events_per_sec / 1000.0,
                r.handoffs > 0 ? "handoffs" : "windows", r.shards, r.windows,
                r.handoffs);
    return;
  }
  std::printf(
      "%-22s %10" PRIu64 " events in %6.3fs  %8.0fk ev/s  queue peak %" PRIu64
      "  tombstone peak %" PRIu64 "  heap peak %" PRIu64 "  compactions %" PRIu64
      "\n",
      r.cell.c_str(), r.events, r.wall_sec, r.events_per_sec / 1000.0,
      r.queue_peak, r.tombstone_peak, r.heap_peak, r.compactions);
}

void json_row(std::FILE* f, const CellResult& r) {
  std::fprintf(f,
               "{\"bench\":\"simcore_micro\",\"cell\":\"%s\",\"events\":%" PRIu64
               ",\"wall_sec\":%.6f,\"events_per_sec\":%.1f,\"queue_peak\":%" PRIu64
               ",\"tombstone_peak\":%" PRIu64 ",\"heap_peak\":%" PRIu64
               ",\"compactions\":%" PRIu64 ",\"shards\":%" PRIu64
               ",\"windows\":%" PRIu64 ",\"handoffs\":%" PRIu64 "}\n",
               r.cell.c_str(), r.events, r.wall_sec, r.events_per_sec,
               r.queue_peak, r.tombstone_peak, r.heap_peak, r.compactions,
               r.shards, r.windows, r.handoffs);
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const bool smoke = config.get_bool("smoke", false);
  const auto target = static_cast<std::uint64_t>(
      config.get_int("events", smoke ? 50'000 : 2'000'000));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  const auto threads =
      static_cast<std::size_t>(config.get_int("threads", 0));
  const std::size_t barrier_shards = threads > 0 ? threads : 4;
  // Barrier rounds are far slower than heap events (two std::barrier waits
  // each); cap them so the default run stays in the seconds range.
  const std::uint64_t rounds =
      std::min<std::uint64_t>(target / barrier_shards, 100'000);

  std::printf("simcore_micro: %" PRIu64 " events per cell%s\n", target,
              smoke ? " (smoke)" : "");

  const CellResult cells[] = {
      bench_schedule_fire(target),
      bench_schedule_cancel_fire(target),
      bench_rpc_echo(smoke ? target / 10 : target / 4, seed),
      bench_shard_barrier(barrier_shards, rounds),
      bench_shard_handoff(smoke ? target / 10 : target / 4),
  };
  for (const CellResult& r : cells) print_cell(r);

  std::string path = config.get_string("json", "");
  if (path == "1" || path == "true") path = "BENCH_simcore_micro.json";
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "simcore_micro: cannot open %s\n", path.c_str());
      return 1;
    }
    for (const CellResult& r : cells) json_row(f, r);
    std::fclose(f);
    std::printf("json rows written to %s\n", path.c_str());
  }
  return 0;
}
