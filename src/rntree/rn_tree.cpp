#include "rntree/rn_tree.h"

#include <algorithm>
#include <utility>

namespace pgrid::rntree {

namespace {

bool contains_id(const std::vector<Guid>& ids, Guid id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

std::unique_ptr<TokenPass> clone_token(const TokenPass& t) {
  auto copy = std::make_unique<TokenPass>();
  copy->search_id = t.search_id;
  copy->initiator = t.initiator;
  copy->query = t.query;
  copy->k = t.k;
  copy->max_visits = t.max_visits;
  copy->hops = t.hops;
  copy->visited = t.visited;
  copy->candidates = t.candidates;
  return copy;
}

/// Low key of the level-`l` trie region containing `id` (l in [0, 64]).
std::uint64_t region_low(std::uint64_t id, int l) {
  if (l <= 0) return 0;
  if (l >= 64) return id;
  return id & (~std::uint64_t{0} << (64 - l));
}

}  // namespace

RnTreeService::RnTreeService(net::Network& network, chord::ChordNode& chord,
                             RnTreeConfig config, InfoProvider info, Rng rng)
    : net_(network),
      chord_(chord),
      rpc_(network, chord.addr()),
      config_(config),
      info_(std::move(info)),
      rng_(rng) {
  PGRID_EXPECTS(info_ != nullptr);
}

RnTreeService::~RnTreeService() { stop(); }

void RnTreeService::start() {
  if (running_) return;
  running_ = true;
  const auto phase =
      sim::SimTime::nanos(rng_.range(0, config_.aggregation_period.ns() - 1));
  agg_task_ = std::make_unique<sim::PeriodicTask>(
      net_.simulator(), config_.aggregation_period,
      [this] { do_aggregation_push(); }, phase);
}

void RnTreeService::stop() {
  running_ = false;
  agg_task_.reset();
  rpc_.cancel_all();
  for (auto& [id, pending] : pending_searches_) {
    net_.simulator().cancel(pending.timeout_event);
    net_.simulator().cancel(pending.lease_event);
  }
  pending_searches_.clear();
  children_.clear();
  seen_tokens_.clear();
  seen_cursor_ = 0;
  parent_ = kNoPeer;
}

// --- tree structure ---------------------------------------------------------

int RnTreeService::level() const {
  const Guid self = chord_.id();
  const chord::Peer pred = chord_.predecessor();
  if (!pred.valid() || pred.addr == chord_.addr()) return 0;
  for (int l = 0; l <= 64; ++l) {
    // We represent the region iff we are the Chord successor of its low key.
    if (in_interval_oc(Guid{region_low(self.value(), l)}, pred.id, self)) {
      return l;
    }
  }
  return 64;  // unreachable: l == 64 gives low == self, always in (pred, self]
}

Guid RnTreeService::parent_key() const {
  const int l = level();
  PGRID_EXPECTS(l > 0);
  return Guid{region_low(chord_.id().value(), l - 1)};
}

Aggregate RnTreeService::subtree_aggregate() const {
  const LocalInfo local = info_();
  Aggregate agg;
  agg.max_caps = local.caps;
  agg.nodes = 1;
  agg.min_load = local.load;
  for (const auto& [addr, child] : children_) {
    agg.merge(child.aggregate);
  }
  return agg;
}

void RnTreeService::expire_children() {
  const auto now = net_.simulator().now();
  for (auto it = children_.begin(); it != children_.end();) {
    bool expired;
    if (config_.phi.enabled) {
      const ChildState& c = it->second;
      expired = c.phi.evict(now, config_.phi, config_.child_expiry);
      if (!expired && now - c.last_heard > config_.child_expiry) {
        // Legacy expiry would have dropped this child; φ judges its slowed
        // cadence survivable, keeping the subtree aggregate intact.
        ++stats_.suspicions;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect,
                          chord_.addr(), it->first, 3, 0,
                          c.phi.phi(now, config_.phi, config_.child_expiry));
      }
    } else {
      expired = now - it->second.last_heard > config_.child_expiry;
    }
    it = expired ? children_.erase(it) : std::next(it);
  }
}

void RnTreeService::do_aggregation_push() {
  if (!running_ || !chord_.running()) return;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayMaintain,
                    chord_.addr(), obs::kNoActor, 5, 0,
                    static_cast<double>(children_.size()));
  expire_children();
  if (level() == 0) {
    parent_ = kNoPeer;  // we are the root
    return;
  }
  // Refresh the parent (soft state: the tree self-heals under churn) and
  // push our aggregate to it.
  chord_.lookup(parent_key(), [this](chord::Peer parent, int /*hops*/) {
    if (!running_) return;
    if (!parent.valid() || parent.addr == chord_.addr()) return;
    parent_ = parent;
    rpc_.send(parent.addr,
              std::make_unique<AggUpdate>(chord_.self_peer(),
                                          subtree_aggregate()));
  });
}

// --- search ------------------------------------------------------------------

void RnTreeService::search(const Query& query, std::uint32_t k,
                           SearchCallback cb) {
  PGRID_EXPECTS(cb != nullptr);
  PGRID_EXPECTS(k >= 1);
  ++stats_.searches_started;
  if (!running_) {
    cb({}, 0);
    return;
  }
  const std::uint64_t id = next_search_id_++;
  auto token = std::make_unique<TokenPass>();
  token->search_id = id;
  token->initiator = chord_.self_peer();
  token->query = query;
  token->k = k;
  token->max_visits = config_.max_visits;

  PendingSearch pending;
  pending.cb = std::move(cb);
  pending.query = query;
  pending.k = k;
  pending.deadline = net_.simulator().now() + config_.search_timeout;
  pending.lease_retries_left = config_.lease_retries;
  pending.timeout_event =
      net_.simulator().schedule_in(config_.search_timeout, [this, id] {
        auto it = pending_searches_.find(id);
        if (it == pending_searches_.end()) return;
        SearchCallback callback = std::move(it->second.cb);
        net_.simulator().cancel(it->second.lease_event);
        pending_searches_.erase(it);
        ++stats_.searches_timed_out;
        callback({}, 0);
      });
  if (config_.token_lease > sim::SimTime::zero()) {
    pending.lease_event = net_.simulator().schedule_in(
        config_.token_lease, [this, id] { regenerate_token(id); });
  }
  pending_searches_.emplace(id, std::move(pending));

  process_token(std::move(token));
}

void RnTreeService::regenerate_token(std::uint64_t old_id) {
  auto it = pending_searches_.find(old_id);
  if (it == pending_searches_.end() || !running_) return;
  PendingSearch pending = std::move(it->second);
  pending_searches_.erase(it);
  net_.simulator().cancel(pending.timeout_event);
  const auto now = net_.simulator().now();
  const auto remaining = pending.deadline - now;
  if (pending.lease_retries_left <= 0 ||
      remaining <= sim::SimTime::zero()) {
    // Lease budget exhausted: concede now instead of idling to the deadline.
    ++stats_.searches_timed_out;
    SearchCallback callback = std::move(pending.cb);
    callback({}, 0);
    return;
  }
  --pending.lease_retries_left;
  ++stats_.tokens_regenerated;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kAntiEntropyRepair,
                    chord_.addr(), obs::kNoActor, 4, old_id, 0.0);

  // Re-key the pending entry under a fresh search id: the seen-token ring
  // dedups on (initiator, search_id, hops), and a same-id rewalk retraces
  // the deterministic descent with identical hop counts — it would be
  // swallowed as a network duplicate at the first node it revisits.
  const std::uint64_t id = next_search_id_++;
  pending.timeout_event = net_.simulator().schedule_in(remaining, [this, id] {
    auto pit = pending_searches_.find(id);
    if (pit == pending_searches_.end()) return;
    SearchCallback callback = std::move(pit->second.cb);
    net_.simulator().cancel(pit->second.lease_event);
    pending_searches_.erase(pit);
    ++stats_.searches_timed_out;
    callback({}, 0);
  });
  const auto lease = std::min(config_.token_lease, remaining);
  pending.lease_event = net_.simulator().schedule_in(
      lease, [this, id] { regenerate_token(id); });

  auto token = std::make_unique<TokenPass>();
  token->search_id = id;
  token->initiator = chord_.self_peer();
  token->query = pending.query;
  token->k = pending.k;
  token->max_visits = config_.max_visits;
  pending_searches_.emplace(id, std::move(pending));
  process_token(std::move(token));
}

void RnTreeService::process_token(std::unique_ptr<TokenPass> token) {
  if (!running_) return;  // token dies here; initiator's timeout handles it
  ++stats_.tokens_processed;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kMatchStep, chord_.addr(),
                    static_cast<std::uint32_t>(token->initiator.addr),
                    static_cast<std::uint16_t>(token->hops),
                    token->search_id,
                    static_cast<double>(token->candidates.size()));
  const Guid self = chord_.id();

  if (!contains_id(token->visited, self)) {
    token->visited.push_back(self);
    const LocalInfo local = info_();
    if (token->query.satisfied_by(local.caps)) {
      token->candidates.push_back(Candidate{chord_.self_peer(), local.load});
    }
  }

  const bool exhausted =
      token->visited.size() >= token->max_visits ||
      token->hops >= 3 * token->max_visits;
  if (token->candidates.size() >= token->k || exhausted) {
    finish_search(std::move(token));
    return;
  }

  // Descend: the unvisited child with a qualifying aggregate (lowest GUID
  // first for determinism).
  expire_children();
  const ChildState* best = nullptr;
  net::NodeAddr best_addr = net::kNullAddr;
  for (const auto& [caddr, child] : children_) {
    if (contains_id(token->visited, child.id)) continue;
    if (!token->query.possibly_satisfied_by(child.aggregate)) continue;
    if (best == nullptr || child.id < best->id) {
      best = &child;
      best_addr = caddr;
    }
  }
  if (best != nullptr) {
    forward_token(std::move(token), Peer{best_addr, best->id});
    return;
  }

  // Ascend (extended search): move to the parent unless we are the root.
  if (level() == 0 || !parent_.valid()) {
    finish_search(std::move(token));
    return;
  }
  forward_token(std::move(token), parent_);
}

void RnTreeService::forward_token(std::unique_ptr<TokenPass> token,
                                  Peer next) {
  ++token->hops;
  // Keep a recovery copy: if the next holder never acks, the token would be
  // lost, so we re-route it from here. shared_ptr because std::function
  // requires copyable captures.
  std::shared_ptr<TokenPass> backup{clone_token(*token).release()};
  rpc_.call(next.addr, std::move(token), config_.rpc_timeout,
            [this, backup, next](net::MessagePtr reply) {
              if (reply != nullptr) return;  // ack'd: the next holder owns it
              if (!running_) return;
              // Dead hop: mark it visited and re-route from here.
              if (!contains_id(backup->visited, next.id)) {
                backup->visited.push_back(next.id);
              }
              if (parent_ == next) parent_ = kNoPeer;
              children_.erase(next.addr);
              process_token(clone_token(*backup));
            });
}

void RnTreeService::finish_search(std::unique_ptr<TokenPass> token) {
  if (token->initiator.addr == chord_.addr()) {
    auto result = std::make_unique<SearchResult>();
    result->search_id = token->search_id;
    result->hops = token->hops;
    result->candidates = std::move(token->candidates);
    on_search_result(*result);
    return;
  }
  auto result = std::make_unique<SearchResult>();
  result->search_id = token->search_id;
  result->hops = token->hops + 1;  // the result message itself is a hop
  result->candidates = std::move(token->candidates);
  rpc_.send(token->initiator.addr, std::move(result));
}

// --- message handling ----------------------------------------------------------

bool RnTreeService::handle(net::NodeAddr from, net::MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (rpc_.consume_reply(msg)) return true;
  if (!running_) {
    const auto t = msg->type();
    return t >= net::kTagRnTreeBase && t < net::kTagRnTreeBase + 0x100;
  }
  switch (msg->type()) {
    case kAggUpdate:
      on_agg_update(*net::msg_cast<AggUpdate>(msg.get()));
      return true;
    case kTokenPass:
      on_token(from, msg);
      return true;
    case kSearchResult:
      on_search_result(*net::msg_cast<SearchResult>(msg.get()));
      return true;
    default:
      return false;
  }
}

void RnTreeService::on_agg_update(const AggUpdate& msg) {
  ChildState& child = children_[msg.sender.addr];
  child.id = msg.sender.id;
  child.aggregate = msg.aggregate;
  child.last_heard = net_.simulator().now();
  child.phi.heartbeat(child.last_heard);
}

void RnTreeService::on_token(net::NodeAddr from, net::MessagePtr& msg) {
  const auto* t = net::msg_cast<TokenPass>(msg.get());
  // Duplicate suppression: a network-duplicated token would fork the walk
  // (both copies keep walking), which compounds exponentially per hop. A
  // genuine revisit of this node arrives with a different hop count, so
  // (initiator, search_id, hops) seen before means this copy is a twin.
  for (const SeenToken& s : seen_tokens_) {
    if (s.initiator == t->initiator.addr && s.search_id == t->search_id &&
        s.hops == t->hops) {
      ++stats_.tokens_deduplicated;
      // Still ack: the reply correlates to the sender's single call; an
      // extra reply is dropped by RPC correlation.
      rpc_.reply(from, *msg, std::make_unique<TokenAck>());
      return;
    }
  }
  if (seen_tokens_.size() < kSeenTokenCap) {
    seen_tokens_.push_back(
        SeenToken{t->initiator.addr, t->search_id, t->hops});
  } else {
    seen_tokens_[seen_cursor_++ % kSeenTokenCap] =
        SeenToken{t->initiator.addr, t->search_id, t->hops};
  }
  // Acknowledge custody, then take ownership and process.
  rpc_.reply(from, *msg, std::make_unique<TokenAck>());
  std::unique_ptr<TokenPass> token(net::msg_cast<TokenPass>(msg.release()));
  process_token(std::move(token));
}

void RnTreeService::on_search_result(const SearchResult& msg) {
  auto it = pending_searches_.find(msg.search_id);
  if (it == pending_searches_.end()) return;  // timed out already
  SearchCallback callback = std::move(it->second.cb);
  net_.simulator().cancel(it->second.timeout_event);
  net_.simulator().cancel(it->second.lease_event);
  pending_searches_.erase(it);
  ++stats_.searches_completed;
  stats_.search_hops.add(msg.hops);
  stats_.candidates_found.add(static_cast<double>(msg.candidates.size()));
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kMatchResult, chord_.addr(),
                    obs::kNoActor, static_cast<std::uint16_t>(msg.hops),
                    msg.search_id,
                    static_cast<double>(msg.candidates.size()));
  callback(msg.candidates, static_cast<int>(msg.hops));
}

}  // namespace pgrid::rntree
