#pragma once
// RN-Tree protocol messages: bottom-up aggregation updates and the token-DFS
// extended search.

#include <cstdint>
#include <vector>

#include "chord/peer.h"
#include "net/message.h"
#include "rntree/aggregate.h"

namespace pgrid::rntree {

using chord::Peer;
using chord::kNoPeer;

enum MsgType : std::uint16_t {
  kAggUpdate = net::kTagRnTreeBase + 0,
  kTokenPass = net::kTagRnTreeBase + 1,
  kTokenAck = net::kTagRnTreeBase + 2,
  kSearchResult = net::kTagRnTreeBase + 3,
};

/// Child -> parent, periodic: "here is my subtree's summary".
struct AggUpdate final : net::Message {
  static constexpr std::uint16_t kType = kAggUpdate;

  AggUpdate(Peer s, Aggregate a) : Message(kType), sender(s), aggregate(a) {}

  Peer sender;
  Aggregate aggregate;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + kMaxResources * 8 + 12;
  }
  PGRID_MESSAGE_CLONE(AggUpdate)
};

/// A matchmaking candidate discovered by the search.
struct Candidate {
  Peer peer;
  double load = 0.0;

  friend bool operator==(const Candidate&, const Candidate&) noexcept = default;
};

/// The traveling DFS token. Passed holder-to-holder as an RPC (ack'd) so a
/// dead next hop is detected by the current holder, which then reroutes.
struct TokenPass final : net::Message {
  static constexpr std::uint16_t kType = kTokenPass;

  TokenPass() : Message(kType) {}

  std::uint64_t search_id = 0;
  Peer initiator;
  Query query;
  std::uint32_t k = 1;           // stop after this many candidates
  std::uint32_t max_visits = 64; // hard cap on nodes visited
  std::uint32_t hops = 0;        // token forwards so far
  std::vector<Guid> visited;     // nodes already processed
  std::vector<Candidate> candidates;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + kMaxResources * 9 + 16 + visited.size() * 8 +
           candidates.size() * 20;
  }
  PGRID_MESSAGE_CLONE(TokenPass)
};

struct TokenAck final : net::Message {
  static constexpr std::uint16_t kType = kTokenAck;
  TokenAck() : Message(kType) {}
  PGRID_MESSAGE_CLONE(TokenAck)
};

/// Final answer, sent directly to the initiator.
struct SearchResult final : net::Message {
  static constexpr std::uint16_t kType = kSearchResult;

  SearchResult() : Message(kType) {}

  std::uint64_t search_id = 0;
  std::uint32_t hops = 0;
  std::vector<Candidate> candidates;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + candidates.size() * 20;
  }
  PGRID_MESSAGE_CLONE(SearchResult)
};

}  // namespace pgrid::rntree
