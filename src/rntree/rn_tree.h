#pragma once
// Rendezvous Node Tree (§3.1): a decentralized aggregation tree over Chord.
//
// Construction (instantiating the paper's deferred details, see DESIGN.md §4):
// the 64-bit key space is a binary trie of regions; a node *represents* a
// region iff it is the Chord successor of the region's low key, which it can
// decide from its predecessor pointer alone. A node's level is the largest
// region it represents; its parent is the representative of the enclosing
// region, found with one Chord lookup. Expected height is O(log N) for
// uniform GUIDs.
//
// Each node periodically pushes its subtree aggregate (per-resource maxima,
// node count, minimum load) to its parent. Matchmaking searches are DFS
// tokens: pruned by child aggregates, ascending toward the root, continuing
// until k candidates are found (the paper's "extended search").

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "chord/chord_node.h"
#include "common/flat_map.h"
#include "common/phi_detector.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"
#include "net/rpc.h"
#include "rntree/aggregate.h"
#include "rntree/messages.h"
#include "sim/simulator.h"

namespace pgrid::rntree {

struct RnTreeConfig {
  sim::SimTime aggregation_period = sim::SimTime::seconds(2.0);
  /// Children unheard for this long are dropped from the aggregate.
  sim::SimTime child_expiry = sim::SimTime::seconds(7.0);
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  /// Deadline for a whole search before reporting what we have (nothing).
  sim::SimTime search_timeout = sim::SimTime::seconds(30.0);
  std::uint32_t max_visits = 64;
  /// φ-accrual liveness for child expiry (default off = fixed child_expiry).
  /// When on, a child whose aggregation pushes merely slowed (congestion)
  /// is retained until its silence is implausible under its learned cadence.
  PhiAccrualConfig phi;
  /// Search-token lease (zero = off). A token can be lost without any hop
  /// observing it (the holder crashes after acking custody); the initiator
  /// then waits out the full search_timeout for nothing. With a lease, an
  /// unanswered search is regenerated under a fresh search id after this
  /// long, resuming the walk from the initiator.
  sim::SimTime token_lease = sim::SimTime::zero();
  /// Regenerations per search before giving up to the final timeout.
  int lease_retries = 2;
};

struct RnTreeStats {
  std::uint64_t searches_started = 0;
  std::uint64_t searches_completed = 0;
  std::uint64_t searches_timed_out = 0;
  std::uint64_t tokens_processed = 0;
  /// Duplicate token instances suppressed (network-level duplication).
  std::uint64_t tokens_deduplicated = 0;
  /// Lost search tokens re-issued by the lease (anti-entropy).
  std::uint64_t tokens_regenerated = 0;
  /// Suspicion-rounds: children past the fixed expiry retained by φ.
  std::uint64_t suspicions = 0;
  RunningStats search_hops;
  RunningStats candidates_found;
};

class RnTreeService {
 public:
  struct LocalInfo {
    Caps caps{};
    double load = 0.0;
  };
  /// Supplied by the grid layer: this node's capabilities and current load.
  using InfoProvider = std::function<LocalInfo()>;

  /// Search outcome: candidates (possibly empty) and overlay hops consumed.
  using SearchCallback =
      std::function<void(std::vector<Candidate> candidates, int hops)>;

  RnTreeService(net::Network& network, chord::ChordNode& chord,
                RnTreeConfig config, InfoProvider info, Rng rng);
  ~RnTreeService();

  RnTreeService(const RnTreeService&) = delete;
  RnTreeService& operator=(const RnTreeService&) = delete;

  /// Begin periodic aggregation pushes (call once the Chord node is wired).
  void start();
  void stop();

  /// Find up to k nodes satisfying `query`, starting the DFS at this node.
  void search(const Query& query, std::uint32_t k, SearchCallback cb);

  bool handle(net::NodeAddr from, net::MessagePtr& msg);

  // --- introspection ------------------------------------------------------
  /// This node's level: the smallest trie level it represents (0 = root).
  [[nodiscard]] int level() const;
  /// True iff this node is the tree root (represents the whole key space).
  [[nodiscard]] bool is_root() const { return level() == 0; }
  /// The key whose Chord successor is this node's parent.
  [[nodiscard]] Guid parent_key() const;
  [[nodiscard]] Peer cached_parent() const noexcept { return parent_; }
  [[nodiscard]] Aggregate subtree_aggregate() const;
  [[nodiscard]] std::size_t child_count() const noexcept {
    return children_.size();
  }
  [[nodiscard]] const RnTreeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }

  /// Bytes behind the child table, pending searches, and the seen-token
  /// ring (memory accounting; capacity snapshot, nothing on the hot path).
  [[nodiscard]] std::size_t table_memory_bytes() const noexcept {
    return children_.capacity() *
               sizeof(std::pair<net::NodeAddr, ChildState>) +
           pending_searches_.capacity() *
               sizeof(std::pair<std::uint64_t, PendingSearch>) +
           seen_tokens_.capacity() * sizeof(SeenToken);
  }

  /// Bytes held by this service's RPC pending-call slab.
  [[nodiscard]] std::size_t rpc_memory_bytes() const noexcept {
    return rpc_.memory_bytes();
  }

 private:
  struct ChildState {
    Guid id;
    Aggregate aggregate;
    sim::SimTime last_heard;
    /// Aggregation-push inter-arrival history for φ-accrual expiry.
    PhiDetector phi;
  };

  struct PendingSearch {
    SearchCallback cb;
    sim::EventId timeout_event = sim::kInvalidEvent;
    // Everything needed to re-issue the token if the lease expires.
    Query query{};
    std::uint32_t k = 1;
    sim::SimTime deadline;               // absolute search timeout instant
    sim::EventId lease_event = sim::kInvalidEvent;
    int lease_retries_left = 0;
  };

  void do_aggregation_push();
  void expire_children();
  /// Token-lease expiry for `old_id`: the walk went silent with the token
  /// (holder crashed after acking custody). Re-issue it under a fresh
  /// search id — the seen-token dedup ring would swallow a same-id rewalk —
  /// keeping the original callback and absolute deadline.
  void regenerate_token(std::uint64_t old_id);

  /// Process the token at this node: record self if satisfying, then move
  /// it to the next unvisited qualifying child, else to the parent, else
  /// finish. Caller has already ack'd receipt.
  void process_token(std::unique_ptr<TokenPass> token);
  void forward_token(std::unique_ptr<TokenPass> token, Peer next);
  void finish_search(std::unique_ptr<TokenPass> token);

  void on_agg_update(const AggUpdate& msg);
  void on_token(net::NodeAddr from, net::MessagePtr& msg);
  void on_search_result(const SearchResult& msg);

  net::Network& net_;
  chord::ChordNode& chord_;
  net::RpcEndpoint rpc_;
  RnTreeConfig config_;
  InfoProvider info_;
  Rng rng_;

  bool running_ = false;
  Peer parent_ = kNoPeer;
  // Flat sorted table: scanned on every token descent and aggregation push;
  // iteration order (sorted by address) matches the std::map it replaced.
  FlatMap<net::NodeAddr, ChildState> children_;
  std::unique_ptr<sim::PeriodicTask> agg_task_;

  std::uint64_t next_search_id_ = 1;
  // Flat sorted table like children_: searches are few and short-lived, and
  // every handler moves the callback out and erases before invoking it, so
  // vector iterator invalidation cannot bite.
  FlatMap<std::uint64_t, PendingSearch> pending_searches_;

  // A token is a mobile agent: if the network duplicates the message, both
  // copies would resume the walk and fork it — exponential token growth
  // under sustained duplication. (initiator, search_id, hops) identifies a
  // token instance exactly: a legitimate revisit of this node (descend then
  // ascend) always carries a different hop count, a network-level duplicate
  // never does. Bounded ring of recently seen instances.
  struct SeenToken {
    net::NodeAddr initiator = net::kNullAddr;
    std::uint64_t search_id = 0;
    std::uint32_t hops = 0;
  };
  static constexpr std::size_t kSeenTokenCap = 128;
  std::vector<SeenToken> seen_tokens_;
  std::size_t seen_cursor_ = 0;

  RnTreeStats stats_;
};

}  // namespace pgrid::rntree
