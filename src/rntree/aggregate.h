#pragma once
// Resource aggregates and queries carried by the Rendezvous Node Tree.
//
// The RN-Tree passes "information describing the maximal amount of each
// resource available" up the tree (§3.1); a search is pruned by comparing a
// job's per-resource minima against a subtree's maxima.

#include <array>
#include <cstdint>

namespace pgrid::rntree {

inline constexpr std::size_t kMaxResources = 4;

/// Per-resource capability vector (grid layer decides the semantics of
/// each slot, e.g. CPU GHz / memory GB / disk GB).
using Caps = std::array<double, kMaxResources>;

/// Subtree summary, aggregated bottom-up.
struct Aggregate {
  Caps max_caps{};          // per-resource maximum in the subtree
  std::uint32_t nodes = 0;  // live nodes summarized
  double min_load = 0.0;    // smallest queue length seen in the subtree

  /// Fold another aggregate (or a leaf's self-aggregate) into this one.
  void merge(const Aggregate& other) noexcept {
    if (other.nodes == 0) return;
    if (nodes == 0) {
      *this = other;
      return;
    }
    for (std::size_t r = 0; r < kMaxResources; ++r) {
      if (other.max_caps[r] > max_caps[r]) max_caps[r] = other.max_caps[r];
    }
    if (other.min_load < min_load) min_load = other.min_load;
    nodes += other.nodes;
  }
};

/// A job's resource constraints: per-resource minimum, or unconstrained.
struct Query {
  Caps min{};
  std::array<bool, kMaxResources> constrained{};

  [[nodiscard]] std::size_t constraint_count() const noexcept {
    std::size_t n = 0;
    for (bool c : constrained) n += c ? 1 : 0;
    return n;
  }

  /// Can a node with capabilities `caps` run this job?
  [[nodiscard]] bool satisfied_by(const Caps& caps) const noexcept {
    for (std::size_t r = 0; r < kMaxResources; ++r) {
      if (constrained[r] && caps[r] < min[r]) return false;
    }
    return true;
  }

  /// Could a subtree with the given maxima contain a satisfying node?
  /// (Necessary, not sufficient — the maxima may come from different nodes.)
  [[nodiscard]] bool possibly_satisfied_by(const Aggregate& agg) const noexcept {
    if (agg.nodes == 0) return false;
    return satisfied_by(agg.max_caps);
  }
};

}  // namespace pgrid::rntree
