#include "pastry/pastry_node.h"

#include <algorithm>

namespace pgrid::pastry {

namespace {
constexpr int kMaxLookupHops = 64;

bool contains_id(const std::vector<Guid>& ids, Guid id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

PastryNode::PastryNode(net::Network& network, net::NodeAddr self, Guid id,
                       PastryConfig config, Rng rng)
    : net_(network), rpc_(network, self), id_(id), config_(config), rng_(rng) {
  PGRID_EXPECTS(config.leaf_half >= 1);
}

PastryNode::~PastryNode() = default;

void PastryNode::create() {
  running_ = true;
  cw_leaves_.clear();
  ccw_leaves_.clear();
  for (auto& row : table_) row.fill(kNoPeer);
  start_maintenance();
}

void PastryNode::crash() {
  running_ = false;
  leafset_task_.reset();
  rpc_.cancel_all();
  cw_leaves_.clear();
  ccw_leaves_.clear();
  for (auto& row : table_) row.fill(kNoPeer);
  dead_until_.clear();
  saw_full_leafset_ = false;
}

std::vector<Peer> PastryNode::leaf_set() const {
  std::vector<Peer> all = ccw_leaves_;
  for (const Peer& p : cw_leaves_) {
    if (std::find(all.begin(), all.end(), p) == all.end()) all.push_back(p);
  }
  return all;
}

void PastryNode::rebuild_leaves(std::vector<Peer> candidates) {
  // Deduplicate, drop self, then take the leaf_half closest per side.
  std::sort(candidates.begin(), candidates.end(),
            [](const Peer& a, const Peer& b) { return a.id < b.id; });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::erase_if(candidates, [this](const Peer& p) {
    return !p.valid() || p.addr == addr();
  });

  auto by_cw = candidates;
  std::sort(by_cw.begin(), by_cw.end(), [this](const Peer& a, const Peer& b) {
    return id_.clockwise_to(a.id) < id_.clockwise_to(b.id);
  });
  auto by_ccw = candidates;
  std::sort(by_ccw.begin(), by_ccw.end(),
            [this](const Peer& a, const Peer& b) {
              return a.id.clockwise_to(id_) < b.id.clockwise_to(id_);
            });
  cw_leaves_.assign(by_cw.begin(),
                    by_cw.begin() + std::min<std::ptrdiff_t>(
                                        static_cast<std::ptrdiff_t>(
                                            config_.leaf_half),
                                        static_cast<std::ptrdiff_t>(
                                            by_cw.size())));
  ccw_leaves_.assign(by_ccw.begin(),
                     by_ccw.begin() + std::min<std::ptrdiff_t>(
                                          static_cast<std::ptrdiff_t>(
                                              config_.leaf_half),
                                          static_cast<std::ptrdiff_t>(
                                              by_ccw.size())));
  if (cw_leaves_.size() >= config_.leaf_half &&
      ccw_leaves_.size() >= config_.leaf_half) {
    saw_full_leafset_ = true;
  }
}

void PastryNode::install_state(std::vector<Peer> leaves) {
  running_ = true;
  rebuild_leaves(std::move(leaves));
  start_maintenance();
}

void PastryNode::consider_peer(Peer p) {
  if (!running_ || !p.valid() || p.addr == addr()) return;
  if (const auto it = dead_until_.find(p.addr); it != dead_until_.end()) {
    if (net_.simulator().now() < it->second) return;  // tombstoned
    dead_until_.erase(it);
  }
  // Leaf set.
  std::vector<Peer> candidates = leaf_set();
  candidates.push_back(p);
  rebuild_leaves(std::move(candidates));
  // Routing table: first usable entry per (row, digit) wins.
  const int row = shared_prefix(id_.value(), p.id.value());
  if (row < kDigits) {
    const int col = digit_at(p.id.value(), row);
    Peer& entry = table_[static_cast<std::size_t>(row)]
                        [static_cast<std::size_t>(col)];
    if (!entry.valid()) entry = p;
  }
}

bool PastryNode::key_in_leaf_range(Guid key) const {
  if (cw_leaves_.empty() && ccw_leaves_.empty()) return true;  // singleton
  const bool partial = cw_leaves_.size() < config_.leaf_half ||
                       ccw_leaves_.size() < config_.leaf_half;
  if (partial) {
    // Never-full sides mean the network is smaller than the leaf set and we
    // know everyone: decide locally. Sides depleted by failures, however,
    // must not claim authority — keep routing while gossip repairs them.
    return !saw_full_leafset_;
  }
  const Guid cw_far = cw_leaves_.back().id;
  const Guid ccw_far = ccw_leaves_.back().id;
  return ccw_far.clockwise_to(key) <= ccw_far.clockwise_to(cw_far);
}

Peer PastryNode::closest_known(Guid key, const std::vector<Guid>& avoid) const {
  Peer best = contains_id(avoid, id_) ? kNoPeer : self_peer();
  auto consider = [&](const Peer& p) {
    if (!p.valid() || contains_id(avoid, p.id)) return;
    if (!best.valid() || closer_to(key.value(), p.id.value(), best.id.value())) {
      best = p;
    }
  };
  for (const Peer& p : cw_leaves_) consider(p);
  for (const Peer& p : ccw_leaves_) consider(p);
  return best;
}

Peer PastryNode::route_step(Guid key, const std::vector<Guid>& avoid) const {
  if (key_in_leaf_range(key)) return kNoPeer;  // decided via closest_known
  const int row = shared_prefix(id_.value(), key.value());
  if (row < kDigits) {
    const Peer entry = table_[static_cast<std::size_t>(row)][
        static_cast<std::size_t>(digit_at(key.value(), row))];
    if (entry.valid() && !contains_id(avoid, entry.id)) return entry;
  }
  // Rare case: no table entry — take any known node with at least as long a
  // shared prefix that is numerically closer to the key than we are.
  Peer best = kNoPeer;
  auto consider = [&](const Peer& p) {
    if (!p.valid() || p.addr == addr() || contains_id(avoid, p.id)) return;
    if (shared_prefix(p.id.value(), key.value()) < row) return;
    if (!closer_to(key.value(), p.id.value(), id_.value())) return;
    if (!best.valid() || closer_to(key.value(), p.id.value(), best.id.value())) {
      best = p;
    }
  };
  for (const Peer& p : cw_leaves_) consider(p);
  for (const Peer& p : ccw_leaves_) consider(p);
  for (const auto& table_row : table_) {
    for (const Peer& p : table_row) consider(p);
  }
  return best;
}

// --- lookups -------------------------------------------------------------------

void PastryNode::lookup(Guid key, LookupCallback cb) {
  PGRID_EXPECTS(cb != nullptr);
  ++stats_.lookups_started;
  if (!running_) {
    ++stats_.lookups_failed;
    cb(kNoPeer, 0);
    return;
  }
  auto st = std::make_shared<LookupState>();
  st->key = key;
  st->cb = std::move(cb);
  st->retries_left = config_.lookup_retries;
  lookup_restart(st);
}

void PastryNode::lookup_restart(const std::shared_ptr<LookupState>& st) {
  if (!running_) {
    lookup_failed(st);
    return;
  }
  const Peer next = route_step(st->key, st->avoid);
  if (!next.valid()) {
    const Peer root = closest_known(st->key, st->avoid);
    if (root.valid()) {
      lookup_done(st, root);
    } else {
      lookup_failed(st);
    }
    return;
  }
  lookup_ask(st, next);
}

void PastryNode::lookup_ask(const std::shared_ptr<LookupState>& st,
                            Peer target) {
  if (st->hops >= kMaxLookupHops) {
    lookup_failed(st);
    return;
  }
  ++st->hops;
  auto make = [key = st->key, avoid = st->avoid,
               collect = st->collect_state]() -> net::MessagePtr {
    auto req = std::make_unique<NextHopReq>(key);
    req->avoid = avoid;
    req->collect_state = collect;
    return req;
  };
  rpc_.call_retry(
      target.addr, std::move(make), config_.rpc_timeout, config_.rpc_attempts,
      [this, st, target](net::MessagePtr reply) {
        if (!running_) return;
        if (reply == nullptr) {
          remove_failed(target);
          if (!contains_id(st->avoid, target.id)) {
            st->avoid.push_back(target.id);
          }
          if (--st->retries_left > 0) {
            lookup_restart(st);
          } else {
            lookup_failed(st);
          }
          return;
        }
        const auto* resp = net::msg_cast<NextHopResp>(reply.get());
        if (st->on_state) st->on_state(*resp);
        if (!resp->node.valid()) {
          lookup_failed(st);
          return;
        }
        if (resp->done) {
          lookup_done(st, resp->node);
        } else {
          lookup_ask(st, resp->node);
        }
      });
}

void PastryNode::lookup_done(const std::shared_ptr<LookupState>& st,
                             Peer root) {
  ++stats_.lookups_ok;
  stats_.lookup_hops.add(st->hops);
  st->cb(root, st->hops);
}

void PastryNode::lookup_failed(const std::shared_ptr<LookupState>& st) {
  ++stats_.lookups_failed;
  st->cb(kNoPeer, st->hops);
}

// --- join -----------------------------------------------------------------------

void PastryNode::join(Peer bootstrap, std::function<void(bool ok)> done) {
  PGRID_EXPECTS(bootstrap.valid());
  running_ = true;
  cw_leaves_.clear();
  ccw_leaves_.clear();
  for (auto& row : table_) row.fill(kNoPeer);

  auto st = std::make_shared<LookupState>();
  st->key = id_;
  st->retries_left = config_.lookup_retries;
  st->collect_state = true;
  st->on_state = [this](const NextHopResp& resp) {
    // Harvest routing rows and leaf sets from nodes along the join path.
    for (const Peer& p : resp.routing_row) consider_peer(p);
    for (const Peer& p : resp.leaves) consider_peer(p);
  };
  st->cb = [this, done = std::move(done)](Peer root, int /*hops*/) {
    if (!running_) return;
    if (!root.valid()) {
      if (done) done(false);
      return;
    }
    consider_peer(root);
    // Pull the root's leaf set: it becomes the seed of ours.
    rpc_.call_retry(
        root.addr, [] { return std::make_unique<LeafSetReq>(); },
        config_.rpc_timeout, config_.rpc_attempts,
        [this, done](net::MessagePtr reply) {
          if (!running_) return;
          if (reply != nullptr) {
            for (const Peer& p :
                 net::msg_cast<LeafSetResp>(reply.get())->leaves) {
              consider_peer(p);
            }
          }
          start_maintenance();
          // Announce ourselves to everyone we learned about.
          for (const Peer& p : leaf_set()) {
            rpc_.send(p.addr, std::make_unique<Announce>(self_peer()));
          }
          for (const auto& row : table_) {
            for (const Peer& p : row) {
              if (p.valid()) {
                rpc_.send(p.addr, std::make_unique<Announce>(self_peer()));
              }
            }
          }
          if (done) done(true);
        });
  };
  lookup_ask(st, bootstrap);
}

// --- message handling --------------------------------------------------------------

bool PastryNode::handle(net::NodeAddr from, net::MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (rpc_.consume_reply(msg)) return true;
  if (!running_) {
    const auto t = msg->type();
    return t >= kTagPastryBase && t < kTagPastryBase + 0x100;
  }
  switch (msg->type()) {
    case kNextHopReq:
      on_next_hop(from, *net::msg_cast<NextHopReq>(msg.get()));
      return true;
    case kLeafSetReq:
      on_leafset(from, *net::msg_cast<LeafSetReq>(msg.get()));
      return true;
    case kAnnounce:
      on_announce(*net::msg_cast<Announce>(msg.get()));
      return true;
    default:
      return false;
  }
}

void PastryNode::on_next_hop(net::NodeAddr from, const NextHopReq& req) {
  const Peer next = route_step(req.key, req.avoid);
  auto resp = next.valid()
                  ? std::make_unique<NextHopResp>(false, next)
                  : std::make_unique<NextHopResp>(
                        true, closest_known(req.key, req.avoid));
  if (req.collect_state) {
    const int row = shared_prefix(id_.value(), req.key.value());
    if (row < kDigits) {
      for (const Peer& p : table_[static_cast<std::size_t>(row)]) {
        if (p.valid()) resp->routing_row.push_back(p);
      }
    }
    resp->leaves = leaf_set();
    resp->leaves.push_back(self_peer());
  }
  rpc_.reply(from, req, std::move(resp));
}

void PastryNode::on_leafset(net::NodeAddr from, const LeafSetReq& req) {
  std::vector<Peer> leaves = leaf_set();
  leaves.push_back(self_peer());
  rpc_.reply(from, req, std::make_unique<LeafSetResp>(std::move(leaves)));
}

void PastryNode::on_announce(const Announce& msg) { consider_peer(msg.peer); }

// --- maintenance ------------------------------------------------------------------

void PastryNode::start_maintenance() {
  if (!config_.run_maintenance) return;
  const auto phase =
      sim::SimTime::nanos(rng_.range(0, config_.leafset_period.ns() - 1));
  leafset_task_ = std::make_unique<sim::PeriodicTask>(
      net_.simulator(), config_.leafset_period,
      [this] { do_leafset_exchange(); }, phase);
}

void PastryNode::do_leafset_exchange() {
  for (const Peer& leaf : leaf_set()) {
    rpc_.call_retry(
        leaf.addr, [] { return std::make_unique<LeafSetReq>(); },
        config_.rpc_timeout, config_.rpc_attempts,
        [this, leaf](net::MessagePtr reply) {
          if (!running_) return;
          if (reply == nullptr) {
            remove_failed(leaf);
            return;
          }
          for (const Peer& p :
               net::msg_cast<LeafSetResp>(reply.get())->leaves) {
            consider_peer(p);
          }
        });
  }
}

void PastryNode::remove_failed(Peer p) {
  std::erase(cw_leaves_, p);
  std::erase(ccw_leaves_, p);
  for (auto& row : table_) {
    for (Peer& entry : row) {
      if (entry == p) entry = kNoPeer;
    }
  }
  dead_until_[p.addr] =
      net_.simulator().now() + config_.leafset_period * 8;
}

}  // namespace pgrid::pastry
