#include "pastry/mesh.h"

#include "common/expects.h"

namespace pgrid::pastry {

PastryMesh::PastryMesh(net::Network& network, PastryConfig config, Rng rng)
    : net_(network), config_(config), rng_(rng) {}

PastryHost& PastryMesh::add_host(Guid id) {
  hosts_.push_back(
      std::make_unique<PastryHost>(net_, id, config_, rng_.fork(hosts_.size())));
  alive_.push_back(true);
  return *hosts_.back();
}

void PastryMesh::wire_instantly() {
  std::vector<Peer> live;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) {
      live.push_back(hosts_[i]->node().self_peer());
    }
  }
  PGRID_EXPECTS(!live.empty());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!alive_[i]) continue;
    PastryNode& node = hosts_[i]->node();
    node.install_state(live);  // rebuild_leaves picks the closest per side
    for (const Peer& p : live) node.consider_peer(p);
  }
}

Peer PastryMesh::oracle_root(Guid key) const {
  Peer best = kNoPeer;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!alive_[i]) continue;
    const Peer p = hosts_[i]->node().self_peer();
    if (!best.valid() ||
        closer_to(key.value(), p.id.value(), best.id.value())) {
      best = p;
    }
  }
  return best;
}

void PastryMesh::crash(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (!alive_[index]) return;
  alive_[index] = false;
  net_.set_alive(hosts_[index]->addr(), false);
  hosts_[index]->node().crash();
}

void PastryMesh::restart(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (alive_[index]) return;
  alive_[index] = true;
  net_.set_alive(hosts_[index]->addr(), true);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i != index && alive_[i]) {
      hosts_[index]->node().join(hosts_[i]->node().self_peer(), nullptr);
      return;
    }
  }
  hosts_[index]->node().create();
}

}  // namespace pgrid::pastry
