#pragma once
// Pastry DHT node (Rowstron & Druschel, Middleware'01) — the third of the
// paper's candidate DHT substrates ("we assume an underlying DHT
// infrastructure [17, 18, 19, 21]" — CAN, Pastry, Chord, Tapestry).
//
// 64-bit identifiers interpreted as 16 hexadecimal digits (b = 4). State:
//   - leaf set: the L/2 numerically closest nodes on each side (circular),
//   - routing table: rows by shared-prefix length, columns by next digit.
// A key's root is the live node numerically closest to it (circular
// distance, smaller id on ties). Expected route length is O(log_16 N).
//
// Iterative lookups like our Chord: the initiator drives hop by hop and
// counts hops; next-hop responses optionally carry the responder's routing
// row and leaf set, which is how a joining node builds its state from the
// nodes on its join path.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"
#include "net/rpc.h"
#include "pastry/messages.h"
#include "sim/simulator.h"

namespace pgrid::pastry {

inline constexpr int kDigitBits = 4;
inline constexpr int kDigits = 64 / kDigitBits;      // rows
inline constexpr int kDigitValues = 1 << kDigitBits;  // columns

/// Hex digit of `id` at `row` (row 0 = most significant).
[[nodiscard]] constexpr int digit_at(std::uint64_t id, int row) noexcept {
  return static_cast<int>((id >> (64 - kDigitBits * (row + 1))) &
                          (kDigitValues - 1));
}

/// Length of the shared hex-digit prefix of two ids (0..16).
[[nodiscard]] constexpr int shared_prefix(std::uint64_t a,
                                          std::uint64_t b) noexcept {
  for (int row = 0; row < kDigits; ++row) {
    if (digit_at(a, row) != digit_at(b, row)) return row;
  }
  return kDigits;
}

/// Circular numerical distance between two ids.
[[nodiscard]] constexpr std::uint64_t circular_distance(
    std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t cw = b - a;
  const std::uint64_t ccw = a - b;
  return cw < ccw ? cw : ccw;
}

/// True iff `a` is strictly a better root for `key` than `b` (closer;
/// smaller id on distance ties).
[[nodiscard]] constexpr bool closer_to(std::uint64_t key, std::uint64_t a,
                                       std::uint64_t b) noexcept {
  const auto da = circular_distance(key, a);
  const auto db = circular_distance(key, b);
  if (da != db) return da < db;
  return a < b;
}

struct PastryConfig {
  /// Leaf-set half size (L/2 per side).
  std::size_t leaf_half = 4;
  sim::SimTime leafset_period = sim::SimTime::seconds(2.0);
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  int rpc_attempts = 2;
  int lookup_retries = 3;
  bool run_maintenance = true;
};

struct PastryStats {
  std::uint64_t lookups_started = 0;
  std::uint64_t lookups_ok = 0;
  std::uint64_t lookups_failed = 0;
  RunningStats lookup_hops;
};

class PastryNode {
 public:
  using LookupCallback = std::function<void(Peer root, int hops)>;

  PastryNode(net::Network& network, net::NodeAddr self, Guid id,
             PastryConfig config, Rng rng);
  ~PastryNode();

  PastryNode(const PastryNode&) = delete;
  PastryNode& operator=(const PastryNode&) = delete;

  /// First node of a new mesh.
  void create();

  /// Join through `bootstrap`: route toward our own id collecting routing
  /// rows and the root's leaf set, then announce ourselves.
  void join(Peer bootstrap, std::function<void(bool ok)> done);

  void crash();

  /// Resolve the root (numerically closest live node) of `key`.
  void lookup(Guid key, LookupCallback cb);

  bool handle(net::NodeAddr from, net::MessagePtr& msg);

  [[nodiscard]] Guid id() const noexcept { return id_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }
  [[nodiscard]] Peer self_peer() const noexcept { return Peer{addr(), id_}; }
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const PastryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PastryConfig& config() const noexcept { return config_; }

  /// All current leaves (both sides, deduplicated).
  [[nodiscard]] std::vector<Peer> leaf_set() const;
  [[nodiscard]] Peer routing_entry(int row, int col) const {
    return table_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
  }

  /// Best next hop toward `key` per the Pastry routing rule, or kNoPeer if
  /// this node is the root as far as it can tell.
  [[nodiscard]] Peer route_step(Guid key, const std::vector<Guid>& avoid) const;

  /// True iff `key` falls within this node's leaf-set coverage, in which
  /// case the root is decided locally.
  [[nodiscard]] bool key_in_leaf_range(Guid key) const;

  /// Install exact state (instant bootstrap for experiments).
  void install_state(std::vector<Peer> leaves);

  /// Fold a peer into the leaf set / routing table if it improves them.
  void consider_peer(Peer p);

 private:
  struct LookupState {
    Guid key;
    LookupCallback cb;
    int hops = 0;
    int retries_left = 0;
    bool collect_state = false;
    std::vector<Guid> avoid;
    std::function<void(const NextHopResp&)> on_state;  // join harvesting
  };

  void lookup_restart(const std::shared_ptr<LookupState>& st);
  void lookup_ask(const std::shared_ptr<LookupState>& st, Peer target);
  void lookup_done(const std::shared_ptr<LookupState>& st, Peer root);
  void lookup_failed(const std::shared_ptr<LookupState>& st);

  /// Numerically closest to `key` among self + leaves (local root choice).
  [[nodiscard]] Peer closest_known(Guid key,
                                   const std::vector<Guid>& avoid) const;

  void on_next_hop(net::NodeAddr from, const NextHopReq& req);
  void on_leafset(net::NodeAddr from, const LeafSetReq& req);
  void on_announce(const Announce& msg);

  void start_maintenance();
  void do_leafset_exchange();
  void remove_failed(Peer p);
  void rebuild_leaves(std::vector<Peer> candidates);

  net::Network& net_;
  net::RpcEndpoint rpc_;
  Guid id_;
  PastryConfig config_;
  Rng rng_;

  bool running_ = false;
  /// Whether both leaf-set sides ever reached capacity: distinguishes a
  /// small network (partial sides = we know everyone) from sides depleted
  /// by failures (partial sides = keep routing, do not claim authority).
  bool saw_full_leafset_ = false;
  std::vector<Peer> cw_leaves_;   // clockwise (id + d), nearest first
  std::vector<Peer> ccw_leaves_;  // counterclockwise, nearest first
  std::array<std::array<Peer, kDigitValues>, kDigits> table_{};
  /// Tombstones for peers we observed dead: gossip keeps echoing them until
  /// every neighbor has pruned, so ignore re-introductions for a while.
  std::map<net::NodeAddr, sim::SimTime> dead_until_;

  std::unique_ptr<sim::PeriodicTask> leafset_task_;
  PastryStats stats_;
};

}  // namespace pgrid::pastry
