#pragma once
// Pastry mesh harness: hosts a set of PastryNodes, supports protocol joins
// and instant wiring, answers ground-truth root queries.

#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "pastry/pastry_node.h"

namespace pgrid::pastry {

class PastryHost final : public net::MessageHandler {
 public:
  PastryHost(net::Network& network, Guid id, PastryConfig config, Rng rng)
      : addr_(network.add_handler(this)),
        node_(network, addr_, id, config, rng) {}

  void on_message(net::NodeAddr from, net::MessagePtr msg) override {
    node_.handle(from, msg);
  }

  [[nodiscard]] PastryNode& node() noexcept { return node_; }
  [[nodiscard]] const PastryNode& node() const noexcept { return node_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return addr_; }

 private:
  net::NodeAddr addr_;
  PastryNode node_;
};

class PastryMesh {
 public:
  PastryMesh(net::Network& network, PastryConfig config, Rng rng);

  PastryHost& add_host(Guid id);

  /// Install exact leaf sets and routing tables into every live host.
  void wire_instantly();

  /// Ground truth: the live node numerically closest to `key`.
  [[nodiscard]] Peer oracle_root(Guid key) const;

  void crash(std::size_t index);
  void restart(std::size_t index);

  [[nodiscard]] std::size_t size() const noexcept { return hosts_.size(); }
  [[nodiscard]] PastryHost& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] bool crashed(std::size_t i) const { return !alive_.at(i); }

 private:
  net::Network& net_;
  PastryConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<PastryHost>> hosts_;
  std::vector<bool> alive_;
};

}  // namespace pgrid::pastry
