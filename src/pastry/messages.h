#pragma once
// Pastry protocol messages (Rowstron & Druschel, Middleware'01), iterative
// style: the lookup initiator drives prefix routing hop by hop. Next-hop
// responses carry the responder's relevant routing row and leaf set so a
// joining node assembles its state from the nodes along its join path (the
// classic Pastry join).

#include <cstdint>
#include <vector>

#include "chord/peer.h"
#include "net/message.h"

namespace pgrid::pastry {

using chord::Peer;
using chord::kNoPeer;

// Reuse the test tag region's neighbor: give pastry its own block above the
// grid layer's.
inline constexpr std::uint16_t kTagPastryBase = 0x500;

enum MsgType : std::uint16_t {
  kNextHopReq = kTagPastryBase + 0,
  kNextHopResp = kTagPastryBase + 1,
  kLeafSetReq = kTagPastryBase + 2,
  kLeafSetResp = kTagPastryBase + 3,
  kAnnounce = kTagPastryBase + 4,
};

struct NextHopReq final : net::Message {
  static constexpr std::uint16_t kType = kNextHopReq;
  explicit NextHopReq(Guid k) : Message(kType), key(k) {}
  Guid key;
  /// Nodes observed dead during this lookup (skipped by responders).
  std::vector<Guid> avoid;
  /// True when issued by a joining node: the response carries state.
  bool collect_state = false;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 9 + avoid.size() * 8;
  }
  PGRID_MESSAGE_CLONE(NextHopReq)
};

struct NextHopResp final : net::Message {
  static constexpr std::uint16_t kType = kNextHopResp;
  NextHopResp(bool d, Peer n) : Message(kType), done(d), node(n) {}
  bool done;   // node is the key's root (numerically closest)
  Peer node;   // or the next hop
  /// For joiners: the responder's routing row at the shared-prefix level
  /// and its leaf set (only filled when collect_state was set).
  std::vector<Peer> routing_row;
  std::vector<Peer> leaves;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 13 + (routing_row.size() + leaves.size()) * 12;
  }
  PGRID_MESSAGE_CLONE(NextHopResp)
};

/// Leaf-set maintenance: exchange leaf sets with leaf neighbors.
struct LeafSetReq final : net::Message {
  static constexpr std::uint16_t kType = kLeafSetReq;
  LeafSetReq() : Message(kType) {}
  PGRID_MESSAGE_CLONE(LeafSetReq)
};

struct LeafSetResp final : net::Message {
  static constexpr std::uint16_t kType = kLeafSetResp;
  explicit LeafSetResp(std::vector<Peer> l) : Message(kType), leaves(std::move(l)) {}
  std::vector<Peer> leaves;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return leaves.size() * 12;
  }
  PGRID_MESSAGE_CLONE(LeafSetResp)
};

/// "I exist": a joined node announces itself so others fold it into their
/// leaf sets and routing tables.
struct Announce final : net::Message {
  static constexpr std::uint16_t kType = kAnnounce;
  explicit Announce(Peer p) : Message(kType), peer(p) {}
  Peer peer;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(Announce)
};

}  // namespace pgrid::pastry
