#include "obs/registry.h"

#include <cstdio>
#include <memory>

#include "common/expects.h"
#include "common/logging.h"

namespace pgrid::obs {

double MetricsRegistry::Distribution::quantile(double q) const noexcept {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t total = hist_.total();
  if (total == 0) return 0.0;
  // Exact at the extremes (RunningStats tracks true min/max).
  if (q == 0.0) return stats_.min();
  if (q == 1.0) return stats_.max();
  const double target = q * static_cast<double>(total);
  double cum = static_cast<double>(hist_.underflow());
  if (target <= cum) return stats_.min();
  for (std::size_t i = 0; i < hist_.bucket_count(); ++i) {
    const double in_bucket = static_cast<double>(hist_.bucket(i));
    if (cum + in_bucket >= target && in_bucket > 0.0) {
      const double frac = (target - cum) / in_bucket;
      return hist_.bucket_lo(i) +
             frac * (hist_.bucket_hi(i) - hist_.bucket_lo(i));
    }
    cum += in_bucket;
  }
  return stats_.max();  // in the overflow tail
}

MetricsRegistry::Instrument* MetricsRegistry::find(
    const std::string& name) noexcept {
  for (auto& in : instruments_) {
    if (in->name == name) return in.get();
  }
  return nullptr;
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  if (Instrument* in = find(name); in != nullptr) {
    PGRID_EXPECTS(in->kind == Kind::kCounter);
    return *in->counter;
  }
  auto in = std::make_unique<Instrument>();
  in->name = name;
  in->kind = Kind::kCounter;
  in->counter = std::make_unique<Counter>();
  Counter& ref = *in->counter;
  instruments_.push_back(std::move(in));
  return ref;
}

MetricsRegistry::Distribution& MetricsRegistry::distribution(
    const std::string& name, double lo, double hi, std::size_t buckets) {
  if (Instrument* in = find(name); in != nullptr) {
    PGRID_EXPECTS(in->kind == Kind::kDistribution);
    return *in->dist;
  }
  auto in = std::make_unique<Instrument>();
  in->name = name;
  in->kind = Kind::kDistribution;
  in->dist = std::make_unique<Distribution>(lo, hi, buckets);
  Distribution& ref = *in->dist;
  instruments_.push_back(std::move(in));
  return ref;
}

void MetricsRegistry::gauge(const std::string& name, GaugeFn fn) {
  if (Instrument* in = find(name); in != nullptr) {
    PGRID_EXPECTS(in->kind == Kind::kGauge);
    in->fn = std::move(fn);
    return;
  }
  auto in = std::make_unique<Instrument>();
  in->name = name;
  in->kind = Kind::kGauge;
  in->fn = std::move(fn);
  instruments_.push_back(std::move(in));
}

bool MetricsRegistry::export_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PGRID_ERROR("obs", "cannot open %s for writing", path.c_str());
    return false;
  }
  std::fputs("name,kind,count,value,mean,stdev,min,max,p50,p99\n", f);
  for (const auto& in : instruments_) {
    switch (in->kind) {
      case Kind::kCounter:
        std::fprintf(f, "%s,counter,,%llu,,,,,,\n", in->name.c_str(),
                     static_cast<unsigned long long>(in->counter->value()));
        break;
      case Kind::kGauge:
        std::fprintf(f, "%s,gauge,,%.17g,,,,,,\n", in->name.c_str(),
                     in->fn ? in->fn() : 0.0);
        break;
      case Kind::kDistribution: {
        const RunningStats& s = in->dist->stats();
        std::fprintf(f, "%s,distribution,%zu,,%.17g,%.17g,%.17g,%.17g,"
                     "%.17g,%.17g\n",
                     in->name.c_str(), s.count(), s.mean(), s.stdev(),
                     s.min(), s.max(), in->dist->quantile(0.5),
                     in->dist->quantile(0.99));
        break;
      }
    }
  }
  std::fclose(f);
  return true;
}

std::size_t MetricsRegistry::memory_bytes() const noexcept {
  std::size_t bytes = instruments_.capacity() * sizeof(void*);
  for (const auto& in : instruments_) {
    bytes += sizeof(Instrument) + in->name.capacity();
    if (in->counter != nullptr) bytes += sizeof(Counter);
    if (in->dist != nullptr) {
      bytes += sizeof(Distribution) +
               in->dist->histogram().bucket_count() * sizeof(std::uint64_t);
    }
  }
  return bytes;
}

}  // namespace pgrid::obs
