#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "common/expects.h"
#include "common/logging.h"

namespace pgrid::obs {

namespace {

struct KindInfo {
  const char* name;
  const char* category;
};

constexpr KindInfo kKinds[] = {
    {"msg_send", "net"},          {"msg_deliver", "net"},
    {"msg_drop_dead", "net"},     {"msg_drop_loss", "net"},
    {"rpc_issue", "rpc"},         {"rpc_complete", "rpc"},
    {"rpc_timeout", "rpc"},       {"job_submit", "job"},
    {"job_resubmit", "job"},      {"job_owner", "job"},
    {"job_matched", "job"},       {"job_unmatched", "job"},
    {"job_dispatch_reject", "job"}, {"job_start", "job"},
    {"job_complete", "job"},      {"job_killed", "job"},
    {"job_result", "job"},        {"match_step", "match"},
    {"match_result", "match"},    {"overlay_lookup", "overlay"},
    {"overlay_maintain", "overlay"}, {"overlay_repair", "overlay"},
    {"heartbeat_miss", "robust"}, {"run_recovery", "robust"},
    {"owner_recovery", "robust"}, {"node_crash", "robust"},
    {"node_restart", "robust"},   {"msg_drop_partition", "fault"},
    {"msg_drop_fault", "fault"},  {"msg_duplicate", "fault"},
    {"msg_reorder", "fault"},     {"fault_partition_cut", "fault"},
    {"fault_partition_heal", "fault"}, {"fault_gray", "fault"},
    {"crash_burst", "fault"},     {"phi_suspect", "robust"},
    {"anti_entropy_repair", "robust"}, {"span_begin", "span"},
    {"span_end", "span"},
};
static_assert(sizeof(kKinds) / sizeof(kKinds[0]) ==
                  static_cast<std::size_t>(EventKind::kCount_),
              "kKinds table out of sync with EventKind");

/// Escape a string for embedding in a JSON string literal. Actor names are
/// generated ASCII, but keep the exporter robust anyway.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_for_write(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    PGRID_ERROR("obs", "cannot open %s for writing", path.c_str());
  }
  return f;
}

/// Human-readable name for a span's message tag, so Perfetto slices read
/// "grid/DispatchJob" rather than raw type numbers. The tables mirror the
/// per-layer MsgType enums; unknown tags fall back to "<layer>+<offset>".
/// Tag 0 marks a root span (no message — a client-side request lifetime).
const char* kChordTagNames[] = {"NextHopReq",    "NextHopResp",
                                "StabilizeReq",  "StabilizeResp",
                                "Notify",        "PingReq",
                                "PingResp"};
const char* kCanTagNames[] = {"RouteReq",   "RouteResp",     "JoinReq",
                              "JoinResp",   "ZoneUpdate",    "DimLoadReport",
                              "NeighborHint"};
const char* kRnTreeTagNames[] = {"AggUpdate", "TokenPass", "TokenAck",
                                 "SearchResult"};
const char* kGridTagNames[] = {
    "SubmitJob",  "SubmitAck",      "JobToOwner", "JobToOwnerAck",
    "DispatchJob", "DispatchResp",  "Heartbeat",  "HeartbeatAck",
    "JobDone",    "Result",         "OwnerHandoff", "OwnerHandoffAck",
    "JobFailed",  "WalkProbe",      "WalkResult"};

std::string span_tag_name(std::uint16_t tag) {
  struct Layer {
    std::uint16_t base;
    const char* prefix;
    const char* const* names;
    std::size_t count;
  };
  static const Layer kLayers[] = {
      {0x100, "chord", kChordTagNames,
       sizeof(kChordTagNames) / sizeof(char*)},
      {0x200, "can", kCanTagNames, sizeof(kCanTagNames) / sizeof(char*)},
      {0x300, "rn", kRnTreeTagNames,
       sizeof(kRnTreeTagNames) / sizeof(char*)},
      {0x400, "grid", kGridTagNames, sizeof(kGridTagNames) / sizeof(char*)},
  };
  if (tag == 0) return "request";
  for (const Layer& l : kLayers) {
    if (tag >= l.base && tag < l.base + 0x100) {
      const std::size_t off = tag - l.base;
      char buf[64];
      if (off < l.count) {
        std::snprintf(buf, sizeof buf, "%s/%s", l.prefix, l.names[off]);
      } else {
        std::snprintf(buf, sizeof buf, "%s+%zu", l.prefix, off);
      }
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "tag 0x%x", tag);
  return buf;
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kCount_) ? kKinds[i].name
                                                          : "unknown";
}

const char* event_kind_category(EventKind kind) noexcept {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(EventKind::kCount_) ? kKinds[i].category
                                                          : "unknown";
}

TraceBus::TraceBus(const sim::Simulator& sim, std::size_t capacity)
    : sim_(sim), ring_(capacity == 0 ? 1 : capacity) {}

const TraceEvent& TraceBus::at(std::size_t i) const {
  PGRID_EXPECTS(i < size_);
  // Oldest event sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  std::size_t idx = start + i;
  if (idx >= ring_.size()) idx -= ring_.size();
  return ring_[idx];
}

void TraceBus::clear() noexcept {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

void TraceBus::set_actor_name(std::uint32_t actor, std::string name) {
  if (actor == kNoActor) return;
  if (actor >= actor_names_.size()) actor_names_.resize(actor + 1);
  actor_names_[actor] = std::move(name);
}

const std::string* TraceBus::actor_name(std::uint32_t actor) const {
  if (actor >= actor_names_.size() || actor_names_[actor].empty()) {
    return nullptr;
  }
  return &actor_names_[actor];
}

bool TraceBus::export_jsonl(const std::string& path) const {
  FilePtr f = open_for_write(path);
  if (f == nullptr) return false;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = at(i);
    std::fprintf(
        f.get(),
        "{\"t_ns\":%" PRId64 ",\"kind\":\"%s\",\"cat\":\"%s\",\"node\":%u,"
        "\"peer\":%d,\"tag\":%u,\"a\":%" PRIu64 ",\"v\":%.17g",
        e.t_ns, event_kind_name(e.kind), event_kind_category(e.kind), e.node,
        e.peer == kNoActor ? -1 : static_cast<int>(e.peer), e.tag, e.a, e.v);
    if (e.trace_id != 0) {
      std::fprintf(f.get(),
                   ",\"trace_id\":%" PRIu64 ",\"span\":%u,\"parent\":%u",
                   e.trace_id, e.span, e.parent);
    }
    std::fputs("}\n", f.get());
  }
  // Trailing summary: same dropped count the Chrome exporter reports, so a
  // consumer of either artifact knows whether the ring wrapped.
  std::fprintf(f.get(),
               "{\"summary\":true,\"recorded\":%" PRIu64
               ",\"retained\":%zu,\"dropped\":%" PRIu64 "}\n",
               total_, size_, dropped());
  return true;
}

bool TraceBus::export_chrome_trace(const std::string& path) const {
  FilePtr f = open_for_write(path);
  if (f == nullptr) return false;
  // Pair span begin/end events by span id so each message hop (or root
  // request) renders as one complete "X" slice with its real latency, and
  // parent→child edges render as flow arrows across node tracks. Under
  // fault-plane duplication both copies end the same span; the first end
  // wins (the duplicate is visible as the hop's delivered-twice arg).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  struct SpanRef {
    std::size_t begin = static_cast<std::size_t>(-1);  // == kNone
    std::size_t end = static_cast<std::size_t>(-1);
  };
  std::unordered_map<std::uint32_t, SpanRef> spans;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = at(i);
    if (e.kind == EventKind::kSpanBegin) {
      auto& s = spans[e.span];
      if (s.begin == kNone) s.begin = i;
    } else if (e.kind == EventKind::kSpanEnd) {
      auto& s = spans[e.span];
      if (s.end == kNone) s.end = i;
    }
  }
  std::fputs("{\"traceEvents\":[\n", f.get());
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputs(",\n", f.get());
    first = false;
  };
  // Metadata: one named "thread" per actor, sorted by address.
  for (std::uint32_t actor = 0; actor < actor_names_.size(); ++actor) {
    if (actor_names_[actor].empty()) continue;
    sep();
    std::fprintf(f.get(),
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}},\n"
                 "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"sort_index\":%u}}",
                 actor, json_escape(actor_names_[actor]).c_str(), actor,
                 actor);
  }
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = at(i);
    const double ts_us = static_cast<double>(e.t_ns) / 1000.0;
    if (e.kind == EventKind::kSpanEnd) continue;  // folded into its begin
    if (e.kind == EventKind::kSpanBegin) {
      const SpanRef& s = spans[e.span];
      double dur_us = 0.0;
      bool finished = false;
      if (s.end != kNone) {
        dur_us = static_cast<double>(at(s.end).t_ns - e.t_ns) / 1000.0;
        finished = true;
      }
      sep();
      std::fprintf(f.get(),
                   "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                   "\"args\":{\"trace_id\":%" PRIu64
                   ",\"span\":%u,\"parent\":%u,\"tag\":%u,\"a\":%" PRIu64
                   ",\"finished\":%d}}",
                   span_tag_name(e.tag).c_str(), ts_us, dur_us, e.node,
                   e.trace_id, e.span, e.parent, e.tag, e.a,
                   finished ? 1 : 0);
      // Causal edge parent → this span, drawn as a flow arrow between the
      // two slices (id = child span, unique per edge).
      if (e.parent != 0) {
        const auto p = spans.find(e.parent);
        if (p != spans.end() && p->second.begin != kNone) {
          const TraceEvent& pb = at(p->second.begin);
          sep();
          std::fprintf(f.get(),
                       "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\","
                       "\"id\":%u,\"ts\":%.3f,\"pid\":1,\"tid\":%u},\n"
                       "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\","
                       "\"bp\":\"e\",\"id\":%u,\"ts\":%.3f,\"pid\":1,"
                       "\"tid\":%u}",
                       e.span,
                       static_cast<double>(pb.t_ns) / 1000.0, pb.node,
                       e.span, ts_us, e.node);
        }
      }
      continue;
    }
    sep();
    if (e.kind == EventKind::kJobComplete || e.kind == EventKind::kJobKilled) {
      // `v` carries the execution duration in seconds: render the whole run
      // of the job as a complete ("X") slice on the run node's track.
      const double dur_us = e.v * 1e6;
      std::fprintf(f.get(),
                   "{\"name\":\"job %" PRIu64
                   "\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":%.3f,"
                   "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"seq\":%"
                   PRIu64 ",\"outcome\":\"%s\"}}",
                   e.a, ts_us - dur_us, dur_us, e.node, e.a,
                   e.kind == EventKind::kJobComplete ? "completed" : "killed");
      continue;
    }
    std::fprintf(f.get(),
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"peer\":%d,"
                 "\"tag\":%u,\"a\":%" PRIu64 ",\"v\":%.17g}}",
                 event_kind_name(e.kind), event_kind_category(e.kind), ts_us,
                 e.node, e.peer == kNoActor ? -1 : static_cast<int>(e.peer),
                 e.tag, e.a, e.v);
  }
  std::fprintf(f.get(),
               "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
               "\"dropped_events\":%" PRIu64 "}}\n",
               dropped());
  return true;
}

}  // namespace pgrid::obs
