#include "obs/memory.h"

#include <cstdio>

namespace pgrid::obs {

namespace {
constexpr const char* kNames[] = {
    "sim_events", "msg_pool", "overlay_tables", "grid_state",
    "rpc_pending", "trace_ring", "metrics",
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) == MemoryAccountant::kClasses,
              "kNames table out of sync with MemClass");

double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}
}  // namespace

const char* mem_class_name(MemClass c) noexcept {
  const auto i = static_cast<std::size_t>(c);
  return i < MemoryAccountant::kClasses ? kNames[i] : "unknown";
}

std::string MemoryAccountant::summary() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "mem %.1f MB (", mb(total()));
  std::string out = buf;
  bool first = true;
  for (std::size_t i = 0; i < kClasses; ++i) {
    if (bytes_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof buf, "%s %.1f MB", kNames[i], mb(bytes_[i]));
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace pgrid::obs
