#pragma once
// Causal trace context: the compact correlation header carried on every
// in-flight Message and RPC continuation (DESIGN.md §14).
//
// A sampled request (1-in-N job submissions, ObsConfig::trace_sample_every)
// gets a fresh trace_id at its root; every message hop it causes gets a
// fresh span_id whose parent_span is the span that was current when the
// message was sent. Span begin/end events on the TraceBus then reconstruct
// the full cross-node causal tree — matchmaking lookup, dispatch, result —
// with per-hop latencies. trace_id == 0 means "not sampled": the struct is
// 16 bytes of zeroes and every instrumentation point is a single compare.

#include <cstdint>

namespace pgrid::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;     // 0 = not sampled / no trace
  std::uint32_t span_id = 0;      // unique within the run
  std::uint32_t parent_span = 0;  // 0 = root span

  [[nodiscard]] bool sampled() const noexcept { return trace_id != 0; }
};

}  // namespace pgrid::obs
