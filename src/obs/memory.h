#pragma once
// Per-subsystem memory accounting (DESIGN.md §14, ROADMAP item 1).
//
// Rather than instrumenting every allocation, each pooled or table-backed
// component exposes a memory_bytes() capacity snapshot (event-pool slabs,
// message-pool caches, routing/neighbor tables, RPC pending slabs, trace
// ring, metrics state). GridSystem::memory_breakdown() folds those into a
// MemoryAccountant — one counter per subsystem class — surfaced in
// RunProfile, sampler rows (mem/<class>), and every BENCH_*.json row. The
// walk is O(nodes) and runs only at sample/summary points, so the hot path
// pays nothing.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pgrid::obs {

enum class MemClass : std::uint8_t {
  kSimEvents,     // simulator slab, heap, timer lanes
  kMessagePool,   // thread-local datagram slabs (cached blocks)
  kOverlayTables, // Chord fingers/successors, CAN zones/neighbors, RN-Tree
  kGridState,     // job queues, owned-job tables, client pending maps
  kRpcPending,    // RPC pending-call slabs and backoff sets
  kTraceRing,     // trace bus ring + actor names
  kMetrics,       // collector, sampler rows, registry instruments
  kCount_,        // sentinel
};

[[nodiscard]] const char* mem_class_name(MemClass c) noexcept;

class MemoryAccountant {
 public:
  static constexpr std::size_t kClasses =
      static_cast<std::size_t>(MemClass::kCount_);

  void add(MemClass c, std::uint64_t bytes) noexcept {
    bytes_[static_cast<std::size_t>(c)] += bytes;
  }
  void clear() noexcept { bytes_.fill(0); }

  [[nodiscard]] std::uint64_t of(MemClass c) const noexcept {
    return bytes_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (std::uint64_t b : bytes_) t += b;
    return t;
  }

  /// Element-wise maximum — RunProfile keeps the peak across snapshots.
  void merge_peak(const MemoryAccountant& other) noexcept {
    for (std::size_t i = 0; i < kClasses; ++i) {
      if (other.bytes_[i] > bytes_[i]) bytes_[i] = other.bytes_[i];
    }
  }

  /// e.g. "mem 12.4 MB (sim_events 3.1 MB, overlay_tables 5.0 MB, ...)".
  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::uint64_t, kClasses> bytes_{};
};

}  // namespace pgrid::obs
