#pragma once
// Observability configuration: carried inside GridConfig as the `obs`
// section. Everything defaults to off so simulation hot paths pay at most a
// null-pointer test per instrumentation point.

#include <cstddef>
#include <string>

namespace pgrid::obs {

struct ObsConfig {
  /// Record trace events into the ring buffer.
  bool trace = false;

  /// Ring-buffer capacity in events (~40 bytes each). When full the oldest
  /// events are overwritten; exporters note the dropped count.
  std::size_t trace_capacity = 1u << 20;

  /// Causal tracing sample rate: every N-th job submission starts a
  /// cross-node span tree (TraceContext propagated hop by hop). 0 disables
  /// span tracing; requires `trace` for the events to be retained.
  std::uint64_t trace_sample_every = 0;

  /// Sampling period for the time-series gauges, in simulated seconds.
  /// <= 0 disables the sampler.
  double sample_period_sec = 0.0;

  /// Replace the Collector's per-job record vector with streaming
  /// aggregates (RunningStats + fixed-bucket histogram): million-job runs
  /// hold O(buckets), not O(jobs). Per-job accessors (job(), wait_times())
  /// are unavailable in this mode.
  bool streaming_metrics = false;

  /// Output paths; empty means "do not write this artifact".
  std::string chrome_trace_path;   // Chrome trace_event JSON (Perfetto)
  std::string jsonl_path;          // one JSON object per trace event
  std::string timeseries_csv_path; // sampler rows
  std::string metrics_csv_path;    // final MetricsRegistry snapshot

  [[nodiscard]] bool any_output() const {
    return !chrome_trace_path.empty() || !jsonl_path.empty() ||
           !timeseries_csv_path.empty() || !metrics_csv_path.empty();
  }
};

}  // namespace pgrid::obs
