#pragma once
// Observability configuration: carried inside GridConfig as the `obs`
// section. Everything defaults to off so simulation hot paths pay at most a
// null-pointer test per instrumentation point.

#include <cstddef>
#include <string>

namespace pgrid::obs {

struct ObsConfig {
  /// Record trace events into the ring buffer.
  bool trace = false;

  /// Ring-buffer capacity in events (~40 bytes each). When full the oldest
  /// events are overwritten; exporters note the dropped count.
  std::size_t trace_capacity = 1u << 20;

  /// Sampling period for the time-series gauges, in simulated seconds.
  /// <= 0 disables the sampler.
  double sample_period_sec = 0.0;

  /// Output paths; empty means "do not write this artifact".
  std::string chrome_trace_path;   // Chrome trace_event JSON (Perfetto)
  std::string jsonl_path;          // one JSON object per trace event
  std::string timeseries_csv_path; // sampler rows

  [[nodiscard]] bool any_output() const {
    return !chrome_trace_path.empty() || !jsonl_path.empty() ||
           !timeseries_csv_path.empty();
  }
};

}  // namespace pgrid::obs
