#pragma once
// Run profiling: wall-clock phase timers and simulator throughput.
//
// A RunProfile accumulates named wall-clock phases (build / run / drain) and
// a count of simulator events attributed to them, yielding the
// events-per-wall-second figure surfaced in every BENCH_*.json row. This is
// real time, not sim time: it measures the simulator itself.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/memory.h"

namespace pgrid::obs {

class RunProfile {
 public:
  /// RAII wall-clock timer for one phase; accumulates on destruction.
  class Timer {
   public:
    Timer(RunProfile& profile, const char* phase)
        : profile_(profile),
          phase_(phase),
          start_(std::chrono::steady_clock::now()) {}
    ~Timer() {
      const auto end = std::chrono::steady_clock::now();
      profile_.add(phase_, std::chrono::duration<double>(end - start_).count());
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

   private:
    RunProfile& profile_;
    const char* phase_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Accumulate `wall_sec` into `phase` (created on first use).
  void add(std::string_view phase, double wall_sec);

  /// Attribute simulator events to the profile (delta of Simulator::executed).
  void add_events(std::uint64_t n) noexcept { events_ += n; }

  /// Record the simulator's queue working-set peaks (high-water of pending
  /// events and of cancelled-event tombstones); keeps the max across calls.
  void note_queue_peaks(std::size_t queue_peak,
                        std::size_t tombstone_peak) noexcept {
    if (queue_peak > queue_peak_) queue_peak_ = queue_peak;
    if (tombstone_peak > tombstone_peak_) tombstone_peak_ = tombstone_peak;
  }

  /// Record a per-subsystem memory snapshot; keeps the element-wise peak
  /// across calls (GridSystem snapshots at sample points and at run end).
  void note_memory(const MemoryAccountant& snapshot) noexcept {
    memory_.merge_peak(snapshot);
    memory_noted_ = true;
  }
  [[nodiscard]] bool has_memory() const noexcept { return memory_noted_; }
  [[nodiscard]] const MemoryAccountant& memory() const noexcept {
    return memory_;
  }

  [[nodiscard]] double phase_sec(std::string_view phase) const noexcept;
  [[nodiscard]] double total_sec() const noexcept;
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::size_t queue_peak() const noexcept { return queue_peak_; }
  [[nodiscard]] std::size_t tombstone_peak() const noexcept {
    return tombstone_peak_;
  }

  /// Simulator events per wall-clock second of the "run" phase (0 when the
  /// run phase has not been timed).
  [[nodiscard]] double events_per_sec() const noexcept;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases()
      const noexcept {
    return phases_;
  }

  /// e.g. "build 0.012s, run 1.842s | 1523412 events, 826k ev/s"
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::pair<std::string, double>> phases_;
  std::uint64_t events_ = 0;
  std::size_t queue_peak_ = 0;
  std::size_t tombstone_peak_ = 0;
  MemoryAccountant memory_;
  bool memory_noted_ = false;
};

}  // namespace pgrid::obs
