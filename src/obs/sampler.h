#pragma once
// Time-series sampler: snapshots registered gauges every sim-interval.
//
// Gauges are sampled as-is; rate columns wrap a monotonic counter and report
// its per-second delta (the first sample, with nothing to difference
// against, reports 0). Rows are kept in memory (8 bytes per cell) and
// exported as CSV for plotting.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace pgrid::obs {

class TimeSeriesSampler {
 public:
  using GaugeFn = std::function<double()>;

  TimeSeriesSampler(sim::Simulator& sim, sim::SimTime period);

  /// Register columns before start(); names become the CSV header.
  void add_gauge(std::string name, GaugeFn fn);
  void add_rate(std::string name, GaugeFn counter_fn);

  /// Register every instrument of `registry` as columns: counters become
  /// per-second rate columns, gauges become gauge columns, distributions
  /// contribute "<name>.mean" and "<name>.count_per_sec". The registry must
  /// outlive the sampler.
  void add_registry(const MetricsRegistry& registry);

  /// Begin sampling: one row immediately, then one per period.
  void start();
  void stop();

  [[nodiscard]] sim::SimTime period() const noexcept { return period_; }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept {
    return times_sec_.size();
  }
  [[nodiscard]] const std::string& column_name(std::size_t col) const {
    return columns_[col].name;
  }
  [[nodiscard]] double row_time_sec(std::size_t row) const {
    return times_sec_[row];
  }
  [[nodiscard]] double value(std::size_t row, std::size_t col) const {
    return data_[row * columns_.size() + col];
  }

  bool export_csv(const std::string& path) const;

  /// Bytes held by the sample matrix and column table (memory accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return data_.capacity() * sizeof(double) +
           times_sec_.capacity() * sizeof(double) +
           columns_.capacity() * sizeof(Column);
  }

 private:
  void sample_once();

  struct Column {
    std::string name;
    GaugeFn fn;
    bool rate = false;
    double last = 0.0;
    bool primed = false;
  };

  sim::Simulator& sim_;
  sim::SimTime period_;
  std::vector<Column> columns_;
  std::vector<double> times_sec_;
  std::vector<double> data_;  // row-major, row_count x column_count
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace pgrid::obs
