#include "obs/profile.h"

#include <cinttypes>
#include <cstdio>

namespace pgrid::obs {

void RunProfile::add(std::string_view phase, double wall_sec) {
  for (auto& [name, sec] : phases_) {
    if (name == phase) {
      sec += wall_sec;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), wall_sec);
}

double RunProfile::phase_sec(std::string_view phase) const noexcept {
  for (const auto& [name, sec] : phases_) {
    if (name == phase) return sec;
  }
  return 0.0;
}

double RunProfile::total_sec() const noexcept {
  double total = 0.0;
  for (const auto& [name, sec] : phases_) total += sec;
  return total;
}

double RunProfile::events_per_sec() const noexcept {
  const double run = phase_sec("run");
  return run > 0.0 ? static_cast<double>(events_) / run : 0.0;
}

std::string RunProfile::summary() const {
  std::string out;
  char buf[128];
  for (const auto& [name, sec] : phases_) {
    std::snprintf(buf, sizeof buf, "%s%s %.3fs", out.empty() ? "" : ", ",
                  name.c_str(), sec);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%s%" PRIu64 " events, %.0fk ev/s",
                out.empty() ? "" : " | ", events_, events_per_sec() / 1000.0);
  out += buf;
  if (queue_peak_ > 0) {
    std::snprintf(buf, sizeof buf, ", queue peak %zu (+%zu tombstones)",
                  queue_peak_, tombstone_peak_);
    out += buf;
  }
  if (memory_noted_) {
    out += " | ";
    out += memory_.summary();
  }
  return out;
}

}  // namespace pgrid::obs
