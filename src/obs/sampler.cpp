#include "obs/sampler.h"

#include <cstdio>
#include <utility>

#include "common/expects.h"
#include "common/logging.h"

namespace pgrid::obs {

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator& sim, sim::SimTime period)
    : sim_(sim), period_(period) {
  PGRID_EXPECTS(period.ns() > 0);
}

void TimeSeriesSampler::add_gauge(std::string name, GaugeFn fn) {
  PGRID_EXPECTS(task_ == nullptr);
  PGRID_EXPECTS(fn != nullptr);
  columns_.push_back(Column{std::move(name), std::move(fn), false, 0.0, false});
}

void TimeSeriesSampler::add_rate(std::string name, GaugeFn counter_fn) {
  PGRID_EXPECTS(task_ == nullptr);
  PGRID_EXPECTS(counter_fn != nullptr);
  columns_.push_back(
      Column{std::move(name), std::move(counter_fn), true, 0.0, false});
}

void TimeSeriesSampler::add_registry(const MetricsRegistry& registry) {
  registry.for_each([this](const std::string& name, MetricsRegistry::Kind kind,
                           const MetricsRegistry::Counter* counter,
                           const MetricsRegistry::GaugeFn& fn,
                           const MetricsRegistry::Distribution* dist) {
    switch (kind) {
      case MetricsRegistry::Kind::kCounter:
        add_rate(name + "_per_sec", [counter] {
          return static_cast<double>(counter->value());
        });
        break;
      case MetricsRegistry::Kind::kGauge:
        add_gauge(name, fn);
        break;
      case MetricsRegistry::Kind::kDistribution:
        add_gauge(name + ".mean", [dist] { return dist->stats().mean(); });
        add_rate(name + ".count_per_sec", [dist] {
          return static_cast<double>(dist->stats().count());
        });
        break;
    }
  });
}

void TimeSeriesSampler::start() {
  if (task_ != nullptr) return;
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, period_, [this] { sample_once(); });
}

void TimeSeriesSampler::stop() {
  if (task_ != nullptr) task_->stop();
}

void TimeSeriesSampler::sample_once() {
  times_sec_.push_back(sim_.now().sec());
  const double period_sec = period_.sec();
  for (Column& c : columns_) {
    const double raw = c.fn();
    double out = raw;
    if (c.rate) {
      out = c.primed ? (raw - c.last) / period_sec : 0.0;
      c.last = raw;
      c.primed = true;
    }
    data_.push_back(out);
  }
}

bool TimeSeriesSampler::export_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PGRID_ERROR("obs", "cannot open %s for writing", path.c_str());
    return false;
  }
  std::fputs("t_sec", f);
  for (const Column& c : columns_) std::fprintf(f, ",%s", c.name.c_str());
  std::fputc('\n', f);
  for (std::size_t row = 0; row < row_count(); ++row) {
    std::fprintf(f, "%.6f", times_sec_[row]);
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      std::fprintf(f, ",%.17g", value(row, col));
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

}  // namespace pgrid::obs
