#pragma once
// Streaming metrics registry: labeled counters, gauges, and fixed-bucket
// histograms, registered once per subsystem and snapshotted by the
// TimeSeriesSampler (DESIGN.md §14).
//
// Instruments are cheap value cells built on common/stats primitives — no
// maps or allocation on the observation path. Registration (rare, build
// time) is a linear name lookup; observation is an inline add. The registry
// owns its instruments behind stable pointers, so subsystems keep a raw
// Counter*/Histogram* and never touch the registry again.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"

namespace pgrid::obs {

class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  /// Monotone counter (events, bytes, drops). Sampled as a per-second rate
  /// by the TimeSeriesSampler and as a total in the final snapshot.
  class Counter {
   public:
    void inc(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  /// Streaming distribution: Welford stats plus a fixed-width histogram.
  /// O(buckets) memory regardless of observation count.
  class Distribution {
   public:
    Distribution(double lo, double hi, std::size_t buckets)
        : hist_(lo, hi, buckets) {}

    void observe(double x) noexcept {
      stats_.add(x);
      hist_.add(x);
    }
    [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Histogram& histogram() const noexcept { return hist_; }
    /// Quantile estimate by linear interpolation within the owning bucket.
    [[nodiscard]] double quantile(double q) const noexcept;

   private:
    RunningStats stats_;
    Histogram hist_;
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kDistribution };

  /// Find-or-create by name. Names are hierarchical by convention
  /// ("pool/fresh", "mem/event_pool"); re-registering an existing name
  /// returns the same instrument (lo/hi/buckets of the first call win).
  Counter& counter(const std::string& name);
  Distribution& distribution(const std::string& name, double lo, double hi,
                             std::size_t buckets);
  /// Callback gauge (sampled at snapshot time). Re-registering replaces fn.
  void gauge(const std::string& name, GaugeFn fn);

  [[nodiscard]] std::size_t size() const noexcept {
    return instruments_.size();
  }

  /// Visit every instrument in registration order.
  /// fn(name, kind, counter_or_null, gauge_value_fn_or_null, dist_or_null).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& in : instruments_) {
      fn(in->name, in->kind, in->counter.get(), in->fn, in->dist.get());
    }
  }

  /// Final snapshot as CSV: name,kind,count,value,mean,stdev,min,max,p50,p99.
  /// Counters put their total in `value`; gauges their sampled value;
  /// distributions fill the statistics columns.
  bool export_csv(const std::string& path) const;

  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct Instrument {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    GaugeFn fn;
    std::unique_ptr<Distribution> dist;
  };

  Instrument* find(const std::string& name) noexcept;

  std::vector<std::unique_ptr<Instrument>> instruments_;
};

}  // namespace pgrid::obs
