#pragma once
// Trace bus: typed, sim-timestamped events in a per-run ring buffer.
//
// Producers call record() through the PGRID_TRACE_EVENT macro, which is a
// null-pointer test when tracing is wired but off and compiles away entirely
// under -DPGRID_OBS_DISABLED. Events are fixed-size (no allocation on the
// hot path); the ring overwrites the oldest events when full and counts what
// it dropped. Exporters emit JSONL (one object per event) and Chrome
// trace_event JSON (one "thread" per node, viewable in Perfetto or
// chrome://tracing).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_context.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace pgrid::obs {

/// Actor id for "no peer involved" (fits any NodeAddr-sized field).
inline constexpr std::uint32_t kNoActor = 0xffffffffu;

enum class EventKind : std::uint8_t {
  // network
  kMsgSend = 0,
  kMsgDeliver,
  kMsgDropDead,
  kMsgDropLoss,
  // rpc
  kRpcIssue,
  kRpcComplete,
  kRpcTimeout,
  // job lifecycle
  kJobSubmit,
  kJobResubmit,
  kJobOwner,
  kJobMatched,
  kJobUnmatched,
  kJobDispatchReject,
  kJobStart,
  kJobComplete,
  kJobKilled,
  kJobResult,
  // matchmaking search
  kMatchStep,
  kMatchResult,
  // overlay
  kOverlayLookup,
  kOverlayMaintain,
  kOverlayRepair,
  // robustness
  kHeartbeatMiss,
  kRunRecovery,
  kOwnerRecovery,
  kNodeCrash,
  kNodeRestart,
  // fault plane
  kMsgDropPartition,   // blocked by an active partition
  kMsgDropFault,       // link/gray/congestion loss
  kMsgDuplicate,       // second copy injected
  kMsgReorder,         // reorder jitter applied
  kFaultPartitionCut,  // tag: 1 = one-way; a: partition id; v: member count
  kFaultPartitionHeal, // a: partition id
  kFaultGray,          // tag: 1 = set, 0 = cleared; v: latency scale
  kCrashBurst,         // a: members crashed
  // self-healing (PR 7)
  kPhiSuspect,         // tag: protocol (1 chord, 2 can, 3 rntree); v: φ
  kAntiEntropyRepair,  // tag: 1 owner audit, 2 can gap, 3 succ refresh,
                       // 4 token regenerated; a: job seq / peer
  // causal spans (trace/span fields identify the span; see TraceContext)
  kSpanBegin,  // message handed to the network / root request started
  kSpanEnd,    // message delivered / root request finished

  kCount_,  // sentinel
};

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;
[[nodiscard]] const char* event_kind_category(EventKind kind) noexcept;

/// One trace record. Field meaning is kind-specific by convention:
/// `node` is the acting node's address, `peer` the other party (or
/// kNoActor), `tag` a message type / sub-kind / hop count, `a` a correlation
/// value (job seq, rpc id, search id), `v` a measurement (bytes, seconds,
/// queue depth, candidate count).
struct TraceEvent {
  std::int64_t t_ns = 0;
  std::uint64_t a = 0;
  double v = 0.0;
  /// Causal attribution: the trace/span this event happened under (zero when
  /// no sampled trace was active). For kSpanBegin/kSpanEnd, `span`/`parent`
  /// identify the span itself.
  std::uint64_t trace_id = 0;
  std::uint32_t span = 0;
  std::uint32_t parent = 0;
  std::uint32_t node = kNoActor;
  std::uint32_t peer = kNoActor;
  EventKind kind = EventKind::kMsgSend;
  std::uint16_t tag = 0;
};

class TraceBus {
 public:
  TraceBus(const sim::Simulator& sim, std::size_t capacity);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  void record(EventKind kind, std::uint32_t node,
              std::uint32_t peer = kNoActor, std::uint16_t tag = 0,
              std::uint64_t a = 0, double v = 0.0) noexcept {
    // Plain events inherit the current span for causal attribution: an event
    // recorded while a traced message's handler runs belongs to that span.
    record_impl(kind, current_, node, peer, tag, a, v);
  }

  /// Record a span begin/end (or any event) under an explicit context — used
  /// where the span is the message's, not the ambient one.
  void record_span(EventKind kind, const TraceContext& ctx, std::uint32_t node,
                   std::uint32_t peer = kNoActor, std::uint16_t tag = 0,
                   std::uint64_t a = 0, double v = 0.0) noexcept {
    record_impl(kind, ctx, node, peer, tag, a, v);
  }

  // --- causal tracing ------------------------------------------------------
  /// Enable span sampling: every `every`-th root request (see
  /// maybe_start_trace) gets a trace. 0 disables causal tracing entirely.
  void set_trace_sampling(std::uint64_t every) noexcept {
    sample_every_ = every;
  }
  [[nodiscard]] std::uint64_t trace_sampling() const noexcept {
    return sample_every_;
  }

  /// Called at a root request site (job submission). Returns a fresh sampled
  /// context for 1-in-N calls, an empty context otherwise.
  [[nodiscard]] TraceContext maybe_start_trace() noexcept {
    if (sample_every_ == 0) return {};
    if (root_counter_++ % sample_every_ != 0) return {};
    TraceContext ctx;
    ctx.trace_id = ++next_trace_id_;
    ctx.span_id = ++next_span_id_;
    ctx.parent_span = 0;
    return ctx;
  }

  /// Child context of `parent`: same trace, fresh span. Empty in, empty out.
  [[nodiscard]] TraceContext child_of(const TraceContext& parent) noexcept {
    if (!parent.sampled()) return {};
    return TraceContext{parent.trace_id, ++next_span_id_, parent.span_id};
  }

  /// The span currently executing (installed by SpanScope around message
  /// handlers); empty when no sampled trace is active.
  [[nodiscard]] const TraceContext& current() const noexcept {
    return current_;
  }
  [[nodiscard]] std::uint64_t traces_started() const noexcept {
    return next_trace_id_;
  }

  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded over the run, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size_;
  }

  /// i-th retained event, oldest first (i in [0, size())).
  [[nodiscard]] const TraceEvent& at(std::size_t i) const;

  void clear() noexcept;

  /// Human-readable name for an actor ("node 3", "client 17"); used for
  /// Chrome-trace thread names.
  void set_actor_name(std::uint32_t actor, std::string name);
  [[nodiscard]] const std::string* actor_name(std::uint32_t actor) const;

  /// Exporters return false (and log) on I/O failure. Both report the
  /// ring's dropped-event count: JSONL as a trailing `{"summary":true,...}`
  /// line, Chrome trace in otherData.dropped_events.
  bool export_jsonl(const std::string& path) const;
  bool export_chrome_trace(const std::string& path) const;

  /// Bytes held by the ring and actor-name table (memory accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t names = actor_names_.capacity() * sizeof(std::string);
    for (const auto& n : actor_names_) names += n.capacity();
    return ring_.capacity() * sizeof(TraceEvent) + names;
  }

 private:
  friend class SpanScope;

  void record_impl(EventKind kind, const TraceContext& ctx, std::uint32_t node,
                   std::uint32_t peer, std::uint16_t tag, std::uint64_t a,
                   double v) noexcept {
    if (!enabled_) return;
    TraceEvent& e = ring_[head_];
    e.t_ns = sim_.now().ns();
    e.a = a;
    e.v = v;
    e.trace_id = ctx.trace_id;
    e.span = ctx.span_id;
    e.parent = ctx.parent_span;
    e.node = node;
    e.peer = peer;
    e.kind = kind;
    e.tag = tag;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) ++size_;
    ++total_;
  }

  const sim::Simulator& sim_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // next slot to write
  std::size_t size_ = 0;   // retained events
  std::uint64_t total_ = 0;
  bool enabled_ = true;
  std::vector<std::string> actor_names_;
  // Causal-tracing state: monotone id wells plus the ambient span.
  std::uint64_t sample_every_ = 0;
  std::uint64_t root_counter_ = 0;
  std::uint64_t next_trace_id_ = 0;
  std::uint32_t next_span_id_ = 0;
  TraceContext current_{};
};

/// RAII ambient-span installer: while alive, TraceBus::current() returns
/// `ctx` (and record() attributes events to it). Null bus or unsampled ctx
/// makes this a no-op, so call sites need no branches of their own.
class SpanScope {
 public:
  SpanScope(TraceBus* bus, const TraceContext& ctx) noexcept
      : bus_(ctx.sampled() ? bus : nullptr) {
    if (bus_ != nullptr) {
      saved_ = bus_->current_;
      bus_->current_ = ctx;
    }
  }
  ~SpanScope() {
    if (bus_ != nullptr) bus_->current_ = saved_;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceBus* bus_;
  TraceContext saved_{};
};

}  // namespace pgrid::obs

// Instrumentation entry point: `bus` is a (possibly null) obs::TraceBus*.
// Wired-but-off costs one branch; PGRID_OBS_DISABLED removes the call site.
#ifndef PGRID_OBS_DISABLED
#define PGRID_TRACE_EVENT(bus, ...)                       \
  do {                                                    \
    ::pgrid::obs::TraceBus* pgrid_tb_ = (bus);            \
    if (pgrid_tb_ != nullptr) pgrid_tb_->record(__VA_ARGS__); \
  } while (0)
#else
#define PGRID_TRACE_EVENT(bus, ...) \
  do {                              \
  } while (0)
#endif
