#pragma once
// Workload generation (§3.3): the two experiment axes are
//   - clustered vs mixed node capabilities and job constraints, and
//   - lightly (p=0.4 -> avg 1.2 of 3) vs heavily (p=0.8 -> avg 2.4 of 3)
//     constrained jobs,
// with Poisson arrivals and exponential service times.
//
// Joint satisfiability: each job's constraint values are copied from a
// randomly drawn "template" node, so at least one node in the system can run
// every job (the paper's simulations never contain impossible jobs).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "grid/resources.h"

namespace pgrid::workload {

enum class Mix { kClustered, kMixed };

[[nodiscard]] const char* mix_name(Mix m) noexcept;

struct WorkloadSpec {
  std::size_t node_count = 1000;
  std::size_t job_count = 5000;
  Mix node_mix = Mix::kMixed;
  Mix job_mix = Mix::kMixed;
  /// Per-resource probability of being constrained (paper: 0.4 light,
  /// 0.8 heavy over 3 resources).
  double constraint_probability = 0.4;
  double mean_runtime_sec = 100.0;
  double mean_interarrival_sec = 0.1;
  /// Equivalence classes for the clustered variants.
  std::size_t node_classes = 5;
  std::size_t job_classes = 5;
  std::size_t client_count = 4;
  std::uint64_t seed = 1;
};

struct JobSpec {
  double arrival_sec = 0.0;
  grid::Constraints constraints;
  double runtime_sec = 0.0;
  /// Runtime declared at submission (0 = honest); a runaway job declares
  /// less than it actually uses (§5 quota experiments).
  double declared_runtime_sec = 0.0;
  double output_kb = 2.0;
  std::uint32_t client = 0;
};

struct Workload {
  WorkloadSpec spec;
  std::vector<grid::ResourceVector> node_caps;  // [node_count]
  std::vector<JobSpec> jobs;                    // sorted by arrival_sec

  /// True iff some node satisfies every job (sanity invariant).
  [[nodiscard]] bool all_jobs_satisfiable() const;
};

[[nodiscard]] Workload generate(const WorkloadSpec& spec);

/// The paper's four workload quadrants, in presentation order.
struct Quadrant {
  Mix node_mix;
  Mix job_mix;
  const char* label;
};
[[nodiscard]] const std::vector<Quadrant>& paper_quadrants();

}  // namespace pgrid::workload
