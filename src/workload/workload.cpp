#include "workload/workload.h"

#include <algorithm>

#include "common/expects.h"

namespace pgrid::workload {

using grid::Constraints;
using grid::ResourceLadder;
using grid::ResourceVector;
using grid::kNumResources;

const char* mix_name(Mix m) noexcept {
  return m == Mix::kClustered ? "clustered" : "mixed";
}

namespace {

ResourceVector random_caps(Rng& rng) {
  ResourceVector caps;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto& ladder = ResourceLadder::values(r);
    caps.v[r] = ladder[rng.index(ladder.size())];
  }
  return caps;
}

std::vector<ResourceVector> generate_node_caps(const WorkloadSpec& spec,
                                               Rng& rng) {
  std::vector<ResourceVector> caps;
  caps.reserve(spec.node_count);
  if (spec.node_mix == Mix::kMixed) {
    for (std::size_t i = 0; i < spec.node_count; ++i) {
      caps.push_back(random_caps(rng));
    }
  } else {
    // Clustered: a small number of identical-machine classes.
    std::vector<ResourceVector> classes;
    classes.reserve(spec.node_classes);
    for (std::size_t c = 0; c < spec.node_classes; ++c) {
      classes.push_back(random_caps(rng));
    }
    for (std::size_t i = 0; i < spec.node_count; ++i) {
      caps.push_back(classes[rng.index(classes.size())]);
    }
  }
  return caps;
}

/// Constraint set whose values come from one concrete node, so that node
/// (at least) satisfies the whole set.
Constraints constraints_from_template(const ResourceVector& tmpl, double p,
                                      Rng& rng) {
  Constraints c;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    if (rng.bernoulli(p)) {
      c.active[r] = true;
      c.min[r] = tmpl.v[r];
    }
  }
  return c;
}

}  // namespace

Workload generate(const WorkloadSpec& spec) {
  PGRID_EXPECTS(spec.node_count >= 1);
  PGRID_EXPECTS(spec.client_count >= 1);
  PGRID_EXPECTS(spec.constraint_probability >= 0.0 &&
                spec.constraint_probability <= 1.0);
  PGRID_EXPECTS(spec.mean_runtime_sec > 0.0);
  PGRID_EXPECTS(spec.mean_interarrival_sec > 0.0);

  Rng rng{mix64(spec.seed) ^ 0x9e3779b97f4a7c15ULL};
  Workload w;
  w.spec = spec;
  w.node_caps = generate_node_caps(spec, rng);

  // Job constraint classes for the clustered-job variant.
  std::vector<Constraints> job_classes;
  if (spec.job_mix == Mix::kClustered) {
    job_classes.reserve(spec.job_classes);
    for (std::size_t c = 0; c < spec.job_classes; ++c) {
      const auto& tmpl = w.node_caps[rng.index(w.node_caps.size())];
      job_classes.push_back(constraints_from_template(
          tmpl, spec.constraint_probability, rng));
    }
  }

  double clock = 0.0;
  w.jobs.reserve(spec.job_count);
  for (std::size_t j = 0; j < spec.job_count; ++j) {
    clock += rng.exponential(spec.mean_interarrival_sec);
    JobSpec job;
    job.arrival_sec = clock;
    job.runtime_sec = rng.exponential(spec.mean_runtime_sec);
    job.client = static_cast<std::uint32_t>(rng.index(spec.client_count));
    if (spec.job_mix == Mix::kClustered) {
      job.constraints = job_classes[rng.index(job_classes.size())];
    } else {
      const auto& tmpl = w.node_caps[rng.index(w.node_caps.size())];
      job.constraints = constraints_from_template(
          tmpl, spec.constraint_probability, rng);
    }
    w.jobs.push_back(job);
  }
  return w;
}

bool Workload::all_jobs_satisfiable() const {
  for (const JobSpec& job : jobs) {
    bool ok = false;
    for (const ResourceVector& caps : node_caps) {
      if (job.constraints.satisfied_by(caps)) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

const std::vector<Quadrant>& paper_quadrants() {
  static const std::vector<Quadrant> quadrants{
      {Mix::kClustered, Mix::kClustered, "clustered nodes / clustered jobs"},
      {Mix::kClustered, Mix::kMixed, "clustered nodes / mixed jobs"},
      {Mix::kMixed, Mix::kClustered, "mixed nodes / clustered jobs"},
      {Mix::kMixed, Mix::kMixed, "mixed nodes / mixed jobs"},
  };
  return quadrants;
}

}  // namespace pgrid::workload
