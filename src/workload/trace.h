#pragma once
// Workload trace persistence: save/load the exact node capabilities and job
// stream of an experiment as CSV, so a figure can be regenerated bit-for-bit
// or the same trace replayed against a different matchmaker.

#include <string>

#include "workload/workload.h"

namespace pgrid::workload {

/// Write `w` to `path`. Returns false on I/O error.
bool save_trace(const Workload& w, const std::string& path);

/// Read a workload written by save_trace. Returns false on I/O or parse
/// error (out untouched on failure).
bool load_trace(const std::string& path, Workload* out);

}  // namespace pgrid::workload
