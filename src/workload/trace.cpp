#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/expects.h"

namespace pgrid::workload {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool save_trace(const Workload& w, const std::string& path) {
  FilePtr f{std::fopen(path.c_str(), "w")};
  if (!f) return false;
  std::fprintf(f.get(),
               "# p2pgrid workload trace v1\n"
               "spec,%zu,%zu,%d,%d,%.17g,%.17g,%.17g,%zu,%zu,%zu,%" PRIu64
               "\n",
               w.spec.node_count, w.spec.job_count,
               w.spec.node_mix == Mix::kClustered ? 1 : 0,
               w.spec.job_mix == Mix::kClustered ? 1 : 0,
               w.spec.constraint_probability, w.spec.mean_runtime_sec,
               w.spec.mean_interarrival_sec, w.spec.node_classes,
               w.spec.job_classes, w.spec.client_count, w.spec.seed);
  for (const auto& caps : w.node_caps) {
    std::fprintf(f.get(), "node,%.17g,%.17g,%.17g\n", caps.v[0], caps.v[1],
                 caps.v[2]);
  }
  for (const auto& job : w.jobs) {
    std::fprintf(f.get(), "job,%.17g,%.17g,%.17g,%.17g,%u", job.arrival_sec,
                 job.runtime_sec, job.declared_runtime_sec, job.output_kb,
                 job.client);
    for (std::size_t r = 0; r < grid::kNumResources; ++r) {
      std::fprintf(f.get(), ",%d,%.17g", job.constraints.active[r] ? 1 : 0,
                   job.constraints.min[r]);
    }
    std::fprintf(f.get(), "\n");
  }
  return std::ferror(f.get()) == 0;
}

bool load_trace(const std::string& path, Workload* out) {
  PGRID_EXPECTS(out != nullptr);
  FilePtr f{std::fopen(path.c_str(), "r")};
  if (!f) return false;

  Workload w;
  char line[512];
  bool have_spec = false;
  while (std::fgets(line, sizeof line, f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    if (std::strncmp(line, "spec,", 5) == 0) {
      int node_clustered = 0, job_clustered = 0;
      const int n = std::sscanf(
          line,
          "spec,%zu,%zu,%d,%d,%lg,%lg,%lg,%zu,%zu,%zu,%" SCNu64,
          &w.spec.node_count, &w.spec.job_count, &node_clustered,
          &job_clustered, &w.spec.constraint_probability,
          &w.spec.mean_runtime_sec, &w.spec.mean_interarrival_sec,
          &w.spec.node_classes, &w.spec.job_classes, &w.spec.client_count,
          &w.spec.seed);
      if (n != 11) return false;
      w.spec.node_mix = node_clustered ? Mix::kClustered : Mix::kMixed;
      w.spec.job_mix = job_clustered ? Mix::kClustered : Mix::kMixed;
      have_spec = true;
    } else if (std::strncmp(line, "node,", 5) == 0) {
      grid::ResourceVector caps;
      if (std::sscanf(line, "node,%lg,%lg,%lg", &caps.v[0], &caps.v[1],
                      &caps.v[2]) != 3) {
        return false;
      }
      w.node_caps.push_back(caps);
    } else if (std::strncmp(line, "job,", 4) == 0) {
      JobSpec job;
      int a0 = 0, a1 = 0, a2 = 0;
      if (std::sscanf(line, "job,%lg,%lg,%lg,%lg,%u,%d,%lg,%d,%lg,%d,%lg",
                      &job.arrival_sec, &job.runtime_sec,
                      &job.declared_runtime_sec, &job.output_kb, &job.client,
                      &a0, &job.constraints.min[0], &a1,
                      &job.constraints.min[1], &a2,
                      &job.constraints.min[2]) != 11) {
        return false;
      }
      job.constraints.active = {a0 != 0, a1 != 0, a2 != 0};
      w.jobs.push_back(job);
    } else {
      return false;  // unknown record
    }
  }
  if (!have_spec || w.node_caps.size() != w.spec.node_count ||
      w.jobs.size() != w.spec.job_count) {
    return false;
  }
  *out = std::move(w);
  return true;
}

}  // namespace pgrid::workload
