#include "can/geometry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pgrid::can {

bool Point::dominates(const Point& other, std::size_t real_dims) const noexcept {
  PGRID_ASSERT(dims_ == other.dims_);
  const std::size_t limit = std::min(real_dims, dims_);
  for (std::size_t d = 0; d < limit; ++d) {
    if (coords_[d] < other.coords_[d]) return false;
  }
  return true;
}

bool Point::exceeds_somewhere(const Point& other,
                              std::size_t real_dims) const noexcept {
  PGRID_ASSERT(dims_ == other.dims_);
  const std::size_t limit = std::min(real_dims, dims_);
  for (std::size_t d = 0; d < limit; ++d) {
    if (coords_[d] > other.coords_[d]) return true;
  }
  return false;
}

double Point::distance_to(const Point& other) const noexcept {
  PGRID_ASSERT(dims_ == other.dims_);
  double sum = 0.0;
  for (std::size_t d = 0; d < dims_; ++d) {
    const double diff = coords_[d] - other.coords_[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

std::string Point::str() const {
  std::string out = "(";
  char buf[32];
  for (std::size_t d = 0; d < dims_; ++d) {
    std::snprintf(buf, sizeof buf, "%s%.3f", d ? "," : "", coords_[d]);
    out += buf;
  }
  return out + ")";
}

Zone Zone::whole(std::size_t dims) {
  Point lo(dims), hi(dims);
  for (std::size_t d = 0; d < dims; ++d) hi[d] = 1.0;
  return Zone{lo, hi};
}

bool Zone::contains(const Point& p) const noexcept {
  PGRID_ASSERT(p.dims() == dims());
  const double* pp = p.data();
  const double* lo = lo_.data();
  const double* hi = hi_.data();
  for (std::size_t d = 0, n = dims(); d < n; ++d) {
    if (pp[d] < lo[d] || pp[d] >= hi[d]) return false;
  }
  return true;
}

double Zone::volume() const noexcept {
  double v = 1.0;
  for (std::size_t d = 0; d < dims(); ++d) v *= extent(d);
  return v;
}

Point Zone::center() const noexcept {
  Point c(dims());
  for (std::size_t d = 0; d < dims(); ++d) c[d] = (lo_[d] + hi_[d]) / 2.0;
  return c;
}

double Zone::distance_to(const Point& p) const noexcept {
  PGRID_ASSERT(p.dims() == dims());
  const double* pp = p.data();
  const double* lo = lo_.data();
  const double* hi = hi_.data();
  double sum = 0.0;
  for (std::size_t d = 0, n = dims(); d < n; ++d) {
    double gap = 0.0;
    if (pp[d] < lo[d]) {
      gap = lo[d] - pp[d];
    } else if (pp[d] > hi[d]) {
      gap = pp[d] - hi[d];
    }
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

bool Zone::abuts(const Zone& other) const noexcept {
  PGRID_ASSERT(other.dims() == dims());
  const double* alo = lo_.data();
  const double* ahi = hi_.data();
  const double* blo = other.lo_.data();
  const double* bhi = other.hi_.data();
  std::size_t touching = 0;
  for (std::size_t d = 0, n = dims(); d < n; ++d) {
    const bool touch = (ahi[d] == blo[d]) || (bhi[d] == alo[d]);
    const bool overlap = (alo[d] < bhi[d]) && (blo[d] < ahi[d]);
    if (touch) {
      ++touching;
    } else if (!overlap) {
      return false;  // separated in this dimension
    }
  }
  return touching == 1;
}

bool Zone::overlaps(const Zone& other) const noexcept {
  PGRID_ASSERT(other.dims() == dims());
  const double* alo = lo_.data();
  const double* ahi = hi_.data();
  const double* blo = other.lo_.data();
  const double* bhi = other.hi_.data();
  for (std::size_t d = 0, n = dims(); d < n; ++d) {
    if (alo[d] >= bhi[d] || blo[d] >= ahi[d]) return false;
  }
  return true;
}

std::pair<Zone, Zone> Zone::split(std::size_t d) const {
  PGRID_EXPECTS(d < dims());
  const double mid = (lo_[d] + hi_[d]) / 2.0;
  PGRID_ENSURES(mid > lo_[d] && mid < hi_[d]);  // FP underflow guard
  Point lower_hi = hi_;
  lower_hi[d] = mid;
  Point upper_lo = lo_;
  upper_lo[d] = mid;
  return {Zone{lo_, lower_hi}, Zone{upper_lo, hi_}};
}

std::pair<Zone, Zone> Zone::split_for(const Point& keeper,
                                      const Point& joiner) const {
  PGRID_EXPECTS(contains(keeper));
  PGRID_EXPECTS(contains(joiner));
  // Candidate dimensions sorted by extent (largest first, index tie-break).
  std::array<std::size_t, kMaxDims> order{};
  for (std::size_t d = 0; d < dims(); ++d) order[d] = d;
  std::sort(order.begin(), order.begin() + static_cast<long>(dims()),
            [this](std::size_t a, std::size_t b) {
              if (extent(a) != extent(b)) return extent(a) > extent(b);
              return a < b;
            });

  // Split at the midpoint between the two points along the widest
  // dimension that separates them: both parties keep their own point.
  for (std::size_t i = 0; i < dims(); ++i) {
    const std::size_t d = order[i];
    if (keeper[d] == joiner[d]) continue;
    const double cut = (keeper[d] + joiner[d]) / 2.0;
    const double lo_side = std::min(keeper[d], joiner[d]);
    const double hi_side = std::max(keeper[d], joiner[d]);
    // FP guard: adjacent doubles can make the midpoint collapse onto one
    // of the points; such a dimension cannot separate them cleanly.
    if (!(lo_side < cut && cut <= hi_side)) continue;
    Point lower_hi = hi_;
    lower_hi[d] = cut;
    Point upper_lo = lo_;
    upper_lo[d] = cut;
    const Zone low{lo_, lower_hi};
    const Zone high{upper_lo, hi_};
    return keeper[d] < cut ? std::pair{low, high} : std::pair{high, low};
  }
  // Inseparable (coincident points): split the largest dimension in half
  // and give the joiner the half not containing the keeper.
  const auto [low, high] = split(order[0]);
  return low.contains(keeper) ? std::pair{low, high} : std::pair{high, low};
}

bool Zone::try_merge(const Zone& other, Zone* merged) const {
  PGRID_ASSERT(other.dims() == dims());
  PGRID_EXPECTS(merged != nullptr);
  // Mergeable iff identical in all dimensions except one, where they touch.
  std::size_t touch_dim = dims();
  for (std::size_t d = 0; d < dims(); ++d) {
    if (lo_[d] == other.lo_[d] && hi_[d] == other.hi_[d]) continue;
    const bool touch = (hi_[d] == other.lo_[d]) || (other.hi_[d] == lo_[d]);
    if (!touch || touch_dim != dims()) return false;
    touch_dim = d;
  }
  if (touch_dim == dims()) return false;  // identical zones: not a merge
  Point lo = lo_, hi = hi_;
  lo[touch_dim] = std::min(lo_[touch_dim], other.lo()[touch_dim]);
  hi[touch_dim] = std::max(hi_[touch_dim], other.hi()[touch_dim]);
  *merged = Zone{lo, hi};
  return true;
}

std::string Zone::str() const {
  return lo_.str() + ".." + hi_.str();
}

std::vector<Zone> subtract(const Zone& a, const Zone& b) {
  PGRID_ASSERT(a.dims() == b.dims());
  if (!a.overlaps(b)) return {a};
  // Peel off the slabs of `a` outside `b`, one dimension at a time; the
  // remaining core is a ∩ b and is discarded. Every guard implies the slab
  // has positive extent, so every emitted Zone is well-formed.
  std::vector<Zone> out;
  Point lo = a.lo();
  Point hi = a.hi();
  for (std::size_t d = 0; d < a.dims(); ++d) {
    if (b.lo()[d] > lo[d]) {
      Point slab_hi = hi;
      slab_hi[d] = b.lo()[d];
      out.emplace_back(lo, slab_hi);
      lo[d] = b.lo()[d];
    }
    if (b.hi()[d] < hi[d]) {
      Point slab_lo = lo;
      slab_lo[d] = b.hi()[d];
      out.emplace_back(slab_lo, hi);
      hi[d] = b.hi()[d];
    }
  }
  return out;
}

void coalesce(std::vector<Zone>& zones) {
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (std::size_t i = 0; i < zones.size() && !merged_any; ++i) {
      for (std::size_t j = i + 1; j < zones.size(); ++j) {
        Zone m;
        if (zones[i].try_merge(zones[j], &m)) {
          zones[i] = m;
          zones.erase(zones.begin() + static_cast<long>(j));
          merged_any = true;
          break;
        }
      }
    }
  }
}

}  // namespace pgrid::can
