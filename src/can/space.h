#pragma once
// CAN space harness: owns a set of CanNodes, supports protocol joins and
// instant wiring (logical sequence of splits), answers ground-truth owner
// queries, and drives crash/restart for failure tests.

#include <memory>
#include <vector>

#include "can/can_node.h"
#include "common/rng.h"
#include "net/network.h"

namespace pgrid::can {

/// Standalone network host owning exactly one CanNode.
class CanHost final : public net::MessageHandler {
 public:
  CanHost(net::Network& network, Guid id, Point rep_point, CanConfig config,
          Rng rng)
      : addr_(network.add_handler(this)),
        node_(network, addr_, id, rep_point, config, rng) {}

  void on_message(net::NodeAddr from, net::MessagePtr msg) override {
    node_.handle(from, msg);
  }

  [[nodiscard]] CanNode& node() noexcept { return node_; }
  [[nodiscard]] const CanNode& node() const noexcept { return node_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return addr_; }

 private:
  net::NodeAddr addr_;
  CanNode node_;
};

/// Install zones and exact neighbor tables into a set of live CanNodes,
/// replaying the deterministic split sequence logically. Used for instant
/// experiment bootstrap by CanSpace and by the grid layer.
/// Near-linear: each joiner is point-located by descending the split
/// history's binary tree (each split yields two children), and neighbor
/// sets are maintained incrementally — a split can only create adjacency
/// within the split zone's old neighborhood, so discovery is
/// output-sensitive instead of an O(N²) all-pairs abuts() scan.
void wire_space_instantly(const std::vector<CanNode*>& nodes,
                          std::size_t dims);

/// Reference implementation of wire_space_instantly: O(N²) point location
/// plus O(N²) all-pairs neighbor discovery. Retained only so property tests
/// can assert the fast path produces bit-identical zones and neighbor
/// tables; never call it on large spaces.
void wire_space_instantly_naive(const std::vector<CanNode*>& nodes,
                                std::size_t dims);

class CanSpace {
 public:
  CanSpace(net::Network& network, CanConfig config, Rng rng);

  CanHost& add_host(Guid id, Point rep_point);

  /// Replay the deterministic split sequence logically and install the
  /// resulting zones plus exact neighbor tables into every host.
  void wire_instantly();

  /// Ground truth: the live node owning `p`. Scans a cached live-host
  /// index (invalidated only by add_host/crash/restart) instead of
  /// re-filtering the full host list per query.
  [[nodiscard]] Peer oracle_owner(const Point& p) const;

  void crash(std::size_t index);
  void restart(std::size_t index);

  [[nodiscard]] std::size_t size() const noexcept { return hosts_.size(); }
  [[nodiscard]] CanHost& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] const CanHost& host(std::size_t i) const {
    return *hosts_.at(i);
  }
  [[nodiscard]] bool crashed(std::size_t i) const { return !alive_.at(i); }
  [[nodiscard]] const CanConfig& config() const noexcept { return config_; }

  /// Invariant check: live zones tile the unit cube exactly (total volume 1,
  /// pairwise disjoint). Used by property tests.
  [[nodiscard]] bool zones_tile_space(double tolerance = 1e-9) const;

 private:
  void ensure_live_index() const;

  net::Network& net_;
  CanConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<CanHost>> hosts_;
  std::vector<bool> alive_;

  // Cached live-host indices (host order), rebuilt lazily after any
  // membership change; oracle_owner runs once per job in the benches.
  mutable bool live_dirty_ = true;
  mutable std::vector<std::size_t> live_hosts_;
};

}  // namespace pgrid::can
