#pragma once
// CAN node: owns one or more zones of [0,1)^d, maintains the neighbor set,
// routes greedily, splits on join, and takes over neighbors' zones on
// failure (smallest-volume claimant first, per the CAN paper's takeover).
//
// Like ChordNode, a CanNode does not register itself on the network; its
// host forwards messages to handle() so grid nodes can stack layers on one
// address.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "can/geometry.h"
#include "can/messages.h"
#include "common/flat_map.h"
#include "common/phi_detector.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/batch.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace pgrid::can {

struct CanConfig {
  std::size_t dims = 4;
  sim::SimTime update_period = sim::SimTime::seconds(2.0);
  /// A neighbor unheard for this long is suspected dead.
  sim::SimTime neighbor_timeout = sim::SimTime::seconds(7.0);
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  /// Transmissions per RPC before the peer is presumed dead.
  int rpc_attempts = 2;
  /// Takeover timers are this base scaled by the claimant's volume share,
  /// so smaller nodes claim first (approximate CAN takeover ordering).
  sim::SimTime takeover_base_delay = sim::SimTime::seconds(1.0);
  int route_retries = 3;
  bool run_maintenance = true;
  /// Weight of a node's own load in the per-dimension upstream load report
  /// (the remainder comes from the report received from above).
  double push_alpha = 0.5;
  /// φ-accrual liveness (default off = legacy fixed neighbor_timeout).
  /// When on, staleness is judged against each neighbor's learned update
  /// inter-arrival gaps: congested-but-alive neighbors are only *suspected*
  /// (re-linked with a direct zone update) instead of taken over.
  PhiAccrualConfig phi;
  /// Anti-entropy tiling audit period (zero = off). Each round probes one
  /// uncovered face of this node's zones via routing; space no reachable
  /// node claims (a hole left by a correlated crash of a whole region) is
  /// claimed by the prober, bounded by its own zone extents.
  sim::SimTime audit_period = sim::SimTime::zero();
  /// Maintenance batching (DESIGN.md §16). When enabled each round runs in
  /// a batch scope (ZoneUpdate + DimLoadReports to one neighbor share a
  /// wire message), each neighbor is contacted every quiet_stride-th round
  /// with staleness deadlines scaled to match, and a contact whose zone
  /// snapshot the neighbor already holds sends a compact NeighborHello
  /// instead of a full ZoneUpdate.
  net::BatchingConfig batching;
};

struct CanStats {
  std::uint64_t routes_started = 0;
  std::uint64_t routes_ok = 0;
  std::uint64_t routes_failed = 0;
  std::uint64_t takeovers = 0;
  RunningStats route_hops;
  std::uint64_t suspicions = 0;   // φ: stale neighbors not yet taken over
  std::uint64_t gap_repairs = 0;  // anti-entropy tiling-gap claims
};

/// Everything a node knows about a neighbor.
struct NeighborState {
  Guid id;
  std::vector<Zone> zones;
  Point rep_point;  // the neighbor's coordinates (capabilities)
  double load = 0.0;
  sim::SimTime last_heard;
  std::vector<net::NodeAddr> their_neighbors;
  /// Highest ZoneUpdate::seq seen from this neighbor (staleness guard).
  std::uint64_t update_seq = 0;
  /// Sender-side zone version carried by the update that populated `zones`.
  /// 0 = unknown (entry seeded from join contacts / install_state, which
  /// carry no version); real versions start at 1, so 0 never matches.
  std::uint64_t zones_version = 0;
  /// Receiver-side geometry_epoch_ at the last *quiet* full scan of an
  /// update from this neighbor (no conflict action, no hints sent).
  /// 0 = never; epochs start at 1. See on_zone_update's fast path.
  std::uint64_t scan_epoch = 0;
  /// Update inter-arrival history for φ-accrual liveness (CanConfig::phi).
  /// Recorded unconditionally (cheap), consulted only when enabled.
  PhiDetector phi;
  /// Batched maintenance bookkeeping (CanConfig::batching; untouched when
  /// batching is off): our zones_version when this neighbor last received a
  /// full snapshot from us (0 = never), and contacts since that full — a
  /// periodic forced refresh bounds how long a lost full can leave the
  /// neighbor stale.
  std::uint64_t full_sent_version = 0;
  std::uint32_t contacts_since_full = 0;
};

class CanNode {
 public:
  using RouteCallback = std::function<void(Peer owner, int hops)>;

  CanNode(net::Network& network, net::NodeAddr self, Guid id, Point rep_point,
          CanConfig config, Rng rng);
  ~CanNode();

  CanNode(const CanNode&) = delete;
  CanNode& operator=(const CanNode&) = delete;

  /// Become the first node: own the whole space.
  void create();

  /// Join via `bootstrap`: route to the owner of this node's representative
  /// point and ask it to split its zone.
  void join(Peer bootstrap, std::function<void(bool ok)> done);

  void crash();

  /// Resolve the owner of `target`, starting from this node.
  void route(Point target, RouteCallback cb);

  bool handle(net::NodeAddr from, net::MessagePtr& msg);

  // --- observers used by the matchmaking layer --------------------------
  [[nodiscard]] Guid id() const noexcept { return id_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }
  [[nodiscard]] Peer self_peer() const noexcept { return Peer{addr(), id_}; }
  [[nodiscard]] const Point& rep_point() const noexcept { return rep_point_; }
  [[nodiscard]] const std::vector<Zone>& zones() const noexcept {
    return zones_;
  }
  [[nodiscard]] const FlatMap<net::NodeAddr, NeighborState>& neighbors()
      const noexcept {
    return neighbors_;
  }
  [[nodiscard]] bool owns(const Point& p) const noexcept;
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const CanStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CanConfig& config() const noexcept { return config_; }

  /// Bytes behind this node's zone set and neighbor tables (memory
  /// accounting; capacity snapshot, nothing on the hot path). Counts the
  /// nested per-neighbor zone lists and neighbor-of-neighbor vectors too —
  /// they dominate at scale.
  [[nodiscard]] std::size_t table_memory_bytes() const noexcept {
    std::size_t bytes =
        zones_.capacity() * sizeof(Zone) +
        neighbors_.capacity() * sizeof(std::pair<net::NodeAddr, NeighborState>) +
        takeover_timers_.capacity() *
            sizeof(std::pair<net::NodeAddr, sim::EventId>) +
        pending_grants_.capacity() * sizeof(std::pair<net::NodeAddr, Zone>) +
        upstream_load_.capacity() * sizeof(double) +
        lost_.capacity() * sizeof(Peer);
    for (const auto& [addr, ns] : neighbors_) {
      bytes += ns.zones.capacity() * sizeof(Zone) +
               ns.their_neighbors.capacity() * sizeof(net::NodeAddr);
    }
    return bytes;
  }

  /// Bytes held by this node's RPC pending-call slab.
  [[nodiscard]] std::size_t rpc_memory_bytes() const noexcept {
    return rpc_.memory_bytes();
  }

  /// Load advertised to neighbors (the grid layer sets its queue length).
  void set_load(double load) noexcept { load_ = load; }
  [[nodiscard]] double load() const noexcept { return load_; }

  /// Exponentially-weighted load of nodes above this one along `dim`
  /// (negative if nothing has been heard yet).
  [[nodiscard]] double upstream_load(std::size_t dim) const {
    return upstream_load_.at(dim);
  }

  /// Instant bootstrap: install zones and neighbor table directly.
  void install_state(std::vector<Zone> zones,
                     FlatMap<net::NodeAddr, NeighborState> neighbors);

 private:
  struct RouteState {
    Point target;
    RouteCallback cb;
    int hops = 0;
    int retries_left = 0;
    std::vector<Guid> avoid;
  };

  void route_restart(const std::shared_ptr<RouteState>& st);
  void route_ask(const std::shared_ptr<RouteState>& st, Peer target);
  void route_done(const std::shared_ptr<RouteState>& st, Peer owner);
  void route_failed(const std::shared_ptr<RouteState>& st);

  /// The neighbor whose zones are closest to `p` (strictly closer than our
  /// own zones), skipping `avoid`; kNoPeer at a greedy dead end.
  [[nodiscard]] Peer best_next_hop(const Point& p,
                                   const std::vector<Guid>& avoid) const;
  [[nodiscard]] double my_distance_to(const Point& p) const noexcept;

  void on_route(net::NodeAddr from, const RouteReq& req);
  void on_join(net::NodeAddr from, const JoinReq& req);
  void on_zone_update(net::NodeAddr from, const ZoneUpdate& msg);
  void on_dim_load(const DimLoadReport& msg);
  void on_neighbor_hello(net::NodeAddr from, const NeighborHello& msg);

  void start_maintenance();
  void do_update();
  /// Batched maintenance round (CanConfig::batching): contact 1/stride of
  /// the neighborhood per round, full snapshot only when the neighbor's
  /// copy is stale, hello otherwise, everything per-pair coalesced.
  void do_batched_round();
  /// One anti-entropy round: probe the first face of our zones not covered
  /// by any known zone; claim the space if routing finds no owner either.
  void do_gap_audit();
  /// Claim the mirror of zone `z` across face (`d`, `hi_side`), minus every
  /// zone we already know about (ours and neighbors').
  void claim_gap(const Zone& z, std::size_t d, bool hi_side);
  /// True iff some zone we know of (our own or a neighbor's) contains `p`.
  [[nodiscard]] bool point_known_covered(const Point& p) const noexcept;
  /// Freeze this node's advertised state for a ZoneUpdate fan-out.
  [[nodiscard]] std::shared_ptr<const ZoneUpdate::Snapshot> make_zone_snapshot()
      const;
  void send_zone_update(net::NodeAddr to);
  void send_zone_update(net::NodeAddr to,
                        std::shared_ptr<const ZoneUpdate::Snapshot> snap);
  void broadcast_zone_update(const std::vector<net::NodeAddr>& extra = {});
  void send_dim_load_reports();
  /// Drop neighbors that no longer abut any of our zones.
  void prune_neighbors();
  void schedule_takeover(net::NodeAddr dead);
  void execute_takeover(net::NodeAddr dead);
  /// Call after any zones_ mutation: advertise a new zone version and
  /// invalidate every neighbor's cached quiet-scan epoch.
  void note_zones_changed() noexcept {
    ++zones_version_;
    ++geometry_epoch_;
  }
  [[nodiscard]] double total_volume() const noexcept;

  // --- partition-heal reconciliation ------------------------------------
  // Nodes whose zones we took over are remembered (bounded) and sent one
  // zone update per maintenance round. If such a node was not dead but
  // merely unreachable — healed partition, restarted node — the exchange
  // re-links the neighbor tables and the GUID-ordered subtraction rule in
  // on_zone_update removes the double claim. Without this the two sides'
  // zone views never reconnect.
  void note_lost(Peer peer);
  /// Resolve overlap between our zones and a lower-GUID claimant's: we
  /// subtract theirs from ours. Returns false if we were left zoneless
  /// (a full rejoin through the winner has been started).
  bool resolve_conflict(const ZoneUpdate& msg);
  /// Confirm or reclaim an outstanding join grant based on what the grantee
  /// now claims (see pending_grants_).
  void settle_grant(net::NodeAddr from, const ZoneUpdate& msg);

  net::Network& net_;
  net::RpcEndpoint rpc_;
  Guid id_;
  Point rep_point_;
  CanConfig config_;
  Rng rng_;

  bool running_ = false;
  bool joining_ = false;
  Peer bootstrap_ = kNoPeer;  // last join target, for orphan rejoin
  // Hot routing state lives in sorted flat vectors (FlatMap): scanned every
  // route/maintenance tick, and iteration order (sorted by address) matches
  // the std::map it replaced, keeping the simulation deterministic.
  std::vector<Zone> zones_;
  FlatMap<net::NodeAddr, NeighborState> neighbors_;
  FlatMap<net::NodeAddr, sim::EventId> takeover_timers_;
  double load_ = 0.0;
  std::vector<double> upstream_load_;
  std::uint64_t update_seq_ = 0;  // outgoing ZoneUpdate counter
  /// Bumped on every zones_ mutation; advertised in snapshots so receivers
  /// can recognize an unchanged claim without comparing geometry.
  std::uint64_t zones_version_ = 0;
  /// Bumped whenever anything on_zone_update's geometry scans read changes:
  /// our own zones_ or the neighbor table's membership / stored zone sets.
  /// A NeighborState whose scan_epoch matches is guaranteed that re-running
  /// those scans would reproduce the previous (empty) outcome.
  std::uint64_t geometry_epoch_ = 1;

  static constexpr std::size_t kLostCap = 16;
  std::vector<Peer> lost_;  // candidates for zone-view re-linking
  std::size_t lost_cursor_ = 0;

  /// Batched-maintenance round counter (drives the per-neighbor contact
  /// stride) and the forced-full-refresh cadence: even a version-matched
  /// neighbor gets a full snapshot every this-many contacts, bounding the
  /// staleness a lost full update can cause.
  std::uint64_t round_ = 0;
  static constexpr std::uint32_t kFullRefreshContacts = 4;

  // Join splits are not idempotent on their own: once we hand half our zone
  // to a joiner, a lost JoinResp leaves the half owned by nobody — we no
  // longer contain the point, so a blind retry would be rejected. Each
  // grant stays pending until the grantee's first ZoneUpdate: one covering
  // the grant confirms it; one that does not (the joiner gave up and
  // rejoined elsewhere) reclaims the zone. A retried JoinReq for a point
  // inside a pending grant re-issues the same grant. Over-claiming is safe
  // (double claims resolve via the GUID rule); under-claiming is a
  // permanent hole in the space, so reclamation errs toward claiming.
  FlatMap<net::NodeAddr, Zone> pending_grants_;

  std::unique_ptr<sim::PeriodicTask> update_task_;
  std::unique_ptr<sim::PeriodicTask> audit_task_;  // anti-entropy (gated)
  bool audit_probe_inflight_ = false;
  CanStats stats_;
};

}  // namespace pgrid::can
