#pragma once
// CAN protocol messages: greedy routing (iterative, initiator-driven so the
// matchmaking-cost hop counts accrue at the initiator), zone join/split,
// periodic neighbor refresh doubling as failure detector, takeover claims,
// and the per-dimension load reports used by the improved ("push")
// matchmaking variant of §3.3.

#include <cstdint>
#include <memory>
#include <vector>

#include "can/geometry.h"
#include "chord/peer.h"
#include "net/message.h"

namespace pgrid::can {

using chord::Peer;  // same (addr, GUID) pair shape
using chord::kNoPeer;

enum MsgType : std::uint16_t {
  kRouteReq = net::kTagCanBase + 0,
  kRouteResp = net::kTagCanBase + 1,
  kJoinReq = net::kTagCanBase + 2,
  kJoinResp = net::kTagCanBase + 3,
  kZoneUpdate = net::kTagCanBase + 4,
  kDimLoadReport = net::kTagCanBase + 5,
  kNeighborHint = net::kTagCanBase + 6,
  kNeighborHello = net::kTagCanBase + 7,
};

/// Wire snapshot of a node's zone holdings, for join handoff.
struct NeighborInfo {
  Peer peer;
  std::vector<Zone> zones;
  Point rep_point;  // the node's coordinates (its capabilities)
  double load = 0.0;
};

struct RouteReq final : net::Message {
  static constexpr std::uint16_t kType = kRouteReq;

  explicit RouteReq(Point t) : Message(kType), target(t) {}

  Point target;
  /// Dead nodes observed by the initiator during this route.
  std::vector<Guid> avoid;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return target.dims() * 8 + avoid.size() * 8;
  }
  PGRID_MESSAGE_CLONE(RouteReq)
};

struct RouteResp final : net::Message {
  static constexpr std::uint16_t kType = kRouteResp;

  RouteResp(bool d, Peer n) : Message(kType), done(d), node(n) {}

  /// done: the responder owns the target point (node == responder).
  /// !done: `node` is the responder's neighbor closest to the target;
  ///        invalid node means the responder is a greedy dead end.
  bool done;
  Peer node;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 13;
  }
  PGRID_MESSAGE_CLONE(RouteResp)
};

struct JoinReq final : net::Message {
  static constexpr std::uint16_t kType = kJoinReq;

  JoinReq(Peer j, Point p) : Message(kType), joiner(j), point(p) {}

  Peer joiner;
  Point point;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + point.dims() * 8;
  }
  PGRID_MESSAGE_CLONE(JoinReq)
};

struct JoinResp final : net::Message {
  static constexpr std::uint16_t kType = kJoinResp;

  JoinResp() : Message(kType) {}

  bool accepted = false;
  Zone zone;  // the joiner's new zone
  /// The splitting owner and its neighbors: the joiner's initial contacts.
  std::vector<NeighborInfo> contacts;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    std::size_t s = 1 + 2 * kMaxDims * 8;
    for (const auto& c : contacts) s += 12 + 8 + c.zones.size() * 2 * kMaxDims * 8;
    return s;
  }
  PGRID_MESSAGE_CLONE(JoinResp)
};

/// Periodic neighbor refresh: zones + load + (for takeover) the sender's
/// neighbor addresses. Absence of these for `neighbor_timeout` marks the
/// sender suspect.
struct ZoneUpdate final : net::Message {
  static constexpr std::uint16_t kType = kZoneUpdate;

  /// The sender-side state advertised by one maintenance round. A broadcast
  /// fans the same snapshot out to every neighbor (degree sends), so the
  /// zones and neighbor-address vectors are built once and shared immutably
  /// instead of being copied per message — the dominant allocation in CAN
  /// steady state. Receivers read through the accessors below; the wire
  /// accounting still charges every copy its full serialized size.
  struct Snapshot {
    Peer sender;
    std::vector<Zone> zones;
    Point rep_point;
    double load = 0.0;
    std::vector<net::NodeAddr> neighbor_addrs;
    /// Bumped by the sender every time its zone set mutates. A receiver
    /// that already holds this version knows `zones` is byte-identical to
    /// what it stored, without comparing geometry. Derivable metadata, not
    /// payload: excluded from payload_size().
    std::uint64_t zones_version = 0;
  };

  explicit ZoneUpdate(std::shared_ptr<const Snapshot> s)
      : Message(kType), snap(std::move(s)) {}

  std::shared_ptr<const Snapshot> snap;
  /// Per-sender send counter. Receivers drop updates at or below the last
  /// seq seen from that sender, so duplicated or reordered copies (fault
  /// plane) can never roll a neighbor's zone view backwards. Per message,
  /// not per snapshot: each fan-out copy gets its own seq.
  std::uint64_t seq = 0;

  [[nodiscard]] const Peer& sender() const noexcept { return snap->sender; }
  [[nodiscard]] const std::vector<Zone>& zones() const noexcept {
    return snap->zones;
  }
  [[nodiscard]] const Point& rep_point() const noexcept {
    return snap->rep_point;
  }
  [[nodiscard]] double load() const noexcept { return snap->load; }
  [[nodiscard]] std::uint64_t zones_version() const noexcept {
    return snap->zones_version;
  }
  [[nodiscard]] const std::vector<net::NodeAddr>& neighbor_addrs()
      const noexcept {
    return snap->neighbor_addrs;
  }

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 20 + snap->zones.size() * 2 * kMaxDims * 8 + 8 +
           snap->neighbor_addrs.size() * 4;
  }
  PGRID_MESSAGE_CLONE(ZoneUpdate)
};

/// "You two should talk": sent when a node notices that the claims of two
/// of its neighbors overlap — double claims after a partition heal can sit
/// between nodes that do not know each other (e.g. a zone granted by a
/// not-yet-reconciled owner). The receiver probes `peer` with a ZoneUpdate
/// so the pairwise lower-GUID-wins resolution can run.
struct NeighborHint final : net::Message {
  static constexpr std::uint16_t kType = kNeighborHint;

  explicit NeighborHint(Peer p) : Message(kType), peer(p) {}

  Peer peer;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(NeighborHint)
};

/// Compact liveness/load beacon used by batched maintenance (DESIGN.md
/// §16): sent instead of a full ZoneUpdate when the receiver already holds
/// the sender's current zone snapshot (tracked sender-side by zones_version).
/// `request_full` asks the receiver to answer with a full ZoneUpdate — the
/// pull half of loss recovery: a receiver whose stored snapshot version
/// disagrees with the beacon's requests a resync instead of staying stale
/// until the next forced refresh.
struct NeighborHello final : net::Message {
  static constexpr std::uint16_t kType = kNeighborHello;

  NeighborHello(Peer s, std::uint64_t v, std::uint64_t seq_, double l,
                bool rf = false)
      : Message(kType),
        sender(s),
        zones_version(v),
        seq(seq_),
        load(l),
        request_full(rf) {}

  Peer sender;
  std::uint64_t zones_version;
  /// The sender's current outgoing ZoneUpdate counter. Receivers advance
  /// their stored per-neighbor seq watermark from it, so the staleness
  /// guard in on_zone_update keeps rejecting duplicated old snapshots even
  /// when hellos (not full updates) carry most of the contact cadence.
  std::uint64_t seq;
  double load;
  bool request_full;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + 8 + 8 + 8 + 1;
  }
  PGRID_MESSAGE_CLONE(NeighborHello)
};

/// Exponentially-weighted load of the region "above" the sender along one
/// dimension, propagated hop-by-hop in the negative direction (the "fixed
/// amount of current system load information ... propagated along each
/// dimension" of §3.3).
struct DimLoadReport final : net::Message {
  static constexpr std::uint16_t kType = kDimLoadReport;

  DimLoadReport(std::uint32_t d, double r)
      : Message(kType), dim(d), report(r) {}

  std::uint32_t dim;
  double report;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(DimLoadReport)
};

}  // namespace pgrid::can
