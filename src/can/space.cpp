#include "can/space.h"

#include <algorithm>
#include <cstdint>
#include <thread>

#include "common/expects.h"
#include "sim/runner.h"

namespace pgrid::can {

CanSpace::CanSpace(net::Network& network, CanConfig config, Rng rng)
    : net_(network), config_(config), rng_(rng) {}

CanHost& CanSpace::add_host(Guid id, Point rep_point) {
  hosts_.push_back(std::make_unique<CanHost>(net_, id, rep_point, config_,
                                             rng_.fork(hosts_.size())));
  alive_.push_back(true);
  live_dirty_ = true;
  return *hosts_.back();
}

namespace {

/// Install the final per-node tables given each node's zone and its sorted
/// neighbor index list. Shared by both wiring implementations so the
/// emitted NeighborState (including their_neighbors order: ascending node
/// index, i.e. the all-pairs scan order) is identical by construction.
void install_tables(const std::vector<CanNode*>& nodes,
                    const std::vector<Zone>& zone_of,
                    const std::vector<std::vector<std::uint32_t>>& nbrs) {
  const std::size_t n = nodes.size();
  std::vector<std::vector<net::NodeAddr>> nbr_addrs(n);
  for (std::size_t a = 0; a < n; ++a) {
    nbr_addrs[a].reserve(nbrs[a].size());
    for (std::uint32_t b : nbrs[a]) nbr_addrs[a].push_back(nodes[b]->addr());
  }

  // Building the tables is the memory-bound bulk of instant wiring (the
  // total table size is sum-of-squared-degrees), and each node's table
  // only reads shared immutable inputs — so build them in parallel chunks
  // at large N. install_state stays serial: it may schedule maintenance
  // events, and the simulator is single-threaded.
  std::vector<FlatMap<net::NodeAddr, NeighborState>> tables(n);
  auto build_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a) {
      FlatMap<net::NodeAddr, NeighborState>& table = tables[a];
      table.reserve(nbrs[a].size());
      for (std::uint32_t b : nbrs[a]) {
        // Neighbor indices are sorted and addresses ascend with index, so
        // each emplace appends; the entry is filled in place.
        NeighborState& ns = table.emplace(nodes[b]->addr()).first->second;
        ns.id = nodes[b]->id();
        ns.zones.assign(1, zone_of[b]);
        ns.rep_point = nodes[b]->rep_point();
        ns.load = 0.0;
        ns.their_neighbors = nbr_addrs[b];
      }
    }
  };
  // Serial below the threshold: bootstraps that already run on sweep worker
  // threads (scalability cells, chaos replicates) stay single-threaded.
  constexpr std::size_t kParallelThreshold = 4096;
  if (n < kParallelThreshold) {
    build_range(0, n);
  } else {
    const std::size_t chunks = 4 * std::max(
        std::size_t{1},
        static_cast<std::size_t>(std::thread::hardware_concurrency()));
    const std::size_t chunk = (n + chunks - 1) / chunks;
    sim::parallel_for_cells(chunks, 0, [&](std::size_t c) {
      build_range(c * chunk, std::min(n, (c + 1) * chunk));
    });
  }

  for (std::size_t a = 0; a < n; ++a) {
    nodes[a]->install_state({zone_of[a]}, std::move(tables[a]));
  }
}

}  // namespace

void wire_space_instantly(const std::vector<CanNode*>& nodes,
                          std::size_t dims) {
  PGRID_EXPECTS(!nodes.empty());
  const std::size_t n = nodes.size();
  std::vector<Zone> zone_of(n);
  zone_of[0] = Zone::whole(dims);
  const Zone whole = Zone::whole(dims);

  // Point location over the split history: the sequential-split replay is
  // naturally a binary tree — each split turns one leaf (a current zone)
  // into an internal node holding the cut plane, with the two halves as
  // children. Descending the cut planes finds the zone containing a
  // joining point in O(depth). Leaves are encoded as ~owner (< 0).
  struct SplitNode {
    std::size_t dim;
    double cut;
    std::int32_t lo_child;
    std::int32_t hi_child;
  };
  auto leaf = [](std::size_t owner) {
    return ~static_cast<std::int32_t>(owner);
  };
  std::vector<SplitNode> tree;
  tree.reserve(n);
  std::int32_t root = leaf(0);
  // Where each node's leaf currently hangs: (tree index, hi side), with
  // tree index -1 meaning the root slot. Needed to patch the tree when a
  // zone is found by the out-of-space fallback rather than by descent.
  struct LeafSlot {
    std::int32_t parent = -1;
    bool hi = false;
  };
  std::vector<LeafSlot> slot_of(n);

  // Exact neighbor sets (sorted by node index), maintained incrementally:
  // any zone abutting a half of a just-split zone Z either abutted Z or is
  // the other half (a foreign zone touching the interior cut plane would
  // overlap Z), so each split only re-examines Z's old neighborhood.
  std::vector<std::vector<std::uint32_t>> nbrs(n);

  for (std::size_t k = 1; k < n; ++k) {
    const Point& jp = nodes[k]->rep_point();
    std::size_t owner = 0;
    if (whole.contains(jp)) {
      std::int32_t cur = root;
      while (cur >= 0) {
        const SplitNode& s = tree[static_cast<std::size_t>(cur)];
        cur = jp[s.dim] < s.cut ? s.lo_child : s.hi_child;
      }
      owner = static_cast<std::size_t>(~cur);
    }
    // else: out-of-space point — same fallback as the sequential scan,
    // which finds no containing zone and splits node 0's zone.

    const Point& op = nodes[owner]->rep_point();
    const Point keeper =
        zone_of[owner].contains(op) ? op : zone_of[owner].center();
    const auto [mine, theirs] = zone_of[owner].split_for(keeper, jp);

    // Recover the cut plane: the halves differ from each other only along
    // the split dimension, where one's hi face is the other's lo face.
    std::size_t sd = 0;
    double cut = 0.0;
    bool owner_low = true;
    for (std::size_t d = 0; d < dims; ++d) {
      if (mine.lo()[d] != theirs.lo()[d]) {
        sd = d;
        owner_low = mine.lo()[d] < theirs.lo()[d];
        cut = owner_low ? theirs.lo()[d] : mine.lo()[d];
        break;
      }
    }

    const auto tnode = static_cast<std::int32_t>(tree.size());
    tree.push_back(SplitNode{sd, cut, owner_low ? leaf(owner) : leaf(k),
                             owner_low ? leaf(k) : leaf(owner)});
    const LeafSlot at = slot_of[owner];
    if (at.parent < 0) {
      root = tnode;
    } else if (at.hi) {
      tree[static_cast<std::size_t>(at.parent)].hi_child = tnode;
    } else {
      tree[static_cast<std::size_t>(at.parent)].lo_child = tnode;
    }
    slot_of[owner] = LeafSlot{tnode, !owner_low};
    slot_of[k] = LeafSlot{tnode, owner_low};
    zone_of[owner] = mine;
    zone_of[k] = theirs;

    // Re-derive adjacency within the old neighborhood; both lists stay
    // sorted because `old` is sorted and k exceeds every prior index.
    const std::vector<std::uint32_t> old = std::move(nbrs[owner]);
    std::vector<std::uint32_t>& owner_n = nbrs[owner];
    std::vector<std::uint32_t>& new_n = nbrs[k];
    owner_n.clear();
    for (std::uint32_t b : old) {
      const bool with_owner = zone_of[owner].abuts(zone_of[b]);
      const bool with_new = zone_of[k].abuts(zone_of[b]);
      if (with_owner) owner_n.push_back(b);
      if (with_new) new_n.push_back(b);
      if (!with_owner) {
        std::vector<std::uint32_t>& bn = nbrs[b];
        bn.erase(std::lower_bound(bn.begin(), bn.end(),
                                  static_cast<std::uint32_t>(owner)));
      }
      if (with_new) nbrs[b].push_back(static_cast<std::uint32_t>(k));
    }
    // The halves share the cut face, so they always abut each other.
    owner_n.push_back(static_cast<std::uint32_t>(k));
    new_n.insert(std::lower_bound(new_n.begin(), new_n.end(),
                                  static_cast<std::uint32_t>(owner)),
                 static_cast<std::uint32_t>(owner));
  }

  install_tables(nodes, zone_of, nbrs);
}

void wire_space_instantly_naive(const std::vector<CanNode*>& nodes,
                                std::size_t dims) {
  PGRID_EXPECTS(!nodes.empty());
  // Logical replay of sequential joins: node i's zone is found by splitting
  // the zone currently containing its representative point, with the same
  // split_for rule the protocol uses.
  std::vector<Zone> zone_of(nodes.size());
  zone_of[0] = Zone::whole(dims);
  for (std::size_t k = 1; k < nodes.size(); ++k) {
    const Point& jp = nodes[k]->rep_point();
    std::size_t owner = 0;
    for (std::size_t m = 0; m < k; ++m) {
      if (zone_of[m].contains(jp)) {
        owner = m;
        break;
      }
    }
    const Point& op = nodes[owner]->rep_point();
    const Point keeper =
        zone_of[owner].contains(op) ? op : zone_of[owner].center();
    const auto [mine, theirs] = zone_of[owner].split_for(keeper, jp);
    zone_of[owner] = mine;
    zone_of[k] = theirs;
  }

  // Exact neighbor tables via the all-pairs abuts() scan.
  std::vector<std::vector<std::uint32_t>> nbrs(nodes.size());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a != b && zone_of[a].abuts(zone_of[b])) {
        nbrs[a].push_back(static_cast<std::uint32_t>(b));
      }
    }
  }

  install_tables(nodes, zone_of, nbrs);
}

void CanSpace::ensure_live_index() const {
  if (!live_dirty_) return;
  live_hosts_.clear();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) live_hosts_.push_back(i);
  }
  live_dirty_ = false;
}

void CanSpace::wire_instantly() {
  ensure_live_index();
  std::vector<CanNode*> live;
  live.reserve(live_hosts_.size());
  for (std::size_t i : live_hosts_) live.push_back(&hosts_[i]->node());
  wire_space_instantly(live, config_.dims);
}

Peer CanSpace::oracle_owner(const Point& p) const {
  ensure_live_index();
  for (std::size_t i : live_hosts_) {
    if (hosts_[i]->node().owns(p)) {
      return Peer{hosts_[i]->addr(), hosts_[i]->node().id()};
    }
  }
  return kNoPeer;
}

void CanSpace::crash(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (!alive_[index]) return;
  alive_[index] = false;
  live_dirty_ = true;
  net_.set_alive(hosts_[index]->addr(), false);
  hosts_[index]->node().crash();
}

void CanSpace::restart(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (alive_[index]) return;
  alive_[index] = true;
  live_dirty_ = true;
  net_.set_alive(hosts_[index]->addr(), true);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i != index && alive_[i]) {
      const CanNode& boot = hosts_[i]->node();
      hosts_[index]->node().join(Peer{boot.addr(), boot.id()}, nullptr);
      return;
    }
  }
  hosts_[index]->node().create();
}

bool CanSpace::zones_tile_space(double tolerance) const {
  double total = 0.0;
  std::vector<Zone> all;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!alive_[i]) continue;
    for (const Zone& z : hosts_[i]->node().zones()) {
      total += z.volume();
      all.push_back(z);
    }
  }
  if (std::abs(total - 1.0) > tolerance) return false;
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (all[i].overlaps(all[j])) return false;
    }
  }
  return true;
}

}  // namespace pgrid::can
