#include "can/space.h"

#include <algorithm>

#include "common/expects.h"

namespace pgrid::can {

CanSpace::CanSpace(net::Network& network, CanConfig config, Rng rng)
    : net_(network), config_(config), rng_(rng) {}

CanHost& CanSpace::add_host(Guid id, Point rep_point) {
  hosts_.push_back(std::make_unique<CanHost>(net_, id, rep_point, config_,
                                             rng_.fork(hosts_.size())));
  alive_.push_back(true);
  return *hosts_.back();
}

void wire_space_instantly(const std::vector<CanNode*>& nodes,
                          std::size_t dims) {
  PGRID_EXPECTS(!nodes.empty());
  // Logical replay of sequential joins: node i's zone is found by splitting
  // the zone currently containing its representative point, with the same
  // split_for rule the protocol uses.
  std::vector<Zone> zone_of(nodes.size());
  zone_of[0] = Zone::whole(dims);
  for (std::size_t k = 1; k < nodes.size(); ++k) {
    const Point& jp = nodes[k]->rep_point();
    std::size_t owner = 0;
    for (std::size_t m = 0; m < k; ++m) {
      if (zone_of[m].contains(jp)) {
        owner = m;
        break;
      }
    }
    const Point& op = nodes[owner]->rep_point();
    const Point keeper =
        zone_of[owner].contains(op) ? op : zone_of[owner].center();
    const auto [mine, theirs] = zone_of[owner].split_for(keeper, jp);
    zone_of[owner] = mine;
    zone_of[k] = theirs;
  }

  // Exact neighbor tables (including neighbor-of-neighbor addresses, which
  // the takeover protocol needs).
  std::vector<std::vector<net::NodeAddr>> nbr_addrs(nodes.size());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a != b && zone_of[a].abuts(zone_of[b])) {
        nbr_addrs[a].push_back(nodes[b]->addr());
      }
    }
  }

  for (std::size_t a = 0; a < nodes.size(); ++a) {
    std::map<net::NodeAddr, NeighborState> table;
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (a == b || !zone_of[a].abuts(zone_of[b])) continue;
      NeighborState ns;
      ns.id = nodes[b]->id();
      ns.zones.assign(1, zone_of[b]);
      ns.rep_point = nodes[b]->rep_point();
      ns.load = 0.0;
      ns.their_neighbors = nbr_addrs[b];
      table.emplace(nodes[b]->addr(), std::move(ns));
    }
    nodes[a]->install_state({zone_of[a]}, std::move(table));
  }
}

void CanSpace::wire_instantly() {
  std::vector<CanNode*> live;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) live.push_back(&hosts_[i]->node());
  }
  wire_space_instantly(live, config_.dims);
}

Peer CanSpace::oracle_owner(const Point& p) const {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!alive_[i]) continue;
    if (hosts_[i]->node().owns(p)) {
      return Peer{hosts_[i]->addr(), hosts_[i]->node().id()};
    }
  }
  return kNoPeer;
}

void CanSpace::crash(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (!alive_[index]) return;
  alive_[index] = false;
  net_.set_alive(hosts_[index]->addr(), false);
  hosts_[index]->node().crash();
}

void CanSpace::restart(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (alive_[index]) return;
  alive_[index] = true;
  net_.set_alive(hosts_[index]->addr(), true);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i != index && alive_[i]) {
      const CanNode& boot = hosts_[i]->node();
      hosts_[index]->node().join(Peer{boot.addr(), boot.id()}, nullptr);
      return;
    }
  }
  hosts_[index]->node().create();
}

bool CanSpace::zones_tile_space(double tolerance) const {
  double total = 0.0;
  std::vector<Zone> all;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (!alive_[i]) continue;
    for (const Zone& z : hosts_[i]->node().zones()) {
      total += z.volume();
      all.push_back(z);
    }
  }
  if (std::abs(total - 1.0) > tolerance) return false;
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      if (all[i].overlaps(all[j])) return false;
    }
  }
  return true;
}

}  // namespace pgrid::can
