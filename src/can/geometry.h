#pragma once
// Geometry of the Content-Addressable Network (Ratnasamy et al.,
// SIGCOMM'01): points in the d-dimensional unit cube and axis-aligned
// rectangular zones that tile it.
//
// Non-torus variant: the paper's matchmaking treats coordinates as resource
// quantities, where "greater" means "more capable", so the space does not
// wrap (pushing a job "up" a dimension must not wrap around to the origin).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/expects.h"

namespace pgrid::can {

inline constexpr std::size_t kMaxDims = 8;

/// A point in [0,1)^d.
class Point {
 public:
  Point() noexcept : dims_(0) { coords_.fill(0.0); }

  explicit Point(std::size_t dims) noexcept : dims_(dims) {
    PGRID_EXPECTS(dims >= 1 && dims <= kMaxDims);
    coords_.fill(0.0);
  }

  Point(std::initializer_list<double> coords) noexcept
      : dims_(coords.size()) {
    PGRID_EXPECTS(dims_ >= 1 && dims_ <= kMaxDims);
    coords_.fill(0.0);
    std::size_t i = 0;
    for (double c : coords) coords_[i++] = c;
  }

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] double operator[](std::size_t d) const noexcept {
    PGRID_ASSERT(d < dims_);
    return coords_[d];
  }
  /// Raw coordinate array for the Zone kernels: loops bounded by dims()
  /// skip the per-access assert of operator[], which otherwise dominates
  /// the O(neighbors x zones^2) overlap scans in CAN steady state.
  [[nodiscard]] const double* data() const noexcept { return coords_.data(); }
  double& operator[](std::size_t d) noexcept {
    PGRID_ASSERT(d < dims_);
    return coords_[d];
  }

  /// True iff every coordinate of this point >= the other's ("at least as
  /// capable in all dimensions" in matchmaking terms). Optionally restricted
  /// to the first `real_dims` dimensions (excluding the virtual dimension).
  [[nodiscard]] bool dominates(const Point& other,
                               std::size_t real_dims) const noexcept;

  /// Strictly greater in at least one of the first `real_dims` dimensions.
  [[nodiscard]] bool exceeds_somewhere(const Point& other,
                                       std::size_t real_dims) const noexcept;

  [[nodiscard]] double distance_to(const Point& other) const noexcept;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Point& a, const Point& b) noexcept {
    if (a.dims_ != b.dims_) return false;
    for (std::size_t d = 0; d < a.dims_; ++d) {
      if (a.coords_[d] != b.coords_[d]) return false;
    }
    return true;
  }

 private:
  std::array<double, kMaxDims> coords_;
  std::size_t dims_;
};

/// An axis-aligned half-open box [lo, hi) in [0,1)^d.
class Zone {
 public:
  Zone() noexcept = default;

  Zone(Point lo, Point hi) noexcept : lo_(lo), hi_(hi) {
    PGRID_EXPECTS(lo.dims() == hi.dims());
    for (std::size_t d = 0; d < lo.dims(); ++d) {
      PGRID_EXPECTS(lo[d] < hi[d]);
    }
  }

  /// The whole unit cube.
  [[nodiscard]] static Zone whole(std::size_t dims);

  [[nodiscard]] std::size_t dims() const noexcept { return lo_.dims(); }
  [[nodiscard]] const Point& lo() const noexcept { return lo_; }
  [[nodiscard]] const Point& hi() const noexcept { return hi_; }
  [[nodiscard]] bool valid() const noexcept { return lo_.dims() > 0; }

  [[nodiscard]] bool contains(const Point& p) const noexcept;
  [[nodiscard]] double volume() const noexcept;
  [[nodiscard]] Point center() const noexcept;
  [[nodiscard]] double extent(std::size_t d) const noexcept {
    return hi_[d] - lo_[d];
  }

  /// Minimum Euclidean distance from `p` to this box (0 if contained).
  [[nodiscard]] double distance_to(const Point& p) const noexcept;

  /// True iff the two zones share a (d-1)-dimensional face: their intervals
  /// touch in exactly one dimension and overlap with positive measure in
  /// every other dimension. This is the CAN neighbor relation.
  [[nodiscard]] bool abuts(const Zone& other) const noexcept;

  /// Interval overlap (positive measure) in every dimension.
  [[nodiscard]] bool overlaps(const Zone& other) const noexcept;

  /// Split at the midpoint of dimension `d`; first = lower half.
  [[nodiscard]] std::pair<Zone, Zone> split(std::size_t d) const;

  /// Choose the split that separates `keeper` (stays with the current
  /// owner) from `joiner` (goes to the joining node): splits at the
  /// midpoint *between the two points* along the dimension of largest
  /// extent in which they differ, so that each party keeps its own point
  /// (the paper's "node coordinates = capabilities" property). Falls back
  /// to a midpoint split of the largest dimension if the points coincide.
  /// Returns {owner_zone, joiner_zone}.
  [[nodiscard]] std::pair<Zone, Zone> split_for(const Point& keeper,
                                                const Point& joiner) const;

  /// True iff merging with `other` yields a box; if so `merged` is set.
  [[nodiscard]] bool try_merge(const Zone& other, Zone* merged) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Zone& a, const Zone& b) noexcept {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  Point lo_;
  Point hi_;
};

/// Box subtraction a \ b: the part of `a` not covered by `b`, decomposed
/// into at most 2*dims disjoint boxes ({a} when they do not overlap, empty
/// when b covers a). Used to resolve conflicting zone claims after a
/// partition heals: the loser subtracts the winner's zones, which keeps the
/// space tiled exactly — no gaps, no overlap.
[[nodiscard]] std::vector<Zone> subtract(const Zone& a, const Zone& b);

/// Greedily merge zones that form a box until no pair merges (bounds the
/// fragmentation subtraction introduces).
void coalesce(std::vector<Zone>& zones);

}  // namespace pgrid::can
