#include "can/can_node.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace pgrid::can {

namespace {
constexpr int kMaxRouteHops = 256;

bool contains_id(const std::vector<Guid>& ids, Guid id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

CanNode::CanNode(net::Network& network, net::NodeAddr self, Guid id,
                 Point rep_point, CanConfig config, Rng rng)
    : net_(network),
      rpc_(network, self),
      id_(id),
      rep_point_(rep_point),
      config_(config),
      rng_(rng),
      upstream_load_(config.dims, -1.0) {
  PGRID_EXPECTS(rep_point.dims() == config.dims);
}

CanNode::~CanNode() = default;

void CanNode::create() {
  running_ = true;
  joining_ = false;
  zones_.assign(1, Zone::whole(config_.dims));
  neighbors_.clear();
  note_zones_changed();
  start_maintenance();
}

void CanNode::join(Peer bootstrap, std::function<void(bool ok)> done) {
  PGRID_EXPECTS(bootstrap.valid());
  running_ = true;
  joining_ = true;
  bootstrap_ = bootstrap;
  zones_.clear();
  neighbors_.clear();
  pending_grants_.clear();
  note_zones_changed();
  // Maintenance starts immediately, not on join success: if the join fails
  // (bootstrap unreachable behind a partition), do_update keeps retrying
  // instead of leaving a permanently zoneless orphan.
  start_maintenance();

  // Phase 1: route to the owner of our representative point, driving the
  // greedy walk ourselves starting from the bootstrap node.
  auto st = std::make_shared<RouteState>();
  st->target = rep_point_;
  st->retries_left = config_.route_retries;
  st->cb = [this, done = std::move(done)](Peer owner, int /*hops*/) {
    if (!running_) return;
    if (!owner.valid()) {
      joining_ = false;
      note_lost(bootstrap_);
      if (done) done(false);
      return;
    }
    // Phase 2: ask the owner to split its zone for us.
    rpc_.call_retry(owner.addr,
              [this] { return std::make_unique<JoinReq>(self_peer(), rep_point_); },
              config_.rpc_timeout, config_.rpc_attempts,
              [this, done, owner](net::MessagePtr reply) {
                if (!running_) return;
                joining_ = false;
                if (reply == nullptr) {
                  note_lost(owner);
                  if (done) done(false);
                  return;
                }
                const auto* resp = net::msg_cast<JoinResp>(reply.get());
                if (!resp->accepted) {
                  note_lost(owner);
                  if (done) done(false);
                  return;
                }
                zones_.assign(1, resp->zone);
                note_zones_changed();
                for (const NeighborInfo& c : resp->contacts) {
                  if (c.peer.addr == addr()) continue;
                  NeighborState ns;
                  ns.id = c.peer.id;
                  ns.zones = c.zones;
                  ns.rep_point = c.rep_point;
                  ns.load = c.load;
                  ns.last_heard = net_.simulator().now();
                  ns.phi.heartbeat(ns.last_heard);
                  neighbors_.emplace(c.peer.addr, std::move(ns));
                }
                prune_neighbors();
                broadcast_zone_update();
                if (done) done(true);
              });
  };
  route_ask(st, bootstrap);
}

void CanNode::crash() {
  running_ = false;
  joining_ = false;
  update_task_.reset();
  audit_task_.reset();
  audit_probe_inflight_ = false;
  rpc_.cancel_all();
  for (auto& [addr, timer] : takeover_timers_) {
    net_.simulator().cancel(timer);
  }
  takeover_timers_.clear();
  zones_.clear();
  neighbors_.clear();
  note_zones_changed();
  lost_.clear();
  lost_cursor_ = 0;
  pending_grants_.clear();
  std::fill(upstream_load_.begin(), upstream_load_.end(), -1.0);
}

void CanNode::install_state(std::vector<Zone> zones,
                            FlatMap<net::NodeAddr, NeighborState> neighbors) {
  PGRID_EXPECTS(!zones.empty());
  running_ = true;
  zones_ = std::move(zones);
  neighbors_ = std::move(neighbors);
  note_zones_changed();
  for (auto& [addr, ns] : neighbors_) {
    ns.last_heard = net_.simulator().now();
  }
  start_maintenance();
}

bool CanNode::owns(const Point& p) const noexcept {
  for (const Zone& z : zones_) {
    if (z.contains(p)) return true;
  }
  return false;
}

double CanNode::total_volume() const noexcept {
  double v = 0.0;
  for (const Zone& z : zones_) v += z.volume();
  return v;
}

// --- routing -----------------------------------------------------------------

void CanNode::route(Point target, RouteCallback cb) {
  PGRID_EXPECTS(cb != nullptr);
  PGRID_EXPECTS(target.dims() == config_.dims);
  ++stats_.routes_started;
  if (!running_ || zones_.empty()) {
    ++stats_.routes_failed;
    cb(kNoPeer, 0);
    return;
  }
  auto st = std::make_shared<RouteState>();
  st->target = target;
  st->cb = std::move(cb);
  st->retries_left = config_.route_retries;
  route_restart(st);
}

void CanNode::route_restart(const std::shared_ptr<RouteState>& st) {
  if (!running_ || zones_.empty()) {
    route_failed(st);
    return;
  }
  if (owns(st->target)) {
    route_done(st, self_peer());
    return;
  }
  const Peer next = best_next_hop(st->target, st->avoid);
  if (!next.valid()) {
    route_failed(st);
    return;
  }
  route_ask(st, next);
}

void CanNode::route_ask(const std::shared_ptr<RouteState>& st, Peer target) {
  if (st->hops >= kMaxRouteHops) {
    route_failed(st);
    return;
  }
  ++st->hops;
  auto make = [t = st->target, avoid = st->avoid]() -> net::MessagePtr {
    auto req = std::make_unique<RouteReq>(t);
    req->avoid = avoid;
    return req;
  };
  rpc_.call_retry(target.addr, std::move(make), config_.rpc_timeout,
                  config_.rpc_attempts,
                  [this, st, target](net::MessagePtr reply) {
              if (!running_) return;
              if (reply == nullptr) {
                if (!contains_id(st->avoid, target.id)) {
                  st->avoid.push_back(target.id);
                }
                // Suspect the dead hop locally so maintenance reclaims it —
                // unless φ says it has been heard from too recently for the
                // silence to mean death (gray node, transient congestion).
                for (auto it = neighbors_.begin(); it != neighbors_.end();
                     ++it) {
                  if (it->second.id == target.id) {
                    const auto now = net_.simulator().now();
                    if (!config_.phi.enabled ||
                        it->second.phi.evict(now, config_.phi,
                                             config_.neighbor_timeout)) {
                      schedule_takeover(it->first);
                    } else {
                      ++stats_.suspicions;
                      PGRID_TRACE_EVENT(
                          net_.trace(), obs::EventKind::kPhiSuspect, addr(),
                          it->first, 2, 0,
                          it->second.phi.phi(now, config_.phi,
                                             config_.neighbor_timeout));
                    }
                    break;
                  }
                }
                if (--st->retries_left > 0) {
                  route_restart(st);
                } else {
                  route_failed(st);
                }
                return;
              }
              const auto* resp = net::msg_cast<RouteResp>(reply.get());
              if (resp->done) {
                route_done(st, resp->node);
              } else if (resp->node.valid()) {
                // Mark the hop visited: equal-distance (plateau) moves are
                // permitted, so revisits must be excluded for termination.
                if (!contains_id(st->avoid, target.id)) {
                  st->avoid.push_back(target.id);
                }
                route_ask(st, resp->node);
              } else {
                route_failed(st);  // greedy dead end at the responder
              }
            });
}

void CanNode::route_done(const std::shared_ptr<RouteState>& st, Peer owner) {
  ++stats_.routes_ok;
  stats_.route_hops.add(st->hops);
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayLookup, addr(),
                    static_cast<std::uint32_t>(owner.addr), 1,
                    static_cast<std::uint64_t>(std::max(st->hops, 0)));
  st->cb(owner, st->hops);
}

void CanNode::route_failed(const std::shared_ptr<RouteState>& st) {
  ++stats_.routes_failed;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayLookup, addr(),
                    obs::kNoActor, 0,
                    static_cast<std::uint64_t>(std::max(st->hops, 0)));
  st->cb(kNoPeer, st->hops);
}

double CanNode::my_distance_to(const Point& p) const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (const Zone& z : zones_) best = std::min(best, z.distance_to(p));
  return best;
}

Peer CanNode::best_next_hop(const Point& p,
                            const std::vector<Guid>& avoid) const {
  // Equal-distance moves are allowed: a target point lying exactly on zone
  // boundaries produces distance plateaus, and strict-descent greedy would
  // dead-end there. The initiator records every visited hop in `avoid`, so
  // plateau walks cannot cycle and the route still terminates.
  const double mine = my_distance_to(p);
  Peer best = kNoPeer;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& [naddr, ns] : neighbors_) {
    if (contains_id(avoid, ns.id)) continue;
    double d = std::numeric_limits<double>::infinity();
    for (const Zone& z : ns.zones) d = std::min(d, z.distance_to(p));
    if (d > mine) continue;
    if (d < best_dist || (d == best_dist && best.valid() && ns.id < best.id)) {
      best = Peer{naddr, ns.id};
      best_dist = d;
    }
  }
  return best;
}

// --- message handling ----------------------------------------------------------

bool CanNode::handle(net::NodeAddr from, net::MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (rpc_.consume_reply(msg)) return true;
  if (!running_) {
    const auto t = msg->type();
    return t >= net::kTagCanBase && t < net::kTagCanBase + 0x100;
  }
  switch (msg->type()) {
    case kRouteReq:
      on_route(from, *net::msg_cast<RouteReq>(msg.get()));
      return true;
    case kJoinReq:
      on_join(from, *net::msg_cast<JoinReq>(msg.get()));
      return true;
    case kZoneUpdate:
      on_zone_update(from, *net::msg_cast<ZoneUpdate>(msg.get()));
      return true;
    case kDimLoadReport:
      on_dim_load(*net::msg_cast<DimLoadReport>(msg.get()));
      return true;
    case kNeighborHello:
      on_neighbor_hello(from, *net::msg_cast<NeighborHello>(msg.get()));
      return true;
    case kNeighborHint: {
      // A third party saw our claim collide with this peer's: probe it so
      // the pairwise conflict resolution can run.
      const Peer peer = net::msg_cast<NeighborHint>(msg.get())->peer;
      if (peer.addr != addr() && neighbors_.find(peer.addr) == neighbors_.end()) {
        note_lost(peer);
        send_zone_update(peer.addr);
      }
      return true;
    }
    default:
      return false;
  }
}

void CanNode::on_route(net::NodeAddr from, const RouteReq& req) {
  if (owns(req.target)) {
    rpc_.reply(from, req, std::make_unique<RouteResp>(true, self_peer()));
    return;
  }
  const Peer next = best_next_hop(req.target, req.avoid);
  rpc_.reply(from, req, std::make_unique<RouteResp>(false, next));
}

void CanNode::on_join(net::NodeAddr from, const JoinReq& req) {
  auto resp = std::make_unique<JoinResp>();
  // Find our zone containing the joiner's point.
  auto zit = std::find_if(zones_.begin(), zones_.end(), [&](const Zone& z) {
    return z.contains(req.point);
  });
  if (zit == zones_.end() || req.joiner.addr == addr()) {
    // Idempotent re-grant: if we already split for this joiner and its point
    // lies in the pending grant, the earlier JoinResp was lost in flight —
    // re-issue the same grant instead of stranding the zone.
    if (auto git = pending_grants_.find(req.joiner.addr);
        git != pending_grants_.end() && git->second.contains(req.point) &&
        req.joiner.addr != addr()) {
      resp->accepted = true;
      resp->zone = git->second;
      NeighborInfo me;
      me.peer = self_peer();
      me.zones = zones_;
      me.rep_point = rep_point_;
      me.load = load_;
      resp->contacts.push_back(std::move(me));
      for (const auto& [naddr, ns] : neighbors_) {
        if (naddr == req.joiner.addr) continue;
        NeighborInfo info;
        info.peer = Peer{naddr, ns.id};
        info.zones = ns.zones;
        info.rep_point = ns.rep_point;
        info.load = ns.load;
        resp->contacts.push_back(std::move(info));
      }
      rpc_.reply(from, req, std::move(resp));
      return;
    }
    resp->accepted = false;  // we no longer own the point; joiner retries
    rpc_.reply(from, req, std::move(resp));
    return;
  }

  // Split so both parties keep their representative points where possible.
  const Point keeper =
      zit->contains(rep_point_) ? rep_point_ : zit->center();
  const auto [mine, theirs] = zit->split_for(keeper, req.point);
  *zit = mine;
  note_zones_changed();  // also invalidates scan epochs for the new entry below

  resp->accepted = true;
  resp->zone = theirs;
  // Hand over everything the joiner needs to seed its neighbor table:
  // ourselves plus all our current neighbors.
  NeighborInfo me;
  me.peer = self_peer();
  me.zones = zones_;
  me.rep_point = rep_point_;
  me.load = load_;
  resp->contacts.push_back(std::move(me));
  for (const auto& [naddr, ns] : neighbors_) {
    NeighborInfo info;
    info.peer = Peer{naddr, ns.id};
    info.zones = ns.zones;
    info.rep_point = ns.rep_point;
    info.load = ns.load;
    resp->contacts.push_back(std::move(info));
  }
  rpc_.reply(from, req, std::move(resp));

  // Track the joiner as a neighbor immediately (its zone abuts ours by
  // construction) and tell everyone about our shrunken zone.
  NeighborState ns;
  ns.id = req.joiner.id;
  ns.zones.assign(1, theirs);
  ns.rep_point = req.point;
  ns.load = 0.0;
  ns.last_heard = net_.simulator().now();
  ns.phi.heartbeat(ns.last_heard);
  neighbors_[req.joiner.addr] = std::move(ns);
  pending_grants_.insert_or_assign(req.joiner.addr, theirs);
  broadcast_zone_update();
  prune_neighbors();
}

void CanNode::on_zone_update(net::NodeAddr from, const ZoneUpdate& msg) {
  if (from == addr()) return;
  // Drop stale copies (duplicated or reordered by the fault plane): acting
  // on an out-of-date zone claim could roll our view backwards and, worse,
  // make the conflict-resolution below subtract space the sender has since
  // handed to a joiner.
  const auto known = neighbors_.find(from);
  if (known != neighbors_.end() && msg.seq <= known->second.update_seq) {
    return;
  }
  // The sender is demonstrably alive and talking: it is no longer "lost".
  // (Does not touch neighbors_, so `known` stays valid.)
  lost_.erase(std::remove_if(lost_.begin(), lost_.end(),
                             [from](const Peer& p) { return p.addr == from; }),
              lost_.end());

  // Steady-state fast path. Periodic refreshes almost always repeat the
  // sender's previous claim verbatim. When (a) the sender's zone version
  // matches what we stored, (b) our own geometry epoch matches the entry's
  // last quiet full scan — so neither our zones nor any neighbor's known
  // zones/membership changed since — and (c) no takeover timer or join
  // grant for the sender is outstanding, every geometry scan below reads
  // the exact inputs of that previous scan and must reproduce its empty
  // outcome: timers no-op, no grant to settle, no conflict, still abutting,
  // no hints. Skip straight to the liveness/load refresh.
  if (known != neighbors_.end() &&
      known->second.scan_epoch == geometry_epoch_ &&
      known->second.zones_version == msg.zones_version() &&
      takeover_timers_.empty() &&
      pending_grants_.find(from) == pending_grants_.end()) {
    NeighborState& ns = known->second;
    ns.load = msg.load();
    ns.last_heard = net_.simulator().now();
    ns.phi.heartbeat(ns.last_heard);
    ns.their_neighbors = msg.neighbor_addrs();
    ns.update_seq = msg.seq;
    return;
  }
  // A live update cancels any pending takeover of the sender...
  if (auto it = takeover_timers_.find(from); it != takeover_timers_.end()) {
    net_.simulator().cancel(it->second);
    takeover_timers_.erase(it);
  }
  // ...and an update overlapping a suspect's zones means someone (possibly
  // the sender) already took them over. Overlap, not equality: healthy
  // zones are disjoint, so any overlap implies a claim.
  for (auto it = takeover_timers_.begin(); it != takeover_timers_.end();) {
    const auto suspect = neighbors_.find(it->first);
    bool covered = false;
    if (suspect != neighbors_.end()) {
      for (const Zone& sz : suspect->second.zones) {
        for (const Zone& mz : msg.zones()) {
          if (sz.overlaps(mz)) {
            covered = true;
            break;
          }
        }
        if (covered) break;
      }
    }
    if (covered) {
      net_.simulator().cancel(it->second);
      neighbors_.erase(it->first);
      ++geometry_epoch_;
      it = takeover_timers_.erase(it);
    } else {
      ++it;
    }
  }

  // A pending join grant is settled by the grantee's first update: covering
  // zones confirm it, non-covering zones mean the joiner never installed it
  // (lost JoinResp, rejoined elsewhere) and we reclaim the stranded space.
  settle_grant(from, msg);

  // Double-claim resolution (takeovers on both sides of a partition, or a
  // plain takeover race): the lower GUID keeps contested space.
  if (!resolve_conflict(msg)) return;  // we lost everything and are rejoining

  // Refresh or create the neighbor entry. Overlap counts as adjacency: it
  // only happens mid-conflict, and dropping the link then would stall the
  // resolution above.
  bool abuts_me = false;
  for (const Zone& mz : zones_) {
    for (const Zone& oz : msg.zones()) {
      if (mz.abuts(oz) || mz.overlaps(oz)) {
        abuts_me = true;
        break;
      }
    }
    if (abuts_me) break;
  }
  if (!abuts_me) {
    if (neighbors_.erase(from) != 0) ++geometry_epoch_;
    return;
  }
  {
    const auto prev = neighbors_.find(from);
    if (prev == neighbors_.end() ||
        prev->second.zones_version != msg.zones_version()) {
      ++geometry_epoch_;  // new entry, or its stored zone set changes below
    }
  }
  NeighborState& ns = neighbors_[from];
  ns.id = msg.sender().id;
  ns.zones = msg.zones();
  ns.rep_point = msg.rep_point();
  ns.load = msg.load();
  ns.last_heard = net_.simulator().now();
  ns.phi.heartbeat(ns.last_heard);
  ns.their_neighbors = msg.neighbor_addrs();
  ns.update_seq = msg.seq;
  ns.zones_version = msg.zones_version();

  // Transitive conflict discovery: if the sender's claim collides with
  // another neighbor's known zones, the two claimants may not know each
  // other (a double claim can sit between strangers after a heal).
  // Introduce them; the pairwise rule does the rest. Healthy zone sets are
  // disjoint, so this sends nothing in normal operation.
  bool hints_sent = false;
  for (const auto& [oaddr, other] : neighbors_) {
    if (oaddr == from) continue;
    bool collide = false;
    for (const Zone& sz : msg.zones()) {
      for (const Zone& oz : other.zones) {
        if (sz.overlaps(oz)) {
          collide = true;
          break;
        }
      }
      if (collide) break;
    }
    if (collide) {
      rpc_.send(oaddr, std::make_unique<NeighborHint>(msg.sender()));
      hints_sent = true;
    }
  }
  // A quiet scan (no hints) of the current geometry makes the next
  // same-version update from this sender eligible for the fast path above.
  // Hints must keep repeating while the collision stands, so they bar
  // eligibility until something changes. The epoch is read after any bumps
  // this handler did: the scans above ran against that post-change state.
  ns.scan_epoch = hints_sent ? 0 : geometry_epoch_;
}

void CanNode::settle_grant(net::NodeAddr from, const ZoneUpdate& msg) {
  auto git = pending_grants_.find(from);
  if (git == pending_grants_.end()) return;
  bool covers = false;
  for (const Zone& z : msg.zones()) {
    if (config_.batching.enabled) {
      // Strict rule: the claim must contain the whole granted zone. A
      // grantee that installed the grant claims exactly it; a partial
      // overlap is a stale pre-grant snapshot (the fault plane replaying
      // the joiner's previous life, whose old zone can sit inside the
      // larger regrant). Confirming on such a claim strands the grant:
      // nobody owns it and nobody tracks it. A false *reclaim*, by
      // contrast, self-corrects through the double-claim GUID rule, so
      // when in doubt reclaim. (Batched-mode only: the unbatched protocol
      // keeps its original byte-for-byte behavior.)
      bool contains = true;
      for (std::size_t d = 0; d < config_.dims; ++d) {
        if (z.lo()[d] > git->second.lo()[d] ||
            z.hi()[d] < git->second.hi()[d]) {
          contains = false;
          break;
        }
      }
      if (contains) {
        covers = true;
        break;
      }
    } else if (z.overlaps(git->second)) {
      covers = true;
      break;
    }
  }
  if (!covers) {
    // The grantee claims space elsewhere (or nothing): the granted zone is
    // owned by nobody. Take it back; if the grantee did install it after
    // all, the transient double claim resolves via the GUID rule.
    zones_.push_back(git->second);
    coalesce(zones_);
    note_zones_changed();
    pending_grants_.erase(git);
    prune_neighbors();
    broadcast_zone_update();
    return;
  }
  pending_grants_.erase(git);
}

bool CanNode::resolve_conflict(const ZoneUpdate& msg) {
  if (!(msg.sender().id < id_)) return true;  // their problem, not ours
  // Disjoint fast path: subtracting a non-overlapping zone returns its
  // input unchanged, so when no claim of theirs overlaps any zone of ours —
  // every healthy steady-state update from a lower-GUID neighbor — the
  // allocating subtract machinery below would be an expensive no-op.
  bool any_overlap = false;
  for (const Zone& mine : zones_) {
    for (const Zone& w : msg.zones()) {
      if (mine.overlaps(w)) {
        any_overlap = true;
        break;
      }
    }
    if (any_overlap) break;
  }
  if (!any_overlap) return true;
  std::vector<Zone> kept;
  bool changed = false;
  for (const Zone& mine : zones_) {
    std::vector<Zone> pieces{mine};
    for (const Zone& w : msg.zones()) {
      std::vector<Zone> next;
      for (const Zone& piece : pieces) {
        std::vector<Zone> sub = subtract(piece, w);
        next.insert(next.end(), sub.begin(), sub.end());
      }
      pieces = std::move(next);
    }
    if (pieces.size() != 1 || !(pieces.front() == mine)) changed = true;
    kept.insert(kept.end(), pieces.begin(), pieces.end());
  }
  if (!changed) return true;
  coalesce(kept);
  zones_ = std::move(kept);
  note_zones_changed();
  if (zones_.empty()) {
    // The winner covers everything we held: start over as a fresh joiner
    // through it (a clean split, no further conflict).
    join(msg.sender(), nullptr);
    return false;
  }
  prune_neighbors();
  broadcast_zone_update();
  return true;
}

void CanNode::on_dim_load(const DimLoadReport& msg) {
  if (msg.dim < upstream_load_.size()) {
    upstream_load_[msg.dim] = msg.report;
  }
}

void CanNode::on_neighbor_hello(net::NodeAddr from, const NeighborHello& msg) {
  if (from == addr()) return;
  // A pull is always honored with a full snapshot. Requests never chain
  // (see below), so hello traffic per periodic contact stays bounded.
  if (msg.request_full) send_zone_update(from);
  const auto it = neighbors_.find(from);
  if (it == neighbors_.end()) {
    // The sender believes we are neighbors but we hold no entry (pruned, or
    // seeded state diverged): pull its full claim so on_zone_update's
    // adjacency logic can decide.
    if (!msg.request_full) {
      rpc_.send(from, std::make_unique<NeighborHello>(
                          self_peer(), zones_version_, update_seq_, load_,
                          /*request_full=*/true));
    }
    return;
  }
  NeighborState& ns = it->second;
  const auto now = net_.simulator().now();
  ns.load = msg.load;
  ns.last_heard = now;
  ns.phi.heartbeat(now);
  // Advance the staleness watermark: every full update the sender has
  // already emitted carries seq <= msg.seq, so any such copy that arrives
  // after this hello is a duplicate or reordering and must not be applied.
  // Without this, hello-heavy cadence starves the watermark and lets the
  // fault plane replay obsolete zone claims into conflict resolution.
  if (msg.seq > ns.update_seq) ns.update_seq = msg.seq;
  // The sender is demonstrably alive: cancel any pending takeover, exactly
  // as a full update would.
  if (auto t = takeover_timers_.find(from); t != takeover_timers_.end()) {
    net_.simulator().cancel(t->second);
    takeover_timers_.erase(t);
  }
  if (!msg.request_full && ns.zones_version != msg.zones_version) {
    // Our stored snapshot of the sender is stale — its full update was lost
    // or predates us. Pull a resync now rather than waiting for the
    // sender's forced refresh.
    rpc_.send(from, std::make_unique<NeighborHello>(
                        self_peer(), zones_version_, update_seq_, load_,
                        /*request_full=*/true));
  }
}

// --- maintenance -----------------------------------------------------------

void CanNode::start_maintenance() {
  if (!config_.run_maintenance) return;
  if (update_task_ != nullptr) return;  // already ticking (rejoin path)
  const auto phase =
      sim::SimTime::nanos(rng_.range(0, config_.update_period.ns() - 1));
  update_task_ = std::make_unique<sim::PeriodicTask>(
      net_.simulator(), config_.update_period, [this] { do_update(); }, phase);
  // Gated before its phase draw: with the audit off (the default) the RNG
  // sequence — and thus every downstream draw — is untouched.
  if (config_.audit_period > sim::SimTime::zero()) {
    const auto audit_phase =
        sim::SimTime::nanos(rng_.range(0, config_.audit_period.ns() - 1));
    audit_task_ = std::make_unique<sim::PeriodicTask>(
        net_.simulator(), config_.audit_period, [this] { do_gap_audit(); },
        audit_phase);
  }
}

void CanNode::do_update() {
  if (zones_.empty()) {
    // Orphan: the join failed (bootstrap behind a partition) or every zone
    // was relinquished to a lower-GUID claimant. Keep retrying entry
    // through the last bootstrap or a recently lost peer.
    if (!joining_) {
      Peer target = bootstrap_;
      if (!lost_.empty()) target = lost_[lost_cursor_++ % lost_.size()];
      if (target.valid()) join(target, nullptr);
    }
    return;
  }
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayMaintain, addr(),
                    obs::kNoActor, 4, 0,
                    static_cast<double>(neighbors_.size()));
  if (config_.batching.enabled) {
    do_batched_round();
    return;
  }
  broadcast_zone_update();
  send_dim_load_reports();
  // Probe one lost peer per round: if it is alive (healed partition,
  // restarted node) the zone exchange re-links the tables and any double
  // claim resolves via resolve_conflict.
  if (!lost_.empty()) {
    send_zone_update(lost_[lost_cursor_++ % lost_.size()].addr);
  }
  // Failure detection: schedule takeover for stale neighbors. With φ on,
  // staleness is judged against the neighbor's learned update cadence;
  // suspect-level silence only re-sends our claim (re-links tables that
  // went asymmetric) instead of arming the takeover timer.
  const auto now = net_.simulator().now();
  for (const auto& [naddr, ns] : neighbors_) {
    if (config_.phi.enabled) {
      if (ns.phi.evict(now, config_.phi, config_.neighbor_timeout)) {
        schedule_takeover(naddr);
      } else if (ns.phi.suspect(now, config_.phi, config_.neighbor_timeout) &&
                 takeover_timers_.find(naddr) == takeover_timers_.end()) {
        ++stats_.suspicions;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect, addr(),
                          naddr, 2, 0,
                          ns.phi.phi(now, config_.phi,
                                     config_.neighbor_timeout));
        send_zone_update(naddr);
      }
    } else if (now - ns.last_heard > config_.neighbor_timeout) {
      schedule_takeover(naddr);
    }
  }
}

void CanNode::do_batched_round() {
  // One batch scope for the whole round: everything below addressed to the
  // same neighbor — snapshot or hello plus its dim-load reports — leaves as
  // a single wire message, and the replies coalesce symmetrically.
  const net::BatchScope batch(net_, addr());
  const auto stride =
      std::max<std::uint32_t>(1, config_.batching.quiet_stride);
  ++round_;

  // Per-dimension upstream blends, computed once per round (the unbatched
  // path recomputes the same value per dimension; same numbers).
  std::array<double, kMaxDims> report{};
  for (std::size_t d = 0; d < config_.dims; ++d) {
    const double above = upstream_load_[d];
    report[d] = above < 0.0 ? load_
                            : config_.push_alpha * load_ +
                                  (1.0 - config_.push_alpha) * above;
  }

  std::shared_ptr<const ZoneUpdate::Snapshot> snap;  // built on first use
  for (auto& [naddr, ns] : neighbors_) {
    // Contact each neighbor every stride-th round, spread by address so a
    // given round touches ~1/stride of the neighborhood.
    if ((round_ + naddr) % stride != 0) continue;
    ++ns.contacts_since_full;
    const bool full = ns.full_sent_version != zones_version_ ||
                      ns.contacts_since_full >= kFullRefreshContacts;
    if (full) {
      if (snap == nullptr) snap = make_zone_snapshot();
      send_zone_update(naddr, snap);  // resets the bookkeeping fields
    } else {
      rpc_.send(naddr, std::make_unique<NeighborHello>(
                           self_peer(), zones_version_, update_seq_, load_));
    }
    // This neighbor's dim-load reports ride the same envelope.
    for (std::size_t d = 0; d < config_.dims; ++d) {
      bool below = false;
      for (const Zone& mz : zones_) {
        for (const Zone& oz : ns.zones) {
          if (oz.hi()[d] == mz.lo()[d] && mz.abuts(oz)) {
            below = true;
            break;
          }
        }
        if (below) break;
      }
      if (below) {
        rpc_.send(naddr, std::make_unique<DimLoadReport>(
                             static_cast<std::uint32_t>(d), report[d]));
      }
    }
  }

  // Lost-peer probe, one per round, exactly as in the unbatched path.
  if (!lost_.empty()) {
    send_zone_update(lost_[lost_cursor_++ % lost_.size()].addr);
  }

  // Dangling-grant backstop: a pending grant is normally settled (or
  // reclaimed) by the grantee's first ZoneUpdate, and a silent grantee is
  // handled by takeover — but only while its neighbor entry exists. If a
  // stale claim got the entry dropped as non-adjacent while the grant was
  // still pending, nobody owns or tracks the granted space. Reclaim it; a
  // grantee that did install it resurfaces as a double claim and the GUID
  // rule settles ownership.
  bool reclaimed = false;
  for (auto it = pending_grants_.begin(); it != pending_grants_.end();) {
    if (neighbors_.find(it->first) == neighbors_.end()) {
      zones_.push_back(it->second);
      it = pending_grants_.erase(it);
      reclaimed = true;
    } else {
      ++it;
    }
  }
  if (reclaimed) {
    coalesce(zones_);
    note_zones_changed();
    prune_neighbors();
    broadcast_zone_update();
  }

  // Failure detection with deadlines scaled by the contact stride, so the
  // detector tolerates the same number of missed *contacts* as the
  // unbatched protocol before acting. φ adapts on its own (it learns the
  // actual inter-arrival cadence) but keeps the same scaled fallback.
  const auto deadline = config_.neighbor_timeout * static_cast<int>(stride);
  const auto now = net_.simulator().now();
  for (const auto& [naddr, ns] : neighbors_) {
    if (config_.phi.enabled) {
      if (ns.phi.evict(now, config_.phi, deadline)) {
        schedule_takeover(naddr);
      } else if (ns.phi.suspect(now, config_.phi, deadline) &&
                 takeover_timers_.find(naddr) == takeover_timers_.end()) {
        ++stats_.suspicions;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect, addr(),
                          naddr, 2, 0,
                          ns.phi.phi(now, config_.phi, deadline));
        send_zone_update(naddr);
      }
    } else if (now - ns.last_heard > deadline) {
      schedule_takeover(naddr);
    }
  }
}

void CanNode::note_lost(Peer peer) {
  if (!peer.valid() || peer.addr == addr()) return;
  for (const Peer& p : lost_) {
    if (p.addr == peer.addr) return;
  }
  if (lost_.size() >= kLostCap) lost_.erase(lost_.begin());
  lost_.push_back(peer);
}

std::shared_ptr<const ZoneUpdate::Snapshot> CanNode::make_zone_snapshot()
    const {
  auto snap = std::make_shared<ZoneUpdate::Snapshot>();
  snap->sender = self_peer();
  snap->zones = zones_;
  snap->zones_version = zones_version_;
  snap->rep_point = rep_point_;
  snap->load = load_;
  snap->neighbor_addrs.reserve(neighbors_.size());
  for (const auto& [naddr, ns] : neighbors_) {
    snap->neighbor_addrs.push_back(naddr);
  }
  return snap;
}

void CanNode::send_zone_update(net::NodeAddr to) {
  send_zone_update(to, make_zone_snapshot());
}

void CanNode::send_zone_update(
    net::NodeAddr to, std::shared_ptr<const ZoneUpdate::Snapshot> snap) {
  if (config_.batching.enabled) {
    // Any full send — periodic, broadcast, suspicion re-link — marks the
    // receiver as holding this snapshot version, so the next batched
    // contact can downgrade to a hello.
    if (auto it = neighbors_.find(to); it != neighbors_.end()) {
      it->second.full_sent_version = snap->zones_version;
      it->second.contacts_since_full = 0;
    }
  }
  auto msg = std::make_unique<ZoneUpdate>(std::move(snap));
  msg->seq = ++update_seq_;
  rpc_.send(to, std::move(msg));
}

void CanNode::broadcast_zone_update(const std::vector<net::NodeAddr>& extra) {
  if (neighbors_.empty() && extra.empty()) return;
  // One snapshot per broadcast: nothing below mutates zones_ or neighbors_,
  // so every recipient sees exactly what per-send snapshotting produced,
  // minus degree-1 redundant vector builds.
  const auto snap = make_zone_snapshot();
  for (const auto& [naddr, ns] : neighbors_) send_zone_update(naddr, snap);
  for (net::NodeAddr a : extra) {
    if (neighbors_.find(a) == neighbors_.end() && a != addr()) {
      send_zone_update(a, snap);
    }
  }
}

void CanNode::send_dim_load_reports() {
  // For each dimension: blend our load with the report heard from above and
  // push the result to every neighbor strictly below us in that dimension.
  for (std::size_t d = 0; d < config_.dims; ++d) {
    const double above = upstream_load_[d];
    const double report = above < 0.0
                              ? load_
                              : config_.push_alpha * load_ +
                                    (1.0 - config_.push_alpha) * above;
    for (const auto& [naddr, ns] : neighbors_) {
      // "Below along d": some zone of theirs abuts some zone of ours with
      // their high face touching our low face in dimension d.
      bool below = false;
      for (const Zone& mz : zones_) {
        for (const Zone& oz : ns.zones) {
          if (oz.hi()[d] == mz.lo()[d] && mz.abuts(oz)) {
            below = true;
            break;
          }
        }
        if (below) break;
      }
      if (below) {
        rpc_.send(naddr, std::make_unique<DimLoadReport>(
                             static_cast<std::uint32_t>(d), report));
      }
    }
  }
}

void CanNode::prune_neighbors() {
  for (auto it = neighbors_.begin(); it != neighbors_.end();) {
    bool abuts_me = false;
    for (const Zone& mz : zones_) {
      for (const Zone& oz : it->second.zones) {
        if (mz.abuts(oz)) {
          abuts_me = true;
          break;
        }
      }
      if (abuts_me) break;
    }
    if (abuts_me) {
      ++it;
    } else {
      it = neighbors_.erase(it);
      ++geometry_epoch_;  // membership changed: cached quiet scans are stale
    }
  }
}

void CanNode::schedule_takeover(net::NodeAddr dead) {
  if (takeover_timers_.find(dead) != takeover_timers_.end()) return;
  if (neighbors_.find(dead) == neighbors_.end()) return;
  // Smaller claimants fire first; a deterministic GUID-derived stagger
  // separates near-equal volumes by much more than one network latency,
  // so the winner's announcement cancels the others' timers in time.
  const double share = std::min(1.0, total_volume());
  const auto stagger = static_cast<std::int64_t>(id_.value() % 1024) *
                       sim::SimTime::millis(2).ns();
  const auto delay = sim::SimTime::nanos(
      config_.takeover_base_delay.ns() +
      static_cast<std::int64_t>(share *
                                static_cast<double>(
                                    config_.takeover_base_delay.ns()) * 4.0) +
      stagger);
  takeover_timers_[dead] =
      net_.simulator().schedule_in(delay, [this, dead] {
        takeover_timers_.erase(dead);
        execute_takeover(dead);
      });
}

void CanNode::execute_takeover(net::NodeAddr dead) {
  auto it = neighbors_.find(dead);
  if (it == neighbors_.end() || !running_) return;
  // Claim the dead node's zones and announce to everyone either of us knew.
  // Claimed zones stay as distinct zone objects (no merging): claims are
  // then always whole-zone, which keeps the double-claim conflict
  // resolution in on_zone_update a simple equality test. (Classic CAN
  // likewise defers zone coalescing to a background reassignment.)
  std::vector<net::NodeAddr> to_notify = it->second.their_neighbors;
  for (const Zone& z : it->second.zones) zones_.push_back(z);
  note_zones_changed();  // also invalidates scan epochs for the erase below
  note_lost(Peer{dead, it->second.id});
  neighbors_.erase(it);
  pending_grants_.erase(dead);  // its zone view included any grant
  ++stats_.takeovers;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayRepair, addr(),
                    dead, 2, 0, static_cast<double>(zones_.size()));
  prune_neighbors();
  broadcast_zone_update(to_notify);
}

// --- anti-entropy tiling audit ----------------------------------------------

bool CanNode::point_known_covered(const Point& p) const noexcept {
  for (const Zone& z : zones_) {
    if (z.contains(p)) return true;
  }
  for (const auto& [naddr, ns] : neighbors_) {
    for (const Zone& z : ns.zones) {
      if (z.contains(p)) return true;
    }
  }
  return false;
}

void CanNode::do_gap_audit() {
  if (!running_ || zones_.empty() || audit_probe_inflight_) return;
  // Probe the first face of our zones whose far side no known zone covers.
  // A correlated crash of a whole region leaves interior zones owned by
  // nobody: the survivors on the region's rim only ever knew (and took
  // over) the outermost dead layer, so the hole beyond their new frontier
  // is invisible to the timeout/takeover machinery. Routing towards the
  // uncovered point settles it: an owner means the tables merely went
  // asymmetric (re-link them); no owner means a genuine hole (claim it).
  constexpr double kEps = 1e-9;
  for (const Zone& z : zones_) {
    for (std::size_t d = 0; d < z.dims(); ++d) {
      for (const bool hi_side : {false, true}) {
        const double face = hi_side ? z.hi()[d] : z.lo()[d];
        if (hi_side ? face >= 1.0 : face <= 0.0) continue;  // space boundary
        Point probe = z.center();
        probe[d] = hi_side ? face : face - kEps;
        if (point_known_covered(probe)) continue;
        audit_probe_inflight_ = true;
        route(probe, [this, z, d, hi_side, probe](Peer owner, int /*hops*/) {
          audit_probe_inflight_ = false;
          if (!running_ || zones_.empty()) return;
          if (owner.valid() && owner.addr != addr()) {
            // Someone does own the space; we just lost track of them.
            // Exchange claims so the neighbor tables re-link.
            note_lost(owner);
            send_zone_update(owner.addr);
            return;
          }
          if (owner.valid()) return;  // resolved to us: closed meanwhile
          if (point_known_covered(probe)) return;  // likewise
          claim_gap(z, d, hi_side);
        });
        return;  // one probe per round keeps claims serialized
      }
    }
  }
}

void CanNode::claim_gap(const Zone& z, std::size_t d, bool hi_side) {
  // The hole's true extent is unknown (its owners are dead and gone), so
  // claim the mirror of our own zone across the shared face — a bounded,
  // deterministic bite — minus every zone we know to be owned. Repeated
  // audit rounds grow the claim until the tiling closes; if the bite
  // overlaps a live stranger's zone after all, the GUID-ordered conflict
  // rule in on_zone_update resolves the double claim on first contact.
  Point lo = z.lo();
  Point hi = z.hi();
  if (hi_side) {
    lo[d] = z.hi()[d];
    hi[d] = std::min(1.0, z.hi()[d] + z.extent(d));
  } else {
    hi[d] = z.lo()[d];
    lo[d] = std::max(0.0, z.lo()[d] - z.extent(d));
  }
  if (!(lo[d] < hi[d])) return;
  std::vector<Zone> pieces{Zone(lo, hi)};
  auto carve = [&pieces](const Zone& owned) {
    std::vector<Zone> next;
    for (const Zone& piece : pieces) {
      std::vector<Zone> sub = subtract(piece, owned);
      next.insert(next.end(), sub.begin(), sub.end());
    }
    pieces = std::move(next);
  };
  for (const Zone& mine : zones_) carve(mine);
  for (const auto& [naddr, ns] : neighbors_) {
    for (const Zone& theirs : ns.zones) carve(theirs);
  }
  if (pieces.empty()) return;
  for (const Zone& piece : pieces) zones_.push_back(piece);
  coalesce(zones_);
  note_zones_changed();
  ++stats_.gap_repairs;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kAntiEntropyRepair, addr(),
                    obs::kNoActor, 2, 0, static_cast<double>(zones_.size()));
  prune_neighbors();
  broadcast_zone_update();
}

}  // namespace pgrid::can
