#pragma once
// Result export: per-job CSV for external plotting, and an ASCII wait-time
// histogram for terminal reports.

#include <string>

#include "metrics/metrics.h"

namespace pgrid::metrics {

/// Write one CSV row per job (seq, timestamps, hops, run node, flags).
/// Returns false on I/O error.
bool write_job_csv(const Collector& collector, const std::string& path);

/// Render the wait-time distribution of started jobs as an ASCII histogram
/// with `buckets` equal-width bins from 0 to the observed maximum.
[[nodiscard]] std::string wait_histogram(const Collector& collector,
                                         std::size_t buckets = 12);

}  // namespace pgrid::metrics
