#pragma once
// Experiment metrics: per-job lifecycle timestamps, matchmaking cost,
// per-node load, and the summary statistics the paper's figures report
// (average and standard deviation of job wait time, Fig. 2).
//
// Two storage modes:
//  - Batch (default): one JobOutcome record per job, supporting exact
//    quantiles and per-job inspection (Collector::job). O(jobs) memory.
//  - Streaming: only in-flight jobs are tracked individually; terminal
//    statistics accumulate into RunningStats and a fixed-bucket wait
//    histogram. Memory is O(max backlog + buckets), so million-job runs
//    no longer hold a record vector. Per-job accessors are unavailable.
// The streaming-safe summary accessors (wait_stats & co.) work in both
// modes; drivers that never inspect individual jobs should use those.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "sim/time.h"

namespace pgrid::metrics {

/// Lifecycle record for one submitted job (indexed by its sequence number).
struct JobOutcome {
  static constexpr double kNever = -1.0;

  double submit_sec = kNever;     // first client submission
  double owner_sec = kNever;      // reached its (final) owner node
  double matched_sec = kNever;    // run node chosen
  double started_sec = kNever;    // execution began on the run node
  double completed_sec = kNever;  // result returned to the client
  int match_hops = 0;             // overlay hops spent on matchmaking
  int injection_hops = 0;         // overlay hops routing job -> owner
  std::uint32_t resubmissions = 0;
  std::uint32_t requeues = 0;     // owner re-dispatched after a failure
  std::uint32_t run_node = 0;
  /// The node that actually began execution (recorded by on_started's
  /// caller). Usually equals run_node; they diverge when a lost dispatch
  /// reply makes the owner re-match while the first run node proceeds. The
  /// sharded merge rebuilds node_jobs_ from this field — unlike run_node it
  /// is a shard-local fact of the started event.
  std::uint32_t start_node = 0;
  bool unmatched = false;         // matchmaking gave up

  [[nodiscard]] bool completed() const noexcept {
    return completed_sec != kNever;
  }
  [[nodiscard]] bool started() const noexcept { return started_sec != kNever; }
  /// The paper's "job wait time": submission until execution start.
  [[nodiscard]] double wait_sec() const noexcept {
    return started() ? started_sec - submit_sec : kNever;
  }
};

/// Central collector; one per experiment run. The grid layer writes events,
/// the benches read summaries.
class Collector {
 public:
  explicit Collector(std::size_t job_count, std::size_t node_count,
                     bool streaming = false);

  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  // --- event recording (called by the grid layer) -----------------------
  void on_submit(std::uint64_t seq, sim::SimTime t);
  void on_owner(std::uint64_t seq, sim::SimTime t, int injection_hops);
  void on_matched(std::uint64_t seq, sim::SimTime t, int hops,
                  std::uint32_t run_node);
  /// `run_node` is the caller's own address (the node beginning execution);
  /// callers that do not know it (legacy tests) omit it and the record falls
  /// back to the last matched run node.
  static constexpr std::uint32_t kUnknownNode = 0xffffffffu;
  void on_started(std::uint64_t seq, sim::SimTime t,
                  std::uint32_t run_node = kUnknownNode);
  void on_completed(std::uint64_t seq, sim::SimTime t);
  void on_resubmit(std::uint64_t seq);
  void on_requeue(std::uint64_t seq);
  void on_unmatched(std::uint64_t seq);
  void add_node_busy(std::uint32_t node, double seconds);

  /// Rebuild this collector as the merge of a sharded run's per-shard parts
  /// (batch mode only, both sides). Each lifecycle event lands in the shard
  /// collector of the node or client that observed it; the merge reassembles
  /// per-job records field-wise — first event (minimum time) wins, mirroring
  /// the sequential dedup guards; owner is last-wins; per-job retry counters
  /// sum — then recomputes every aggregate counter from the merged records
  /// (node busy-seconds, which have no record backing, sum element-wise).
  /// A pure function of the parts' contents, so the result is identical for
  /// every shard count that produced the same trajectory. Idempotent:
  /// existing contents are discarded.
  void merge_from_shards(const std::vector<const Collector*>& parts);

  // --- summaries ----------------------------------------------------------
  /// Per-job record; batch mode only.
  [[nodiscard]] const JobOutcome& job(std::uint64_t seq) const;
  [[nodiscard]] std::size_t job_count() const noexcept {
    return streaming_ ? job_count_ : jobs_.size();
  }
  [[nodiscard]] std::size_t completed_count() const noexcept {
    return completed_n_;
  }
  [[nodiscard]] std::size_t started_count() const noexcept {
    return started_n_;
  }
  [[nodiscard]] std::size_t unmatched_count() const noexcept {
    return unmatched_n_;
  }
  [[nodiscard]] std::uint64_t total_resubmissions() const noexcept {
    return resubmissions_n_;
  }
  [[nodiscard]] std::uint64_t total_requeues() const noexcept {
    return requeues_n_;
  }

  /// Wait times of all started jobs (the Fig. 2 quantity); batch mode only
  /// (supports exact quantiles). Streaming drivers use wait_stats().
  [[nodiscard]] Samples wait_times() const;
  /// Matchmaking hops of all matched jobs (the §3.3 "matchmaking cost");
  /// batch mode only.
  [[nodiscard]] Samples matchmaking_hops() const;
  [[nodiscard]] Samples injection_hops() const;

  // Streaming-safe summaries: O(1)-ish in streaming mode, computed from the
  // record vector in batch mode. Same quantities as the Samples accessors.
  [[nodiscard]] RunningStats wait_stats() const;
  [[nodiscard]] RunningStats match_hops_stats() const;
  [[nodiscard]] RunningStats injection_hops_stats() const;
  /// Fixed-bucket wait-time histogram (always defined; populated from the
  /// stream or rebuilt from records).
  [[nodiscard]] Histogram wait_histogram() const;

  /// Jobs executed per node — load-balance dispersion across the system.
  [[nodiscard]] RunningStats jobs_per_node() const;
  /// Busy seconds per node.
  [[nodiscard]] RunningStats busy_per_node() const;
  /// Completion makespan (latest completion time).
  [[nodiscard]] double makespan_sec() const noexcept { return makespan_sec_; }

  /// Bytes behind job bookkeeping (record vector or in-flight table plus
  /// per-node arrays); capacity snapshot for memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Render a one-line summary (used by benches for per-cell rows).
  [[nodiscard]] std::string summary() const;

  /// Wait-histogram shape shared by both modes (seconds).
  static constexpr double kWaitHistLo = 0.0;
  static constexpr double kWaitHistHi = 3600.0;
  static constexpr std::size_t kWaitHistBuckets = 240;

 private:
  /// Streaming mode's per-job state between submission and completion.
  /// Terminal quantities fold into the running statistics and the entry is
  /// erased, so the table size follows the in-flight backlog, not the run
  /// length.
  struct InFlight {
    double submit_sec = JobOutcome::kNever;
    double owner_sec = JobOutcome::kNever;
    int injection_hops = 0;
    std::uint32_t run_node = 0;
    bool matched = false;
    bool started = false;
    bool unmatched = false;
  };

  bool streaming_ = false;
  std::size_t job_count_ = 0;  // expected jobs (streaming mode's job_count())

  // Batch storage.
  std::vector<JobOutcome> jobs_;

  // Streaming storage.
  std::unordered_map<std::uint64_t, InFlight> inflight_;
  RunningStats wait_stats_;
  Histogram wait_hist_{kWaitHistLo, kWaitHistHi, kWaitHistBuckets};
  RunningStats match_hops_stats_;
  RunningStats injection_hops_retired_;

  // Maintained in both modes (identical dedup guards to the record path).
  std::size_t completed_n_ = 0;
  std::size_t started_n_ = 0;
  std::size_t unmatched_n_ = 0;
  std::uint64_t resubmissions_n_ = 0;
  std::uint64_t requeues_n_ = 0;
  double makespan_sec_ = 0.0;

  std::vector<std::uint32_t> node_jobs_;
  std::vector<double> node_busy_;
};

}  // namespace pgrid::metrics
