#pragma once
// Experiment metrics: per-job lifecycle timestamps, matchmaking cost,
// per-node load, and the summary statistics the paper's figures report
// (average and standard deviation of job wait time, Fig. 2).

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/time.h"

namespace pgrid::metrics {

/// Lifecycle record for one submitted job (indexed by its sequence number).
struct JobOutcome {
  static constexpr double kNever = -1.0;

  double submit_sec = kNever;     // first client submission
  double owner_sec = kNever;      // reached its (final) owner node
  double matched_sec = kNever;    // run node chosen
  double started_sec = kNever;    // execution began on the run node
  double completed_sec = kNever;  // result returned to the client
  int match_hops = 0;             // overlay hops spent on matchmaking
  int injection_hops = 0;         // overlay hops routing job -> owner
  std::uint32_t resubmissions = 0;
  std::uint32_t requeues = 0;     // owner re-dispatched after a failure
  std::uint32_t run_node = 0;
  bool unmatched = false;         // matchmaking gave up

  [[nodiscard]] bool completed() const noexcept {
    return completed_sec != kNever;
  }
  [[nodiscard]] bool started() const noexcept { return started_sec != kNever; }
  /// The paper's "job wait time": submission until execution start.
  [[nodiscard]] double wait_sec() const noexcept {
    return started() ? started_sec - submit_sec : kNever;
  }
};

/// Central collector; one per experiment run. The grid layer writes events,
/// the benches read summaries.
class Collector {
 public:
  explicit Collector(std::size_t job_count, std::size_t node_count);

  // --- event recording (called by the grid layer) -----------------------
  void on_submit(std::uint64_t seq, sim::SimTime t);
  void on_owner(std::uint64_t seq, sim::SimTime t, int injection_hops);
  void on_matched(std::uint64_t seq, sim::SimTime t, int hops,
                  std::uint32_t run_node);
  void on_started(std::uint64_t seq, sim::SimTime t);
  void on_completed(std::uint64_t seq, sim::SimTime t);
  void on_resubmit(std::uint64_t seq);
  void on_requeue(std::uint64_t seq);
  void on_unmatched(std::uint64_t seq);
  void add_node_busy(std::uint32_t node, double seconds);

  // --- summaries ----------------------------------------------------------
  [[nodiscard]] const JobOutcome& job(std::uint64_t seq) const;
  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t completed_count() const noexcept;
  [[nodiscard]] std::size_t started_count() const noexcept;
  [[nodiscard]] std::size_t unmatched_count() const noexcept;
  [[nodiscard]] std::uint64_t total_resubmissions() const noexcept;
  [[nodiscard]] std::uint64_t total_requeues() const noexcept;

  /// Wait times of all started jobs (the Fig. 2 quantity).
  [[nodiscard]] Samples wait_times() const;
  /// Matchmaking hops of all matched jobs (the §3.3 "matchmaking cost").
  [[nodiscard]] Samples matchmaking_hops() const;
  [[nodiscard]] Samples injection_hops() const;
  /// Jobs executed per node — load-balance dispersion across the system.
  [[nodiscard]] RunningStats jobs_per_node() const;
  /// Busy seconds per node.
  [[nodiscard]] RunningStats busy_per_node() const;
  /// Completion makespan (latest completion time).
  [[nodiscard]] double makespan_sec() const;

  /// Render a one-line summary (used by benches for per-cell rows).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<JobOutcome> jobs_;
  std::vector<std::uint32_t> node_jobs_;
  std::vector<double> node_busy_;
};

}  // namespace pgrid::metrics
