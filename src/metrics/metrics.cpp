#include "metrics/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/expects.h"

namespace pgrid::metrics {

Collector::Collector(std::size_t job_count, std::size_t node_count)
    : jobs_(job_count), node_jobs_(node_count, 0), node_busy_(node_count, 0.0) {}

void Collector::on_submit(std::uint64_t seq, sim::SimTime t) {
  JobOutcome& j = jobs_.at(seq);
  if (j.submit_sec == JobOutcome::kNever) j.submit_sec = t.sec();
}

void Collector::on_owner(std::uint64_t seq, sim::SimTime t,
                         int injection_hops) {
  JobOutcome& j = jobs_.at(seq);
  j.owner_sec = t.sec();
  j.injection_hops = injection_hops;
}

void Collector::on_matched(std::uint64_t seq, sim::SimTime t, int hops,
                           std::uint32_t run_node) {
  JobOutcome& j = jobs_.at(seq);
  if (j.matched_sec == JobOutcome::kNever) {
    j.matched_sec = t.sec();
    j.match_hops = hops;
  }
  j.run_node = run_node;
}

void Collector::on_started(std::uint64_t seq, sim::SimTime t) {
  JobOutcome& j = jobs_.at(seq);
  if (j.started_sec == JobOutcome::kNever) {
    j.started_sec = t.sec();
    if (j.run_node < node_jobs_.size()) ++node_jobs_[j.run_node];
  }
}

void Collector::on_completed(std::uint64_t seq, sim::SimTime t) {
  JobOutcome& j = jobs_.at(seq);
  if (j.completed_sec == JobOutcome::kNever) j.completed_sec = t.sec();
}

void Collector::on_resubmit(std::uint64_t seq) { ++jobs_.at(seq).resubmissions; }

void Collector::on_requeue(std::uint64_t seq) { ++jobs_.at(seq).requeues; }

void Collector::on_unmatched(std::uint64_t seq) {
  jobs_.at(seq).unmatched = true;
}

void Collector::add_node_busy(std::uint32_t node, double seconds) {
  if (node < node_busy_.size()) node_busy_[node] += seconds;
}

const JobOutcome& Collector::job(std::uint64_t seq) const {
  return jobs_.at(seq);
}

std::size_t Collector::completed_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobOutcome& j) { return j.completed(); }));
}

std::size_t Collector::started_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobOutcome& j) { return j.started(); }));
}

std::size_t Collector::unmatched_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(jobs_.begin(), jobs_.end(),
                    [](const JobOutcome& j) { return j.unmatched; }));
}

std::uint64_t Collector::total_resubmissions() const noexcept {
  std::uint64_t n = 0;
  for (const auto& j : jobs_) n += j.resubmissions;
  return n;
}

std::uint64_t Collector::total_requeues() const noexcept {
  std::uint64_t n = 0;
  for (const auto& j : jobs_) n += j.requeues;
  return n;
}

Samples Collector::wait_times() const {
  Samples s;
  s.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (j.started()) s.add(j.wait_sec());
  }
  return s;
}

Samples Collector::matchmaking_hops() const {
  Samples s;
  for (const auto& j : jobs_) {
    if (j.matched_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.match_hops));
    }
  }
  return s;
}

Samples Collector::injection_hops() const {
  Samples s;
  for (const auto& j : jobs_) {
    if (j.owner_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.injection_hops));
    }
  }
  return s;
}

RunningStats Collector::jobs_per_node() const {
  RunningStats stats;
  for (auto n : node_jobs_) stats.add(static_cast<double>(n));
  return stats;
}

RunningStats Collector::busy_per_node() const {
  RunningStats stats;
  for (double b : node_busy_) stats.add(b);
  return stats;
}

double Collector::makespan_sec() const {
  double latest = 0.0;
  for (const auto& j : jobs_) {
    if (j.completed()) latest = std::max(latest, j.completed_sec);
  }
  return latest;
}

std::string Collector::summary() const {
  const Samples waits = wait_times();
  const Samples hops = matchmaking_hops();
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "completed %zu/%zu  wait avg=%.1fs stdev=%.1fs  hops avg=%.2f  "
      "requeues=%llu resubmits=%llu",
      completed_count(), jobs_.size(), waits.empty() ? 0.0 : waits.mean(),
      waits.empty() ? 0.0 : waits.stdev(), hops.empty() ? 0.0 : hops.mean(),
      static_cast<unsigned long long>(total_requeues()),
      static_cast<unsigned long long>(total_resubmissions()));
  return buf;
}

}  // namespace pgrid::metrics
