#include "metrics/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/expects.h"

namespace pgrid::metrics {

Collector::Collector(std::size_t job_count, std::size_t node_count,
                     bool streaming)
    : streaming_(streaming),
      job_count_(job_count),
      jobs_(streaming ? 0 : job_count),
      node_jobs_(node_count, 0),
      node_busy_(node_count, 0.0) {}

void Collector::on_submit(std::uint64_t seq, sim::SimTime t) {
  if (streaming_) {
    // First submission creates the in-flight entry; a duplicate submit for a
    // live job keeps the original timestamp (first-event-wins, matching the
    // batch path). The grid layer never re-submits a completed seq.
    auto [it, inserted] = inflight_.try_emplace(seq);
    if (it->second.submit_sec == JobOutcome::kNever) {
      it->second.submit_sec = t.sec();
    }
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.submit_sec == JobOutcome::kNever) j.submit_sec = t.sec();
}

void Collector::on_owner(std::uint64_t seq, sim::SimTime t,
                         int injection_hops) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // late event for a retired job
    it->second.owner_sec = t.sec();
    it->second.injection_hops = injection_hops;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  j.owner_sec = t.sec();
  j.injection_hops = injection_hops;
}

void Collector::on_matched(std::uint64_t seq, sim::SimTime t, int hops,
                           std::uint32_t run_node) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;
    if (!it->second.matched) {
      it->second.matched = true;
      match_hops_stats_.add(static_cast<double>(hops));
    }
    it->second.run_node = run_node;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.matched_sec == JobOutcome::kNever) {
    j.matched_sec = t.sec();
    j.match_hops = hops;
  }
  j.run_node = run_node;
}

void Collector::on_started(std::uint64_t seq, sim::SimTime t) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end() || it->second.started) return;
    it->second.started = true;
    ++started_n_;
    if (it->second.submit_sec != JobOutcome::kNever) {
      const double wait = t.sec() - it->second.submit_sec;
      wait_stats_.add(wait);
      wait_hist_.add(wait);
    }
    if (it->second.run_node < node_jobs_.size()) {
      ++node_jobs_[it->second.run_node];
    }
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.started_sec == JobOutcome::kNever) {
    j.started_sec = t.sec();
    ++started_n_;
    if (j.run_node < node_jobs_.size()) ++node_jobs_[j.run_node];
  }
}

void Collector::on_completed(std::uint64_t seq, sim::SimTime t) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // duplicate result
    ++completed_n_;
    makespan_sec_ = std::max(makespan_sec_, t.sec());
    // Retire: injection hops are last-wins, so they fold in only now.
    if (it->second.owner_sec != JobOutcome::kNever) {
      injection_hops_retired_.add(
          static_cast<double>(it->second.injection_hops));
    }
    inflight_.erase(it);
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.completed_sec == JobOutcome::kNever) {
    j.completed_sec = t.sec();
    ++completed_n_;
    makespan_sec_ = std::max(makespan_sec_, t.sec());
  }
}

void Collector::on_resubmit(std::uint64_t seq) {
  ++resubmissions_n_;
  if (!streaming_) ++jobs_.at(seq).resubmissions;
}

void Collector::on_requeue(std::uint64_t seq) {
  ++requeues_n_;
  if (!streaming_) ++jobs_.at(seq).requeues;
}

void Collector::on_unmatched(std::uint64_t seq) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end() || it->second.unmatched) return;
    it->second.unmatched = true;
    ++unmatched_n_;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (!j.unmatched) {
    j.unmatched = true;
    ++unmatched_n_;
  }
}

void Collector::add_node_busy(std::uint32_t node, double seconds) {
  if (node < node_busy_.size()) node_busy_[node] += seconds;
}

const JobOutcome& Collector::job(std::uint64_t seq) const {
  PGRID_EXPECTS(!streaming_);
  return jobs_.at(seq);
}

Samples Collector::wait_times() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  s.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (j.started()) s.add(j.wait_sec());
  }
  return s;
}

Samples Collector::matchmaking_hops() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  for (const auto& j : jobs_) {
    if (j.matched_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.match_hops));
    }
  }
  return s;
}

Samples Collector::injection_hops() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  for (const auto& j : jobs_) {
    if (j.owner_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.injection_hops));
    }
  }
  return s;
}

RunningStats Collector::wait_stats() const {
  if (streaming_) return wait_stats_;
  RunningStats s;
  for (const auto& j : jobs_) {
    if (j.started()) s.add(j.wait_sec());
  }
  return s;
}

RunningStats Collector::match_hops_stats() const {
  if (streaming_) return match_hops_stats_;
  RunningStats s;
  for (const auto& j : jobs_) {
    if (j.matched_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.match_hops));
    }
  }
  return s;
}

RunningStats Collector::injection_hops_stats() const {
  if (!streaming_) {
    RunningStats s;
    for (const auto& j : jobs_) {
      if (j.owner_sec != JobOutcome::kNever) {
        s.add(static_cast<double>(j.injection_hops));
      }
    }
    return s;
  }
  // Retired jobs are already folded; never-completed jobs that did reach an
  // owner still carry their hops in the in-flight table. Fold them in seq
  // order so the result is independent of hash iteration order.
  RunningStats s = injection_hops_retired_;
  std::vector<std::pair<std::uint64_t, int>> live;
  live.reserve(inflight_.size());
  for (const auto& [seq, f] : inflight_) {
    if (f.owner_sec != JobOutcome::kNever) live.emplace_back(seq, f.injection_hops);
  }
  std::sort(live.begin(), live.end());
  for (const auto& [seq, hops] : live) s.add(static_cast<double>(hops));
  return s;
}

Histogram Collector::wait_histogram() const {
  if (streaming_) return wait_hist_;
  Histogram h{kWaitHistLo, kWaitHistHi, kWaitHistBuckets};
  for (const auto& j : jobs_) {
    if (j.started()) h.add(j.wait_sec());
  }
  return h;
}

RunningStats Collector::jobs_per_node() const {
  RunningStats stats;
  for (auto n : node_jobs_) stats.add(static_cast<double>(n));
  return stats;
}

RunningStats Collector::busy_per_node() const {
  RunningStats stats;
  for (double b : node_busy_) stats.add(b);
  return stats;
}

std::size_t Collector::memory_bytes() const noexcept {
  const std::size_t inflight_bytes =
      inflight_.size() * (sizeof(std::pair<const std::uint64_t, InFlight>) +
                          2 * sizeof(void*)) +
      inflight_.bucket_count() * sizeof(void*);
  return jobs_.capacity() * sizeof(JobOutcome) + inflight_bytes +
         node_jobs_.capacity() * sizeof(std::uint32_t) +
         node_busy_.capacity() * sizeof(double) +
         wait_hist_.bucket_count() * sizeof(std::uint64_t);
}

std::string Collector::summary() const {
  const RunningStats waits = wait_stats();
  const RunningStats hops = match_hops_stats();
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "completed %zu/%zu  wait avg=%.1fs stdev=%.1fs  hops avg=%.2f  "
      "requeues=%llu resubmits=%llu",
      completed_count(), job_count(), waits.mean(), waits.sample_stdev(),
      hops.mean(), static_cast<unsigned long long>(total_requeues()),
      static_cast<unsigned long long>(total_resubmissions()));
  return buf;
}

}  // namespace pgrid::metrics
