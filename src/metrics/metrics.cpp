#include "metrics/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/expects.h"

namespace pgrid::metrics {

Collector::Collector(std::size_t job_count, std::size_t node_count,
                     bool streaming)
    : streaming_(streaming),
      job_count_(job_count),
      jobs_(streaming ? 0 : job_count),
      node_jobs_(node_count, 0),
      node_busy_(node_count, 0.0) {}

void Collector::on_submit(std::uint64_t seq, sim::SimTime t) {
  if (streaming_) {
    // First submission creates the in-flight entry; a duplicate submit for a
    // live job keeps the original timestamp (first-event-wins, matching the
    // batch path). The grid layer never re-submits a completed seq.
    auto [it, inserted] = inflight_.try_emplace(seq);
    if (it->second.submit_sec == JobOutcome::kNever) {
      it->second.submit_sec = t.sec();
    }
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.submit_sec == JobOutcome::kNever) j.submit_sec = t.sec();
}

void Collector::on_owner(std::uint64_t seq, sim::SimTime t,
                         int injection_hops) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // late event for a retired job
    it->second.owner_sec = t.sec();
    it->second.injection_hops = injection_hops;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  j.owner_sec = t.sec();
  j.injection_hops = injection_hops;
}

void Collector::on_matched(std::uint64_t seq, sim::SimTime t, int hops,
                           std::uint32_t run_node) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;
    if (!it->second.matched) {
      it->second.matched = true;
      match_hops_stats_.add(static_cast<double>(hops));
    }
    it->second.run_node = run_node;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.matched_sec == JobOutcome::kNever) {
    j.matched_sec = t.sec();
    j.match_hops = hops;
  }
  j.run_node = run_node;
}

void Collector::on_started(std::uint64_t seq, sim::SimTime t,
                           std::uint32_t run_node) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end() || it->second.started) return;
    it->second.started = true;
    ++started_n_;
    if (it->second.submit_sec != JobOutcome::kNever) {
      const double wait = t.sec() - it->second.submit_sec;
      wait_stats_.add(wait);
      wait_hist_.add(wait);
    }
    if (it->second.run_node < node_jobs_.size()) {
      ++node_jobs_[it->second.run_node];
    }
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.started_sec == JobOutcome::kNever) {
    j.started_sec = t.sec();
    j.start_node = run_node == kUnknownNode ? j.run_node : run_node;
    ++started_n_;
    // node_jobs_ attribution keeps the historical rule (last matched run
    // node) so fixed-seed sequential outputs stay byte-identical; the merge
    // path recomputes from start_node instead.
    if (j.run_node < node_jobs_.size()) ++node_jobs_[j.run_node];
  }
}

void Collector::on_completed(std::uint64_t seq, sim::SimTime t) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) return;  // duplicate result
    ++completed_n_;
    makespan_sec_ = std::max(makespan_sec_, t.sec());
    // Retire: injection hops are last-wins, so they fold in only now.
    if (it->second.owner_sec != JobOutcome::kNever) {
      injection_hops_retired_.add(
          static_cast<double>(it->second.injection_hops));
    }
    inflight_.erase(it);
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (j.completed_sec == JobOutcome::kNever) {
    j.completed_sec = t.sec();
    ++completed_n_;
    makespan_sec_ = std::max(makespan_sec_, t.sec());
  }
}

void Collector::on_resubmit(std::uint64_t seq) {
  ++resubmissions_n_;
  if (!streaming_) ++jobs_.at(seq).resubmissions;
}

void Collector::on_requeue(std::uint64_t seq) {
  ++requeues_n_;
  if (!streaming_) ++jobs_.at(seq).requeues;
}

void Collector::on_unmatched(std::uint64_t seq) {
  if (streaming_) {
    auto it = inflight_.find(seq);
    if (it == inflight_.end() || it->second.unmatched) return;
    it->second.unmatched = true;
    ++unmatched_n_;
    return;
  }
  JobOutcome& j = jobs_.at(seq);
  if (!j.unmatched) {
    j.unmatched = true;
    ++unmatched_n_;
  }
}

void Collector::add_node_busy(std::uint32_t node, double seconds) {
  if (node < node_busy_.size()) node_busy_[node] += seconds;
}

void Collector::merge_from_shards(const std::vector<const Collector*>& parts) {
  PGRID_EXPECTS(!streaming_);
  jobs_.assign(job_count_, JobOutcome{});
  node_jobs_.assign(node_jobs_.size(), 0);
  node_busy_.assign(node_busy_.size(), 0.0);
  completed_n_ = started_n_ = unmatched_n_ = 0;
  resubmissions_n_ = requeues_n_ = 0;
  makespan_sec_ = 0.0;

  const auto first_wins = [](double& dst, double src) {
    if (src != JobOutcome::kNever &&
        (dst == JobOutcome::kNever || src < dst)) {
      dst = src;
      return true;
    }
    return false;
  };

  for (const Collector* part : parts) {
    PGRID_EXPECTS(part != nullptr && !part->streaming_);
    PGRID_EXPECTS(part->jobs_.size() == jobs_.size());
    PGRID_EXPECTS(part->node_busy_.size() == node_busy_.size());
    for (std::size_t seq = 0; seq < jobs_.size(); ++seq) {
      const JobOutcome& s = part->jobs_[seq];
      JobOutcome& d = jobs_[seq];
      first_wins(d.submit_sec, s.submit_sec);
      if (first_wins(d.matched_sec, s.matched_sec)) d.match_hops = s.match_hops;
      first_wins(d.completed_sec, s.completed_sec);
      // The first started record pins the executing node: start_node is a
      // shard-local fact of the started event (run_node of the started
      // part can be stale — the match was recorded on another shard). Exact
      // time ties (two dup-dispatched starts in the same nanosecond) break
      // toward the smaller address so the result is independent of the
      // parts' iteration order, hence of the shard count.
      if (first_wins(d.started_sec, s.started_sec)) {
        d.start_node = s.start_node;
        d.run_node = s.start_node;
      } else if (s.started_sec != JobOutcome::kNever &&
                 s.started_sec == d.started_sec &&
                 s.start_node < d.start_node) {
        d.start_node = s.start_node;
        d.run_node = s.start_node;
      }
      // Owner is last-wins sequentially (re-homing); merge by latest time.
      if (s.owner_sec != JobOutcome::kNever && s.owner_sec >= d.owner_sec) {
        d.owner_sec = s.owner_sec;
        d.injection_hops = s.injection_hops;
      }
      d.resubmissions += s.resubmissions;
      d.requeues += s.requeues;
      d.unmatched = d.unmatched || s.unmatched;
    }
    for (std::size_t n = 0; n < node_busy_.size(); ++n) {
      node_busy_[n] += part->node_busy_[n];
    }
  }

  for (std::size_t seq = 0; seq < jobs_.size(); ++seq) {
    JobOutcome& j = jobs_[seq];
    // Never-started jobs keep the run node chosen by the earliest match (the
    // sequential record would hold the same value via first-match-wins).
    if (j.started_sec == JobOutcome::kNever &&
        j.matched_sec != JobOutcome::kNever) {
      for (const Collector* part : parts) {
        if (part->jobs_[seq].matched_sec == j.matched_sec) {
          j.run_node = part->jobs_[seq].run_node;
          break;
        }
      }
    }
    if (j.started_sec != JobOutcome::kNever) {
      ++started_n_;
      if (j.start_node < node_jobs_.size()) ++node_jobs_[j.start_node];
    }
    if (j.completed_sec != JobOutcome::kNever) {
      ++completed_n_;
      makespan_sec_ = std::max(makespan_sec_, j.completed_sec);
    }
    if (j.unmatched) ++unmatched_n_;
    resubmissions_n_ += j.resubmissions;
    requeues_n_ += j.requeues;
  }
}

const JobOutcome& Collector::job(std::uint64_t seq) const {
  PGRID_EXPECTS(!streaming_);
  return jobs_.at(seq);
}

Samples Collector::wait_times() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  s.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (j.started()) s.add(j.wait_sec());
  }
  return s;
}

Samples Collector::matchmaking_hops() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  for (const auto& j : jobs_) {
    if (j.matched_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.match_hops));
    }
  }
  return s;
}

Samples Collector::injection_hops() const {
  PGRID_EXPECTS(!streaming_);
  Samples s;
  for (const auto& j : jobs_) {
    if (j.owner_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.injection_hops));
    }
  }
  return s;
}

RunningStats Collector::wait_stats() const {
  if (streaming_) return wait_stats_;
  RunningStats s;
  for (const auto& j : jobs_) {
    if (j.started()) s.add(j.wait_sec());
  }
  return s;
}

RunningStats Collector::match_hops_stats() const {
  if (streaming_) return match_hops_stats_;
  RunningStats s;
  for (const auto& j : jobs_) {
    if (j.matched_sec != JobOutcome::kNever) {
      s.add(static_cast<double>(j.match_hops));
    }
  }
  return s;
}

RunningStats Collector::injection_hops_stats() const {
  if (!streaming_) {
    RunningStats s;
    for (const auto& j : jobs_) {
      if (j.owner_sec != JobOutcome::kNever) {
        s.add(static_cast<double>(j.injection_hops));
      }
    }
    return s;
  }
  // Retired jobs are already folded; never-completed jobs that did reach an
  // owner still carry their hops in the in-flight table. Fold them in seq
  // order so the result is independent of hash iteration order.
  RunningStats s = injection_hops_retired_;
  std::vector<std::pair<std::uint64_t, int>> live;
  live.reserve(inflight_.size());
  for (const auto& [seq, f] : inflight_) {
    if (f.owner_sec != JobOutcome::kNever) live.emplace_back(seq, f.injection_hops);
  }
  std::sort(live.begin(), live.end());
  for (const auto& [seq, hops] : live) s.add(static_cast<double>(hops));
  return s;
}

Histogram Collector::wait_histogram() const {
  if (streaming_) return wait_hist_;
  Histogram h{kWaitHistLo, kWaitHistHi, kWaitHistBuckets};
  for (const auto& j : jobs_) {
    if (j.started()) h.add(j.wait_sec());
  }
  return h;
}

RunningStats Collector::jobs_per_node() const {
  RunningStats stats;
  for (auto n : node_jobs_) stats.add(static_cast<double>(n));
  return stats;
}

RunningStats Collector::busy_per_node() const {
  RunningStats stats;
  for (double b : node_busy_) stats.add(b);
  return stats;
}

std::size_t Collector::memory_bytes() const noexcept {
  const std::size_t inflight_bytes =
      inflight_.size() * (sizeof(std::pair<const std::uint64_t, InFlight>) +
                          2 * sizeof(void*)) +
      inflight_.bucket_count() * sizeof(void*);
  return jobs_.capacity() * sizeof(JobOutcome) + inflight_bytes +
         node_jobs_.capacity() * sizeof(std::uint32_t) +
         node_busy_.capacity() * sizeof(double) +
         wait_hist_.bucket_count() * sizeof(std::uint64_t);
}

std::string Collector::summary() const {
  const RunningStats waits = wait_stats();
  const RunningStats hops = match_hops_stats();
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "completed %zu/%zu  wait avg=%.1fs stdev=%.1fs  hops avg=%.2f  "
      "requeues=%llu resubmits=%llu",
      completed_count(), job_count(), waits.mean(), waits.sample_stdev(),
      hops.mean(), static_cast<unsigned long long>(total_requeues()),
      static_cast<unsigned long long>(total_resubmissions()));
  return buf;
}

}  // namespace pgrid::metrics
