#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

namespace pgrid::metrics {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
}  // namespace

bool write_job_csv(const Collector& collector, const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f{std::fopen(path.c_str(), "w")};
  if (!f) return false;
  std::fprintf(f.get(),
               "seq,submit_sec,owner_sec,matched_sec,started_sec,"
               "completed_sec,wait_sec,injection_hops,match_hops,run_node,"
               "resubmissions,requeues,unmatched\n");
  for (std::size_t seq = 0; seq < collector.job_count(); ++seq) {
    const JobOutcome& j = collector.job(seq);
    std::fprintf(f.get(), "%zu,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%u,%u,%u,%d\n",
                 seq, j.submit_sec, j.owner_sec, j.matched_sec, j.started_sec,
                 j.completed_sec, j.wait_sec(), j.injection_hops,
                 j.match_hops, j.run_node, j.resubmissions, j.requeues,
                 j.unmatched ? 1 : 0);
  }
  return std::ferror(f.get()) == 0;
}

std::string wait_histogram(const Collector& collector, std::size_t buckets) {
  const Samples waits = collector.wait_times();
  if (waits.empty()) return "(no started jobs)\n";
  if (waits.max() - waits.min() <= 0.0) {
    // Degenerate: every started job shares one wait value, so a
    // proportional bin split would have zero width. Clamp to a single full
    // bucket around that value instead.
    const double v = waits.min();
    const double pad = std::max(std::fabs(v) * 1e-9, 1e-9);
    Histogram h(v, v + pad, 1);
    for (double w : waits.values()) h.add(w);
    return h.ascii();
  }
  const double hi = std::max(waits.max(), 1e-9);
  Histogram h(0.0, hi * (1.0 + 1e-9), buckets);  // include the max itself
  for (double w : waits.values()) h.add(w);
  return h.ascii();
}

}  // namespace pgrid::metrics
