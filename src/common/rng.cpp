#include "common/rng.h"

#include <cmath>

namespace pgrid {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  PGRID_EXPECTS(n > 0);
  // Lemire's multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  PGRID_EXPECTS(mean > 0.0);
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf, so nudge.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  PGRID_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::normal(double mu, double sigma) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mu + sigma * u * factor;
}

namespace {

std::size_t search_cdf(const std::vector<double>& cdf, double u) noexcept {
  // First index whose cumulative mass exceeds u.
  std::size_t lo = 0, hi = cdf.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) {
  PGRID_EXPECTS(n > 0);
  PGRID_EXPECTS(skew >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), skew);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfDistribution::sample(Rng& rng) const noexcept {
  return search_cdf(cdf_, rng.uniform()) + 1;  // ranks are 1-based
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  PGRID_EXPECTS(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    PGRID_EXPECTS(weights[i] >= 0.0);
    total += weights[i];
    cdf_[i] = total;
  }
  PGRID_EXPECTS(total > 0.0);
  for (auto& c : cdf_) c /= total;
}

std::size_t DiscreteDistribution::sample(Rng& rng) const noexcept {
  return search_cdf(cdf_, rng.uniform());
}

}  // namespace pgrid
