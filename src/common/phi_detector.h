#pragma once
// φ-accrual failure detection (Hayashibara et al., SRDS 2004).
//
// Instead of a binary alive/dead verdict at a fixed timeout, the detector
// learns each peer's heartbeat inter-arrival distribution and outputs a
// continuous suspicion level:
//
//   φ(t_now) = -log10( P(next heartbeat arrives later than t_now) )
//
// φ = 1 means "90% of historical gaps were shorter than the current
// silence", φ = 3 means 99.9%, and so on. Callers pick thresholds per
// action: a cheap refresh at `suspect_threshold`, eviction only at
// `evict_threshold`. Under gray nodes and congestion the learned
// distribution widens, so transiently slow peers stop getting evicted; a
// genuinely dead peer's φ grows without bound, so detection is never lost.
//
// The tail probability uses the exponential-CDF approximation from the
// Akka/Cassandra lineage of accrual detectors: with mean m and stdev s of
// the inter-arrival history, P_later(t) = exp(-t / (m + s)), giving
// φ = -ln P_later = silence / (m + s). Reporting in nats instead of the
// literature's bans (log10) makes thresholds directly readable as
// "multiples of the learned mean gap": evict_threshold = 3 fires after
// ~3 quiet gaps — the same latency as the legacy fixed deadline of
// heartbeat_period × miss_threshold(3) — but the gap length is *learned*,
// so a congested peer whose acks stretch does not get evicted. Monotone in
// t (φ never decreases during silence) and cheap (no erf).
//
// Determinism contract: the detector is passive arithmetic over sim-time
// stamps — it draws no randomness and schedules no events. Whether and
// when a protocol *consults* it is the caller's (config-gated) decision,
// so a disabled detector leaves event and RNG sequences untouched.

#include <cmath>
#include <cstddef>

#include "common/stats.h"
#include "sim/time.h"

namespace pgrid {

/// Shared knobs for every φ-accrual consumer (grid heartbeats, Chord/CAN/
/// RN-tree liveness). `enabled = false` (the default) keeps every protocol
/// on its legacy fixed-timeout path, byte-identical to the pre-detector
/// builds.
struct PhiAccrualConfig {
  bool enabled = false;
  /// Suspicion level that triggers cheap refresh actions (extra stabilize
  /// round, successor-list refresh, zone-update nudge) but no eviction.
  double suspect_threshold = 2.0;
  /// Suspicion level at which the peer is declared failed and evicted.
  /// In gap units: 3.0 ≈ the legacy fixed deadline of 3 heartbeat periods.
  double evict_threshold = 3.0;
  /// Below this many observed inter-arrivals the distribution is not yet
  /// trustworthy and phi() falls back to the fixed-timeout deadline
  /// supplied by the caller.
  std::size_t min_samples = 4;
  /// Floor on the learned stdev (seconds): protects against a peer whose
  /// first few gaps were metronome-regular, which would otherwise make the
  /// detector hair-triggered.
  double min_stdev_sec = 0.05;
};

/// Per-peer accrual state: inter-arrival history + last arrival stamp.
/// One instance per monitored peer; ~64 bytes, no allocation.
class PhiDetector {
 public:
  /// Record a proof of life (heartbeat, ack, any message from the peer).
  void heartbeat(sim::SimTime now) noexcept {
    if (has_last_) {
      const double gap = (now - last_).sec();
      if (gap >= 0.0) intervals_.add(gap);
    }
    has_last_ = true;
    last_ = now;
  }

  /// Suspicion level at `now`. Returns 0 until the first arrival is seen.
  /// Below `cfg.min_samples` observed gaps, falls back to a synthetic
  /// distribution centred on `fallback_deadline` (the caller's legacy fixed
  /// timeout) so that a brand-new peer is judged by the old rule.
  [[nodiscard]] double phi(sim::SimTime now, const PhiAccrualConfig& cfg,
                           sim::SimTime fallback_deadline) const noexcept {
    if (!has_last_) return 0.0;
    const double silence = (now - last_).sec();
    if (silence <= 0.0) return 0.0;
    if (intervals_.count() < cfg.min_samples) {
      // Too little history: linear ramp that crosses the evict threshold
      // exactly at the caller's legacy fixed deadline, so a brand-new peer
      // is judged by the old rule.
      const double deadline = fallback_deadline.sec();
      if (deadline <= 0.0) return 0.0;
      return silence / deadline * cfg.evict_threshold;
    }
    const double mean_gap = intervals_.mean();
    double stdev_gap = intervals_.sample_stdev();
    if (stdev_gap < cfg.min_stdev_sec) stdev_gap = cfg.min_stdev_sec;
    // Effective scale: mean inflated by spread. φ = -ln P_later with
    // P_later = exp(-silence / (m + s)).
    const double scale = mean_gap + stdev_gap;
    if (scale <= 0.0) return 0.0;
    return silence / scale;
  }

  [[nodiscard]] bool suspect(sim::SimTime now, const PhiAccrualConfig& cfg,
                             sim::SimTime fallback_deadline) const noexcept {
    return phi(now, cfg, fallback_deadline) >= cfg.suspect_threshold;
  }
  [[nodiscard]] bool evict(sim::SimTime now, const PhiAccrualConfig& cfg,
                           sim::SimTime fallback_deadline) const noexcept {
    return phi(now, cfg, fallback_deadline) >= cfg.evict_threshold;
  }

  [[nodiscard]] std::size_t samples() const noexcept {
    return intervals_.count();
  }
  [[nodiscard]] double mean_interval_sec() const noexcept {
    return intervals_.mean();
  }
  [[nodiscard]] bool seen() const noexcept { return has_last_; }
  [[nodiscard]] sim::SimTime last_arrival() const noexcept { return last_; }

  void reset() noexcept { *this = PhiDetector{}; }

 private:
  RunningStats intervals_;
  sim::SimTime last_{};
  bool has_last_ = false;
};

}  // namespace pgrid
