#pragma once
// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (GSL). Violations abort with a source location; they are
// programming errors, not recoverable conditions.

#include <cstdio>
#include <cstdlib>

namespace pgrid::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace pgrid::detail

#define PGRID_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::pgrid::detail::contract_violation("Precondition", #cond,      \
                                                __FILE__, __LINE__))

#define PGRID_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                            \
          : ::pgrid::detail::contract_violation("Postcondition", #cond,     \
                                                __FILE__, __LINE__))

#define PGRID_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::pgrid::detail::contract_violation("Invariant", #cond,         \
                                                __FILE__, __LINE__))
