#pragma once
// Deterministic pseudo-random number generation.
//
// Every simulation replicate owns its own generator seeded from
// (experiment seed, replicate index), so sweeps parallelized across threads
// are bit-reproducible regardless of scheduling — the standard discipline
// for parallel Monte Carlo experiments.

#include <cstdint>
#include <limits>
#include <vector>

#include "common/expects.h"
#include "common/hash.h"

namespace pgrid {

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the four lanes with splitmix64 per the authors' recommendation.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      lane = mix64(x);
    }
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
  }

  /// Derive an independent child stream (for per-node / per-replicate RNGs).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept {
    return Rng{hash_combine(next(), mix64(stream_id))};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    PGRID_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    PGRID_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Pick a uniformly random element index from a non-empty container size.
  std::size_t index(std::size_t size) noexcept {
    PGRID_EXPECTS(size > 0);
    return static_cast<std::size_t>(below(size));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf distribution over ranks [1, n] with skew s >= 0 (s = 0 is uniform).
/// Precomputes the CDF once; sampling is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete distribution over arbitrary non-negative weights.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Returns an index in [0, weights.size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pgrid
