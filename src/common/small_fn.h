#pragma once
// Small-buffer-optimized, move-only callable wrapper.
//
// The simulator schedules millions of callbacks per run; std::function heap-
// allocates every capture larger than (typically) two pointers and requires
// copyability, which forces shared_ptr boxing of move-only payloads such as
// MessagePtr. SmallFn fixes both: captures up to kInlineBytes live inline in
// the wrapper (no allocation on the schedule hot path), larger or throwing-
// move callables fall back to the heap, and move-only callables — a lambda
// owning a unique_ptr — are first-class, enabling move-through message
// delivery in the network layer.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pgrid {

template <typename Signature>
class SmallFn;  // undefined; specialized for function signatures below

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  /// Inline capture budget. Sized for the repo's hot callbacks: a `this`
  /// pointer, a few ids, and an owning MessagePtr all fit without spilling.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(&storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<void**>(&storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&other.storage_, &storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&other.storage_, &storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move the callable from src storage into dst storage and destroy src.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        *static_cast<void**>(dst) = *static_cast<void**>(src);
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace pgrid
