#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"

namespace pgrid {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stdev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::sample_stdev() const noexcept {
  return std::sqrt(sample_variance());
}

double RunningStats::cv() const noexcept {
  return (n_ == 0 || mean_ == 0.0) ? 0.0 : stdev() / mean_;
}

double Samples::mean() const noexcept {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

double Samples::stdev() const noexcept {
  if (data_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : data_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(data_.size() - 1));
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::quantile(double q) const {
  PGRID_EXPECTS(q >= 0.0 && q <= 1.0);
  PGRID_EXPECTS(!data_.empty());
  ensure_sorted();
  if (data_.size() == 1) return data_[0];
  const double pos = q * static_cast<double>(data_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= data_.size()) return data_.back();
  return data_[i] * (1.0 - frac) + data_[i + 1] * frac;
}

double Samples::min() const {
  PGRID_EXPECTS(!data_.empty());
  ensure_sorted();
  return data_.front();
}

double Samples::max() const {
  PGRID_EXPECTS(!data_.empty());
  ensure_sorted();
  return data_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PGRID_EXPECTS(hi > lo);
  PGRID_EXPECTS(buckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (std::isnan(x)) {
    // NaN fails both range guards below and would reach the float->size_t
    // cast (undefined behavior). There is no meaningful bucket; count it with
    // the out-of-range tail so total() still reconciles.
    ++overflow_;
  } else if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto i = static_cast<std::size_t>((x - lo_) / width);
    if (i >= counts_.size()) i = counts_.size() - 1;  // FP edge guard
    ++counts_[i];
  }
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof line, "[%10.2f, %10.2f) %8llu |",
                  bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace pgrid
