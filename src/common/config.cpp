#include "common/config.h"

#include <cstdlib>
#include <fstream>

namespace pgrid {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// Split "key=value"; returns false if there is no '='.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = trim(token.substr(0, eq));
  value = trim(token.substr(eq + 1));
  return !key.empty();
}

}  // namespace

bool Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    std::string key, value;
    if (split_kv(line, key, value)) values_[key] = value;
  }
  return true;
}

std::vector<std::string> Config::parse_args(int argc, const char* const* argv) {
  std::vector<std::string> leftover;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) token.erase(0, 2);
    std::string key, value;
    if (split_kv(token, key, value)) {
      values_[key] = value;
    } else {
      leftover.push_back(argv[i]);
    }
  }
  return leftover;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace pgrid
