#include "common/logging.h"

#include <cstdarg>

namespace pgrid {

namespace {
// One simulated clock per thread: parallel sweeps run one simulator per
// thread but share the Logger singleton.
thread_local std::function<double()> t_time_source;
}  // namespace

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::set_time_source(std::function<double()> now_sec) {
  t_time_source = std::move(now_sec);
}

bool Logger::has_time_source() noexcept {
  return static_cast<bool>(t_time_source);
}

void Logger::write(LogLevel level, const char* module, const std::string& msg) {
  std::FILE* sink = sink_.load(std::memory_order_relaxed);
  std::FILE* out = sink ? sink : stderr;
  if (t_time_source) {
    std::fprintf(out, "[t=%.6fs] [%s] %s: %s\n", t_time_source(),
                 log_level_name(level), module, msg.c_str());
  } else {
    std::fprintf(out, "[%s] %s: %s\n", log_level_name(level), module,
                 msg.c_str());
  }
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail

}  // namespace pgrid
