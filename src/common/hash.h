#pragma once
// Non-cryptographic hashing used for GUID derivation and consistent hashing.
//
// The paper assumes "computationally secure hashes" (SHA-1) mapping arbitrary
// identifiers to random points of the key space. For a simulation we only
// need uniformity and determinism, so we use the splitmix64 finalizer and
// FNV-1a; both are well distributed and reproducible across platforms.

#include <cstdint>
#include <string_view>

namespace pgrid {

/// splitmix64 finalizer: bijective 64-bit mixer with full avalanche.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Hash a string to a uniformly distributed 64-bit key.
[[nodiscard]] constexpr std::uint64_t hash_key(std::string_view s) noexcept {
  return mix64(fnv1a(s));
}

/// Combine two hashes (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace pgrid
