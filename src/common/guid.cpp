#include "common/guid.h"

#include <array>
#include <cstdio>

namespace pgrid {

std::string Guid::str() const {
  std::array<char, 20> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx",
                static_cast<unsigned long long>(value_));
  return std::string{buf.data()};
}

}  // namespace pgrid
