#pragma once
// Globally Unique IDentifiers (GUIDs) for nodes and jobs.
//
// The paper's DHT maps both nodes and jobs into a single identifier space
// via a secure hash (Fig. 1, step 2). We use a 64-bit key space: large
// enough that collisions are negligible at simulated scales, small enough
// for cheap circular arithmetic.

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"

namespace pgrid {

/// A point in the 64-bit circular identifier space.
class Guid {
 public:
  constexpr Guid() noexcept = default;
  constexpr explicit Guid(std::uint64_t v) noexcept : value_(v) {}

  /// Derive a GUID from an arbitrary name (node address, job name, ...).
  [[nodiscard]] static Guid of(std::string_view name) noexcept {
    return Guid{hash_key(name)};
  }

  /// Derive a GUID from an integer seed (deterministic node IDs in tests).
  [[nodiscard]] static constexpr Guid of(std::uint64_t seed) noexcept {
    return Guid{mix64(seed)};
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }

  /// Distance travelled clockwise from `this` to `to` on the ring.
  [[nodiscard]] constexpr std::uint64_t clockwise_to(Guid to) const noexcept {
    return to.value_ - value_;  // modular arithmetic via unsigned wraparound
  }

  friend constexpr bool operator==(Guid, Guid) noexcept = default;
  friend constexpr auto operator<=>(Guid, Guid) noexcept = default;

  [[nodiscard]] std::string str() const;

 private:
  std::uint64_t value_ = 0;
};

/// True iff `x` lies in the circular half-open interval (a, b] of the ring.
/// When a == b the interval is the whole ring (every x qualifies), matching
/// the single-node Chord convention.
[[nodiscard]] constexpr bool in_interval_oc(Guid x, Guid a, Guid b) noexcept {
  return a.clockwise_to(x) != 0 &&
         (a.clockwise_to(x) <= a.clockwise_to(b) || a == b);
}

/// True iff `x` lies in the circular open interval (a, b).
[[nodiscard]] constexpr bool in_interval_oo(Guid x, Guid a, Guid b) noexcept {
  if (a == b) return x != a;  // whole ring minus the endpoint
  return a.clockwise_to(x) != 0 && a.clockwise_to(x) < a.clockwise_to(b);
}

}  // namespace pgrid

template <>
struct std::hash<pgrid::Guid> {
  std::size_t operator()(pgrid::Guid g) const noexcept {
    return static_cast<std::size_t>(g.value());
  }
};
