#pragma once
// Streaming and batch statistics used by the metrics layer and the benches.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgrid {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by N): the spread of exactly these values.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stdev() const noexcept;
  /// Unbiased sample variance (divide by N−1): estimates the spread of the
  /// distribution the values were drawn from. Matches Samples::stdev().
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double sample_stdev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Coefficient of variation (stdev / mean); 0 for empty or zero-mean data.
  [[nodiscard]] double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set supporting exact quantiles. Keeps all samples; intended
/// for per-experiment result vectors (thousands of entries), not hot paths.
class Samples {
 public:
  void add(double x) { data_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  /// Sample standard deviation (N−1 denominator). The benches report this
  /// as a spread *estimate* over replicate measurements, so the unbiased
  /// estimator is the right convention; 0 for fewer than two samples.
  [[nodiscard]] double stdev() const noexcept;
  /// Exact quantile by linear interpolation, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& values() const noexcept { return data_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

/// Fixed-width linear histogram for load-distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pgrid
