#pragma once
// FlatMap: a sorted-vector map for the small hot-path tables the overlay
// protocols keep per node (CAN neighbor sets, takeover timers, pending join
// grants, RN-Tree child aggregates). These tables hold a handful to a few
// dozen entries but are scanned on every route/maintenance tick, where
// std::map's per-node allocations and pointer chasing dominate. A sorted
// vector keeps lookups O(log n), iteration contiguous, and — crucially for
// the deterministic simulator — iterates in exactly the same key order as
// std::map, so swapping one for the other cannot change event order.
//
// API is the std::map subset the protocols use. One deliberate difference:
// insertion and erasure invalidate *all* iterators and references (vector
// semantics), so never hold a reference across a mutation.

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/expects.h"

namespace pgrid {

template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;
  using size_type = std::size_t;

  FlatMap() = default;

  [[nodiscard]] iterator begin() noexcept { return data_.begin(); }
  [[nodiscard]] iterator end() noexcept { return data_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return data_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return data_.end(); }
  [[nodiscard]] const_iterator cbegin() const noexcept { return data_.cbegin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return data_.cend(); }

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] size_type size() const noexcept { return data_.size(); }
  [[nodiscard]] size_type capacity() const noexcept { return data_.capacity(); }
  void clear() noexcept { data_.clear(); }
  void reserve(size_type n) { data_.reserve(n); }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower(key);
    return (it != data_.end() && equal(it->first, key)) ? it : data_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower(key);
    return (it != data_.end() && equal(it->first, key)) ? it : data_.end();
  }
  [[nodiscard]] size_type count(const Key& key) const {
    return find(key) != data_.end() ? 1 : 0;
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != data_.end();
  }

  T& operator[](const Key& key) {
    iterator it = lower(key);
    if (it == data_.end() || !equal(it->first, key)) {
      it = data_.emplace(it, key, T{});
    }
    return it->second;
  }
  [[nodiscard]] T& at(const Key& key) {
    const iterator it = find(key);
    PGRID_EXPECTS(it != data_.end());
    return it->second;
  }
  [[nodiscard]] const T& at(const Key& key) const {
    const const_iterator it = find(key);
    PGRID_EXPECTS(it != data_.end());
    return it->second;
  }

  /// std::map-style emplace: no-op if the key already exists.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    iterator it = lower(key);
    if (it != data_.end() && equal(it->first, key)) return {it, false};
    it = data_.emplace(it, std::piecewise_construct,
                       std::forward_as_tuple(key),
                       std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  template <typename M>
  std::pair<iterator, bool> insert_or_assign(const Key& key, M&& value) {
    iterator it = lower(key);
    if (it != data_.end() && equal(it->first, key)) {
      it->second = std::forward<M>(value);
      return {it, false};
    }
    it = data_.emplace(it, key, std::forward<M>(value));
    return {it, true};
  }

  size_type erase(const Key& key) {
    const iterator it = find(key);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }
  iterator erase(const_iterator pos) { return data_.erase(pos); }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.data_ == b.data_;
  }

 private:
  [[nodiscard]] iterator lower(const Key& key) {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& v, const Key& k) { return Compare{}(v.first, k); });
  }
  [[nodiscard]] const_iterator lower(const Key& key) const {
    return std::lower_bound(
        data_.begin(), data_.end(), key,
        [](const value_type& v, const Key& k) { return Compare{}(v.first, k); });
  }
  [[nodiscard]] static bool equal(const Key& a, const Key& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }

  storage_type data_;
};

}  // namespace pgrid
