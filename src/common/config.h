#pragma once
// Minimal key=value configuration store used by benches and examples so that
// every experiment parameter in DESIGN.md §6 can be overridden from the
// command line (--key=value) or a config file without recompiling.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pgrid {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" lines; '#' starts a comment. Returns false on I/O error.
  bool load_file(const std::string& path);

  /// Parse argv-style options: "--key=value" or bare "key=value".
  /// Unrecognized tokens are returned for the caller to handle.
  std::vector<std::string> parse_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& items() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pgrid
