#pragma once
// Leveled logging. Off by default in benches (simulation hot paths must not
// format strings); enable per-module for debugging protocol traces.

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>

namespace pgrid {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance() noexcept;

  // Level and sink are atomics: parallel sweeps log through this shared
  // singleton from every worker thread, and a test flipping the sink while
  // another thread's simulator writes must not be a data race. Relaxed
  // ordering suffices — readers only need *some* consistent value, and the
  // write path reloads the sink per line.
  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, const char* module, const std::string& msg);

  /// Redirect output (tests capture logs); nullptr restores stderr.
  void set_sink(std::FILE* sink) noexcept {
    sink_.store(sink, std::memory_order_relaxed);
  }

  /// Register a simulated-clock source for this thread: log lines gain a
  /// "[t=12.345s]" prefix so they correlate with trace events. Thread-local
  /// because parallel sweeps run one simulator per thread against this
  /// shared singleton. Pass nullptr to unregister.
  static void set_time_source(std::function<double()> now_sec);
  [[nodiscard]] static bool has_time_source() noexcept;

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<std::FILE*> sink_{nullptr};
};

[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

namespace detail {
std::string log_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace pgrid

#define PGRID_LOG(level, module, ...)                                  \
  do {                                                                 \
    if (::pgrid::Logger::instance().enabled(level)) {                  \
      ::pgrid::Logger::instance().write(                               \
          level, module, ::pgrid::detail::log_format(__VA_ARGS__));    \
    }                                                                  \
  } while (0)

#define PGRID_TRACE(module, ...) \
  PGRID_LOG(::pgrid::LogLevel::kTrace, module, __VA_ARGS__)
#define PGRID_DEBUG(module, ...) \
  PGRID_LOG(::pgrid::LogLevel::kDebug, module, __VA_ARGS__)
#define PGRID_INFO(module, ...) \
  PGRID_LOG(::pgrid::LogLevel::kInfo, module, __VA_ARGS__)
#define PGRID_WARN(module, ...) \
  PGRID_LOG(::pgrid::LogLevel::kWarn, module, __VA_ARGS__)
#define PGRID_ERROR(module, ...) \
  PGRID_LOG(::pgrid::LogLevel::kError, module, __VA_ARGS__)
