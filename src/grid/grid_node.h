#pragma once
// A desktop-grid peer (Fig. 1): simultaneously a potential injection node,
// owner node, and run node, stacked on the overlay the configured
// matchmaking framework requires (Chord + RN-Tree, CAN, or none for the
// centralized/random baselines).
//
// Run side: FIFO job queue, one job at a time (§2), heartbeats to each
// job's owner, owner-death recovery via overlay lookup + handoff.
// Owner side: matchmaking, dispatch, heartbeat monitoring, run-death
// recovery by re-matching (§2: "the job profile is replicated both on the
// owner and run nodes").

#include <deque>
#include <functional>
#include <memory>

#include "can/can_node.h"
#include "chord/chord_node.h"
#include "common/flat_map.h"
#include "common/phi_detector.h"
#include "common/rng.h"
#include "grid/job.h"
#include "grid/messages.h"
#include "metrics/metrics.h"
#include "net/network.h"
#include "net/rpc.h"
#include "obs/memory.h"
#include "rntree/rn_tree.h"
#include "sim/simulator.h"

namespace pgrid::grid {

class CentralScheduler;

/// Run-queue service order (§5 fairness future work): plain FIFO, or
/// round-robin across submitting clients so one user's parameter sweep
/// cannot starve another user's small request.
enum class QueuePolicy { kFifo, kFairShare };

struct GridNodeConfig {
  MatchmakerKind kind = MatchmakerKind::kCentralized;
  QueuePolicy queue_policy = QueuePolicy::kFifo;

  /// §5 quotas: kill a job once it has run for declared runtime x this
  /// factor (<= 0 disables). Protects nodes from runaway/malicious jobs.
  double runaway_kill_factor = 0.0;
  /// §5 quotas: reject jobs declaring more output than this (0 = no limit).
  double max_output_kb = 0.0;

  // Grid protocol timers.
  sim::SimTime heartbeat_period = sim::SimTime::seconds(5.0);
  int heartbeat_miss_threshold = 3;
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  int match_max_attempts = 8;
  sim::SimTime match_retry_delay = sim::SimTime::seconds(3.0);

  /// φ-accrual failure detection for heartbeat monitoring (both owner→run
  /// and run→owner directions). Off by default: the legacy fixed
  /// `heartbeat_period × miss_threshold` deadline applies and event/RNG
  /// sequences are byte-identical to pre-detector builds.
  PhiAccrualConfig phi;

  /// Anti-entropy owner audit: period between background checks that every
  /// owned-job record still agrees with the overlay's current GUID→owner
  /// mapping; divergent records are re-registered with the rightful owner.
  /// Zero (the default) disables the audit task entirely.
  sim::SimTime audit_period = sim::SimTime::zero();

  /// Maintenance batching (DESIGN.md §16): heartbeats for jobs sharing an
  /// owner ride one wire message per round (and their acks one back), and
  /// the overlay layers batch their own maintenance. GridSystem fans this
  /// out to the chord/can configs below.
  net::BatchingConfig batching;

  /// Stats-only liveness oracle injected by the harness: returns the sim
  /// time (in seconds) at which the address went down, or a negative value
  /// if it is currently up. Used solely to classify evictions as false
  /// positives / late detections — never consulted for protocol decisions.
  std::function<double(net::NodeAddr)> liveness_oracle;

  // RN-Tree matchmaking (§3.1).
  std::uint32_t rn_walk_len = 2;   // limited random walk after DHT mapping
  std::uint32_t rn_search_k = 4;   // extended search candidate target

  // TTL-walk baseline (§4 related work).
  std::uint32_t ttl_walk_ttl = 20;
  sim::SimTime walk_timeout = sim::SimTime::seconds(10.0);

  // CAN matchmaking (§3.2-3.3).
  std::uint32_t can_forward_budget = 24;  // "no candidate" upward forwards
  std::uint32_t can_max_push = 4;         // CAN-push relocation budget
  double can_push_threshold = 3.0;        // queue length counted as loaded
  double can_light_load = 1.0;            // region load counted as light

  // Overlay configurations.
  chord::ChordConfig chord;
  rntree::RnTreeConfig rntree;
  can::CanConfig can;
};

struct GridNodeStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t jobs_killed_quota = 0;  // runaway jobs terminated
  std::uint64_t quota_rejects = 0;      // dispatches refused on output quota
  std::uint64_t dispatch_rejects = 0;
  std::uint64_t owner_recoveries = 0;  // run node replaced a dead owner
  std::uint64_t run_recoveries = 0;    // owner replaced a dead run node
  std::uint64_t can_pushes = 0;
  std::uint64_t can_forwards = 0;
  std::uint64_t walks_started = 0;  // TTL-walk probes launched
  std::uint64_t walks_failed = 0;   // probes that found nothing (TTL/timeout)
  // Detector quality (populated only when a liveness oracle is injected).
  std::uint64_t fp_evictions = 0;  // evicted a peer that was actually alive
  std::uint64_t fn_evictions = 0;  // detections slower than the fixed rule
  std::uint64_t owner_audit_repairs = 0;  // divergent owner records re-homed
  Samples detection_latency;  // actual death → eviction, seconds
};

class GridNode final : public net::MessageHandler {
 public:
  GridNode(net::Network& network, std::uint32_t index, Guid id,
           ResourceVector caps, double virtual_coord, GridNodeConfig config,
           CentralScheduler* central, metrics::Collector* collector, Rng rng);
  ~GridNode() override;

  void on_message(net::NodeAddr from, net::MessagePtr msg) override;

  /// Start grid services (heartbeats, owner monitor, RN-Tree aggregation).
  /// Call after the overlay has been wired or joined.
  void start();

  /// Crash: drop all state. The system marks the address dead on the network.
  void crash();

  /// Come back after a crash: rejoin the overlay through `bootstrap` (or
  /// start a fresh singleton overlay if none) and restart grid services.
  void restart(Peer bootstrap);

  // --- observers -----------------------------------------------------------
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }
  [[nodiscard]] Guid id() const noexcept { return id_; }
  [[nodiscard]] Peer self_peer() const noexcept { return Peer{addr(), id_}; }
  [[nodiscard]] const ResourceVector& caps() const noexcept { return caps_; }
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// True while a job occupies the CPU (the sampler's busy gauge).
  [[nodiscard]] bool executing() const noexcept { return executing_; }
  [[nodiscard]] const GridNodeStats& stats() const noexcept { return stats_; }

  /// Jobs in the queue (including the one executing): the load gauge every
  /// matchmaker balances on.
  [[nodiscard]] double queue_length() const noexcept;
  /// Seconds of work remaining in the queue (the centralized scheduler's
  /// global-knowledge gauge).
  [[nodiscard]] double queue_work_remaining() const;
  [[nodiscard]] std::size_t owned_jobs() const noexcept { return owned_.size(); }
  /// Sequence numbers of jobs this node currently owns (monitoring role).
  [[nodiscard]] std::vector<std::uint64_t> owned_seqs() const;
  /// Sequence numbers of jobs in this node's run queue.
  [[nodiscard]] std::vector<std::uint64_t> queued_seqs() const;

  [[nodiscard]] chord::ChordNode* chord() noexcept { return chord_.get(); }
  [[nodiscard]] can::CanNode* can() noexcept { return can_.get(); }
  [[nodiscard]] rntree::RnTreeService* rntree() noexcept { return rn_.get(); }

  /// Fold this node's state into `acc`: overlay routing/neighbor tables,
  /// grid-role bookkeeping (run queue, owned jobs, pending walks), and the
  /// RPC pending slabs of every endpoint the node stacks. Capacity
  /// snapshot — cold observation path only.
  void account_memory(obs::MemoryAccountant& acc) const {
    std::size_t overlay = 0;
    std::size_t rpc_bytes = rpc_.memory_bytes();
    if (chord_ != nullptr) {
      overlay += chord_->table_memory_bytes();
      rpc_bytes += chord_->rpc_memory_bytes();
    }
    if (can_ != nullptr) {
      overlay += can_->table_memory_bytes();
      rpc_bytes += can_->rpc_memory_bytes();
    }
    if (rn_ != nullptr) {
      overlay += rn_->table_memory_bytes();
      rpc_bytes += rn_->rpc_memory_bytes();
    }
    const std::size_t grid_state =
        queue_.size() * sizeof(QueuedJob) +
        owned_.capacity() * sizeof(std::pair<Guid, OwnedJob>) +
        pending_walks_.capacity() *
            sizeof(std::pair<std::uint64_t, PendingWalk>);
    acc.add(obs::MemClass::kOverlayTables, overlay);
    acc.add(obs::MemClass::kGridState, grid_state);
    acc.add(obs::MemClass::kRpcPending, rpc_bytes);
  }

 private:
  // --- injection side -------------------------------------------------------
  void on_submit(net::NodeAddr from, net::MessagePtr& msg);
  void inject(const JobProfile& profile);

  // --- owner routing (walk / push / forward) -------------------------------
  void handle_job_to_owner(const JobProfile& profile, std::uint32_t walk,
                           std::uint32_t push, std::uint32_t forward,
                           std::uint32_t hops);
  void forward_to_owner(Peer next, const JobProfile& profile,
                        std::uint32_t walk, std::uint32_t push,
                        std::uint32_t forward, std::uint32_t hops);
  /// CAN-push decision: the +dim neighbor to relocate toward, or invalid.
  [[nodiscard]] Peer can_push_target(std::size_t* out_dim);
  /// CAN upward forward when no local candidate satisfies the job.
  [[nodiscard]] Peer can_upward_target(const JobProfile& profile) const;
  [[nodiscard]] Peer can_up_neighbor_in_dim(std::size_t dim) const;

  // --- owner side -----------------------------------------------------------
  struct OwnedJob {
    JobProfile profile;
    Peer run = kNoPeer;
    sim::SimTime last_heartbeat;
    bool dispatched = false;
    int attempts = 0;
    std::uint32_t forward_budget = 0;  // CAN: remaining ownership moves
    PhiDetector phi;  // run-node heartbeat inter-arrivals (consulted when
                      // config_.phi.enabled; passive otherwise)
  };

  void become_owner(const JobProfile& profile, std::uint32_t hops,
                    std::uint32_t forward_budget = 0);
  void match_and_dispatch(Guid guid);
  /// Resolve a run node for the job; cb(peer, matchmaking_hops).
  void matchmake(const JobProfile& profile,
                 std::function<void(Peer, int)> cb);
  void dispatch(Guid guid, Peer run, int match_hops);
  void monitor_owned_jobs();
  /// Anti-entropy: verify each owned record against the overlay's current
  /// GUID→owner mapping; hand divergent records to the rightful owner.
  void audit_owned_jobs();
  /// Classify an eviction decision against the injected liveness oracle
  /// (false positive / detection latency / late detection). Stats only.
  void note_eviction(net::NodeAddr peer);
  void on_heartbeat(net::NodeAddr from, net::MessagePtr& msg);
  void on_job_done(const JobDone& msg);
  void on_owner_handoff(net::NodeAddr from, net::MessagePtr& msg);

  /// CAN candidate set per §3.2: self plus dominating neighbors, filtered
  /// by the job's constraints; least-loaded first.
  [[nodiscard]] std::vector<std::pair<Peer, double>> can_candidates(
      const JobProfile& profile) const;

  // --- TTL-walk baseline (§4) ---------------------------------------------
  void start_walk(const JobProfile& profile, std::function<void(Peer, int)> cb);
  void on_walk_probe(net::MessagePtr& msg);
  void on_walk_result(const WalkResult& msg);

  // --- run side ---------------------------------------------------------------
  struct QueuedJob {
    JobProfile profile;
    Peer owner;
    int missed_acks = 0;
    bool recovering_owner = false;
    PhiDetector phi;  // owner heartbeat-ack inter-arrivals
    /// Span of the DispatchJob that queued this job (unsampled for most):
    /// completion fires from a bare timer, so the run leg's Result/JobDone
    /// sends re-enter the trace through this saved context.
    obs::TraceContext ctx;
  };

  void on_dispatch(net::NodeAddr from, net::MessagePtr& msg);
  void maybe_start_next();
  /// Fair-share: rotate the next eligible client's oldest job to the queue
  /// front before execution starts.
  void apply_queue_policy();
  void complete_front();
  /// Terminate the running (runaway) job at its quota deadline.
  void kill_front_for_quota();
  void do_heartbeats();
  void recover_owner(Guid guid);
  void update_load_gauge();

  net::Network& net_;
  net::RpcEndpoint rpc_;
  std::uint32_t index_;
  Guid id_;
  ResourceVector caps_;
  GridNodeConfig config_;
  CentralScheduler* central_;
  metrics::Collector* collector_;
  Rng rng_;

  std::unique_ptr<chord::ChordNode> chord_;
  std::unique_ptr<rntree::RnTreeService> rn_;
  std::unique_ptr<can::CanNode> can_;

  bool running_ = false;
  std::deque<QueuedJob> queue_;
  bool executing_ = false;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  double executing_end_sec_ = 0.0;
  net::NodeAddr last_served_client_ = net::kNullAddr;

  // Owner/run bookkeeping lives in sorted flat vectors (FlatMap): probed on
  // every heartbeat and matchmaking step, and iteration order matches the
  // std::map they replaced, so the simulation stays deterministic. Holders
  // of references re-fetch after any insert/erase (vector semantics).
  FlatMap<Guid, OwnedJob> owned_;

  struct PendingWalk {
    std::function<void(Peer, int)> cb;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };
  std::uint64_t next_probe_id_ = 1;
  FlatMap<std::uint64_t, PendingWalk> pending_walks_;

  std::unique_ptr<sim::PeriodicTask> heartbeat_task_;
  std::unique_ptr<sim::PeriodicTask> owner_monitor_task_;
  std::unique_ptr<sim::PeriodicTask> audit_task_;  // only when audit_period > 0

  GridNodeStats stats_;
};

}  // namespace pgrid::grid
