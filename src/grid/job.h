#pragma once
// Job model: "a job in our system is the data and associated profile that
// describes a computation to be performed" (§2). The profile travels with
// the job and is replicated on the owner and run nodes for recovery.

#include <cstdint>
#include <memory>
#include <string>

#include "can/geometry.h"
#include "common/guid.h"
#include "common/hash.h"
#include "grid/resources.h"
#include "net/message.h"

namespace pgrid::grid {

/// Matchmaking frameworks under evaluation (§3 + baselines).
enum class MatchmakerKind {
  kCentralized,  // omniscient least-loaded scheduler (the paper's target)
  kRandom,       // random eligible node, global knowledge (extra baseline)
  kRnTree,       // Rendezvous Node Tree over Chord (§3.1)
  kCanBasic,     // CAN matchmaking, virtual dimension, no pushing (§3.2)
  kCanPush,      // CAN + load-aware job pushing (§3.3 "improved")
  kTtlWalk,      // TTL-bounded random walk (related-work baseline, §4)
};

[[nodiscard]] const char* matchmaker_name(MatchmakerKind kind) noexcept;

/// True iff the matchmaker runs on the Chord overlay (the RN-Tree service
/// is only instantiated for kRnTree).
[[nodiscard]] constexpr bool uses_chord(MatchmakerKind k) noexcept {
  return k == MatchmakerKind::kRnTree || k == MatchmakerKind::kTtlWalk;
}
/// True iff the matchmaker runs on the CAN overlay.
[[nodiscard]] constexpr bool uses_can(MatchmakerKind k) noexcept {
  return k == MatchmakerKind::kCanBasic || k == MatchmakerKind::kCanPush;
}

/// The capability/demand half of a job profile. Immutable once built: the
/// client mints one JobStatics per submission, and every downstream copy of
/// the profile — matchmaking messages in flight, the owner's queue record,
/// the run node's execution record, handoff replicas — shares it through a
/// refcounted pointer instead of carrying ~150 bytes of repeated
/// constraint/coordinate state. This interning is the hot-path compaction
/// half of DESIGN.md §16: the dominant per-node tables (QueuedJob, OwnedJob)
/// shrink to identity + pointer. Wire accounting is unaffected — messages
/// still charge the full serialized profile (kProfileWireBytes) per copy.
struct JobStatics {
  Constraints constraints;
  double runtime_sec = 0.0;  // actual compute demand
  /// Runtime the submitter *declared* (0 = honest, i.e. == runtime_sec);
  /// quota enforcement kills jobs exceeding declared x kill factor.
  double declared_runtime_sec = 0.0;
  /// Declared output size; nodes with an output quota reject beyond it.
  double output_kb = 2.0;
  /// CAN coordinates (constraints + per-submission virtual coordinate);
  /// only meaningful in CAN modes but always carried for simplicity.
  can::Point can_coords;
};

struct JobProfile {
  std::uint64_t seq = 0;          // workload index; stable across retries
  std::uint32_t generation = 0;   // client resubmission counter
  Guid guid;                      // derived from (seq, generation)
  net::NodeAddr client = net::kNullAddr;
  std::shared_ptr<const JobStatics> statics = shared_default();

  [[nodiscard]] const Constraints& constraints() const noexcept {
    return statics->constraints;
  }
  [[nodiscard]] double runtime_sec() const noexcept {
    return statics->runtime_sec;
  }
  [[nodiscard]] double declared_runtime_sec() const noexcept {
    return statics->declared_runtime_sec;
  }
  [[nodiscard]] double output_kb() const noexcept { return statics->output_kb; }
  [[nodiscard]] const can::Point& can_coords() const noexcept {
    return statics->can_coords;
  }
  [[nodiscard]] double declared_or_actual() const noexcept {
    return statics->declared_runtime_sec > 0.0 ? statics->declared_runtime_sec
                                               : statics->runtime_sec;
  }

  /// Default-constructed profiles stay dereferenceable (zeroed statics)
  /// without a per-instance allocation.
  [[nodiscard]] static const std::shared_ptr<const JobStatics>&
  shared_default() {
    static const std::shared_ptr<const JobStatics> kDefault =
        std::make_shared<const JobStatics>();
    return kDefault;
  }

  /// GUID assignment as in Fig. 1 step 2: hash the job identity.
  [[nodiscard]] static Guid derive_guid(std::uint64_t seq,
                                        std::uint32_t generation) noexcept {
    return Guid{hash_combine(mix64(seq), mix64(generation))};
  }
};

}  // namespace pgrid::grid
