#include "grid/central_scheduler.h"

#include <algorithm>

#include "common/expects.h"
#include "grid/grid_node.h"

namespace pgrid::grid {

void CentralScheduler::register_node(GridNode* node) {
  PGRID_EXPECTS(node != nullptr);
  nodes_.push_back(node);
  in_flight_.emplace_back();
}

void CentralScheduler::note_assignment(std::uint32_t node_index,
                                       double runtime_sec,
                                       double expiry_sec) {
  if (node_index < in_flight_.size()) {
    in_flight_[node_index].push_back(InFlight{runtime_sec, expiry_sec});
  }
}

double CentralScheduler::in_flight_work(std::size_t index) const {
  double total = 0.0;
  for (const InFlight& f : in_flight_[index]) total += f.runtime_sec;
  return total;
}

Peer CentralScheduler::pick_least_loaded(const Constraints& c,
                                         double now_sec) const {
  // Expired entries have certainly arrived in the node's queue (where
  // queue_work_remaining counts them); prune lazily.
  for (auto& entries : in_flight_) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [now_sec](const InFlight& f) {
                                   return f.expiry_sec <= now_sec;
                                 }),
                  entries.end());
  }
  GridNode* best = nullptr;
  double best_work = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    GridNode* node = nodes_[i];
    if (!node->running() || !c.satisfied_by(node->caps())) continue;
    const double work = node->queue_work_remaining() + in_flight_work(i);
    if (best == nullptr || work < best_work ||
        (work == best_work && node->id() < best->id())) {
      best = node;
      best_work = work;
    }
  }
  return best ? best->self_peer() : kNoPeer;
}

Peer CentralScheduler::pick_random(const Constraints& c, Rng& rng) const {
  std::vector<GridNode*>& eligible = eligible_scratch_;
  eligible.clear();
  for (GridNode* node : nodes_) {
    if (node->running() && c.satisfied_by(node->caps())) {
      eligible.push_back(node);
    }
  }
  if (eligible.empty()) return kNoPeer;
  return eligible[rng.index(eligible.size())]->self_peer();
}

bool CentralScheduler::any_satisfies(const Constraints& c) const {
  for (GridNode* node : nodes_) {
    if (node->running() && c.satisfied_by(node->caps())) return true;
  }
  return false;
}

}  // namespace pgrid::grid
