#include "grid/grid_system.h"

#include <algorithm>

#include "can/space.h"
#include "chord/ring.h"

namespace pgrid::grid {

void apply_light_maintenance(GridNodeConfig* config) {
  PGRID_EXPECTS(config != nullptr);
  config->chord.stabilize_period = sim::SimTime::seconds(10.0);
  config->chord.fix_fingers_period = sim::SimTime::seconds(5.0);
  config->chord.check_predecessor_period = sim::SimTime::seconds(10.0);
  config->can.update_period = sim::SimTime::seconds(5.0);
  config->can.neighbor_timeout = sim::SimTime::seconds(17.0);
  config->rntree.aggregation_period = sim::SimTime::seconds(5.0);
  config->rntree.child_expiry = sim::SimTime::seconds(17.0);
}

GridSystem::GridSystem(GridConfig config, workload::Workload workload)
    : config_(config),
      workload_(std::move(workload)),
      collector_(workload_.jobs.size(), workload_.spec.node_count),
      rng_(mix64(config.seed) ^ 0xA5A5A5A5A5A5A5A5ULL) {
  PGRID_EXPECTS(workload_.node_caps.size() == workload_.spec.node_count);
}

GridSystem::~GridSystem() = default;

void GridSystem::build() {
  if (built_) return;
  built_ = true;

  net_ = std::make_unique<net::Network>(sim_, rng_.fork(1), config_.latency,
                                        config_.loss_probability);

  GridNodeConfig node_config = config_.node;
  node_config.kind = config_.kind;
  if (config_.light_maintenance) apply_light_maintenance(&node_config);

  Rng node_rng = rng_.fork(2);
  nodes_.reserve(workload_.spec.node_count);
  for (std::size_t i = 0; i < workload_.spec.node_count; ++i) {
    const Guid id = Guid::of(hash_combine(mix64(config_.seed), mix64(i)));
    nodes_.push_back(std::make_unique<GridNode>(
        *net_, static_cast<std::uint32_t>(i), id, workload_.node_caps[i],
        node_rng.uniform(), node_config, &central_, &collector_,
        node_rng.fork(i)));
    // Metrics and the central scheduler address nodes by network address;
    // registering nodes first makes address == index.
    PGRID_ASSERT(nodes_.back()->addr() == i);
    central_.register_node(nodes_.back().get());
  }

  // Wire the overlay the matchmaker needs (instant bootstrap: the paper's
  // experiments measure steady-state matchmaking, not join cost).
  if (uses_chord(config_.kind)) {
    std::vector<chord::ChordNode*> ring;
    ring.reserve(nodes_.size());
    for (auto& n : nodes_) ring.push_back(n->chord());
    chord::wire_ring_instantly(ring);
  } else if (uses_can(config_.kind)) {
    std::vector<can::CanNode*> space;
    space.reserve(nodes_.size());
    for (auto& n : nodes_) space.push_back(n->can());
    can::wire_space_instantly(space, kCanDims);
  }
  for (auto& n : nodes_) n->start();

  // Clients and the job schedule.
  std::vector<net::NodeAddr> pool;
  pool.reserve(nodes_.size());
  for (auto& n : nodes_) pool.push_back(n->addr());

  Rng client_rng = rng_.fork(3);
  clients_.reserve(workload_.spec.client_count);
  for (std::size_t c = 0; c < workload_.spec.client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(
        *net_, config_.client, &collector_, client_rng.fork(c)));
    clients_.back()->set_injection_pool(pool);
    clients_.back()->on_terminal = [this] { ++terminal_jobs_; };
  }
  for (std::size_t j = 0; j < workload_.jobs.size(); ++j) {
    const workload::JobSpec& job = workload_.jobs[j];
    if (!config_.manual_submission) {
      clients_[job.client % clients_.size()]->schedule_job(
          j, job.arrival_sec, job.constraints, job.runtime_sec,
          job.declared_runtime_sec, job.output_kb);
    }
    last_arrival_sec_ = std::max(last_arrival_sec_, job.arrival_sec);
  }
}

void GridSystem::submit_job(std::uint64_t seq, double delay_sec) {
  build();
  PGRID_EXPECTS(seq < workload_.jobs.size());
  const workload::JobSpec& job = workload_.jobs[seq];
  const double at = sim_.now().sec() + delay_sec;
  latest_release_sec_ = std::max(latest_release_sec_, at);
  clients_[job.client % clients_.size()]->schedule_job(
      seq, at, job.constraints, job.runtime_sec, job.declared_runtime_sec,
      job.output_kb);
}

void GridSystem::run() {
  build();
  // The horizon trails the latest release time: DAG-style submissions can
  // extend the schedule long past the workload's nominal last arrival.
  while (!finished()) {
    const double horizon = std::max(last_arrival_sec_, latest_release_sec_) +
                           config_.horizon_slack_sec;
    if (sim_.now().sec() >= horizon) break;
    sim_.run_until(sim_.now() + sim::SimTime::seconds(60.0));
  }
}

void GridSystem::run_for(double sec) {
  build();
  sim_.run_until(sim_.now() + sim::SimTime::seconds(sec));
}

Peer GridSystem::find_bootstrap(std::size_t excluding) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i != excluding && nodes_[i]->running()) {
      return nodes_[i]->self_peer();
    }
  }
  return kNoPeer;
}

void GridSystem::crash_node(std::size_t index) {
  GridNode& n = node(index);
  if (!n.running()) return;
  net_->set_alive(n.addr(), false);
  n.crash();
}

void GridSystem::restart_node(std::size_t index) {
  GridNode& n = node(index);
  if (n.running()) return;
  net_->set_alive(n.addr(), true);
  n.restart(find_bootstrap(index));
}

bool GridSystem::node_running(std::size_t index) const {
  return nodes_.at(index)->running();
}

void GridSystem::enable_churn(const sim::ChurnModel& model) {
  build();
  churn_ = std::make_unique<sim::FailureInjector>(
      sim_, rng_.fork(4), model, nodes_.size(),
      [this](std::size_t i) { crash_node(i); },
      [this](std::size_t i) { restart_node(i); });
  churn_->start();
}

GridNodeStats GridSystem::aggregate_node_stats() const {
  GridNodeStats total;
  for (const auto& n : nodes_) {
    const GridNodeStats& s = n->stats();
    total.jobs_executed += s.jobs_executed;
    total.jobs_killed_quota += s.jobs_killed_quota;
    total.quota_rejects += s.quota_rejects;
    total.dispatch_rejects += s.dispatch_rejects;
    total.owner_recoveries += s.owner_recoveries;
    total.run_recoveries += s.run_recoveries;
    total.can_pushes += s.can_pushes;
    total.can_forwards += s.can_forwards;
    total.walks_started += s.walks_started;
    total.walks_failed += s.walks_failed;
  }
  return total;
}

}  // namespace pgrid::grid
