#include "grid/grid_system.h"

#include <algorithm>
#include <string>

#include "can/space.h"
#include "chord/ring.h"
#include "common/logging.h"
#include "net/message_pool.h"
#include "sim/shard_plan.h"

namespace pgrid::grid {

void apply_light_maintenance(GridNodeConfig* config) {
  PGRID_EXPECTS(config != nullptr);
  config->chord.stabilize_period = sim::SimTime::seconds(10.0);
  config->chord.fix_fingers_period = sim::SimTime::seconds(5.0);
  config->chord.check_predecessor_period = sim::SimTime::seconds(10.0);
  config->can.update_period = sim::SimTime::seconds(5.0);
  config->can.neighbor_timeout = sim::SimTime::seconds(17.0);
  config->rntree.aggregation_period = sim::SimTime::seconds(5.0);
  config->rntree.child_expiry = sim::SimTime::seconds(17.0);
}

GridSystem::GridSystem(GridConfig config, workload::Workload workload)
    : config_(config),
      workload_(std::move(workload)),
      // Sharded runs force batch collectors: lifecycle events for one job
      // land on several shards, and only batch records merge exactly.
      collector_(workload_.jobs.size(), workload_.spec.node_count,
                 config.obs.streaming_metrics && config.shards == 0),
      rng_(mix64(config.seed) ^ 0xA5A5A5A5A5A5A5A5ULL) {
  PGRID_EXPECTS(workload_.node_caps.size() == workload_.spec.node_count);
}

GridSystem::~GridSystem() {
  if (owns_log_clock_) Logger::set_time_source(nullptr);
}

void GridSystem::build() {
  if (built_) return;
  built_ = true;
  obs::RunProfile::Timer build_timer(profile_, "build");

  // Log lines gain a sim-time prefix so they correlate with trace events.
  // Thread-local: parallel sweeps register one clock per worker thread.
  Logger::set_time_source([this] { return sim_.now().sec(); });
  owns_log_clock_ = true;

  GridNodeConfig node_config = config_.node;
  node_config.kind = config_.kind;
  if (config_.light_maintenance) apply_light_maintenance(&node_config);
  // One φ-accrual config drives every protocol layer stacked on the node.
  node_config.chord.phi = node_config.phi;
  node_config.can.phi = node_config.phi;
  node_config.rntree.phi = node_config.phi;
  // Likewise one batching config: the grid heartbeat layer and each overlay
  // batch their own maintenance rounds under the same switch.
  node_config.batching = config_.batching;
  node_config.chord.batching = config_.batching;
  node_config.can.batching = config_.batching;
  down_since_.assign(workload_.spec.node_count, -1.0);
  if (config_.track_liveness) {
    node_config.liveness_oracle = [this](net::NodeAddr a) {
      return a < down_since_.size() ? down_since_[a] : -1.0;
    };
  }

  if (config_.shards > 0) {
    build_sharded(node_config);
    return;
  }

  net_ = std::make_unique<net::Network>(sim_, rng_.fork(1), config_.latency,
                                        config_.loss_probability);
  if (config_.obs.trace) {
    trace_ = std::make_unique<obs::TraceBus>(sim_, config_.obs.trace_capacity);
    trace_->set_trace_sampling(config_.obs.trace_sample_every);
    net_->set_trace(trace_.get());
  }

  Rng node_rng = rng_.fork(2);
  nodes_.reserve(workload_.spec.node_count);
  for (std::size_t i = 0; i < workload_.spec.node_count; ++i) {
    const Guid id = Guid::of(hash_combine(mix64(config_.seed), mix64(i)));
    nodes_.push_back(std::make_unique<GridNode>(
        *net_, static_cast<std::uint32_t>(i), id, workload_.node_caps[i],
        node_rng.uniform(), node_config, &central_, &collector_,
        node_rng.fork(i)));
    // Metrics and the central scheduler address nodes by network address;
    // registering nodes first makes address == index.
    PGRID_ASSERT(nodes_.back()->addr() == i);
    central_.register_node(nodes_.back().get());
  }

  // Wire the overlay the matchmaker needs (instant bootstrap: the paper's
  // experiments measure steady-state matchmaking, not join cost).
  if (uses_chord(config_.kind)) {
    std::vector<chord::ChordNode*> ring;
    ring.reserve(nodes_.size());
    for (auto& n : nodes_) ring.push_back(n->chord());
    chord::wire_ring_instantly(ring);
  } else if (uses_can(config_.kind)) {
    std::vector<can::CanNode*> space;
    space.reserve(nodes_.size());
    for (auto& n : nodes_) space.push_back(n->can());
    can::wire_space_instantly(space, kCanDims);
  }
  for (auto& n : nodes_) n->start();

  // Clients and the job schedule.
  std::vector<net::NodeAddr> pool;
  pool.reserve(nodes_.size());
  for (auto& n : nodes_) pool.push_back(n->addr());

  Rng client_rng = rng_.fork(3);
  clients_.reserve(workload_.spec.client_count);
  for (std::size_t c = 0; c < workload_.spec.client_count; ++c) {
    clients_.push_back(std::make_unique<Client>(
        *net_, config_.client, &collector_, client_rng.fork(c)));
    clients_.back()->set_injection_pool(pool);
    clients_.back()->on_terminal = [this] { ++terminal_jobs_; };
  }
  for (std::size_t j = 0; j < workload_.jobs.size(); ++j) {
    const workload::JobSpec& job = workload_.jobs[j];
    if (!config_.manual_submission) {
      clients_[job.client % clients_.size()]->schedule_job(
          j, job.arrival_sec, job.constraints, job.runtime_sec,
          job.declared_runtime_sec, job.output_kb);
    }
    last_arrival_sec_ = std::max(last_arrival_sec_, job.arrival_sec);
  }

  if (trace_ != nullptr) {
    for (const auto& n : nodes_) {
      trace_->set_actor_name(n->addr(),
                             "node " + std::to_string(n->index()));
    }
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      trace_->set_actor_name(clients_[c]->addr(),
                             "client " + std::to_string(c));
    }
  }

  if (config_.obs.sample_period_sec > 0.0) {
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        sim_, sim::SimTime::seconds(config_.obs.sample_period_sec));
    sampler_->add_gauge("live_nodes", [this] {
      std::size_t live = 0;
      for (const auto& n : nodes_) live += n->running() ? 1 : 0;
      return static_cast<double>(live);
    });
    sampler_->add_gauge("busy_frac", [this] {
      std::size_t live = 0;
      std::size_t busy = 0;
      for (const auto& n : nodes_) {
        if (!n->running()) continue;
        ++live;
        busy += n->executing() ? 1 : 0;
      }
      return live == 0 ? 0.0
                       : static_cast<double>(busy) / static_cast<double>(live);
    });
    sampler_->add_gauge("queue_depth_avg", [this] {
      double total = 0.0;
      std::size_t live = 0;
      for (const auto& n : nodes_) {
        if (!n->running()) continue;
        ++live;
        total += n->queue_length();
      }
      return live == 0 ? 0.0 : total / static_cast<double>(live);
    });
    sampler_->add_gauge("queue_depth_max", [this] {
      double worst = 0.0;
      for (const auto& n : nodes_) {
        if (n->running()) worst = std::max(worst, n->queue_length());
      }
      return worst;
    });
    sampler_->add_gauge("sim_queue", [this] {
      return static_cast<double>(sim_.queued());
    });
    sampler_->add_gauge("sim_tombstones", [this] {
      return static_cast<double>(sim_.tombstones());
    });
    sampler_->add_rate("sim_events_per_sec", [this] {
      return static_cast<double>(sim_.executed());
    });
    sampler_->add_gauge("jobs_terminal", [this] {
      return static_cast<double>(terminal_jobs_);
    });
    sampler_->add_rate("msgs_sent_per_sec", [this] {
      return static_cast<double>(net_->stats().messages_sent);
    });
    sampler_->add_rate("msgs_delivered_per_sec", [this] {
      return static_cast<double>(net_->stats().messages_delivered);
    });
    sampler_->add_rate("bytes_sent_per_sec", [this] {
      return static_cast<double>(net_->stats().bytes_sent);
    });
  }

  // The registry exists whenever any consumer of it is configured: the
  // sampler (per-period columns) or the final metrics CSV snapshot.
  if (config_.obs.sample_period_sec > 0.0 ||
      !config_.obs.metrics_csv_path.empty()) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    register_builtin_metrics();
    if (sampler_ != nullptr) sampler_->add_registry(*registry_);
  }
  if (sampler_ != nullptr) sampler_->start();
}

void GridSystem::build_sharded(const GridNodeConfig& node_config) {
  // Sharded v1 scope (DESIGN.md §17): steady-state overlay planes only.
  // Every excluded feature is rejected here rather than silently degraded.
  PGRID_EXPECTS(uses_chord(config_.kind) || uses_can(config_.kind));
  PGRID_EXPECTS(!config_.obs.trace);
  PGRID_EXPECTS(config_.obs.sample_period_sec == 0.0);
  PGRID_EXPECTS(config_.obs.metrics_csv_path.empty());
  PGRID_EXPECTS(!config_.manual_submission);
  // The lookahead window is the minimum link latency; a zero floor would
  // collapse windows to single events.
  PGRID_EXPECTS(config_.latency.min > sim::SimTime::zero());

  const std::size_t shards = config_.shards;
  engine_ = std::make_unique<sim::ShardedEngine>(shards, config_.latency.min);
  Logger::set_time_source([this] { return engine_->now().sec(); });

  // The bus seed is derived from the config seed without consuming rng_:
  // rng_'s fork sequence (1=net, 2=nodes, 3=clients) must stay identical to
  // the sequential build so per-node streams are engine-independent.
  bus_ = std::make_unique<net::ShardBus>(
      shards, hash_combine(mix64(config_.seed), 0x5348415244ULL));  // "SHARD"
  Rng net_rng = rng_.fork(1);
  shard_nets_.reserve(shards);
  shard_collectors_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_nets_.push_back(std::make_unique<net::Network>(
        engine_->shard(s), net_rng.fork(s), config_.latency,
        config_.loss_probability));
    bus_->attach(static_cast<std::uint32_t>(s), *shard_nets_[s]);
    shard_collectors_.push_back(std::make_unique<metrics::Collector>(
        workload_.jobs.size(), workload_.spec.node_count,
        /*streaming=*/false));
  }

  // Partition nodes into contiguous Guid-order arcs (the ring order
  // correlated_victims uses): overlay neighbours share a shard, so most
  // protocol traffic never crosses the bus. Guids are a pure function of
  // (seed, index) — the plan is identical for every run of this config.
  const std::size_t n = workload_.spec.node_count;
  std::vector<Guid> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(Guid::of(hash_combine(mix64(config_.seed), mix64(i))));
  }
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&ids](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
  const sim::ShardPlan plan =
      sim::plan_shards(order, static_cast<std::uint32_t>(shards));

  // Node construction mirrors the sequential loop exactly — same node_rng
  // draw order, same addr == index invariant (registration goes through the
  // bus's global directory regardless of which shard's Network is used).
  Rng node_rng = rng_.fork(2);
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<GridNode>(
        *shard_nets_[plan.shard_of[i]], static_cast<std::uint32_t>(i), ids[i],
        workload_.node_caps[i], node_rng.uniform(), node_config, &central_,
        shard_collectors_[plan.shard_of[i]].get(), node_rng.fork(i)));
    PGRID_ASSERT(nodes_.back()->addr() == i);
    central_.register_node(nodes_.back().get());
  }

  if (uses_chord(config_.kind)) {
    std::vector<chord::ChordNode*> ring;
    ring.reserve(nodes_.size());
    for (auto& node : nodes_) ring.push_back(node->chord());
    chord::wire_ring_instantly(ring);
  } else {
    std::vector<can::CanNode*> space;
    space.reserve(nodes_.size());
    for (auto& node : nodes_) space.push_back(node->can());
    can::wire_space_instantly(space, kCanDims);
  }
  for (auto& node : nodes_) node->start();

  std::vector<net::NodeAddr> pool;
  pool.reserve(nodes_.size());
  for (auto& node : nodes_) pool.push_back(node->addr());

  // Clients round-robin across shards; their rng streams and addresses are
  // shard-count-independent (fork(c) and sequential bus registration).
  Rng client_rng = rng_.fork(3);
  clients_.reserve(workload_.spec.client_count);
  for (std::size_t c = 0; c < workload_.spec.client_count; ++c) {
    const std::size_t s = c % shards;
    clients_.push_back(std::make_unique<Client>(
        *shard_nets_[s], config_.client, shard_collectors_[s].get(),
        client_rng.fork(c)));
    clients_.back()->set_injection_pool(pool);
    clients_.back()->on_terminal = [this] {
      terminal_jobs_.fetch_add(1, std::memory_order_relaxed);
    };
  }
  for (std::size_t j = 0; j < workload_.jobs.size(); ++j) {
    const workload::JobSpec& job = workload_.jobs[j];
    clients_[job.client % clients_.size()]->schedule_job(
        j, job.arrival_sec, job.constraints, job.runtime_sec,
        job.declared_runtime_sec, job.output_kb);
    last_arrival_sec_ = std::max(last_arrival_sec_, job.arrival_sec);
  }

  bus_->freeze();
  engine_->set_drain([bus = bus_.get()](std::size_t s) {
    bus->drain_into(static_cast<std::uint32_t>(s));
  });
  engine_->set_thread_init([this](std::size_t s) {
    sim::Simulator* clock = &engine_->shard(s);
    Logger::set_time_source([clock] { return clock->now().sec(); });
  });
}

void GridSystem::register_builtin_metrics() {
  // Message-pool recycling effectiveness (thread-local: valid because each
  // system runs confined to one sweep thread).
  registry_->gauge("pool/reuse_fraction", [] {
    return net::MessagePool::stats().reuse_fraction();
  });
  registry_->gauge("pool/cached_blocks", [] {
    return static_cast<double>(net::MessagePool::stats().cached_blocks);
  });
  registry_->gauge("pool/cached_bytes", [] {
    return static_cast<double>(net::MessagePool::stats().cached_bytes);
  });
  registry_->gauge("pool/live_bytes", [] {
    return static_cast<double>(net::MessagePool::stats().memory_bytes());
  });
  registry_->gauge("pool/fresh_total", [] {
    return static_cast<double>(net::MessagePool::stats().fresh);
  });
  registry_->gauge("pool/reused_total", [] {
    return static_cast<double>(net::MessagePool::stats().reused);
  });
  registry_->gauge("pool/foreign_total", [] {
    return static_cast<double>(net::MessagePool::stats().foreign);
  });

  // Per-subsystem memory gauges: all classes share one breakdown walk per
  // sampling instant (see mem_cache_).
  const auto mem_gauge = [this](obs::MemClass c) {
    return [this, c] {
      const std::int64_t now = sim_.now().ns();
      if (mem_cache_.t_ns != now) {
        mem_cache_.acc = memory_breakdown();
        mem_cache_.t_ns = now;
      }
      return static_cast<double>(mem_cache_.acc.of(c));
    };
  };
  for (std::size_t c = 0; c < obs::MemoryAccountant::kClasses; ++c) {
    const auto cls = static_cast<obs::MemClass>(c);
    registry_->gauge(std::string("mem/") + obs::mem_class_name(cls),
                     mem_gauge(cls));
  }
  registry_->gauge("mem/total", [this] {
    const std::int64_t now = sim_.now().ns();
    if (mem_cache_.t_ns != now) {
      mem_cache_.acc = memory_breakdown();
      mem_cache_.t_ns = now;
    }
    return static_cast<double>(mem_cache_.acc.total());
  });

  if (trace_ != nullptr) {
    registry_->gauge("trace/dropped", [this] {
      return static_cast<double>(trace_->dropped());
    });
    registry_->gauge("trace/recorded_total", [this] {
      return static_cast<double>(trace_->total_recorded());
    });
    registry_->gauge("trace/traces_started", [this] {
      return static_cast<double>(trace_->traces_started());
    });
  }

  // Job flow as owned counters would need grid-layer plumbing; the terminal
  // count is already a sampler gauge. Expose the wait distribution shape.
  registry_->gauge("jobs/completed", [this] {
    return static_cast<double>(collector_.completed_count());
  });
  registry_->gauge("jobs/started", [this] {
    return static_cast<double>(collector_.started_count());
  });
  registry_->gauge("jobs/resubmissions", [this] {
    return static_cast<double>(collector_.total_resubmissions());
  });
}

void GridSystem::submit_job(std::uint64_t seq, double delay_sec) {
  // Manual submission is outside sharded v1 (build_sharded rejects the
  // config); reaching here sharded means a driver bug.
  PGRID_EXPECTS(!sharded_mode());
  build();
  PGRID_EXPECTS(seq < workload_.jobs.size());
  const workload::JobSpec& job = workload_.jobs[seq];
  const double at = sim_.now().sec() + delay_sec;
  latest_release_sec_ = std::max(latest_release_sec_, at);
  clients_[job.client % clients_.size()]->schedule_job(
      seq, at, job.constraints, job.runtime_sec, job.declared_runtime_sec,
      job.output_kb);
}

void GridSystem::merge_shard_metrics() {
  if (engine_ == nullptr) return;
  std::vector<const metrics::Collector*> parts;
  parts.reserve(shard_collectors_.size());
  for (const auto& c : shard_collectors_) parts.push_back(c.get());
  collector_.merge_from_shards(parts);
}

void GridSystem::run() {
  build();
  obs::RunProfile::Timer run_timer(profile_, "run");
  const std::uint64_t events_before = sim_events();
  // The horizon trails the latest release time: DAG-style submissions can
  // extend the schedule long past the workload's nominal last arrival.
  while (!finished()) {
    const double horizon = std::max(last_arrival_sec_, latest_release_sec_) +
                           config_.horizon_slack_sec;
    if (now_sec() >= horizon) break;
    if (engine_ != nullptr) {
      engine_->run_until(engine_->now() + sim::SimTime::seconds(60.0));
    } else {
      sim_.run_until(sim_.now() + sim::SimTime::seconds(60.0));
    }
  }
  merge_shard_metrics();
  profile_.add_events(sim_events() - events_before);
  profile_.note_queue_peaks(sim_queue_peak(), sim_tombstone_peak());
  // End-of-run footprint lands in the profile summary only when metrics are
  // on, keeping obs-off stdout untouched.
  if (registry_ != nullptr) profile_.note_memory(memory_breakdown());
}

void GridSystem::run_for(double sec) {
  build();
  obs::RunProfile::Timer run_timer(profile_, "run");
  const std::uint64_t events_before = sim_events();
  if (engine_ != nullptr) {
    engine_->run_until(engine_->now() + sim::SimTime::seconds(sec));
  } else {
    sim_.run_until(sim_.now() + sim::SimTime::seconds(sec));
  }
  merge_shard_metrics();
  profile_.add_events(sim_events() - events_before);
  profile_.note_queue_peaks(sim_queue_peak(), sim_tombstone_peak());
}

const net::NetworkStats& GridSystem::net_stats() const {
  if (net_ != nullptr) return net_->stats();
  // Sharded: sum the per-shard Networks field-wise on demand. Every counter
  // increments on exactly one shard (the sender's for send-side counters,
  // the destination's for delivery-side), so the sum equals what a single
  // network would have recorded for the same trajectory.
  merged_stats_ = net::NetworkStats{};
  for (const auto& net : shard_nets_) {
    const net::NetworkStats& s = net->stats();
    merged_stats_.messages_sent += s.messages_sent;
    merged_stats_.messages_delivered += s.messages_delivered;
    merged_stats_.messages_dropped_dead += s.messages_dropped_dead;
    merged_stats_.messages_dropped_loss += s.messages_dropped_loss;
    merged_stats_.messages_dropped_partition += s.messages_dropped_partition;
    merged_stats_.messages_dropped_fault += s.messages_dropped_fault;
    merged_stats_.messages_duplicated += s.messages_duplicated;
    merged_stats_.messages_reordered += s.messages_reordered;
    merged_stats_.bytes_sent += s.bytes_sent;
    merged_stats_.bytes_delivered += s.bytes_delivered;
    merged_stats_.batches_sent += s.batches_sent;
    merged_stats_.batch_parts_sent += s.batch_parts_sent;
    merged_stats_.batches_delivered += s.batches_delivered;
    merged_stats_.batch_parts_delivered += s.batch_parts_delivered;
    for (std::size_t k = 0; k < net::NetworkStats::kKindSlots; ++k) {
      merged_stats_.sent_by_kind[k] += s.sent_by_kind[k];
      merged_stats_.delivered_by_kind[k] += s.delivered_by_kind[k];
    }
  }
  return merged_stats_;
}

Peer GridSystem::find_bootstrap(std::size_t excluding) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i != excluding && nodes_[i]->running()) {
      return nodes_[i]->self_peer();
    }
  }
  return kNoPeer;
}

void GridSystem::crash_node(std::size_t index) {
  PGRID_EXPECTS(!sharded_mode());  // churn is outside sharded v1 (§17)
  GridNode& n = node(index);
  if (!n.running()) return;
  if (index < down_since_.size()) down_since_[index] = sim_.now().sec();
  net_->set_alive(n.addr(), false);
  n.crash();
}

void GridSystem::restart_node(std::size_t index) {
  PGRID_EXPECTS(!sharded_mode());
  GridNode& n = node(index);
  if (n.running()) return;
  if (index < down_since_.size()) down_since_[index] = -1.0;
  net_->set_alive(n.addr(), true);
  n.restart(find_bootstrap(index));
}

bool GridSystem::node_running(std::size_t index) const {
  return nodes_.at(index)->running();
}

void GridSystem::enable_churn(const sim::ChurnModel& model) {
  PGRID_EXPECTS(!sharded_mode());
  build();
  churn_ = std::make_unique<sim::FailureInjector>(
      sim_, rng_.fork(4), model, nodes_.size(),
      [this](std::size_t i) { crash_node(i); },
      [this](std::size_t i) { restart_node(i); });
  churn_->start();
}

bool GridSystem::write_observability() const {
  bool ok = true;
  if (trace_ != nullptr) {
    if (!config_.obs.chrome_trace_path.empty()) {
      ok &= trace_->export_chrome_trace(config_.obs.chrome_trace_path);
    }
    if (!config_.obs.jsonl_path.empty()) {
      ok &= trace_->export_jsonl(config_.obs.jsonl_path);
    }
  }
  if (sampler_ != nullptr && !config_.obs.timeseries_csv_path.empty()) {
    ok &= sampler_->export_csv(config_.obs.timeseries_csv_path);
  }
  if (registry_ != nullptr && !config_.obs.metrics_csv_path.empty()) {
    ok &= registry_->export_csv(config_.obs.metrics_csv_path);
  }
  return ok;
}

obs::MemoryAccountant GridSystem::memory_breakdown() const {
  obs::MemoryAccountant acc;
  acc.add(obs::MemClass::kSimEvents,
          engine_ != nullptr ? engine_->memory_bytes() : sim_.memory_bytes());
  acc.add(obs::MemClass::kMessagePool, net::MessagePool::stats().memory_bytes());
  for (const auto& n : nodes_) n->account_memory(acc);
  // Clients: the pending-job map is grid bookkeeping; their RPC slabs are
  // folded into the same estimate (small next to the node-side slabs).
  for (const auto& c : clients_) {
    acc.add(obs::MemClass::kGridState, c->memory_bytes());
  }
  if (trace_ != nullptr) {
    acc.add(obs::MemClass::kTraceRing, trace_->memory_bytes());
  }
  std::size_t metrics_bytes = collector_.memory_bytes();
  for (const auto& c : shard_collectors_) metrics_bytes += c->memory_bytes();
  if (registry_ != nullptr) metrics_bytes += registry_->memory_bytes();
  if (sampler_ != nullptr) metrics_bytes += sampler_->memory_bytes();
  acc.add(obs::MemClass::kMetrics, metrics_bytes);
  return acc;
}

GridNodeStats GridSystem::aggregate_node_stats() const {
  GridNodeStats total;
  for (const auto& n : nodes_) {
    const GridNodeStats& s = n->stats();
    total.jobs_executed += s.jobs_executed;
    total.jobs_killed_quota += s.jobs_killed_quota;
    total.quota_rejects += s.quota_rejects;
    total.dispatch_rejects += s.dispatch_rejects;
    total.owner_recoveries += s.owner_recoveries;
    total.run_recoveries += s.run_recoveries;
    total.can_pushes += s.can_pushes;
    total.can_forwards += s.can_forwards;
    total.walks_started += s.walks_started;
    total.walks_failed += s.walks_failed;
    total.fp_evictions += s.fp_evictions;
    total.fn_evictions += s.fn_evictions;
    total.owner_audit_repairs += s.owner_audit_repairs;
    for (double x : s.detection_latency.values()) {
      total.detection_latency.add(x);
    }
  }
  return total;
}

std::vector<std::size_t> GridSystem::correlated_victims(double fraction,
                                                        double start_u) const {
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->running()) live.push_back(i);
  }
  if (live.empty()) return {};
  if (uses_can(config_.kind)) {
    // A run of nodes sorted by the first rep-point coordinate is a slab of
    // the CAN space: zones of coordinate-adjacent nodes are adjacent.
    std::sort(live.begin(), live.end(), [this](std::size_t a, std::size_t b) {
      const double pa = nodes_[a]->can()->rep_point()[0];
      const double pb = nodes_[b]->can()->rep_point()[0];
      if (pa != pb) return pa < pb;
      return nodes_[a]->id() < nodes_[b]->id();
    });
  } else {
    // GUID order: a contiguous run is a contiguous arc of the Chord ring.
    std::sort(live.begin(), live.end(), [this](std::size_t a, std::size_t b) {
      return nodes_[a]->id() < nodes_[b]->id();
    });
  }
  auto count = static_cast<std::size_t>(
      static_cast<double>(live.size()) * fraction + 0.5);
  count = std::min(count, live.size());
  if (count == 0) return {};
  std::size_t start = static_cast<std::size_t>(
      start_u * static_cast<double>(live.size()));
  if (start >= live.size()) start = live.size() - 1;
  std::vector<std::size_t> victims;
  victims.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    victims.push_back(live[(start + k) % live.size()]);
  }
  return victims;
}

}  // namespace pgrid::grid
