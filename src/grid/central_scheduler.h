#pragma once
// The paper's comparison target: "a centralized scheme that uses knowledge
// of the status of all nodes and jobs ... very expensive to implement in a
// decentralized P2P system, but serves as a target for achieving the best
// possible load balance" (§3.3). Reads node state directly (zero message
// cost, zero staleness), plus a random-eligible baseline.

#include <vector>

#include "chord/peer.h"
#include "common/rng.h"
#include "grid/resources.h"

namespace pgrid::grid {

class GridNode;
using chord::Peer;

class CentralScheduler {
 public:
  void register_node(GridNode* node);

  /// Record an assignment that is still in flight toward its run node, so
  /// simultaneous placements do not all pick the same "idle" node. Entries
  /// expire once the dispatch has certainly landed in the target's queue.
  void note_assignment(std::uint32_t node_index, double runtime_sec,
                       double expiry_sec);

  /// The eligible live node with the least remaining work — queued plus
  /// in-flight as of `now_sec` (best possible online placement); invalid if
  /// nothing eligible.
  [[nodiscard]] Peer pick_least_loaded(const Constraints& c,
                                       double now_sec) const;

  /// A uniformly random eligible live node.
  [[nodiscard]] Peer pick_random(const Constraints& c, Rng& rng) const;

  /// True iff some live node satisfies the constraints.
  [[nodiscard]] bool any_satisfies(const Constraints& c) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

 private:
  [[nodiscard]] double in_flight_work(std::size_t index) const;

  struct InFlight {
    double runtime_sec;
    double expiry_sec;
  };

  std::vector<GridNode*> nodes_;
  mutable std::vector<std::vector<InFlight>> in_flight_;
  /// Eligible-node scratch for pick_random: reused across calls so the
  /// random matchmaker's steady state allocates nothing per placement.
  mutable std::vector<GridNode*> eligible_scratch_;
};

}  // namespace pgrid::grid
