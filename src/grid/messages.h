#pragma once
// Desktop-grid protocol messages, following Fig. 1:
//   client --SubmitJob--> injection node --JobToOwner--> owner node
//   owner --DispatchJob--> run node (FIFO queue)
//   run --Heartbeat--> owner (soft state, both directions of failure
//   detection), run --Result--> client, run --JobDone--> owner,
//   run --OwnerHandoff--> new owner when the old owner dies.

#include <cstdint>

#include "chord/peer.h"
#include "grid/job.h"
#include "net/message.h"

namespace pgrid::grid {

using chord::Peer;
using chord::kNoPeer;

enum MsgType : std::uint16_t {
  kSubmitJob = net::kTagGridBase + 0,
  kSubmitAck = net::kTagGridBase + 1,
  kJobToOwner = net::kTagGridBase + 2,
  kJobToOwnerAck = net::kTagGridBase + 3,
  kDispatchJob = net::kTagGridBase + 4,
  kDispatchResp = net::kTagGridBase + 5,
  kHeartbeat = net::kTagGridBase + 6,
  kHeartbeatAck = net::kTagGridBase + 7,
  kJobDone = net::kTagGridBase + 8,
  kResult = net::kTagGridBase + 9,
  kOwnerHandoff = net::kTagGridBase + 10,
  kOwnerHandoffAck = net::kTagGridBase + 11,
  kJobFailed = net::kTagGridBase + 12,
  kWalkProbe = net::kTagGridBase + 13,
  kWalkResult = net::kTagGridBase + 14,
};

inline constexpr std::size_t kProfileWireBytes = 96;

struct SubmitJob final : net::Message {
  static constexpr std::uint16_t kType = kSubmitJob;
  explicit SubmitJob(JobProfile p) : Message(kType), profile(p) {}
  JobProfile profile;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return kProfileWireBytes;
  }
  PGRID_MESSAGE_CLONE(SubmitJob)
};

struct SubmitAck final : net::Message {
  static constexpr std::uint16_t kType = kSubmitAck;
  SubmitAck() : Message(kType) {}
  PGRID_MESSAGE_CLONE(SubmitAck)
};

/// Job in flight toward (or between) owner nodes. Carries the remaining
/// budget of the RN random walk / CAN pushes and the overlay hops so far,
/// so the final owner can report injection cost.
struct JobToOwner final : net::Message {
  static constexpr std::uint16_t kType = kJobToOwner;
  explicit JobToOwner(JobProfile p) : Message(kType), profile(p) {}
  JobProfile profile;
  std::uint32_t walk_remaining = 0;   // RN-Tree limited random walk budget
  std::uint32_t push_remaining = 0;   // CAN-push budget
  std::uint32_t forward_remaining = 0;  // CAN "no local candidate" budget
  std::uint32_t hops = 0;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return kProfileWireBytes + 16;
  }
  PGRID_MESSAGE_CLONE(JobToOwner)
};

struct JobToOwnerAck final : net::Message {
  static constexpr std::uint16_t kType = kJobToOwnerAck;
  JobToOwnerAck() : Message(kType) {}
  PGRID_MESSAGE_CLONE(JobToOwnerAck)
};

struct DispatchJob final : net::Message {
  static constexpr std::uint16_t kType = kDispatchJob;
  DispatchJob(JobProfile p, Peer o) : Message(kType), profile(p), owner(o) {}
  JobProfile profile;
  Peer owner;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return kProfileWireBytes + 12;
  }
  PGRID_MESSAGE_CLONE(DispatchJob)
};

struct DispatchResp final : net::Message {
  static constexpr std::uint16_t kType = kDispatchResp;
  DispatchResp(bool a, double q) : Message(kType), accepted(a), queue_len(q) {}
  bool accepted;
  double queue_len;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 9;
  }
  PGRID_MESSAGE_CLONE(DispatchResp)
};

/// Run node -> owner, periodically, for every job in the queue (§2: "the
/// run node must generate heartbeat messages for every job in its job
/// queue, including jobs that are not yet running").
struct Heartbeat final : net::Message {
  static constexpr std::uint16_t kType = kHeartbeat;
  Heartbeat(Guid g, std::uint32_t gen) : Message(kType), guid(g), generation(gen) {}
  Guid guid;
  std::uint32_t generation;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(Heartbeat)
};

struct HeartbeatAck final : net::Message {
  static constexpr std::uint16_t kType = kHeartbeatAck;
  explicit HeartbeatAck(bool k) : Message(kType), known(k) {}
  /// False: the owner has no record of this job (it must be re-handed off).
  bool known;
  PGRID_MESSAGE_CLONE(HeartbeatAck)
};

struct JobDone final : net::Message {
  static constexpr std::uint16_t kType = kJobDone;
  JobDone(Guid g, std::uint32_t gen) : Message(kType), guid(g), generation(gen) {}
  Guid guid;
  std::uint32_t generation;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(JobDone)
};

/// Run node -> client: result pointer/payload (Fig. 1 step 6). Output data
/// sizes are "correspondingly small" (KBs) per §2.
struct Result final : net::Message {
  static constexpr std::uint16_t kType = kResult;
  Result(std::uint64_t s, std::uint32_t g) : Message(kType), seq(s), generation(g) {}
  std::uint64_t seq;
  std::uint32_t generation;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 2048;  // a few KB of output data
  }
  PGRID_MESSAGE_CLONE(Result)
};

/// Run node -> new owner after the previous owner died: re-replicate the
/// job profile so monitoring can resume (§2 failure recovery).
struct OwnerHandoff final : net::Message {
  static constexpr std::uint16_t kType = kOwnerHandoff;
  OwnerHandoff(JobProfile p, Peer r) : Message(kType), profile(p), run_node(r) {}
  JobProfile profile;
  Peer run_node;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return kProfileWireBytes + 12;
  }
  PGRID_MESSAGE_CLONE(OwnerHandoff)
};

struct OwnerHandoffAck final : net::Message {
  static constexpr std::uint16_t kType = kOwnerHandoffAck;
  OwnerHandoffAck() : Message(kType) {}
  PGRID_MESSAGE_CLONE(OwnerHandoffAck)
};

/// TTL-bounded random-walk resource probe (the related-work baseline of
/// §4, e.g. Iamnitchi & Foster): forwarded to a random overlay neighbor
/// until a node satisfying the constraints is found or the TTL expires.
struct WalkProbe final : net::Message {
  static constexpr std::uint16_t kType = kWalkProbe;
  WalkProbe(std::uint64_t id, Peer init, Constraints c, std::uint32_t t)
      : Message(kType), probe_id(id), initiator(init), constraints(c), ttl(t) {}
  std::uint64_t probe_id;
  Peer initiator;
  Constraints constraints;
  std::uint32_t ttl;
  std::uint32_t hops = 0;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + 8 + 28 + 8;
  }
  PGRID_MESSAGE_CLONE(WalkProbe)
};

struct WalkResult final : net::Message {
  static constexpr std::uint16_t kType = kWalkResult;
  WalkResult(std::uint64_t id, bool f, Peer n, double l, std::uint32_t h)
      : Message(kType), probe_id(id), found(f), node(n), load(l), hops(h) {}
  std::uint64_t probe_id;
  bool found;
  Peer node;
  double load;
  std::uint32_t hops;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 33;
  }
  PGRID_MESSAGE_CLONE(WalkResult)
};

/// Owner -> client: matchmaking gave up on this generation. The client
/// resubmits immediately (new GUID / virtual coordinate) instead of waiting
/// for its deadline timer.
struct JobFailed final : net::Message {
  static constexpr std::uint16_t kType = kJobFailed;
  JobFailed(std::uint64_t s, std::uint32_t g)
      : Message(kType), seq(s), generation(g) {}
  std::uint64_t seq;
  std::uint32_t generation;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12;
  }
  PGRID_MESSAGE_CLONE(JobFailed)
};

}  // namespace pgrid::grid
