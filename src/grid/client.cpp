#include "grid/client.h"

#include <utility>

namespace pgrid::grid {

Client::Client(net::Network& network, ClientConfig config,
               metrics::Collector* collector, Rng rng)
    : net_(network),
      rpc_(network, network.add_handler(this)),
      config_(config),
      collector_(collector),
      rng_(rng) {
  PGRID_EXPECTS(collector != nullptr);
}

void Client::set_injection_pool(std::vector<net::NodeAddr> pool) {
  PGRID_EXPECTS(!pool.empty());
  pool_ = std::move(pool);
}

void Client::schedule_job(std::uint64_t seq, double arrival_sec,
                          const Constraints& constraints, double runtime_sec,
                          double declared_runtime_sec, double output_kb) {
  ++scheduled_;
  net_.simulator().schedule_at(
      sim::SimTime::seconds(arrival_sec),
      [this, seq, constraints, runtime_sec, declared_runtime_sec, output_kb] {
        PendingJob job;
        job.constraints = constraints;
        job.runtime_sec = runtime_sec;
        job.declared_runtime_sec = declared_runtime_sec;
        job.output_kb = output_kb;
        auto [it, inserted] = pending_.emplace(seq, job);
        collector_->on_submit(seq, net_.simulator().now());
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobSubmit, addr(),
                          obs::kNoActor, 0, seq);
#ifndef PGRID_OBS_DISABLED
        // 1-in-N sampled jobs start a root span here; everything the job
        // causes — submission RPCs, matchmaking hops, dispatch, the result —
        // becomes a descendant span of it.
        if (obs::TraceBus* bus = net_.trace(); bus != nullptr) {
          it->second.ctx = bus->maybe_start_trace();
          if (it->second.ctx.sampled()) {
            bus->record_span(obs::EventKind::kSpanBegin, it->second.ctx,
                             addr(), obs::kNoActor, 0, seq);
          }
        }
#endif
        submit(seq, config_.submit_retries);
        arm_deadline(seq);
      });
}

JobProfile Client::make_profile(std::uint64_t seq, PendingJob& job) {
  // One interned statics block per submission; every downstream copy of the
  // profile (messages, owner/run records) shares it by refcount.
  auto statics = std::make_shared<JobStatics>();
  statics->constraints = job.constraints;
  statics->runtime_sec = job.runtime_sec;
  statics->declared_runtime_sec = job.declared_runtime_sec;
  statics->output_kb = job.output_kb;
  // A fresh virtual coordinate per submission: the paper's cluster-breaking
  // randomization for CAN job placement (§3.2).
  statics->can_coords = to_can_point(job.constraints, rng_.uniform());
  JobProfile profile;
  profile.seq = seq;
  profile.generation = job.generation;
  profile.guid = JobProfile::derive_guid(seq, job.generation);
  profile.client = addr();
  profile.statics = std::move(statics);
  return profile;
}

void Client::submit(std::uint64_t seq, int retries_left) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
#ifndef PGRID_OBS_DISABLED
  // Submissions (and deadline-fired resubmissions, which arrive here from a
  // bare timer) run under the job's root span so the SubmitJob message and
  // the whole cascade behind it join the sampled trace.
  obs::SpanScope submit_scope(net_.trace(), it->second.ctx);
#endif
  const net::NodeAddr injection = pool_[rng_.index(pool_.size())];
  auto msg = std::make_unique<SubmitJob>(make_profile(seq, it->second));
  rpc_.call(injection, std::move(msg), config_.rpc_timeout,
            [this, seq, retries_left](net::MessagePtr reply) {
              if (reply != nullptr) return;  // accepted by the injection node
              if (retries_left > 0) {
                submit(seq, retries_left - 1);  // try another node
              }
              // Out of retries: the resubmission deadline is the backstop.
            });
}

void Client::arm_deadline(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  double wait = config_.resubmit_base_sec +
                config_.resubmit_runtime_factor * it->second.runtime_sec;
  if (config_.resubmit_jitter > 0.0) {
    wait *= rng_.uniform(1.0, 1.0 + config_.resubmit_jitter);
  }
  it->second.deadline_event = net_.simulator().schedule_in(
      sim::SimTime::seconds(wait), [this, seq] { on_deadline(seq); });
}

void Client::on_deadline(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  it->second.deadline_event = sim::kInvalidEvent;
  if (it->second.generation + 1 >= config_.max_generations) {
    finish(seq, /*completed_ok=*/false);
    return;
  }
  ++it->second.generation;
  collector_->on_resubmit(seq);
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobResubmit, addr(),
                    obs::kNoActor, 1, seq,
                    static_cast<double>(it->second.generation));
  submit(seq, config_.submit_retries);
  arm_deadline(seq);
}

void Client::finish(std::uint64_t seq, bool completed_ok) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  net_.simulator().cancel(it->second.deadline_event);
#ifndef PGRID_OBS_DISABLED
  if (it->second.ctx.sampled()) {
    if (obs::TraceBus* bus = net_.trace(); bus != nullptr) {
      bus->record_span(obs::EventKind::kSpanEnd, it->second.ctx, addr(),
                       obs::kNoActor, 0, seq, completed_ok ? 1.0 : 0.0);
    }
  }
#endif
  pending_.erase(it);
  if (completed_ok) {
    ++completed_;
  } else {
    ++abandoned_;
  }
  if (on_terminal) on_terminal();
  if (on_job_terminal) on_job_terminal(seq, completed_ok);
}

void Client::on_message(net::NodeAddr /*from*/, net::MessagePtr msg) {
  if (rpc_.consume_reply(msg)) return;
  if (msg->type() == kJobFailed) {
    // Matchmaking gave up on the current generation: resubmit now rather
    // than waiting for the deadline timer.
    const auto* m = net::msg_cast<JobFailed>(msg.get());
    auto it = pending_.find(m->seq);
    if (it == pending_.end() || it->second.generation != m->generation) {
      return;  // stale failure for an already-resolved generation
    }
    net_.simulator().cancel(it->second.deadline_event);
    it->second.deadline_event = sim::kInvalidEvent;
    if (it->second.generation + 1 >= config_.max_generations) {
      finish(m->seq, /*completed_ok=*/false);
      return;
    }
    ++it->second.generation;
    collector_->on_resubmit(m->seq);
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobResubmit, addr(),
                      obs::kNoActor, 2, m->seq,
                      static_cast<double>(it->second.generation));
    submit(m->seq, config_.submit_retries);
    arm_deadline(m->seq);
    return;
  }
  if (msg->type() != kResult) return;
  const auto* m = net::msg_cast<Result>(msg.get());
  // Duplicate results (re-executed jobs, network duplication) are accepted
  // once; later copies find no pending entry and are dropped.
  if (pending_.find(m->seq) == pending_.end()) {
    ++duplicate_results_;
    return;
  }
  collector_->on_completed(m->seq, net_.simulator().now());
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobResult, addr(),
                    obs::kNoActor, 0, m->seq);
  finish(m->seq, /*completed_ok=*/true);
}

}  // namespace pgrid::grid
