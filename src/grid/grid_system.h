#pragma once
// GridSystem: assembles a complete desktop grid experiment — simulator,
// network, nodes (with the overlay the chosen matchmaker needs), clients,
// workload schedule, optional churn — and runs it to completion.
//
// This is the library's main entry point: every bench and example builds a
// GridConfig + Workload, runs a GridSystem, and reads the Collector.

#include <atomic>
#include <memory>
#include <vector>

#include "grid/central_scheduler.h"
#include "grid/client.h"
#include "grid/grid_node.h"
#include "metrics/metrics.h"
#include "net/network.h"
#include "obs/memory.h"
#include "obs/obs_config.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "net/shard_bus.h"
#include "obs/trace.h"
#include "sim/failure.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace pgrid::grid {

struct GridConfig {
  MatchmakerKind kind = MatchmakerKind::kCentralized;
  net::LatencyModel latency{};
  double loss_probability = 0.0;
  GridNodeConfig node;
  ClientConfig client;
  std::uint64_t seed = 1;
  /// Safety horizon past the last arrival (jobs that have not terminated by
  /// then are counted as lost).
  double horizon_slack_sec = 20000.0;
  /// Slow down overlay maintenance (no-churn experiments): same behavior,
  /// far fewer simulation events.
  bool light_maintenance = false;
  /// Maintenance batching (DESIGN.md §16): coalesce same-destination
  /// maintenance traffic (heartbeats, chord probes, CAN refresh) into one
  /// wire message per node pair per round, and decimate quiet CAN
  /// neighbor contacts by batching.quiet_stride. Default off: fixed-seed
  /// outputs are byte-identical to pre-batching builds. Fanned out to every
  /// protocol layer in build().
  net::BatchingConfig batching;
  /// Skip the automatic arrival-time schedule: jobs are released through
  /// submit_job() instead (used by the DAG runner, §5 future work).
  bool manual_submission = false;
  /// Inject a stats-only liveness oracle into every node so eviction
  /// decisions can be classified as false positives / late detections
  /// (GridNodeStats::fp_evictions etc.). Purely observational.
  bool track_liveness = false;
  /// Observability: event tracing, time-series sampling, output paths.
  obs::ObsConfig obs;
  /// Sharded execution (DESIGN.md §17): 0 (default) runs the sequential
  /// engine, byte-identical to builds without the feature; N >= 1 partitions
  /// nodes into N contiguous Guid-order arcs, each on its own worker thread,
  /// synchronized by conservative-lookahead windows. Sharded outputs are a
  /// deterministic function of (seed, config) — the same for every N — but
  /// differ from the sequential engine's (the shared-RNG draw order cannot
  /// be parallelized); aggregate invariants (completions, event counts)
  /// match. Sharded v1 carries the steady-state plane only: overlay
  /// matchmakers, no churn/crash/restart, no fault plane, no trace/sampler.
  std::size_t shards = 0;
};

class GridSystem {
 public:
  GridSystem(GridConfig config, workload::Workload workload);
  ~GridSystem();

  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Construct nodes and clients, wire overlays instantly, schedule jobs.
  void build();

  /// Run the experiment to completion (all jobs terminal) or the horizon.
  void run();

  /// Advance simulated time by `sec` (builds first if needed).
  void run_for(double sec);

  /// Release workload job `seq` for submission `delay_sec` from now
  /// (manual_submission mode).
  void submit_job(std::uint64_t seq, double delay_sec = 0.0);

  /// Count a job that will never be submitted (e.g. cancelled by the DAG
  /// runner after a parent failed) toward run() termination.
  void mark_external_terminal() { ++terminal_jobs_; }

  [[nodiscard]] bool finished() const noexcept {
    return built_ &&
           terminal_jobs_.load(std::memory_order_relaxed) >=
               workload_.jobs.size();
  }

  /// Crash / restart a grid node (overlays rejoin through a live peer).
  void crash_node(std::size_t index);
  void restart_node(std::size_t index);
  [[nodiscard]] bool node_running(std::size_t index) const;

  /// Topology-correlated victim set: `fraction` of the live nodes that are
  /// contiguous in overlay order — a Chord arc (GUID order) for ring kinds,
  /// a coordinate slab (first rep-point dimension) for CAN kinds — starting
  /// at position `start_u` ∈ [0,1) of that order. Deterministic given the
  /// current membership; draws no randomness itself.
  [[nodiscard]] std::vector<std::size_t> correlated_victims(
      double fraction, double start_u) const;

  /// Attach continuous churn driven by the failure injector.
  void enable_churn(const sim::ChurnModel& model);
  [[nodiscard]] const sim::FailureInjector* churn() const noexcept {
    return churn_.get();
  }
  /// Mutable access for targeted scenarios (crash bursts, forced crashes).
  [[nodiscard]] sim::FailureInjector* churn() noexcept { return churn_.get(); }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const noexcept {
    return sim_;
  }

  // --- engine-agnostic aggregates (valid in both execution modes) ----------
  [[nodiscard]] bool sharded_mode() const noexcept {
    return config_.shards > 0;
  }
  /// The sharded engine (null in sequential mode).
  [[nodiscard]] sim::ShardedEngine* engine() noexcept { return engine_.get(); }
  [[nodiscard]] std::uint64_t sim_events() const noexcept {
    return engine_ != nullptr ? engine_->executed() : sim_.executed();
  }
  [[nodiscard]] std::size_t sim_queued() const noexcept {
    return engine_ != nullptr ? engine_->queued() : sim_.queued();
  }
  [[nodiscard]] std::size_t sim_queue_peak() const noexcept {
    return engine_ != nullptr ? engine_->queue_high_water()
                              : sim_.queue_high_water();
  }
  [[nodiscard]] std::size_t sim_tombstone_peak() const noexcept {
    return engine_ != nullptr ? engine_->tombstone_high_water()
                              : sim_.tombstone_high_water();
  }
  [[nodiscard]] double now_sec() const noexcept {
    return engine_ != nullptr ? engine_->now().sec() : sim_.now().sec();
  }
  [[nodiscard]] metrics::Collector& collector() noexcept { return collector_; }
  [[nodiscard]] const metrics::Collector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const net::NetworkStats& net_stats() const;
  /// The simulated network (valid after build()); chaos scenarios reach the
  /// fault plane through this.
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] GridNode& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] Client& client(std::size_t index) {
    return *clients_.at(index);
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] const workload::Workload& workload() const noexcept {
    return workload_;
  }
  [[nodiscard]] const GridConfig& config() const noexcept { return config_; }

  /// Aggregate grid-node statistics over all nodes.
  [[nodiscard]] GridNodeStats aggregate_node_stats() const;

  // --- observability --------------------------------------------------------
  /// The run's trace bus (null unless config.obs.trace).
  [[nodiscard]] obs::TraceBus* trace_bus() noexcept { return trace_.get(); }
  /// The run's sampler (null unless config.obs.sample_period_sec > 0).
  [[nodiscard]] obs::TimeSeriesSampler* sampler() noexcept {
    return sampler_.get();
  }
  /// The run's metrics registry (null unless the sampler or the metrics CSV
  /// is enabled).
  [[nodiscard]] obs::MetricsRegistry* registry() noexcept {
    return registry_.get();
  }
  [[nodiscard]] const obs::RunProfile& profile() const noexcept {
    return profile_;
  }

  /// Per-subsystem byte breakdown of the whole system right now: simulator
  /// event pool, message-pool slabs, overlay tables, grid bookkeeping, RPC
  /// pending slabs, trace ring, metrics storage. Pure observation — walks
  /// capacity snapshots, touches nothing hot.
  [[nodiscard]] obs::MemoryAccountant memory_breakdown() const;

  /// Write the artifacts named in config.obs (Chrome trace, JSONL,
  /// time-series CSV). Returns false if any configured write failed.
  bool write_observability() const;

 private:
  [[nodiscard]] Peer find_bootstrap(std::size_t excluding) const;
  void register_builtin_metrics();
  void build_sharded(const GridNodeConfig& node_config);
  /// Rebuild collector_ from the per-shard collectors (sharded mode; no-op
  /// sequentially). Idempotent — called after every run()/run_for() leg.
  void merge_shard_metrics();

  GridConfig config_;
  workload::Workload workload_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  // Sharded mode: the engine's per-shard Simulators/Networks/Collectors
  // replace sim_/net_/direct collector writes; collector_ holds the merged
  // view after run(), merged_stats_ the summed NetworkStats on demand.
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::unique_ptr<net::ShardBus> bus_;
  std::vector<std::unique_ptr<net::Network>> shard_nets_;
  std::vector<std::unique_ptr<metrics::Collector>> shard_collectors_;
  mutable net::NetworkStats merged_stats_;
  metrics::Collector collector_;
  CentralScheduler central_;
  Rng rng_;
  std::vector<std::unique_ptr<GridNode>> nodes_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<sim::FailureInjector> churn_;
  std::unique_ptr<obs::TraceBus> trace_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  /// Per-sample cache for the mem/<class> gauges: seven gauges share one
  /// memory_breakdown() walk per sampling instant.
  struct MemGaugeCache {
    std::int64_t t_ns = -1;
    obs::MemoryAccountant acc;
  };
  mutable MemGaugeCache mem_cache_;
  obs::RunProfile profile_;
  bool owns_log_clock_ = false;
  /// Atomic: client on_terminal callbacks fire on shard worker threads in
  /// sharded mode (relaxed increments commute; sequential cost is nil).
  std::atomic<std::uint64_t> terminal_jobs_{0};
  /// Ground-truth liveness ledger for the injected oracle: seconds at which
  /// each node address went down, or -1 while it is up. Maintained on every
  /// crash/restart (cheap assignments; consulted only via the oracle).
  std::vector<double> down_since_;
  double last_arrival_sec_ = 0.0;
  double latest_release_sec_ = 0.0;
  bool built_ = false;
};

/// Reduce overlay maintenance rates for static-membership experiments.
void apply_light_maintenance(GridNodeConfig* config);

}  // namespace pgrid::grid
