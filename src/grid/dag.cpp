#include "grid/dag.h"

#include <algorithm>
#include <deque>

namespace pgrid::grid {

DagRunner::DagRunner(GridSystem& system, std::vector<DagEdge> edges)
    : system_(system), job_count_(system.workload().jobs.size()) {
  PGRID_EXPECTS(system.config().manual_submission);
  children_.resize(job_count_);
  pending_parents_.assign(job_count_, 0);
  depth_.assign(job_count_, 0);
  terminal_.assign(job_count_, false);

  for (const DagEdge& e : edges) {
    PGRID_EXPECTS(e.parent < job_count_ && e.child < job_count_);
    PGRID_EXPECTS(e.parent != e.child);
    children_[e.parent].push_back(e.child);
    ++pending_parents_[e.child];
  }

  // Kahn's algorithm: verifies acyclicity and computes depths in one pass.
  std::vector<std::uint32_t> remaining = pending_parents_;
  std::deque<std::uint64_t> ready;
  for (std::uint64_t j = 0; j < job_count_; ++j) {
    if (remaining[j] == 0) ready.push_back(j);
  }
  std::uint64_t visited = 0;
  while (!ready.empty()) {
    const std::uint64_t j = ready.front();
    ready.pop_front();
    ++visited;
    for (std::uint64_t c : children_[j]) {
      depth_[c] = std::max(depth_[c], depth_[j] + 1);
      if (--remaining[c] == 0) ready.push_back(c);
    }
  }
  PGRID_EXPECTS(visited == job_count_);  // otherwise the edge set has a cycle

  // Hook every client's terminal notifications.
  system_.build();
  for (std::size_t c = 0; c < system_.client_count(); ++c) {
    system_.client(c).on_job_terminal = [this](std::uint64_t seq, bool ok) {
      on_terminal(seq, ok);
    };
  }
}

void DagRunner::start() {
  PGRID_EXPECTS(!started_);
  started_ = true;
  for (std::uint64_t j = 0; j < job_count_; ++j) {
    if (pending_parents_[j] == 0) {
      ++released_;
      system_.submit_job(j);
    }
  }
}

void DagRunner::on_terminal(std::uint64_t seq, bool ok) {
  if (seq >= job_count_ || terminal_[seq]) return;
  terminal_[seq] = true;
  if (!ok) {
    ++failed_;
    cancel_descendants(seq);
    return;
  }
  ++completed_;
  for (std::uint64_t child : children_[seq]) {
    if (terminal_[child] || pending_parents_[child] == 0) continue;
    if (--pending_parents_[child] == 0) {
      ++released_;
      system_.submit_job(child);
    }
  }
}

void DagRunner::cancel_descendants(std::uint64_t seq) {
  // BFS: everything reachable from the failed job will never run.
  std::deque<std::uint64_t> frontier{children_[seq].begin(),
                                     children_[seq].end()};
  while (!frontier.empty()) {
    const std::uint64_t j = frontier.front();
    frontier.pop_front();
    if (terminal_[j]) continue;
    terminal_[j] = true;
    ++cancelled_;
    system_.mark_external_terminal();
    for (std::uint64_t c : children_[j]) frontier.push_back(c);
  }
}

}  // namespace pgrid::grid
