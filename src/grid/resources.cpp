#include "grid/resources.h"

#include <algorithm>
#include <cstdio>

#include "common/expects.h"

namespace pgrid::grid {

std::string ResourceVector::str() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{cpu=%.1fGHz mem=%.1fGB disk=%.0fGB}", v[0],
                v[1], v[2]);
  return buf;
}

std::string Constraints::str() const {
  std::string out = "{";
  const char* names[] = {"cpu", "mem", "disk"};
  char buf[48];
  bool first = true;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    if (!active[r]) continue;
    std::snprintf(buf, sizeof buf, "%s%s>=%.1f", first ? "" : " ", names[r],
                  min[r]);
    out += buf;
    first = false;
  }
  return out + "}";
}

const std::vector<double>& ResourceLadder::values(std::size_t r) {
  PGRID_EXPECTS(r < kNumResources);
  static const std::vector<double> cpu{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  static const std::vector<double> mem{0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  static const std::vector<double> disk{20.0, 50.0, 100.0, 200.0, 500.0};
  switch (static_cast<Resource>(r)) {
    case Resource::kCpu: return cpu;
    case Resource::kMemory: return mem;
    case Resource::kDisk: return disk;
  }
  return cpu;  // unreachable
}

double ResourceLadder::to_unit(std::size_t r, double value) {
  const auto& ladder = values(r);
  // Rank of the largest step <= value; below the ladder maps near 0.
  const auto it = std::upper_bound(ladder.begin(), ladder.end(), value);
  const auto rank = static_cast<double>(it - ladder.begin());  // in [0, n]
  const auto n = static_cast<double>(ladder.size());
  // (rank - 0.5) / n for on-ladder values; clamp into [0, 1).
  const double unit = (rank - 0.5) / n;
  return std::clamp(unit, 0.0, 1.0 - 1e-9);
}

double ResourceLadder::from_unit(std::size_t r, double unit) {
  const auto& ladder = values(r);
  const auto n = static_cast<double>(ladder.size());
  auto idx = static_cast<std::size_t>(unit * n);
  if (idx >= ladder.size()) idx = ladder.size() - 1;
  return ladder[idx];
}

rntree::Caps to_rn_caps(const ResourceVector& caps) noexcept {
  rntree::Caps out{};
  for (std::size_t r = 0; r < kNumResources; ++r) out[r] = caps.v[r];
  return out;
}

rntree::Query to_rn_query(const Constraints& c) noexcept {
  rntree::Query q;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    q.constrained[r] = c.active[r];
    q.min[r] = c.min[r];
  }
  return q;
}

can::Point to_can_point(const ResourceVector& caps, double virtual_coord) {
  PGRID_EXPECTS(virtual_coord >= 0.0 && virtual_coord < 1.0);
  can::Point p(kCanDims);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    p[r] = ResourceLadder::to_unit(r, caps.v[r]);
  }
  p[kVirtualDim] = virtual_coord;
  return p;
}

can::Point to_can_point(const Constraints& c, double virtual_coord) {
  PGRID_EXPECTS(virtual_coord >= 0.0 && virtual_coord < 1.0);
  can::Point p(kCanDims);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    p[r] = c.active[r] ? ResourceLadder::to_unit(r, c.min[r]) : 0.0;
  }
  p[kVirtualDim] = virtual_coord;
  return p;
}

bool can_point_satisfies(const can::Point& node_point,
                         const can::Point& job_point,
                         const Constraints& c) noexcept {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    if (c.active[r] && node_point[r] < job_point[r]) return false;
  }
  return true;
}

}  // namespace pgrid::grid
