#pragma once
// A job-submitting user (Fig. 1 "Clients"). Submits jobs at their workload
// arrival times through randomly chosen injection nodes, collects results,
// and resubmits jobs that silently disappear (the §2 backstop: "if both the
// owner and run node fail before the recovery protocol completes, the
// client must resubmit the job").

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.h"
#include "grid/job.h"
#include "grid/messages.h"
#include "metrics/metrics.h"
#include "net/network.h"
#include "net/rpc.h"
#include "obs/trace_context.h"
#include "sim/simulator.h"

namespace pgrid::grid {

struct ClientConfig {
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  /// Resubmission deadline = (base + factor * expected runtime) scaled by
  /// U(1, 1 + resubmit_jitter). Without jitter, jobs lost to one mass
  /// failure all resubmit in the same instant — a thundering herd aimed at
  /// the surviving matchmakers.
  double resubmit_base_sec = 120.0;
  double resubmit_runtime_factor = 6.0;
  double resubmit_jitter = 0.2;
  /// Give up after this many generations (terminal "abandoned" state).
  std::uint32_t max_generations = 4;
  int submit_retries = 5;
};

class Client final : public net::MessageHandler {
 public:
  Client(net::Network& network, ClientConfig config,
         metrics::Collector* collector, Rng rng);

  /// Nodes usable as injection points (any node in the system).
  void set_injection_pool(std::vector<net::NodeAddr> pool);

  /// Schedule a job submission at `arrival_sec` of simulated time.
  /// `declared_runtime_sec` (0 = honest) and `output_kb` feed the §5 quota
  /// machinery on run nodes.
  void schedule_job(std::uint64_t seq, double arrival_sec,
                    const Constraints& constraints, double runtime_sec,
                    double declared_runtime_sec = 0.0, double output_kb = 2.0);

  void on_message(net::NodeAddr from, net::MessagePtr msg) override;

  /// Invoked whenever a job reaches a terminal state (completed/abandoned).
  std::function<void()> on_terminal;

  /// Invoked with the job's outcome on terminal state; used by the DAG
  /// runner (§5 future work) to release dependent jobs.
  std::function<void(std::uint64_t seq, bool completed_ok)> on_job_terminal;

  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t abandoned() const noexcept { return abandoned_; }
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return scheduled_; }
  /// Result messages for jobs already resolved (duplicate executions,
  /// fault-plane duplication); dropped, but counted for chaos invariants.
  [[nodiscard]] std::uint64_t duplicate_results() const noexcept {
    return duplicate_results_;
  }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }

  /// Bytes behind the pending-job map and the client's RPC slab (memory
  /// accounting; the map estimate includes std::map node overhead).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pending_.size() * (sizeof(std::pair<const std::uint64_t, PendingJob>) +
                              3 * sizeof(void*)) +
           rpc_.memory_bytes();
  }

 private:
  struct PendingJob {
    Constraints constraints;
    double runtime_sec = 0.0;
    double declared_runtime_sec = 0.0;
    double output_kb = 2.0;
    std::uint32_t generation = 0;
    sim::EventId deadline_event = sim::kInvalidEvent;
    /// Root span of this job's sampled trace (unsampled for most jobs):
    /// every submission, retry, and resubmission runs under it, so the whole
    /// matchmaking/dispatch/run cascade hangs off one trace tree.
    obs::TraceContext ctx;
  };

  void submit(std::uint64_t seq, int retries_left);
  void arm_deadline(std::uint64_t seq);
  void on_deadline(std::uint64_t seq);
  void finish(std::uint64_t seq, bool completed_ok);
  [[nodiscard]] JobProfile make_profile(std::uint64_t seq, PendingJob& job);

  net::Network& net_;
  net::RpcEndpoint rpc_;
  ClientConfig config_;
  metrics::Collector* collector_;
  Rng rng_;
  std::vector<net::NodeAddr> pool_;
  std::map<std::uint64_t, PendingJob> pending_;
  std::uint64_t completed_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t duplicate_results_ = 0;
};

}  // namespace pgrid::grid
