#pragma once
// Job dependencies (§5 future work): "if computational scientists also use
// the system for data analysis of results, then the system will have to
// distinguish between job types ... and perform the jobs in the correct
// order (analysis after simulation ...). We will investigate using existing
// software packages, such as Condor's DAGMan."
//
// DagRunner is that DAGMan analogue: it releases a workload's jobs in
// dependency order — a job is submitted only once all its parents have
// completed — and cancels the descendants of permanently failed jobs.

#include <cstdint>
#include <vector>

#include "grid/grid_system.h"

namespace pgrid::grid {

struct DagEdge {
  std::uint64_t parent;
  std::uint64_t child;
};

class DagRunner {
 public:
  /// Takes ownership of job release for `system` (which must be configured
  /// with manual_submission = true). Edges refer to workload job indices;
  /// the edge set must be acyclic (checked).
  DagRunner(GridSystem& system, std::vector<DagEdge> edges);

  /// Submit all root jobs (no parents). Subsequent releases happen
  /// automatically as parents complete.
  void start();

  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  /// Jobs never released because an ancestor failed.
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// True once every job is completed, failed, or cancelled.
  [[nodiscard]] bool finished() const noexcept {
    return completed_ + failed_ + cancelled_ == job_count_;
  }

  /// Topological depth of each job (roots = 0); useful for reporting.
  [[nodiscard]] const std::vector<std::uint32_t>& depths() const noexcept {
    return depth_;
  }

 private:
  void on_terminal(std::uint64_t seq, bool ok);
  void cancel_descendants(std::uint64_t seq);

  GridSystem& system_;
  std::uint64_t job_count_;
  std::vector<std::vector<std::uint64_t>> children_;
  std::vector<std::uint32_t> pending_parents_;
  std::vector<std::uint32_t> depth_;
  std::vector<bool> terminal_;
  std::uint64_t released_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  bool started_ = false;
};

}  // namespace pgrid::grid
