#pragma once
// Resource model: node capabilities and job constraints (§2 "matchmaking").
//
// Three resource types (the paper's experiments constrain "out of the 3"):
// CPU speed (GHz), memory (GB), disk (GB). Capabilities and constraint
// values are drawn from fixed discrete ladders, which also provide the
// monotone quantile normalization used for CAN coordinates: v >= c in real
// units iff unit(v) >= unit(c) in [0,1), so constraint checks can be done in
// either representation.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "can/geometry.h"
#include "rntree/aggregate.h"

namespace pgrid::grid {

inline constexpr std::size_t kNumResources = 3;

enum class Resource : std::size_t { kCpu = 0, kMemory = 1, kDisk = 2 };

/// A node's capability in each resource.
struct ResourceVector {
  std::array<double, kNumResources> v{};

  [[nodiscard]] double cpu() const noexcept { return v[0]; }
  [[nodiscard]] double memory() const noexcept { return v[1]; }
  [[nodiscard]] double disk() const noexcept { return v[2]; }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const ResourceVector&,
                         const ResourceVector&) noexcept = default;
};

/// A job's minimum resource requirements; each resource independently
/// constrained or free (the paper's lightly/heavily-constrained axis).
struct Constraints {
  std::array<double, kNumResources> min{};
  std::array<bool, kNumResources> active{};

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (bool a : active) n += a ? 1 : 0;
    return n;
  }

  [[nodiscard]] bool satisfied_by(const ResourceVector& caps) const noexcept {
    for (std::size_t r = 0; r < kNumResources; ++r) {
      if (active[r] && caps.v[r] < min[r]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Constraints&, const Constraints&) noexcept =
      default;
};

/// Fixed discrete capability ladders per resource.
class ResourceLadder {
 public:
  /// Sorted distinct values a resource can take.
  [[nodiscard]] static const std::vector<double>& values(std::size_t r);

  /// Monotone map into [0,1): rank-based quantile ((i + 0.5) / n for the
  /// i-th ladder step; values between steps interpolate by rank).
  [[nodiscard]] static double to_unit(std::size_t r, double value);

  /// Inverse of to_unit onto the ladder (nearest step).
  [[nodiscard]] static double from_unit(std::size_t r, double unit);
};

// --- conversions to the overlay vocabularies --------------------------------

/// RN-Tree capability slots (first kNumResources slots used).
[[nodiscard]] rntree::Caps to_rn_caps(const ResourceVector& caps) noexcept;

/// RN-Tree query from job constraints.
[[nodiscard]] rntree::Query to_rn_query(const Constraints& c) noexcept;

/// CAN point: normalized real coordinates plus a caller-supplied virtual
/// coordinate (the paper's cluster-breaking virtual dimension).
[[nodiscard]] can::Point to_can_point(const ResourceVector& caps,
                                      double virtual_coord);

/// CAN point for a job: unconstrained resources map to coordinate 0 (the
/// origin corner, per §3.2's "jobs ... with no resource requirements at all
/// ... mapped to the single node that owns the zone containing the origin").
[[nodiscard]] can::Point to_can_point(const Constraints& c,
                                      double virtual_coord);

/// Constraint check in normalized CAN space (consistent with satisfied_by).
[[nodiscard]] bool can_point_satisfies(const can::Point& node_point,
                                       const can::Point& job_point,
                                       const Constraints& c) noexcept;

/// Number of CAN dimensions used by the grid: the real resources plus the
/// virtual dimension.
inline constexpr std::size_t kCanDims = kNumResources + 1;
inline constexpr std::size_t kVirtualDim = kNumResources;

}  // namespace pgrid::grid
