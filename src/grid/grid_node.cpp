#include "grid/grid_node.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "grid/central_scheduler.h"

namespace pgrid::grid {

const char* matchmaker_name(MatchmakerKind kind) noexcept {
  switch (kind) {
    case MatchmakerKind::kCentralized: return "centralized";
    case MatchmakerKind::kRandom: return "random";
    case MatchmakerKind::kRnTree: return "rn-tree";
    case MatchmakerKind::kCanBasic: return "can";
    case MatchmakerKind::kCanPush: return "can-push";
    case MatchmakerKind::kTtlWalk: return "ttl-walk";
  }
  return "?";
}

GridNode::GridNode(net::Network& network, std::uint32_t index, Guid id,
                   ResourceVector caps, double virtual_coord,
                   GridNodeConfig config, CentralScheduler* central,
                   metrics::Collector* collector, Rng rng)
    : net_(network),
      rpc_(network, network.add_handler(this)),
      index_(index),
      id_(id),
      caps_(caps),
      config_(config),
      central_(central),
      collector_(collector),
      rng_(rng) {
  PGRID_EXPECTS(collector_ != nullptr);
  if (uses_chord(config_.kind)) {
    chord_ = std::make_unique<chord::ChordNode>(net_, addr(), id_,
                                                config_.chord, rng_.fork(1));
    if (config_.kind == MatchmakerKind::kRnTree) {
      rn_ = std::make_unique<rntree::RnTreeService>(
          net_, *chord_, config_.rntree,
          [this] {
            return rntree::RnTreeService::LocalInfo{to_rn_caps(caps_),
                                                    queue_length()};
          },
          rng_.fork(2));
    }
  } else if (uses_can(config_.kind)) {
    can::CanConfig can_config = config_.can;
    can_config.dims = kCanDims;
    can_ = std::make_unique<can::CanNode>(net_, addr(), id_,
                                          to_can_point(caps_, virtual_coord),
                                          can_config, rng_.fork(3));
  } else {
    PGRID_EXPECTS(central_ != nullptr);
  }
}

GridNode::~GridNode() = default;

void GridNode::start() {
  running_ = true;
  const auto phase = [&](sim::SimTime period) {
    return sim::SimTime::nanos(rng_.range(0, period.ns() - 1));
  };
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(
      net_.simulator(), config_.heartbeat_period, [this] { do_heartbeats(); },
      phase(config_.heartbeat_period));
  owner_monitor_task_ = std::make_unique<sim::PeriodicTask>(
      net_.simulator(), config_.heartbeat_period,
      [this] { monitor_owned_jobs(); }, phase(config_.heartbeat_period));
  if (config_.audit_period > sim::SimTime::zero()) {
    // Gated before the phase draw: with anti-entropy off, the RNG sequence
    // is untouched and fixed-seed runs stay byte-identical.
    audit_task_ = std::make_unique<sim::PeriodicTask>(
        net_.simulator(), config_.audit_period, [this] { audit_owned_jobs(); },
        phase(config_.audit_period));
  }
  if (rn_) rn_->start();
  update_load_gauge();
}

void GridNode::crash() {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kNodeCrash, addr(),
                    obs::kNoActor, 0, 0, queue_length());
  running_ = false;
  heartbeat_task_.reset();
  owner_monitor_task_.reset();
  audit_task_.reset();
  net_.simulator().cancel(completion_event_);
  completion_event_ = sim::kInvalidEvent;
  executing_ = false;
  queue_.clear();
  owned_.clear();
  for (auto& [id, walk] : pending_walks_) {
    net_.simulator().cancel(walk.timeout_event);
  }
  pending_walks_.clear();
  rpc_.cancel_all();
  if (rn_) rn_->stop();
  if (chord_) chord_->crash();
  if (can_) can_->crash();
}

void GridNode::restart(Peer bootstrap) {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kNodeRestart, addr(),
                    bootstrap.valid() ? static_cast<std::uint32_t>(bootstrap.addr)
                                      : obs::kNoActor);
  if (chord_) {
    if (bootstrap.valid()) {
      chord_->join(bootstrap, nullptr);
    } else {
      chord_->create();
    }
  }
  if (can_) {
    if (bootstrap.valid()) {
      can_->join(bootstrap, nullptr);
    } else {
      can_->create();
    }
  }
  start();
}

double GridNode::queue_length() const noexcept {
  return static_cast<double>(queue_.size());
}

double GridNode::queue_work_remaining() const {
  double work = 0.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (i == 0 && executing_) {
      work += std::max(0.0, executing_end_sec_ - net_.simulator().now().sec());
    } else {
      work += queue_[i].profile.runtime_sec();
    }
  }
  return work;
}

void GridNode::update_load_gauge() {
  if (can_) can_->set_load(queue_length());
}

// --- message dispatch --------------------------------------------------------

void GridNode::on_message(net::NodeAddr from, net::MessagePtr msg) {
  if (chord_ && chord_->handle(from, msg)) return;
  if (rn_ && rn_->handle(from, msg)) return;
  if (can_ && can_->handle(from, msg)) return;
  if (rpc_.consume_reply(msg)) return;
  if (!running_) return;
  switch (msg->type()) {
    case kSubmitJob:
      on_submit(from, msg);
      return;
    case kJobToOwner: {
      const auto* m = net::msg_cast<JobToOwner>(msg.get());
      rpc_.reply(from, *m, std::make_unique<JobToOwnerAck>());
      handle_job_to_owner(m->profile, m->walk_remaining, m->push_remaining,
                          m->forward_remaining, m->hops);
      return;
    }
    case kDispatchJob:
      on_dispatch(from, msg);
      return;
    case kHeartbeat:
      on_heartbeat(from, msg);
      return;
    case kJobDone:
      on_job_done(*net::msg_cast<JobDone>(msg.get()));
      return;
    case kOwnerHandoff:
      on_owner_handoff(from, msg);
      return;
    case kWalkProbe:
      on_walk_probe(msg);
      return;
    case kWalkResult:
      on_walk_result(*net::msg_cast<WalkResult>(msg.get()));
      return;
    default:
      return;  // results go to clients; anything else is stale traffic
  }
}

// --- injection ---------------------------------------------------------------

void GridNode::on_submit(net::NodeAddr from, net::MessagePtr& msg) {
  const auto* m = net::msg_cast<SubmitJob>(msg.get());
  rpc_.reply(from, *m, std::make_unique<SubmitAck>());
  inject(m->profile);
}

void GridNode::inject(const JobProfile& profile) {
  switch (config_.kind) {
    case MatchmakerKind::kCentralized:
    case MatchmakerKind::kRandom:
      // No overlay: the injection node owns the job directly.
      handle_job_to_owner(profile, 0, 0, 0, 0);
      return;
    case MatchmakerKind::kTtlWalk:
      // TTL schemes have no DHT job mapping: the injection node owns the
      // job and probes from there.
      handle_job_to_owner(profile, 0, 0, 0, 0);
      return;
    case MatchmakerKind::kRnTree:
      chord_->lookup(profile.guid, [this, profile](Peer owner, int hops) {
        if (!running_ || !owner.valid()) return;  // client resubmit recovers
        const auto h = static_cast<std::uint32_t>(std::max(hops, 0));
        if (owner.addr == addr()) {
          handle_job_to_owner(profile, config_.rn_walk_len, 0, 0, h);
        } else {
          forward_to_owner(owner, profile, config_.rn_walk_len, 0, 0, h);
        }
      });
      return;
    case MatchmakerKind::kCanBasic:
    case MatchmakerKind::kCanPush: {
      const std::uint32_t push =
          config_.kind == MatchmakerKind::kCanPush ? config_.can_max_push : 0;
      can_->route(profile.can_coords(),
                  [this, profile, push](Peer owner, int hops) {
                    if (!running_ || !owner.valid()) return;
                    const auto h =
                        static_cast<std::uint32_t>(std::max(hops, 0));
                    if (owner.addr == addr()) {
                      handle_job_to_owner(profile, 0, push,
                                          config_.can_forward_budget, h);
                    } else {
                      forward_to_owner(owner, profile, 0, push,
                                       config_.can_forward_budget, h);
                    }
                  });
      return;
    }
  }
}

void GridNode::forward_to_owner(Peer next, const JobProfile& profile,
                                std::uint32_t walk, std::uint32_t push,
                                std::uint32_t forward, std::uint32_t hops) {
  auto msg = std::make_unique<JobToOwner>(profile);
  msg->walk_remaining = walk;
  msg->push_remaining = push;
  msg->forward_remaining = forward;
  msg->hops = hops;
  rpc_.call(next.addr, std::move(msg), config_.rpc_timeout,
            [this, profile](net::MessagePtr reply) {
              if (reply != nullptr || !running_) return;
              // The next owner died with the job in flight: re-inject from
              // scratch (a fresh overlay lookup routes around the corpse).
              inject(profile);
            });
}

void GridNode::handle_job_to_owner(const JobProfile& profile,
                                   std::uint32_t walk, std::uint32_t push,
                                   std::uint32_t forward, std::uint32_t hops) {
  // RN-Tree: limited random walk spreads ownership (§3.1).
  if (walk > 0 && chord_) {
    const Peer next = chord_->random_peer(rng_);
    if (next.valid()) {
      forward_to_owner(next, profile, walk - 1, push, forward, hops + 1);
      return;
    }
  }
  // CAN-push: relocate the job toward underloaded / more capable regions
  // before matchmaking (§3.3 "improved").
  if (push > 0 && can_) {
    std::size_t dim = 0;
    const Peer target = can_push_target(&dim);
    if (target.valid()) {
      ++stats_.can_pushes;
      forward_to_owner(target, profile, walk, push - 1, forward, hops + 1);
      return;
    }
  }
  // CAN basic: if no local candidate can run the job, move toward more
  // capable coordinates (§3.2 "meet or exceed the job's requirements").
  if (can_ && forward > 0 && can_candidates(profile).empty()) {
    const Peer target = can_upward_target(profile);
    if (target.valid()) {
      ++stats_.can_forwards;
      forward_to_owner(target, profile, walk, push, forward - 1, hops + 1);
      return;
    }
  }
  become_owner(profile, hops, forward);
}

std::vector<std::uint64_t> GridNode::owned_seqs() const {
  std::vector<std::uint64_t> out;
  out.reserve(owned_.size());
  for (const auto& [guid, od] : owned_) out.push_back(od.profile.seq);
  return out;
}

std::vector<std::uint64_t> GridNode::queued_seqs() const {
  std::vector<std::uint64_t> out;
  out.reserve(queue_.size());
  for (const QueuedJob& q : queue_) out.push_back(q.profile.seq);
  return out;
}

// --- CAN matchmaking helpers ---------------------------------------------------

std::vector<std::pair<Peer, double>> GridNode::can_candidates(
    const JobProfile& profile) const {
  std::vector<std::pair<Peer, double>> out;
  if (!can_) return out;
  const can::Point& mine = can_->rep_point();
  if (can_point_satisfies(mine, profile.can_coords(), profile.constraints())) {
    out.emplace_back(self_peer(), queue_length());
  }
  for (const auto& [naddr, ns] : can_->neighbors()) {
    if (ns.rep_point.dims() != mine.dims()) continue;  // not yet refreshed
    // §3.2: candidates are "at least as capable as the original owner in
    // all dimensions". We admit *equally* capable neighbors too (split
    // along the virtual dimension): the virtual dimension exists precisely
    // so clusters of identical machines share load, which requires them to
    // be candidates for each other's jobs.
    if (!ns.rep_point.dominates(mine, kNumResources)) continue;
    if (!can_point_satisfies(ns.rep_point, profile.can_coords(),
                             profile.constraints())) {
      continue;
    }
    out.emplace_back(Peer{naddr, ns.id}, ns.load);
  }
  return out;
}

Peer GridNode::can_up_neighbor_in_dim(std::size_t dim) const {
  Peer best = kNoPeer;
  double best_load = std::numeric_limits<double>::infinity();
  for (const auto& [naddr, ns] : can_->neighbors()) {
    bool above = false;
    for (const can::Zone& mz : can_->zones()) {
      for (const can::Zone& oz : ns.zones) {
        if (oz.lo()[dim] == mz.hi()[dim] && mz.abuts(oz)) {
          above = true;
          break;
        }
      }
      if (above) break;
    }
    if (!above) continue;
    if (!best.valid() || ns.load < best_load ||
        (ns.load == best_load && ns.id < best.id)) {
      best = Peer{naddr, ns.id};
      best_load = ns.load;
    }
  }
  return best;
}

Peer GridNode::can_push_target(std::size_t* out_dim) {
  if (!can_) return kNoPeer;
  const double mine = queue_length();
  std::size_t best_dim = kNumResources;
  double best_up = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < kNumResources; ++d) {
    const double up = can_->upstream_load(d);
    if (up >= 0.0 && up < best_up) {
      best_up = up;
      best_dim = d;
    }
  }
  if (best_dim == kNumResources) return kNoPeer;
  const bool overloaded_push =
      mine >= config_.can_push_threshold && best_up < mine - 1.0;
  const bool light_push = mine <= config_.can_light_load &&
                          best_up <= config_.can_light_load &&
                          rng_.bernoulli(0.5);
  if (!overloaded_push && !light_push) return kNoPeer;
  const Peer target = can_up_neighbor_in_dim(best_dim);
  if (target.valid() && out_dim != nullptr) *out_dim = best_dim;
  return target;
}

Peer GridNode::can_upward_target(const JobProfile& profile) const {
  // Score = number of constrained resources whose requirement the node's
  // coordinates meet; move to a strictly better neighbor (least loaded).
  const auto score = [&](const can::Point& p) {
    std::size_t s = 0;
    for (std::size_t r = 0; r < kNumResources; ++r) {
      if (!profile.constraints().active[r] || p[r] >= profile.can_coords()[r]) {
        ++s;
      }
    }
    return s;
  };
  const std::size_t self_score = score(can_->rep_point());
  Peer best = kNoPeer;
  std::size_t best_score = self_score;
  double best_load = std::numeric_limits<double>::infinity();
  for (const auto& [naddr, ns] : can_->neighbors()) {
    if (ns.rep_point.dims() != can_->rep_point().dims()) continue;
    const std::size_t s = score(ns.rep_point);
    if (s > best_score ||
        (s == best_score && s > self_score && ns.load < best_load)) {
      best = Peer{naddr, ns.id};
      best_score = s;
      best_load = ns.load;
    }
  }
  return best;
}

// --- TTL-walk baseline (§4) -----------------------------------------------------

void GridNode::start_walk(const JobProfile& profile,
                          std::function<void(Peer, int)> cb) {
  // The walk begins at the owner itself.
  if (profile.constraints().satisfied_by(caps_)) {
    cb(self_peer(), 0);
    return;
  }
  ++stats_.walks_started;
  const Peer first = chord_->random_peer(rng_);
  if (!first.valid()) {
    ++stats_.walks_failed;
    cb(kNoPeer, 0);
    return;
  }
  const std::uint64_t id = next_probe_id_++;
  PendingWalk pending;
  pending.cb = std::move(cb);
  pending.timeout_event =
      net_.simulator().schedule_in(config_.walk_timeout, [this, id] {
        auto it = pending_walks_.find(id);
        if (it == pending_walks_.end()) return;
        auto callback = std::move(it->second.cb);
        pending_walks_.erase(it);
        ++stats_.walks_failed;
        callback(kNoPeer, static_cast<int>(config_.ttl_walk_ttl));
      });
  pending_walks_.emplace(id, std::move(pending));
  rpc_.send(first.addr,
            std::make_unique<WalkProbe>(id, self_peer(), profile.constraints(),
                                        config_.ttl_walk_ttl));
}

void GridNode::on_walk_probe(net::MessagePtr& msg) {
  auto* m = net::msg_cast<WalkProbe>(msg.get());
  ++m->hops;
  if (m->constraints.satisfied_by(caps_)) {
    rpc_.send(m->initiator.addr,
              std::make_unique<WalkResult>(m->probe_id, true, self_peer(),
                                           queue_length(), m->hops));
    return;
  }
  if (m->ttl == 0 || !chord_) {
    // This is exactly the weakness the paper notes for TTL schemes: the
    // walk gives up even though a capable node may exist elsewhere.
    rpc_.send(m->initiator.addr,
              std::make_unique<WalkResult>(m->probe_id, false, kNoPeer, 0.0,
                                           m->hops));
    return;
  }
  const Peer next = chord_->random_peer(rng_);
  if (!next.valid()) {
    rpc_.send(m->initiator.addr,
              std::make_unique<WalkResult>(m->probe_id, false, kNoPeer, 0.0,
                                           m->hops));
    return;
  }
  auto fwd = std::make_unique<WalkProbe>(m->probe_id, m->initiator,
                                         m->constraints, m->ttl - 1);
  fwd->hops = m->hops;
  rpc_.send(next.addr, std::move(fwd));
}

void GridNode::on_walk_result(const WalkResult& msg) {
  auto it = pending_walks_.find(msg.probe_id);
  if (it == pending_walks_.end()) return;  // timed out already
  auto callback = std::move(it->second.cb);
  net_.simulator().cancel(it->second.timeout_event);
  pending_walks_.erase(it);
  if (!msg.found) ++stats_.walks_failed;
  callback(msg.found ? msg.node : kNoPeer, static_cast<int>(msg.hops));
}

// --- owner side ----------------------------------------------------------------

void GridNode::become_owner(const JobProfile& profile, std::uint32_t hops,
                            std::uint32_t forward_budget) {
  if (owned_.find(profile.guid) != owned_.end()) return;  // duplicate
  OwnedJob od;
  od.profile = profile;
  od.last_heartbeat = net_.simulator().now();
  od.forward_budget = forward_budget;
  owned_.emplace(profile.guid, std::move(od));
  collector_->on_owner(profile.seq, net_.simulator().now(),
                       static_cast<int>(hops));
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobOwner, addr(),
                    obs::kNoActor, static_cast<std::uint16_t>(hops),
                    profile.seq, static_cast<double>(owned_.size()));
  match_and_dispatch(profile.guid);
}

void GridNode::match_and_dispatch(Guid guid) {
  auto it = owned_.find(guid);
  if (it == owned_.end() || it->second.dispatched) return;
  OwnedJob& od = it->second;
  if (++od.attempts > config_.match_max_attempts) {
    collector_->on_unmatched(od.profile.seq);
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobUnmatched, addr(),
                      obs::kNoActor,
                      static_cast<std::uint16_t>(od.attempts),
                      od.profile.seq);
    // Tell the client so it can resubmit straight away (new GUID lands the
    // job elsewhere) instead of waiting out its deadline timer.
    rpc_.send(od.profile.client,
              std::make_unique<JobFailed>(od.profile.seq,
                                          od.profile.generation));
    owned_.erase(it);
    return;
  }
  matchmake(od.profile, [this, guid](Peer run, int hops) {
    auto jt = owned_.find(guid);
    if (!running_ || jt == owned_.end() || jt->second.dispatched) return;
    if (run.valid()) {
      dispatch(guid, run, hops);
      return;
    }
    // No candidate here. In CAN mode, move ownership toward more capable
    // coordinates (the remaining forward budget bounds the walk)...
    OwnedJob& job = jt->second;
    if (uses_can(config_.kind) && job.forward_budget > 0) {
      const Peer target = can_upward_target(job.profile);
      if (target.valid()) {
        ++stats_.can_forwards;
        const JobProfile profile = job.profile;
        const std::uint32_t budget = job.forward_budget - 1;
        owned_.erase(jt);
        forward_to_owner(target, profile, 0, 0, budget, 0);
        return;
      }
      // The neighbor-by-neighbor dominance walk dead-ended (a capability
      // "valley": no single neighbor is better in every failing resource).
      // Escalate by sampling a random point of the job's *feasible
      // orthant* [requirement, 1) in each constrained dimension: every
      // node capable of running the job keeps its representative point in
      // that orthant (split_for guarantees point ownership), so repeated
      // samples land in a satisfying node's zone — or next to one, where
      // the neighbor fallback finishes the match.
      can::Point sample = job.profile.can_coords();
      for (std::size_t r = 0; r < kNumResources; ++r) {
        if (job.profile.constraints().active[r]) {
          sample[r] = rng_.uniform(sample[r], 1.0);
        } else {
          sample[r] = rng_.uniform();
        }
      }
      sample[kVirtualDim] = rng_.uniform();
      const JobProfile profile = job.profile;
      const std::uint32_t budget = job.forward_budget - 1;
      can_->route(sample, [this, profile, budget, guid](Peer owner, int) {
        auto kt = owned_.find(guid);
        if (!running_ || kt == owned_.end() || kt->second.dispatched) return;
        if (owner.valid() && owner.addr != addr()) {
          ++stats_.can_forwards;
          owned_.erase(kt);
          forward_to_owner(owner, profile, 0, 0, budget, 0);
        } else {
          net_.simulator().schedule_in(config_.match_retry_delay,
                                       [this, guid] {
                                         if (running_)
                                           match_and_dispatch(guid);
                                       });
        }
      });
      return;
    }
    // ...otherwise retry after a delay (loads change and overlay soft
    // state refreshes).
    net_.simulator().schedule_in(config_.match_retry_delay, [this, guid] {
      if (running_) match_and_dispatch(guid);
    });
  });
}

void GridNode::matchmake(const JobProfile& profile,
                         std::function<void(Peer, int)> cb) {
  switch (config_.kind) {
    case MatchmakerKind::kCentralized: {
      const double now = net_.simulator().now().sec();
      const Peer pick = central_->pick_least_loaded(profile.constraints(), now);
      if (pick.valid()) {
        // Keep the global view coherent while the dispatch is in flight.
        central_->note_assignment(static_cast<std::uint32_t>(pick.addr),
                                  profile.runtime_sec(), now + 2.0);
      }
      cb(pick, 0);
      return;
    }
    case MatchmakerKind::kRandom:
      cb(central_->pick_random(profile.constraints(), rng_), 0);
      return;
    case MatchmakerKind::kTtlWalk:
      start_walk(profile, std::move(cb));
      return;
    case MatchmakerKind::kRnTree:
      rn_->search(to_rn_query(profile.constraints()), config_.rn_search_k,
                  [cb = std::move(cb)](std::vector<rntree::Candidate> cands,
                                       int hops) {
                    Peer best = kNoPeer;
                    double best_load = std::numeric_limits<double>::infinity();
                    for (const auto& c : cands) {
                      if (!best.valid() || c.load < best_load ||
                          (c.load == best_load && c.peer.id < best.id)) {
                        best = c.peer;
                        best_load = c.load;
                      }
                    }
                    cb(best, hops);
                  });
      return;
    case MatchmakerKind::kCanBasic:
    case MatchmakerKind::kCanPush: {
      auto cands = can_candidates(profile);
      if (cands.empty()) {
        // Relaxed fallback: any neighbor whose coordinates satisfy the job
        // (the strict "dominates the owner" filter can be empty even when a
        // neighbor qualifies).
        for (const auto& [naddr, ns] : can_->neighbors()) {
          if (ns.rep_point.dims() == can_->rep_point().dims() &&
              can_point_satisfies(ns.rep_point, profile.can_coords(),
                                  profile.constraints())) {
            cands.emplace_back(Peer{naddr, ns.id}, ns.load);
          }
        }
      }
      Peer best = kNoPeer;
      double best_load = std::numeric_limits<double>::infinity();
      for (const auto& [peer, load] : cands) {
        if (!best.valid() || load < best_load ||
            (load == best_load && peer.id < best.id)) {
          best = peer;
          best_load = load;
        }
      }
      cb(best, 0);  // decided from local neighbor state: no extra hops
      return;
    }
  }
}

void GridNode::dispatch(Guid guid, Peer run, int match_hops) {
  auto it = owned_.find(guid);
  if (it == owned_.end()) return;
  OwnedJob& od = it->second;
  if (run.addr == addr()) {
    // Dispatch to self: no network round trip needed.
    od.run = run;
    od.dispatched = true;
    od.last_heartbeat = net_.simulator().now();
    od.phi.reset();
    od.phi.heartbeat(od.last_heartbeat);
    collector_->on_matched(od.profile.seq, net_.simulator().now(), match_hops,
                           static_cast<std::uint32_t>(run.addr));
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobMatched, addr(),
                      static_cast<std::uint32_t>(run.addr),
                      static_cast<std::uint16_t>(std::max(match_hops, 0)),
                      od.profile.seq);
    net::MessagePtr self_msg =
        std::make_unique<DispatchJob>(od.profile, self_peer());
    on_dispatch(addr(), self_msg);
    return;
  }
  rpc_.call(run.addr, std::make_unique<DispatchJob>(od.profile, self_peer()),
            config_.rpc_timeout,
            [this, guid, run, match_hops](net::MessagePtr reply) {
              auto jt = owned_.find(guid);
              if (!running_ || jt == owned_.end()) return;
              OwnedJob& job = jt->second;
              bool accepted = false;
              if (reply != nullptr) {
                accepted = net::msg_cast<DispatchResp>(reply.get())->accepted;
              }
              if (accepted) {
                job.run = run;
                job.dispatched = true;
                job.last_heartbeat = net_.simulator().now();
                job.phi.reset();
                job.phi.heartbeat(job.last_heartbeat);
                collector_->on_matched(job.profile.seq, net_.simulator().now(),
                                       match_hops,
                                       static_cast<std::uint32_t>(run.addr));
                PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobMatched,
                                  addr(), static_cast<std::uint32_t>(run.addr),
                                  static_cast<std::uint16_t>(
                                      std::max(match_hops, 0)),
                                  job.profile.seq);
              } else {
                // Dead or ineligible run node: go around again.
                match_and_dispatch(guid);
              }
            });
}

void GridNode::monitor_owned_jobs() {
  const auto now = net_.simulator().now();
  const auto deadline =
      config_.heartbeat_period * config_.heartbeat_miss_threshold;
  std::vector<Guid> lost;
  for (auto& [guid, od] : owned_) {
    if (!od.dispatched) continue;
    // φ-accrual (when enabled) judges the run node by its learned heartbeat
    // inter-arrival distribution instead of the fixed deadline; while the
    // history is still thin it falls back to exactly the fixed rule.
    const bool dead = config_.phi.enabled
                          ? od.phi.evict(now, config_.phi, deadline)
                          : now - od.last_heartbeat > deadline;
    if (dead) lost.push_back(guid);
  }
  for (Guid guid : lost) {
    OwnedJob& od = owned_.at(guid);
    ++stats_.run_recoveries;
    note_eviction(od.run.addr);
    collector_->on_requeue(od.profile.seq);
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kHeartbeatMiss, addr(),
                      static_cast<std::uint32_t>(od.run.addr), 1,
                      od.profile.seq);
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRunRecovery, addr(),
                      static_cast<std::uint32_t>(od.run.addr), 0,
                      od.profile.seq);
    od.dispatched = false;
    od.run = kNoPeer;
    od.attempts = 0;  // fresh matchmaking round for the re-run
    match_and_dispatch(guid);
  }
}

void GridNode::on_heartbeat(net::NodeAddr from, net::MessagePtr& msg) {
  const auto* m = net::msg_cast<Heartbeat>(msg.get());
  auto it = owned_.find(m->guid);
  const bool known =
      it != owned_.end() && it->second.profile.generation == m->generation;
  if (known && it->second.run.addr == from) {
    it->second.last_heartbeat = net_.simulator().now();
    it->second.phi.heartbeat(it->second.last_heartbeat);
  }
  rpc_.reply(from, *m, std::make_unique<HeartbeatAck>(known));
}

void GridNode::on_job_done(const JobDone& msg) {
  auto it = owned_.find(msg.guid);
  if (it != owned_.end() && it->second.profile.generation == msg.generation) {
    owned_.erase(it);
  }
}

void GridNode::on_owner_handoff(net::NodeAddr from, net::MessagePtr& msg) {
  const auto* m = net::msg_cast<OwnerHandoff>(msg.get());
  auto it = owned_.find(m->profile.guid);
  if (it == owned_.end()) {
    OwnedJob od;
    od.profile = m->profile;
    od.run = m->run_node;
    od.dispatched = true;
    od.last_heartbeat = net_.simulator().now();
    od.phi.heartbeat(od.last_heartbeat);
    owned_.emplace(m->profile.guid, std::move(od));
  } else {
    it->second.run = m->run_node;
    it->second.dispatched = true;
    it->second.last_heartbeat = net_.simulator().now();
    it->second.phi.reset();
    it->second.phi.heartbeat(it->second.last_heartbeat);
  }
  rpc_.reply(from, *m, std::make_unique<OwnerHandoffAck>());
}

// --- run side ------------------------------------------------------------------

void GridNode::on_dispatch(net::NodeAddr from, net::MessagePtr& msg) {
  const auto* m = net::msg_cast<DispatchJob>(msg.get());
  // §5 quota: refuse jobs declaring more output than this node allows.
  if (config_.max_output_kb > 0.0 &&
      m->profile.output_kb() > config_.max_output_kb) {
    ++stats_.quota_rejects;
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobDispatchReject,
                      addr(), from, 1, m->profile.seq);
    if (m->rpc_id != 0) {
      rpc_.reply(from, *m,
                 std::make_unique<DispatchResp>(false, queue_length()));
    }
    return;
  }
  // First criterion of matchmaking (§2): the constraints must be met. A
  // stale owner view can still pick us wrongly; reject so it retries.
  if (!m->profile.constraints().satisfied_by(caps_)) {
    ++stats_.dispatch_rejects;
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobDispatchReject,
                      addr(), from, 2, m->profile.seq);
    if (m->rpc_id != 0) {
      rpc_.reply(from, *m,
                 std::make_unique<DispatchResp>(false, queue_length()));
    }
    return;
  }
  // Idempotent re-dispatch of a job already queued here.
  for (QueuedJob& q : queue_) {
    if (q.profile.guid == m->profile.guid &&
        q.profile.generation == m->profile.generation) {
      q.owner = m->owner;
      q.missed_acks = 0;
      q.phi.heartbeat(net_.simulator().now());
      if (m->rpc_id != 0) {
        rpc_.reply(from, *m,
                   std::make_unique<DispatchResp>(true, queue_length()));
      }
      return;
    }
  }
  QueuedJob q;
  q.profile = m->profile;
  q.owner = m->owner;
  q.phi.heartbeat(net_.simulator().now());
#ifndef PGRID_OBS_DISABLED
  // Save the dispatch message's span: the handler runs under it now, but
  // execution completes from a timer later, outside any ambient context.
  if (obs::TraceBus* bus = net_.trace(); bus != nullptr) q.ctx = bus->current();
#endif
  queue_.push_back(std::move(q));
  if (m->rpc_id != 0) {
    rpc_.reply(from, *m, std::make_unique<DispatchResp>(true, queue_length()));
  }
  update_load_gauge();
  maybe_start_next();
}

void GridNode::maybe_start_next() {
  if (executing_ || queue_.empty() || !running_) return;
  apply_queue_policy();
  executing_ = true;
  const QueuedJob& job = queue_.front();
#ifndef PGRID_OBS_DISABLED
  // Attribute the start event to the dispatch span that queued this job
  // (this function is reached from timers as often as from handlers).
  obs::SpanScope start_scope(net_.trace(), job.ctx);
#endif
  collector_->on_started(job.profile.seq, net_.simulator().now(),
                         static_cast<std::uint32_t>(addr()));
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobStart, addr(),
                    static_cast<std::uint32_t>(job.owner.addr), 0,
                    job.profile.seq, queue_length());

  // §5 quota: a job whose actual demand exceeds its declared runtime by the
  // kill factor is terminated at the quota deadline instead of completing.
  double run_for = job.profile.runtime_sec();
  bool will_be_killed = false;
  if (config_.runaway_kill_factor > 0.0) {
    const double quota =
        job.profile.declared_or_actual() * config_.runaway_kill_factor;
    if (quota < run_for) {
      run_for = quota;
      will_be_killed = true;
    }
  }
  executing_end_sec_ = net_.simulator().now().sec() + run_for;
  completion_event_ = net_.simulator().schedule_in(
      sim::SimTime::seconds(run_for), [this, will_be_killed] {
        if (will_be_killed) {
          kill_front_for_quota();
        } else {
          complete_front();
        }
      });
}

void GridNode::apply_queue_policy() {
  if (config_.queue_policy != QueuePolicy::kFairShare || queue_.size() < 2) {
    return;
  }
  // Round-robin over submitting clients: serve the smallest client address
  // strictly after the last one served, wrapping to the smallest overall.
  net::NodeAddr next_client = net::kNullAddr;
  net::NodeAddr min_client = net::kNullAddr;
  for (const QueuedJob& q : queue_) {
    const net::NodeAddr c = q.profile.client;
    if (c < min_client) min_client = c;
    if (c > last_served_client_ && c < next_client) next_client = c;
  }
  if (next_client == net::kNullAddr) next_client = min_client;
  // Rotate that client's oldest job to the front (FIFO within a client).
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].profile.client == next_client) {
      if (i != 0) {
        QueuedJob job = std::move(queue_[i]);
        queue_.erase(queue_.begin() + static_cast<long>(i));
        queue_.push_front(std::move(job));
      }
      return;
    }
  }
}

void GridNode::kill_front_for_quota() {
  PGRID_ASSERT(executing_ && !queue_.empty());
  completion_event_ = sim::kInvalidEvent;
  const QueuedJob job = queue_.front();
  queue_.pop_front();
  executing_ = false;
  last_served_client_ = job.profile.client;
  ++stats_.jobs_killed_quota;
  {
#ifndef PGRID_OBS_DISABLED
    // Block-scoped so the next job's start is not attributed to this span.
    obs::SpanScope run_scope(net_.trace(), job.ctx);
#endif
    // `v` is the occupied duration: the Chrome exporter renders the slice.
    PGRID_TRACE_EVENT(
        net_.trace(), obs::EventKind::kJobKilled, addr(),
        static_cast<std::uint32_t>(job.owner.addr), 0, job.profile.seq,
        job.profile.declared_or_actual() * config_.runaway_kill_factor);
    // The node was occupied up to the quota deadline.
    collector_->add_node_busy(
        index_,
        job.profile.declared_or_actual() * config_.runaway_kill_factor);
    // Tell the owner to stop monitoring and give the client fast feedback
    // (its generation will never produce a result).
    if (job.owner.valid()) {
      rpc_.send(job.owner.addr, std::make_unique<JobDone>(
                                    job.profile.guid, job.profile.generation));
    }
    rpc_.send(job.profile.client, std::make_unique<JobFailed>(
                                      job.profile.seq, job.profile.generation));
  }
  update_load_gauge();
  maybe_start_next();
}

void GridNode::complete_front() {
  PGRID_ASSERT(executing_ && !queue_.empty());
  completion_event_ = sim::kInvalidEvent;
  const QueuedJob job = queue_.front();
  queue_.pop_front();
  executing_ = false;
  last_served_client_ = job.profile.client;
  ++stats_.jobs_executed;
  {
#ifndef PGRID_OBS_DISABLED
    // Block-scoped so the next job's start is not attributed to this span.
    obs::SpanScope run_scope(net_.trace(), job.ctx);
#endif
    collector_->add_node_busy(index_, job.profile.runtime_sec());
    // `v` is the execution duration: the Chrome exporter renders the slice.
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kJobComplete, addr(),
                      static_cast<std::uint32_t>(job.owner.addr), 0,
                      job.profile.seq, job.profile.runtime_sec());
    // Fig. 1 step 6: result straight back to the client...
    rpc_.send(job.profile.client, std::make_unique<Result>(
                                      job.profile.seq, job.profile.generation));
    // ...and release the owner's monitoring state.
    if (job.owner.valid()) {
      rpc_.send(job.owner.addr, std::make_unique<JobDone>(
                                    job.profile.guid, job.profile.generation));
    }
  }
  update_load_gauge();
  maybe_start_next();
}

void GridNode::do_heartbeats() {
  // Heartbeat every queued job, including those not yet running (§2).
  // Jobs are identified by GUID: distinct generations of the same job can
  // legitimately coexist in one queue and each has its own owner.
  //
  // Batching: heartbeats for jobs monitored by the same owner coalesce
  // into one wire message per owner per round; the owner's acks coalesce
  // on the way back via the network's receiver-side scope.
  const net::BatchScope batch(net_, addr(), config_.batching.enabled);
  std::vector<Guid> guids;
  guids.reserve(queue_.size());
  for (const QueuedJob& q : queue_) guids.push_back(q.profile.guid);
  for (Guid guid : guids) {
    QueuedJob* job = nullptr;
    for (QueuedJob& q : queue_) {
      if (q.profile.guid == guid) job = &q;
    }
    if (job == nullptr || !job->owner.valid()) continue;
    auto hb = std::make_unique<Heartbeat>(job->profile.guid,
                                          job->profile.generation);
    rpc_.call(job->owner.addr, std::move(hb), config_.rpc_timeout,
              [this, guid](net::MessagePtr reply) {
                if (!running_) return;
                QueuedJob* q = nullptr;
                for (QueuedJob& cand : queue_) {
                  if (cand.profile.guid == guid) q = &cand;
                }
                if (q == nullptr) return;  // completed meanwhile
                if (reply == nullptr) {
                  ++q->missed_acks;
                  // Fixed rule: give up after N consecutive missed acks.
                  // φ-accrual: give up when the silence since the last ack
                  // is implausible under the learned ack-gap distribution.
                  const bool dead =
                      config_.phi.enabled
                          ? q->phi.evict(net_.simulator().now(), config_.phi,
                                         config_.heartbeat_period *
                                             config_.heartbeat_miss_threshold)
                          : q->missed_acks >= config_.heartbeat_miss_threshold;
                  if (dead && !q->recovering_owner) {
                    PGRID_TRACE_EVENT(net_.trace(),
                                      obs::EventKind::kHeartbeatMiss, addr(),
                                      static_cast<std::uint32_t>(
                                          q->owner.addr),
                                      2, q->profile.seq);
                    note_eviction(q->owner.addr);
                    recover_owner(guid);
                  }
                  return;
                }
                q->missed_acks = 0;
                q->phi.heartbeat(net_.simulator().now());
                if (!net::msg_cast<HeartbeatAck>(reply.get())->known &&
                    !q->recovering_owner) {
                  // The owner lost (or never had) the record: re-replicate.
                  recover_owner(guid);
                }
              });
  }
}

void GridNode::note_eviction(net::NodeAddr peer) {
  if (!config_.liveness_oracle) return;
  const double down_since = config_.liveness_oracle(peer);
  if (down_since < 0.0) {
    ++stats_.fp_evictions;
    return;
  }
  const double latency = net_.simulator().now().sec() - down_since;
  stats_.detection_latency.add(latency);
  // The fixed rule detects at worst one monitor/heartbeat round after the
  // fixed deadline elapses; anything slower than that bound is a late
  // detection the legacy detector would have beaten.
  const double fixed_bound =
      (config_.heartbeat_period * (config_.heartbeat_miss_threshold + 1)).sec();
  if (latency > fixed_bound + 1e-9) ++stats_.fn_evictions;
}

void GridNode::audit_owned_jobs() {
  if (owned_.empty() || (chord_ == nullptr && can_ == nullptr)) return;
  std::vector<Guid> guids;
  guids.reserve(owned_.size());
  for (const auto& [guid, od] : owned_) {
    if (od.dispatched && od.run.valid()) guids.push_back(guid);
  }
  for (Guid guid : guids) {
    const auto resolve = [this, guid](Peer current, int) {
      auto it = owned_.find(guid);
      if (!running_ || it == owned_.end()) return;
      if (!current.valid() || current.addr == addr()) return;  // still ours
      // The overlay now maps this GUID elsewhere (a healed partition or a
      // rejoined node moved the key): re-register the record with the
      // current owner and retire our duplicate, so exactly one owner is
      // monitoring the run node when it next looks the job up.
      const JobProfile profile = it->second.profile;
      const Peer run = it->second.run;
      rpc_.call(current.addr, std::make_unique<OwnerHandoff>(profile, run),
                config_.rpc_timeout,
                [this, guid, current](net::MessagePtr reply) {
                  if (!running_ || reply == nullptr) return;
                  auto jt = owned_.find(guid);
                  if (jt == owned_.end()) return;
                  ++stats_.owner_audit_repairs;
                  PGRID_TRACE_EVENT(net_.trace(),
                                    obs::EventKind::kAntiEntropyRepair,
                                    addr(),
                                    static_cast<std::uint32_t>(current.addr),
                                    1, jt->second.profile.seq);
                  owned_.erase(jt);
                });
    };
    if (chord_) {
      chord_->lookup(guid, resolve);
    } else if (can_) {
      auto it = owned_.find(guid);
      if (it == owned_.end()) continue;
      can_->route(it->second.profile.can_coords(), resolve);
    }
  }
}

void GridNode::recover_owner(Guid guid) {
  QueuedJob* job = nullptr;
  for (QueuedJob& q : queue_) {
    if (q.profile.guid == guid) job = &q;
  }
  if (job == nullptr || job->recovering_owner) return;
  job->recovering_owner = true;
  const JobProfile profile = job->profile;

  const auto adopt = [this, guid](Peer new_owner) {
    QueuedJob* q = nullptr;
    for (QueuedJob& cand : queue_) {
      if (cand.profile.guid == guid) q = &cand;
    }
    if (q == nullptr) return;
    q->recovering_owner = false;
    if (!new_owner.valid()) return;  // retry on the next heartbeat round
    q->owner = new_owner;
    q->missed_acks = 0;
    ++stats_.owner_recoveries;
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOwnerRecovery, addr(),
                      static_cast<std::uint32_t>(new_owner.addr), 0,
                      q->profile.seq);
  };

  const auto handoff_to = [this, profile, adopt](Peer target) {
    if (!target.valid()) {
      adopt(kNoPeer);
      return;
    }
    if (target.addr == addr()) {
      // We are the new owner ourselves: adopt the record locally.
      if (owned_.find(profile.guid) == owned_.end()) {
        OwnedJob od;
        od.profile = profile;
        od.run = self_peer();
        od.dispatched = true;
        od.last_heartbeat = net_.simulator().now();
        owned_.emplace(profile.guid, std::move(od));
      }
      adopt(self_peer());
      return;
    }
    rpc_.call(target.addr, std::make_unique<OwnerHandoff>(profile, self_peer()),
              config_.rpc_timeout, [adopt, target](net::MessagePtr reply) {
                adopt(reply == nullptr ? kNoPeer : target);
              });
  };

  // The new owner is whoever the overlay maps the job to now (§2: "the
  // other node will detect the failure and initiate a recovery mechanism").
  if (chord_) {
    chord_->lookup(profile.guid, [handoff_to](Peer p, int) { handoff_to(p); });
  } else if (can_) {
    can_->route(profile.can_coords(),
                [handoff_to](Peer p, int) { handoff_to(p); });
  } else {
    handoff_to(self_peer());  // no overlay: the run node adopts ownership
  }
}

}  // namespace pgrid::grid
