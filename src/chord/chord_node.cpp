#include "chord/chord_node.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace pgrid::chord {

namespace {
constexpr int kMaxLookupHops = 128;  // loop guard far above log2(N)

bool contains_id(const std::vector<Guid>& ids, Guid id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

ChordNode::ChordNode(net::Network& network, net::NodeAddr self, Guid id,
                     ChordConfig config, Rng rng)
    : net_(network), rpc_(network, self), id_(id), config_(config), rng_(rng) {
  PGRID_EXPECTS(config.successor_list_len >= 1);
}

ChordNode::~ChordNode() = default;

void ChordNode::create() {
  running_ = true;
  predecessor_ = kNoPeer;
  successors_.assign(1, self_peer());
  fingers_.fill(kNoPeer);
  rebuild_route_scan();
  start_maintenance();
}

void ChordNode::join(Peer bootstrap, std::function<void(bool ok)> done) {
  PGRID_EXPECTS(bootstrap.valid());
  running_ = true;
  predecessor_ = kNoPeer;
  successors_.clear();
  fingers_.fill(kNoPeer);
  rebuild_route_scan();
  // Maintenance runs from the start: if the bootstrap lookup fails (the
  // bootstrap died or sits behind a partition), reconcile_lost keeps
  // probing it until the ring becomes reachable, instead of leaving this
  // node a permanent orphan.
  start_maintenance();

  // Resolve successor(id) through the bootstrap node: a one-off remote
  // lookup driven by this node before it has any routing state.
  auto st = std::make_shared<LookupState>();
  st->key = id_;
  st->retries_left = config_.lookup_retries;
  st->cb = [this, bootstrap, done = std::move(done)](Peer succ, int /*hops*/) {
    if (!running_) return;
    if (!succ.valid()) {
      note_lost(bootstrap);
      if (done) done(false);
      return;
    }
    // A singleton bootstrap may answer with the joiner itself once the
    // joiner's GUID equals the key; guard against self-successorship.
    if (succ.addr == addr()) succ = kNoPeer;
    if (succ.valid()) {
      successors_.assign(1, succ);
      rebuild_route_scan();
      rpc_.send(succ.addr, std::make_unique<Notify>(self_peer()));
      if (done) done(true);
    } else {
      note_lost(bootstrap);
      if (done) done(false);
    }
  };
  lookup_ask(st, bootstrap);
}

void ChordNode::crash() {
  running_ = false;
  stabilize_task_.reset();
  fix_fingers_task_.reset();
  check_pred_task_.reset();
  rpc_.cancel_all();
  predecessor_ = kNoPeer;
  successors_.clear();
  fingers_.fill(kNoPeer);
  rebuild_route_scan();
  lost_.clear();
  lost_cursor_ = 0;
  detectors_.clear();
}

void ChordNode::install_state(Peer predecessor, std::vector<Peer> successor_list,
                              const std::array<Peer, kBits>& fingers) {
  running_ = true;
  predecessor_ = predecessor;
  successors_ = std::move(successor_list);
  fingers_ = fingers;
  rebuild_route_scan();
  PGRID_EXPECTS(!successors_.empty());
  start_maintenance();
}

void ChordNode::start_maintenance() {
  if (!config_.run_maintenance) return;
  auto& simulator = net_.simulator();
  // Desynchronize periodic work across nodes with a random initial phase.
  const auto phase = [&](sim::SimTime period) {
    return sim::SimTime::nanos(rng_.range(0, period.ns() - 1));
  };
  if (config_.batching.enabled) {
    // Batched mode: one combined round at stabilize_period runs the whole
    // trio inside a batch scope, so the stabilize probe, the finger
    // lookups' first hops, and the predecessor ping that target the same
    // peer (typically the successor) share one wire message. Fingers are
    // advanced fix_per_round_ per round to preserve the dedicated task's
    // long-run repair rate.
    fix_per_round_ = std::max<int>(
        1, static_cast<int>(config_.stabilize_period.ns() /
                            std::max<std::int64_t>(
                                1, config_.fix_fingers_period.ns())));
    stabilize_task_ = std::make_unique<sim::PeriodicTask>(
        simulator, config_.stabilize_period, [this] { do_combined_round(); },
        phase(config_.stabilize_period));
    return;
  }
  stabilize_task_ = std::make_unique<sim::PeriodicTask>(
      simulator, config_.stabilize_period, [this] { do_stabilize(); },
      phase(config_.stabilize_period));
  fix_fingers_task_ = std::make_unique<sim::PeriodicTask>(
      simulator, config_.fix_fingers_period, [this] { do_fix_fingers(); },
      phase(config_.fix_fingers_period));
  check_pred_task_ = std::make_unique<sim::PeriodicTask>(
      simulator, config_.check_predecessor_period,
      [this] { do_check_predecessor(); },
      phase(config_.check_predecessor_period));
}

void ChordNode::do_combined_round() {
  const net::BatchScope batch(net_, addr());
  do_stabilize();
  for (int i = 0; i < fix_per_round_; ++i) do_fix_fingers();
  do_check_predecessor();
}

// --- lookups ---------------------------------------------------------------

void ChordNode::lookup(Guid key, LookupCallback cb) {
  PGRID_EXPECTS(cb != nullptr);
  ++stats_.lookups_started;
  if (!running_ || successors_.empty()) {
    ++stats_.lookups_failed;
    cb(kNoPeer, 0);
    return;
  }
  auto st = std::make_shared<LookupState>();
  st->key = key;
  st->cb = std::move(cb);
  st->retries_left = config_.lookup_retries;
  lookup_restart(st);
}

void ChordNode::lookup_restart(const std::shared_ptr<LookupState>& st) {
  if (!running_ || successors_.empty()) {
    lookup_failed(st);
    return;
  }
  // Local resolution: am I the owner, or is my immediate successor?
  if (predecessor_.valid() && in_interval_oc(st->key, predecessor_.id, id_)) {
    lookup_done(st, self_peer());
    return;
  }
  const Peer succ = successor();
  if (succ.addr == addr() || in_interval_oc(st->key, id_, succ.id)) {
    lookup_done(st, succ);
    return;
  }
  Peer target = closest_preceding(st->key, st->avoid);
  if (!target.valid() || target.addr == addr()) target = succ;
  lookup_ask(st, target);
}

void ChordNode::lookup_ask(const std::shared_ptr<LookupState>& st,
                           Peer target) {
  if (st->hops >= kMaxLookupHops) {
    lookup_failed(st);
    return;
  }
  ++st->hops;
  auto make = [key = st->key, avoid = st->avoid]() -> net::MessagePtr {
    auto req = std::make_unique<NextHopReq>(key);
    req->avoid = avoid;
    return req;
  };
  rpc_.call_retry(target.addr, std::move(make), config_.rpc_timeout,
                  config_.rpc_attempts,
                  [this, st, target](net::MessagePtr reply) {
              if (!running_) return;
              if (reply == nullptr) {
                // Dead hop: scrub it, remember to route around it, retry.
                // Under φ-accrual, a peer we have heard from recently is
                // only suspected — route around it this lookup, but keep
                // its table entries until the silence becomes implausible.
                if (!config_.phi.enabled || phi_allows_evict(target.addr)) {
                  remove_failed(target);
                } else {
                  ++stats_.suspicions;
                  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect,
                                    addr(),
                                    static_cast<std::uint32_t>(target.addr),
                                    1);
                }
                if (!contains_id(st->avoid, target.id)) {
                  st->avoid.push_back(target.id);
                }
                if (--st->retries_left > 0) {
                  lookup_restart(st);
                } else {
                  lookup_failed(st);
                }
                return;
              }
              const auto* resp = net::msg_cast<NextHopResp>(reply.get());
              if (!resp->node.valid()) {
                lookup_failed(st);
                return;
              }
              if (resp->done) {
                lookup_done(st, resp->node);
              } else {
                lookup_ask(st, resp->node);
              }
            });
}

void ChordNode::lookup_done(const std::shared_ptr<LookupState>& st,
                            Peer result) {
  ++stats_.lookups_ok;
  stats_.lookup_hops.add(st->hops);
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayLookup, addr(),
                    static_cast<std::uint32_t>(result.addr), 1,
                    static_cast<std::uint64_t>(std::max(st->hops, 0)));
  st->cb(result, st->hops);
}

void ChordNode::lookup_failed(const std::shared_ptr<LookupState>& st) {
  ++stats_.lookups_failed;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayLookup, addr(),
                    obs::kNoActor, 0,
                    static_cast<std::uint64_t>(std::max(st->hops, 0)));
  st->cb(kNoPeer, st->hops);
}

Peer ChordNode::closest_preceding(Guid key,
                                  const std::vector<Guid>& avoid) const {
  // Scan the deduplicated routing list (fingers high-to-low, then the
  // successor list — see route_scan_) for the entry closest to (but
  // strictly before) the key. In ring-relative coordinates rel(x) = x - id_
  // (unsigned wraparound), x lies in the open interval (id_, key) iff
  // 0 < rel(x) < rel(key), and "closest preceding" is the qualifying
  // maximum of rel(x). The rel(x) - 1 < rel(key) - 1 form folds both
  // bounds into one unsigned compare and, when key == id_ (rel(key) == 0,
  // whole ring minus the endpoint), wraps to admit everything but id_.
  const std::uint64_t rk = id_.clockwise_to(key);
  Peer best = kNoPeer;
  std::uint64_t best_rel = 0;
  for (const Peer& p : route_scan_) {
    const std::uint64_t rp = id_.clockwise_to(p.id);
    if (rp - 1 >= rk - 1) continue;  // outside (id_, key)
    if (rp <= best_rel) continue;    // not closer than the current best
    if (!avoid.empty() && contains_id(avoid, p.id)) continue;
    best = p;
    best_rel = rp;
  }
  return best;
}

void ChordNode::rebuild_route_scan() {
  route_scan_.clear();
  auto push = [&](const Peer& p) {
    if (!p.valid() || p.addr == addr()) return;
    if (!route_scan_.empty() && route_scan_.back() == p) return;
    route_scan_.push_back(p);
  };
  for (int i = kBits - 1; i >= 0; --i) {
    push(fingers_[static_cast<std::size_t>(i)]);
  }
  for (const Peer& p : successors_) push(p);
}

// --- incoming messages -------------------------------------------------------

bool ChordNode::handle(net::NodeAddr from, net::MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  // Any message from a routing peer is proof of life — including non-Chord
  // grid traffic from a co-located stack, which falls through below.
  if (running_ && config_.phi.enabled) note_alive(from);
  if (rpc_.consume_reply(msg)) return true;
  if (!running_) {
    // Stale message for a crashed incarnation; consume Chord-tagged ones.
    const auto t = msg->type();
    return t >= net::kTagChordBase && t < net::kTagChordBase + 0x100;
  }
  switch (msg->type()) {
    case kNextHopReq:
      on_next_hop(from, *net::msg_cast<NextHopReq>(msg.get()));
      return true;
    case kStabilizeReq:
      on_stabilize(from, *net::msg_cast<StabilizeReq>(msg.get()));
      return true;
    case kNotify:
      on_notify(*net::msg_cast<Notify>(msg.get()));
      return true;
    case kPingReq:
      on_ping(from, *net::msg_cast<PingReq>(msg.get()));
      return true;
    default:
      return false;
  }
}

void ChordNode::on_next_hop(net::NodeAddr from, const NextHopReq& req) {
  const Peer succ = successor();
  if (!succ.valid()) return;  // still joining; initiator will time out & retry
  if (succ.addr == addr() || in_interval_oc(req.key, id_, succ.id)) {
    rpc_.reply(from, req, std::make_unique<NextHopResp>(true, succ));
    return;
  }
  Peer next = closest_preceding(req.key, req.avoid);
  if (!next.valid() || next.addr == addr()) {
    // No usable finger: hand back the successor as a linear-scan fallback.
    rpc_.reply(from, req, std::make_unique<NextHopResp>(false, succ));
    return;
  }
  rpc_.reply(from, req, std::make_unique<NextHopResp>(false, next));
}

void ChordNode::on_stabilize(net::NodeAddr from, const StabilizeReq& req) {
  rpc_.reply(from, req,
             std::make_unique<StabilizeResp>(predecessor_, successors_));
}

void ChordNode::on_notify(const Notify& msg) {
  if (!msg.peer.valid() || msg.peer.addr == addr()) return;
  if (!predecessor_.valid() ||
      in_interval_oo(msg.peer.id, predecessor_.id, id_)) {
    predecessor_ = msg.peer;
  }
}

void ChordNode::on_ping(net::NodeAddr from, const PingReq& req) {
  rpc_.reply(from, req, std::make_unique<PingResp>());
}

// --- maintenance -------------------------------------------------------------

void ChordNode::do_stabilize() {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayMaintain, addr(),
                    obs::kNoActor, 1);
  reconcile_lost();
  if (successors_.empty()) return;
  const Peer succ = successor();
  if (succ.addr == addr()) {
    // Singleton ring: adopt the predecessor as successor once one appears.
    if (predecessor_.valid() && predecessor_.addr != addr()) {
      successors_.assign(1, predecessor_);
      rebuild_route_scan();
    }
    return;
  }
  rpc_.call_retry(succ.addr, [] { return std::make_unique<StabilizeReq>(); },
                  config_.rpc_timeout, config_.rpc_attempts,
                  [this, succ](net::MessagePtr reply) {
              if (!running_) return;
              if (reply == nullptr) {
                if (config_.phi.enabled && !phi_allows_evict(succ.addr)) {
                  // Suspect, don't evict: the successor has been heard from
                  // recently enough that this timeout is more likely loss or
                  // congestion. Refresh the list tail from the first backup
                  // so an eventual eviction starts from fresh state.
                  ++stats_.suspicions;
                  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect,
                                    addr(),
                                    static_cast<std::uint32_t>(succ.addr), 1);
                  refresh_successor_tail();
                  return;
                }
                remove_failed(succ);
                if (successors_.empty()) {
                  successors_.assign(1, self_peer());
                  rebuild_route_scan();
                }
                return;
              }
              const auto* resp = net::msg_cast<StabilizeResp>(reply.get());
              Peer head = succ;
              const Peer cand = resp->predecessor;
              if (cand.valid() && cand.addr != addr() &&
                  in_interval_oo(cand.id, id_, succ.id)) {
                head = cand;  // a closer successor slipped in between
              }
              adopt_successor_list(head, resp->successors);
              rpc_.send(successor().addr,
                        std::make_unique<Notify>(self_peer()));
            });
}

void ChordNode::adopt_successor_list(Peer head,
                                     const std::vector<Peer>& tail) {
  std::vector<Peer> fresh;
  fresh.reserve(config_.successor_list_len);
  fresh.push_back(head);
  for (const Peer& p : tail) {
    if (fresh.size() >= config_.successor_list_len) break;
    if (!p.valid() || p.addr == addr()) continue;
    if (std::find(fresh.begin(), fresh.end(), p) != fresh.end()) continue;
    fresh.push_back(p);
  }
  successors_ = std::move(fresh);
  rebuild_route_scan();
}

void ChordNode::do_fix_fingers() {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayMaintain, addr(),
                    obs::kNoActor, 2);
  const auto i = next_finger_;
  next_finger_ = (next_finger_ + 1) % kBits;
  const Guid start{id_.value() + (std::uint64_t{1} << i)};
  lookup(start, [this, i](Peer result, int /*hops*/) {
    if (!running_) return;
    if (result.valid() && !(fingers_[static_cast<std::size_t>(i)] == result)) {
      fingers_[static_cast<std::size_t>(i)] = result;
      rebuild_route_scan();
    }
  });
}

void ChordNode::do_check_predecessor() {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayMaintain, addr(),
                    obs::kNoActor, 3);
  if (!predecessor_.valid()) return;
  const Peer pred = predecessor_;
  rpc_.call_retry(pred.addr, [] { return std::make_unique<PingReq>(); },
                  config_.rpc_timeout, config_.rpc_attempts,
                  [this, pred](net::MessagePtr reply) {
              if (!running_) return;
              if (reply == nullptr && predecessor_ == pred) {
                if (config_.phi.enabled && !phi_allows_evict(pred.addr)) {
                  ++stats_.suspicions;
                  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kPhiSuspect,
                                    addr(),
                                    static_cast<std::uint32_t>(pred.addr), 1);
                  return;
                }
                predecessor_ = kNoPeer;
              }
            });
}

void ChordNode::remove_failed(Peer peer) {
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayRepair, addr(),
                    static_cast<std::uint32_t>(peer.addr), 1);
  ++stats_.evictions;
  if (auto it = detectors_.find(peer.addr); it != detectors_.end()) {
    detectors_.erase(it);
  }
  note_lost(peer);
  successors_.erase(std::remove(successors_.begin(), successors_.end(), peer),
                    successors_.end());
  for (auto& f : fingers_) {
    if (f == peer) f = kNoPeer;
  }
  if (predecessor_ == peer) predecessor_ = kNoPeer;
  rebuild_route_scan();
}

void ChordNode::note_lost(Peer peer) {
  if (!peer.valid() || peer.addr == addr()) return;
  if (std::find(lost_.begin(), lost_.end(), peer) != lost_.end()) return;
  if (lost_.size() >= kLostCap) lost_.erase(lost_.begin());
  lost_.push_back(peer);
}

void ChordNode::reconcile_lost() {
  if (lost_.empty()) return;
  const Peer peer = lost_[lost_cursor_++ % lost_.size()];
  // One transmission only: this is a background probe that runs again next
  // stabilize round; a lost datagram costs nothing.
  rpc_.call_retry(peer.addr, [] { return std::make_unique<PingReq>(); },
                  config_.rpc_timeout, 1, [this, peer](net::MessagePtr reply) {
                    if (!running_ || reply == nullptr) return;
                    lost_.erase(std::remove(lost_.begin(), lost_.end(), peer),
                                lost_.end());
                    revive(peer);
                  });
}

void ChordNode::revive(Peer peer) {
  if (peer.addr == addr()) return;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kOverlayRepair, addr(),
                    static_cast<std::uint32_t>(peer.addr), 2);
  const Peer succ = successor();
  if (!succ.valid() || succ.addr == addr() ||
      in_interval_oo(peer.id, id_, succ.id)) {
    // The revived peer sits between us and our current successor — or we
    // degraded to a singleton — so it becomes the new head; stabilize
    // against it walks the rest of the merge.
    successors_.erase(
        std::remove(successors_.begin(), successors_.end(), peer),
        successors_.end());
    successors_.insert(successors_.begin(), peer);
    if (successors_.size() > config_.successor_list_len) {
      successors_.resize(config_.successor_list_len);
    }
    rebuild_route_scan();
  }
  // Either way, let the peer consider us as predecessor; its own
  // reconciliation and stabilize rounds extend the merge from its side.
  rpc_.send(peer.addr, std::make_unique<Notify>(self_peer()));
}

// --- φ-accrual liveness ------------------------------------------------------

void ChordNode::note_alive(net::NodeAddr from) {
  if (from == addr()) return;
  const auto now = net_.simulator().now();
  if (auto it = detectors_.find(from); it != detectors_.end()) {
    it->second.heartbeat(now);
    return;
  }
  // Admit only current routing peers so the map stays O(table size).
  bool tracked = predecessor_.valid() && predecessor_.addr == from;
  if (!tracked) {
    for (const Peer& p : route_scan_) {
      if (p.addr == from) {
        tracked = true;
        break;
      }
    }
  }
  if (!tracked) return;
  PhiDetector det;
  det.heartbeat(now);
  detectors_.emplace(from, det);
}

bool ChordNode::phi_allows_evict(net::NodeAddr peer) const {
  const auto it = detectors_.find(peer);
  // No arrival history to judge by: fall back to the legacy rule (a timed-
  // out RPC condemns the peer) so a born-dead peer cannot linger forever.
  if (it == detectors_.end() || !it->second.seen()) return true;
  return it->second.evict(net_.simulator().now(), config_.phi,
                          config_.rpc_timeout * config_.rpc_attempts);
}

void ChordNode::refresh_successor_tail() {
  if (successors_.size() < 2) return;
  const Peer head = successors_.front();
  const Peer backup = successors_[1];
  if (!backup.valid() || backup.addr == addr()) return;
  rpc_.call_retry(
      backup.addr, [] { return std::make_unique<StabilizeReq>(); },
      config_.rpc_timeout, 1, [this, head, backup](net::MessagePtr reply) {
        if (!running_ || reply == nullptr) return;
        // Only apply if the suspected head is still in place: an eviction
        // meanwhile already rebuilt the list.
        if (successors_.empty() || !(successors_.front() == head)) return;
        const auto* resp = net::msg_cast<StabilizeResp>(reply.get());
        std::vector<Peer> tail;
        tail.reserve(resp->successors.size() + 1);
        tail.push_back(backup);
        for (const Peer& p : resp->successors) tail.push_back(p);
        adopt_successor_list(head, tail);
        ++stats_.succ_refreshes;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kAntiEntropyRepair,
                          addr(), static_cast<std::uint32_t>(backup.addr), 3);
      });
}

Peer ChordNode::random_peer(Rng& rng) const {
  std::vector<Peer> candidates;
  candidates.reserve(kBits + successors_.size());
  for (const Peer& f : fingers_) {
    if (f.valid() && f.addr != addr()) candidates.push_back(f);
  }
  for (const Peer& p : successors_) {
    if (p.valid() && p.addr != addr()) candidates.push_back(p);
  }
  if (candidates.empty()) return kNoPeer;
  return candidates[rng.index(candidates.size())];
}

}  // namespace pgrid::chord
