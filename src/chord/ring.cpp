#include "chord/ring.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/expects.h"

namespace pgrid::chord {

ChordRing::ChordRing(net::Network& network, ChordConfig config, Rng rng)
    : net_(network), config_(config), rng_(rng) {}

ChordHost& ChordRing::add_host(Guid id) {
  hosts_.push_back(
      std::make_unique<ChordHost>(net_, id, config_, rng_.fork(hosts_.size())));
  alive_.push_back(true);
  live_dirty_ = true;
  return *hosts_.back();
}

Peer ring_oracle_successor(const std::vector<const ChordNode*>& nodes,
                           Guid key) {
  Peer best = kNoPeer;
  std::uint64_t best_dist = 0;
  for (const ChordNode* node : nodes) {
    // successor(key): minimal clockwise distance from key to a node id,
    // where distance 0 (the node exactly at the key) counts as owner.
    const std::uint64_t dist = key.clockwise_to(node->id());
    if (!best.valid() || dist < best_dist) {
      best = Peer{node->addr(), node->id()};
      best_dist = dist;
    }
  }
  return best;
}

namespace {

/// Ring positions sorted by GUID; shared by both wiring implementations so
/// they emit successors/predecessors in the same order by construction.
/// Sorts flat (id, index) pairs — one linear pass of node dereferences —
/// instead of an index sort whose comparator would chase node pointers on
/// every comparison (a cache miss per compare at 10k+ nodes).
std::vector<std::size_t> sorted_order(const std::vector<ChordNode*>& nodes) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    keyed[i] = {nodes[i]->id().value(), static_cast<std::uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::size_t> order(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) order[i] = keyed[i].second;
  return order;
}

}  // namespace

void wire_ring_instantly(const std::vector<ChordNode*>& nodes) {
  PGRID_EXPECTS(!nodes.empty());
  const std::size_t n = nodes.size();
  const std::vector<std::size_t> order = sorted_order(nodes);

  // Flat sorted ring: ids[pos] / ring[pos] is the pos-th node clockwise.
  std::vector<Guid> ids(n);
  std::vector<Peer> ring(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const ChordNode& node = *nodes[order[pos]];
    ids[pos] = node.id();
    ring[pos] = Peer{node.addr(), node.id()};
  }

  // successor(key) = first id >= key, wrapping to the smallest id. Minimal
  // clockwise distance and lower_bound semantics agree because ids are
  // unique: every id >= key is closer (clockwise) than any id < key, which
  // must wrap.
  //
  for (std::size_t pos = 0; pos < n; ++pos) {
    ChordNode& node = *nodes[order[pos]];

    const Peer pred = ring[(pos + n - 1) % n];
    std::vector<Peer> succs;
    const std::size_t list_len =
        std::min(node.config().successor_list_len, n > 1 ? n - 1 : 1);
    succs.reserve(std::max<std::size_t>(list_len, 1));
    for (std::size_t k = 1; k <= std::max<std::size_t>(list_len, 1); ++k) {
      succs.push_back(ring[(pos + k) % n]);
    }

    // finger[i] = successor(id + 2^i). Every bit whose span 2^i is at most
    // the clockwise gap to the next node lands inside (id, next] and
    // resolves to the immediate successor without a search — at N nodes
    // that is all but ~log2(N) of the 64 bits. The remaining targets
    // ascend with i (wrapping past zero at most once), so each
    // lower_bound searches only above the previous result, resetting its
    // floor once at the wrap.
    std::array<Peer, ChordNode::kBits> fingers{};
    const Peer next = ring[(pos + 1) % n];
    const std::uint64_t gap = node.id().clockwise_to(next.id);
    int i = 0;
    for (; i < ChordNode::kBits; ++i) {
      const std::uint64_t span = std::uint64_t{1} << i;
      if (gap != 0 && span > gap) break;  // gap 0 only when n == 1
      fingers[static_cast<std::size_t>(i)] = next;
    }
    std::size_t floor_pos = 0;
    std::uint64_t prev_key = 0;
    for (; i < ChordNode::kBits; ++i) {
      const std::uint64_t key = node.id().value() + (std::uint64_t{1} << i);
      if (key < prev_key) floor_pos = 0;  // wrapped past zero
      prev_key = key;
      const auto it =
          std::lower_bound(ids.begin() + static_cast<std::ptrdiff_t>(floor_pos),
                           ids.end(), Guid{key});
      const auto j = static_cast<std::size_t>(it - ids.begin());
      fingers[static_cast<std::size_t>(i)] = ring[j == n ? 0 : j];
      floor_pos = j;
    }
    node.install_state(pred, std::move(succs), fingers);
  }
}

void wire_ring_instantly_naive(const std::vector<ChordNode*>& nodes) {
  PGRID_EXPECTS(!nodes.empty());
  const std::vector<const ChordNode*> view(nodes.begin(), nodes.end());
  const std::vector<std::size_t> order = sorted_order(nodes);

  const std::size_t n = order.size();
  auto peer_at = [&](std::size_t ring_pos) {
    ChordNode& node = *nodes[order[ring_pos % n]];
    return Peer{node.addr(), node.id()};
  };

  for (std::size_t pos = 0; pos < n; ++pos) {
    ChordNode& node = *nodes[order[pos]];

    const Peer pred = peer_at(pos + n - 1);
    std::vector<Peer> succs;
    const std::size_t list_len =
        std::min(node.config().successor_list_len, n > 1 ? n - 1 : 1);
    for (std::size_t k = 1; k <= std::max<std::size_t>(list_len, 1); ++k) {
      succs.push_back(peer_at(pos + k));
    }

    std::array<Peer, ChordNode::kBits> fingers{};
    for (int i = 0; i < ChordNode::kBits; ++i) {
      const Guid start{node.id().value() + (std::uint64_t{1} << i)};
      fingers[static_cast<std::size_t>(i)] =
          ring_oracle_successor(view, start);
    }
    node.install_state(pred, std::move(succs), fingers);
  }
}

void ChordRing::ensure_live_index() const {
  if (!live_dirty_) return;
  live_hosts_.clear();
  live_ids_.clear();
  live_peers_.clear();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) live_hosts_.push_back(i);
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed;
  keyed.reserve(live_hosts_.size());
  for (std::size_t i : live_hosts_) {
    keyed.emplace_back(hosts_[i]->node().id().value(),
                       static_cast<std::uint32_t>(i));
  }
  std::sort(keyed.begin(), keyed.end());
  live_ids_.reserve(keyed.size());
  live_peers_.reserve(keyed.size());
  for (const auto& [id, i] : keyed) {
    live_ids_.push_back(Guid{id});
    live_peers_.push_back(Peer{hosts_[i]->addr(), Guid{id}});
  }
  live_dirty_ = false;
}

void ChordRing::wire_instantly() {
  ensure_live_index();
  std::vector<ChordNode*> live;
  live.reserve(live_hosts_.size());
  for (std::size_t i : live_hosts_) live.push_back(&hosts_[i]->node());
  wire_ring_instantly(live);
}

Peer ChordRing::oracle_successor(Guid key) const {
  ensure_live_index();
  if (live_ids_.empty()) return kNoPeer;
  const auto it = std::lower_bound(live_ids_.begin(), live_ids_.end(), key);
  return live_peers_[it == live_ids_.end()
                         ? 0
                         : static_cast<std::size_t>(it - live_ids_.begin())];
}

void ChordRing::crash(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (!alive_[index]) return;
  alive_[index] = false;
  live_dirty_ = true;
  net_.set_alive(hosts_[index]->addr(), false);
  hosts_[index]->node().crash();
}

void ChordRing::restart(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (alive_[index]) return;
  alive_[index] = true;
  live_dirty_ = true;
  net_.set_alive(hosts_[index]->addr(), true);
  // Rejoin through the first live host.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i != index && alive_[i]) {
      const ChordNode& boot = hosts_[i]->node();
      hosts_[index]->node().join(Peer{boot.addr(), boot.id()}, nullptr);
      return;
    }
  }
  hosts_[index]->node().create();  // nobody else alive: new singleton ring
}

}  // namespace pgrid::chord
