#include "chord/ring.h"

#include <algorithm>

#include "common/expects.h"

namespace pgrid::chord {

ChordRing::ChordRing(net::Network& network, ChordConfig config, Rng rng)
    : net_(network), config_(config), rng_(rng) {}

ChordHost& ChordRing::add_host(Guid id) {
  hosts_.push_back(
      std::make_unique<ChordHost>(net_, id, config_, rng_.fork(hosts_.size())));
  alive_.push_back(true);
  return *hosts_.back();
}

Peer ring_oracle_successor(const std::vector<const ChordNode*>& nodes,
                           Guid key) {
  Peer best = kNoPeer;
  std::uint64_t best_dist = 0;
  for (const ChordNode* node : nodes) {
    // successor(key): minimal clockwise distance from key to a node id,
    // where distance 0 (the node exactly at the key) counts as owner.
    const std::uint64_t dist = key.clockwise_to(node->id());
    if (!best.valid() || dist < best_dist) {
      best = Peer{node->addr(), node->id()};
      best_dist = dist;
    }
  }
  return best;
}

void wire_ring_instantly(const std::vector<ChordNode*>& nodes) {
  PGRID_EXPECTS(!nodes.empty());
  const std::vector<const ChordNode*> view(nodes.begin(), nodes.end());
  std::vector<std::size_t> order(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a]->id() < nodes[b]->id();
  });

  const std::size_t n = order.size();
  auto peer_at = [&](std::size_t ring_pos) {
    ChordNode& node = *nodes[order[ring_pos % n]];
    return Peer{node.addr(), node.id()};
  };

  for (std::size_t pos = 0; pos < n; ++pos) {
    ChordNode& node = *nodes[order[pos]];

    const Peer pred = peer_at(pos + n - 1);
    std::vector<Peer> succs;
    const std::size_t list_len =
        std::min(node.config().successor_list_len, n > 1 ? n - 1 : 1);
    for (std::size_t k = 1; k <= std::max<std::size_t>(list_len, 1); ++k) {
      succs.push_back(peer_at(pos + k));
    }

    std::array<Peer, ChordNode::kBits> fingers{};
    // finger[i] = successor(id + 2^i) over the sorted ring.
    for (int i = 0; i < ChordNode::kBits; ++i) {
      const Guid start{node.id().value() + (std::uint64_t{1} << i)};
      fingers[static_cast<std::size_t>(i)] =
          ring_oracle_successor(view, start);
    }
    node.install_state(pred, std::move(succs), fingers);
  }
}

void ChordRing::wire_instantly() {
  std::vector<ChordNode*> live;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) live.push_back(&hosts_[i]->node());
  }
  wire_ring_instantly(live);
}

Peer ChordRing::oracle_successor(Guid key) const {
  std::vector<const ChordNode*> live;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (alive_[i]) live.push_back(&hosts_[i]->node());
  }
  return ring_oracle_successor(live, key);
}

void ChordRing::crash(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (!alive_[index]) return;
  alive_[index] = false;
  net_.set_alive(hosts_[index]->addr(), false);
  hosts_[index]->node().crash();
}

void ChordRing::restart(std::size_t index) {
  PGRID_EXPECTS(index < hosts_.size());
  if (alive_[index]) return;
  alive_[index] = true;
  net_.set_alive(hosts_[index]->addr(), true);
  // Rejoin through the first live host.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i != index && alive_[i]) {
      const ChordNode& boot = hosts_[i]->node();
      hosts_[index]->node().join(Peer{boot.addr(), boot.id()}, nullptr);
      return;
    }
  }
  hosts_[index]->node().create();  // nobody else alive: new singleton ring
}

}  // namespace pgrid::chord
