#pragma once
// Chord protocol messages (Stoica et al., SIGCOMM'01), iterative style:
// the lookup initiator drives routing hop by hop, so hop counts — the
// paper's "matchmaking cost" denominator — are counted at the initiator.

#include <cstdint>
#include <vector>

#include "chord/peer.h"
#include "net/message.h"

namespace pgrid::chord {

enum MsgType : std::uint16_t {
  kNextHopReq = net::kTagChordBase + 0,
  kNextHopResp = net::kTagChordBase + 1,
  kStabilizeReq = net::kTagChordBase + 2,
  kStabilizeResp = net::kTagChordBase + 3,
  kNotify = net::kTagChordBase + 4,
  kPingReq = net::kTagChordBase + 5,
  kPingResp = net::kTagChordBase + 6,
};

/// "Who is the next hop toward `key`?" The receiver answers with either its
/// successor (done) or its closest preceding finger for the key.
struct NextHopReq final : net::Message {
  static constexpr std::uint16_t kType = kNextHopReq;

  explicit NextHopReq(Guid k) : Message(kType), key(k) {}

  Guid key;
  /// Nodes the initiator has observed dead during this lookup; the receiver
  /// skips them when picking the next hop (bounded fault-avoidance state).
  std::vector<Guid> avoid;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 8 + avoid.size() * 8;
  }
  PGRID_MESSAGE_CLONE(NextHopReq)
};

struct NextHopResp final : net::Message {
  static constexpr std::uint16_t kType = kNextHopResp;

  NextHopResp(bool d, Peer n) : Message(kType), done(d), node(n) {}

  /// True: `node` is successor(key). False: `node` is the next node to ask.
  bool done;
  Peer node;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 1 + 12;
  }
  PGRID_MESSAGE_CLONE(NextHopResp)
};

/// Stabilize: fetch the successor's predecessor and successor list in one
/// round trip (the classic get-predecessor plus successor-list pull).
struct StabilizeReq final : net::Message {
  static constexpr std::uint16_t kType = kStabilizeReq;
  StabilizeReq() : Message(kType) {}
  PGRID_MESSAGE_CLONE(StabilizeReq)
};

struct StabilizeResp final : net::Message {
  static constexpr std::uint16_t kType = kStabilizeResp;

  StabilizeResp(Peer pred, std::vector<Peer> succs)
      : Message(kType), predecessor(pred), successors(std::move(succs)) {}

  Peer predecessor;
  std::vector<Peer> successors;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 12 + successors.size() * 12;
  }
  PGRID_MESSAGE_CLONE(StabilizeResp)
};

/// notify(n'): "I believe I might be your predecessor."
struct Notify final : net::Message {
  static constexpr std::uint16_t kType = kNotify;

  explicit Notify(Peer p) : Message(kType), peer(p) {}

  Peer peer;

  [[nodiscard]] std::size_t payload_size() const noexcept override { return 12; }
  PGRID_MESSAGE_CLONE(Notify)
};

struct PingReq final : net::Message {
  static constexpr std::uint16_t kType = kPingReq;
  PingReq() : Message(kType) {}
  PGRID_MESSAGE_CLONE(PingReq)
};

struct PingResp final : net::Message {
  static constexpr std::uint16_t kType = kPingResp;
  PingResp() : Message(kType) {}
  PGRID_MESSAGE_CLONE(PingResp)
};

}  // namespace pgrid::chord
