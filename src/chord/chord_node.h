#pragma once
// Chord DHT node (Stoica et al., SIGCOMM'01): the underlying lookup service
// the paper assumes for the RN-Tree framework and for mapping job GUIDs to
// owner nodes (Fig. 1 steps 1-2).
//
// Iterative lookups (the initiator drives hop-by-hop), successor lists for
// failure resilience, and the standard stabilize / fix-fingers / check-
// predecessor maintenance trio, all driven by the discrete-event simulator.
//
// A ChordNode does not register itself on the network: its owner (a test
// host or a grid node that stacks more protocols on the same address)
// forwards incoming messages to handle().

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chord/messages.h"
#include "chord/peer.h"
#include "common/flat_map.h"
#include "net/batch.h"
#include "common/phi_detector.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace pgrid::chord {

struct ChordConfig {
  sim::SimTime stabilize_period = sim::SimTime::seconds(1.0);
  sim::SimTime fix_fingers_period = sim::SimTime::millis(500);
  sim::SimTime check_predecessor_period = sim::SimTime::seconds(1.0);
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2.0);
  /// Transmissions per RPC before the peer is presumed dead (retransmission
  /// keeps one lost datagram from condemning a live node).
  int rpc_attempts = 2;
  std::size_t successor_list_len = 8;
  /// Whole-lookup restarts after observing a dead hop.
  int lookup_retries = 3;
  /// Static-membership experiments can skip periodic maintenance entirely.
  bool run_maintenance = true;
  /// φ-accrual liveness (default off = legacy timeout-evicts-immediately).
  /// When on, an RPC timeout against a peer we have recently heard from
  /// only *suspects* it (triggering a successor-tail refresh) — eviction
  /// waits until the silence is implausible under the learned arrival gaps.
  PhiAccrualConfig phi;
  /// Maintenance batching (DESIGN.md §16). When enabled the stabilize /
  /// fix-fingers / check-predecessor trio collapses into one combined round
  /// at stabilize_period, issued inside a batch scope so the probes that
  /// target the same peer (usually the successor) share a wire message.
  net::BatchingConfig batching;
};

struct ChordStats {
  std::uint64_t lookups_started = 0;
  std::uint64_t lookups_ok = 0;
  std::uint64_t lookups_failed = 0;
  RunningStats lookup_hops;
  std::uint64_t suspicions = 0;      // φ: timeouts downgraded to suspicion
  std::uint64_t evictions = 0;       // remove_failed invocations
  std::uint64_t succ_refreshes = 0;  // suspicion-triggered tail refreshes
};

class ChordNode {
 public:
  static constexpr int kBits = 64;

  /// Lookup continuation: result is successor(key), or invalid on failure;
  /// hops counts remote next-hop queries issued (0 if resolved locally).
  using LookupCallback = std::function<void(Peer result, int hops)>;

  ChordNode(net::Network& network, net::NodeAddr self, Guid id,
            ChordConfig config, Rng rng);
  ~ChordNode();

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  /// Start a new ring containing only this node.
  void create();

  /// Join an existing ring through `bootstrap`. `done(ok)` fires once the
  /// successor is resolved; full table convergence happens via maintenance.
  void join(Peer bootstrap, std::function<void(bool ok)> done);

  /// Crash: stop timers, drop all protocol state and outstanding RPCs.
  /// (The owner is responsible for marking the address dead on the network.)
  void crash();

  /// Resolve successor(key) starting from this node.
  void lookup(Guid key, LookupCallback cb);

  /// Offer an incoming message; returns true iff it was a Chord message.
  bool handle(net::NodeAddr from, net::MessagePtr& msg);

  [[nodiscard]] Guid id() const noexcept { return id_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return rpc_.self(); }
  [[nodiscard]] Peer self_peer() const noexcept { return Peer{addr(), id_}; }
  [[nodiscard]] Peer successor() const noexcept {
    return successors_.empty() ? kNoPeer : successors_.front();
  }
  [[nodiscard]] Peer predecessor() const noexcept { return predecessor_; }
  [[nodiscard]] const std::vector<Peer>& successor_list() const noexcept {
    return successors_;
  }
  [[nodiscard]] Peer finger(int i) const {
    return fingers_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const ChordStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ChordConfig& config() const noexcept { return config_; }

  /// Bytes behind this node's routing state (successor list, route scan,
  /// lost-peer ring) for memory accounting; capacity snapshot, not hot path.
  [[nodiscard]] std::size_t table_memory_bytes() const noexcept {
    return (successors_.capacity() + route_scan_.capacity() +
            lost_.capacity()) *
               sizeof(Peer) +
           detectors_.capacity() *
               sizeof(std::pair<net::NodeAddr, PhiDetector>) +
           sizeof(fingers_);
  }

  /// Bytes held by this node's RPC pending-call slab.
  [[nodiscard]] std::size_t rpc_memory_bytes() const noexcept {
    return rpc_.memory_bytes();
  }

  /// A random routing-table entry (for the RN-Tree's limited random walk).
  [[nodiscard]] Peer random_peer(Rng& rng) const;

  /// Install exact routing state (instant bootstrap for experiments).
  void install_state(Peer predecessor, std::vector<Peer> successor_list,
                     const std::array<Peer, kBits>& fingers);

 private:
  // --- message handlers -----------------------------------------------
  void on_next_hop(net::NodeAddr from, const NextHopReq& req);
  void on_stabilize(net::NodeAddr from, const StabilizeReq& req);
  void on_notify(const Notify& msg);
  void on_ping(net::NodeAddr from, const PingReq& req);

  // --- lookup machinery -------------------------------------------------
  struct LookupState {
    Guid key;
    LookupCallback cb;
    int hops = 0;
    int retries_left = 0;
    std::vector<Guid> avoid;
  };
  void lookup_restart(const std::shared_ptr<LookupState>& st);
  void lookup_ask(const std::shared_ptr<LookupState>& st, Peer target);
  void lookup_done(const std::shared_ptr<LookupState>& st, Peer result);
  void lookup_failed(const std::shared_ptr<LookupState>& st);

  /// Closest finger/successor strictly between this node and `key`,
  /// skipping `avoid`.
  [[nodiscard]] Peer closest_preceding(Guid key,
                                       const std::vector<Guid>& avoid) const;

  // --- maintenance -------------------------------------------------------
  void start_maintenance();
  void do_stabilize();
  void do_fix_fingers();
  void do_check_predecessor();
  /// Batched maintenance: stabilize + several finger fixes + predecessor
  /// ping in one batch scope (see ChordConfig::batching).
  void do_combined_round();
  void adopt_successor_list(Peer head, const std::vector<Peer>& tail);
  void remove_failed(Peer peer);
  /// Recompute route_scan_; must follow any fingers_/successors_ change.
  void rebuild_route_scan();

  // --- φ-accrual liveness (config_.phi) ----------------------------------
  /// Record an arrival from `from` if it is a current routing peer (bounds
  /// detector growth to the table); no-op when the detector is disabled.
  void note_alive(net::NodeAddr from);
  /// True when the detector agrees the peer may be evicted (or there is no
  /// arrival history to judge by, which falls back to the legacy rule).
  [[nodiscard]] bool phi_allows_evict(net::NodeAddr peer) const;
  /// Suspicion action: rebuild the successor-list tail behind the (kept)
  /// head from the first live backup's fresh view of the ring.
  void refresh_successor_tail();

  // --- partition-heal reconciliation ------------------------------------
  // Peers evicted by remove_failed are remembered (bounded) and probed one
  // per stabilize round. A probe answered means the peer was not dead but
  // unreachable — a healed partition or a restarted node — and the two
  // rings that formed in the meantime must merge again. Without this,
  // stabilize alone never reconnects disjoint rings.
  void note_lost(Peer peer);
  void reconcile_lost();
  void revive(Peer peer);

  net::Network& net_;
  net::RpcEndpoint rpc_;
  Guid id_;
  ChordConfig config_;
  Rng rng_;

  bool running_ = false;
  Peer predecessor_ = kNoPeer;
  std::vector<Peer> successors_;  // front() is the successor
  std::array<Peer, kBits> fingers_{};
  int next_finger_ = 0;
  /// closest_preceding's scan order — fingers_ high-to-low then successors_
  /// — with invalid/self entries and adjacent-duplicate runs removed.
  /// Most of the 64 fingers repeat the same few peers (only ~log2(N) are
  /// distinct), and dropping repeats cannot change an arg-max, so routing
  /// decisions are identical while the per-hop scan shrinks ~5x. Rebuilt
  /// by every fingers_/successors_ mutation site (rebuild_route_scan).
  std::vector<Peer> route_scan_;

  static constexpr std::size_t kLostCap = 16;
  std::vector<Peer> lost_;  // candidates for ring-merge probing
  std::size_t lost_cursor_ = 0;

  /// Per-peer arrival history for φ-accrual; populated only while
  /// config_.phi.enabled, and only for peers present in the routing state.
  FlatMap<net::NodeAddr, PhiDetector> detectors_;

  std::unique_ptr<sim::PeriodicTask> stabilize_task_;
  std::unique_ptr<sim::PeriodicTask> fix_fingers_task_;
  std::unique_ptr<sim::PeriodicTask> check_pred_task_;
  /// Finger fixes per combined batched round (batching mode only).
  int fix_per_round_ = 1;

  ChordStats stats_;
};

}  // namespace pgrid::chord
