#pragma once
// A (network address, GUID) pair — how Chord nodes refer to each other.

#include "common/guid.h"
#include "net/message.h"

namespace pgrid::chord {

struct Peer {
  net::NodeAddr addr = net::kNullAddr;
  Guid id;

  [[nodiscard]] bool valid() const noexcept { return addr != net::kNullAddr; }

  friend bool operator==(const Peer&, const Peer&) noexcept = default;
};

inline constexpr Peer kNoPeer{};

}  // namespace pgrid::chord
