#pragma once
// Chord ring harness: owns a set of ChordNodes, supports both protocol-level
// joins and instant ("oracle") wiring, and answers ground-truth successor
// queries for tests and for the centralized matchmaker baseline.

#include <memory>
#include <vector>

#include "chord/chord_node.h"
#include "common/rng.h"
#include "net/network.h"

namespace pgrid::chord {

/// Standalone network host owning exactly one ChordNode (tests/benches;
/// the grid layer embeds ChordNode in its own host instead).
class ChordHost final : public net::MessageHandler {
 public:
  ChordHost(net::Network& network, Guid id, ChordConfig config, Rng rng)
      : addr_(network.add_handler(this)),
        node_(network, addr_, id, config, rng) {}

  void on_message(net::NodeAddr from, net::MessagePtr msg) override {
    node_.handle(from, msg);
  }

  [[nodiscard]] ChordNode& node() noexcept { return node_; }
  [[nodiscard]] const ChordNode& node() const noexcept { return node_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return addr_; }

 private:
  net::NodeAddr addr_;
  ChordNode node_;
};

/// Install exact routing state (successors, predecessors, fingers) into a
/// set of live ChordNodes, forming a perfectly consistent ring. Used for
/// instant experiment bootstrap by ChordRing and by the grid layer.
/// Sorts once into a flat (Guid, Peer) ring; successors and predecessors
/// are neighbors in ring order. Per node, every finger bit whose span fits
/// inside the gap to the next node is the immediate successor (all but
/// ~log2(N) of 64 bits); the rest resolve via monotone-floor binary
/// searches. O(N log N) sort + O(N · (64 + log²N)).
void wire_ring_instantly(const std::vector<ChordNode*>& nodes);

/// Reference implementation of wire_ring_instantly that resolves each of
/// the 64 fingers per node with an O(N) oracle scan — O(64 · N²) total.
/// Retained only so property tests can assert the fast path produces
/// bit-identical routing state; never call it on large rings.
void wire_ring_instantly_naive(const std::vector<ChordNode*>& nodes);

/// Ground-truth successor among the given nodes (O(N) scan).
[[nodiscard]] Peer ring_oracle_successor(
    const std::vector<const ChordNode*>& nodes, Guid key);

class ChordRing {
 public:
  ChordRing(net::Network& network, ChordConfig config, Rng rng);

  /// Create a host with the given GUID. Does not start any protocol.
  ChordHost& add_host(Guid id);

  /// Wire all current hosts into a consistent ring instantly: exact
  /// successors/predecessors, full successor lists and fingers.
  void wire_instantly();

  /// Ground truth: the live node owning `key` (successor among live nodes).
  /// O(log N): answered from a cached sorted index of live nodes that is
  /// invalidated only by add_host/crash/restart, since the benches and the
  /// centralized matchmaker baseline call this once per job.
  [[nodiscard]] Peer oracle_successor(Guid key) const;

  /// Mark a host crashed: network-dead plus protocol shutdown.
  void crash(std::size_t index);

  /// Restart a crashed host and rejoin through any live node.
  void restart(std::size_t index);

  [[nodiscard]] std::size_t size() const noexcept { return hosts_.size(); }
  [[nodiscard]] ChordHost& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] const ChordHost& host(std::size_t i) const {
    return *hosts_.at(i);
  }
  [[nodiscard]] bool crashed(std::size_t i) const { return !alive_.at(i); }
  [[nodiscard]] net::Network& network() noexcept { return net_; }

 private:
  void ensure_live_index() const;

  net::Network& net_;
  ChordConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<ChordHost>> hosts_;
  std::vector<bool> alive_;

  // Cached live index: host indices in host order (for wiring) plus the
  // same peers sorted by GUID (for O(log N) oracle queries). Rebuilt lazily
  // after any membership change.
  mutable bool live_dirty_ = true;
  mutable std::vector<std::size_t> live_hosts_;
  mutable std::vector<Guid> live_ids_;    // sorted
  mutable std::vector<Peer> live_peers_;  // aligned with live_ids_
};

}  // namespace pgrid::chord
