#include "net/message_pool.h"

#include <new>

#include "common/expects.h"

namespace pgrid::net {

namespace {

/// Header prepended to every pooled block. 16 bytes keeps user storage at
/// max_align for the doubles and pointers inside message payloads.
struct alignas(16) BlockHeader {
  void* owner;             // the ThreadCache that allocated the block
  std::uint32_t size_class;  // index into free lists; kOversizeClass if none
  std::uint32_t magic;
};

constexpr std::uint32_t kMagic = 0x9b3d7a1eu;
constexpr std::uint32_t kOversizeClass = 0xffffffffu;

struct FreeBlock {
  FreeBlock* next;
};

struct ThreadCache {
  FreeBlock* free_lists[MessagePool::kClassCount] = {};
  MessagePool::Stats stats;

  ~ThreadCache() { purge(); }

  void purge() noexcept {
    for (std::size_t c = 0; c < MessagePool::kClassCount; ++c) {
      // A cached block's FreeBlock link overlays the header base, so the
      // block pointer is exactly the pointer ::operator new returned.
      FreeBlock* block = free_lists[c];
      while (block != nullptr) {
        FreeBlock* next = block->next;
        ::operator delete(static_cast<void*>(block),
                          std::align_val_t{alignof(BlockHeader)});
        block = next;
      }
      free_lists[c] = nullptr;
    }
    stats.cached_blocks = 0;
    stats.cached_bytes = 0;
  }
};

/// Readable even while (or after) the cache's destructor runs at thread
/// exit: trivially destructible, so late frees from static teardown fall
/// into the foreign path instead of touching a dead cache.
thread_local bool t_cache_alive = false;

ThreadCache& cache() {
  thread_local struct Guard {
    ThreadCache c;
    Guard() { t_cache_alive = true; }
    ~Guard() { t_cache_alive = false; }
  } guard;
  return guard.c;
}

std::size_t class_bytes(std::uint32_t size_class) noexcept {
  return (static_cast<std::size_t>(size_class) + 1) * MessagePool::kClassStep;
}

void* fresh_block(std::size_t user_bytes, std::uint32_t size_class) {
  auto* header = static_cast<BlockHeader*>(
      ::operator new(sizeof(BlockHeader) + user_bytes,
                     std::align_val_t{alignof(BlockHeader)}));
  header->size_class = size_class;
  header->magic = kMagic;
  return header + 1;
}

}  // namespace

void* MessagePool::allocate(std::size_t size) {
  ThreadCache& tc = cache();
  if (size > kMaxPooledSize) {
    ++tc.stats.oversize;
    ++tc.stats.fresh;
    void* p = fresh_block(size, kOversizeClass);
    static_cast<BlockHeader*>(p)[-1].owner = &tc;
    return p;
  }
  const auto size_class =
      static_cast<std::uint32_t>((size + kClassStep - 1) / kClassStep - 1);
  tc.stats.live_bytes +=
      static_cast<std::int64_t>(class_bytes(size_class) + sizeof(BlockHeader));
  ++tc.stats.live_blocks;
  if (FreeBlock* block = tc.free_lists[size_class]; block != nullptr) {
    tc.free_lists[size_class] = block->next;
    ++tc.stats.reused;
    --tc.stats.cached_blocks;
    tc.stats.cached_bytes -= class_bytes(size_class);
    auto* header = reinterpret_cast<BlockHeader*>(block);
    header->owner = &tc;  // unchanged, but keep the invariant explicit
    header->size_class = size_class;
    header->magic = kMagic;
    return header + 1;
  }
  ++tc.stats.fresh;
  void* p = fresh_block(class_bytes(size_class), size_class);
  static_cast<BlockHeader*>(p)[-1].owner = &tc;
  return p;
}

void MessagePool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  auto* header = static_cast<BlockHeader*>(p) - 1;
  PGRID_ASSERT(header->magic == kMagic);
  if (header->size_class != kOversizeClass && t_cache_alive) {
    ThreadCache& tc = cache();
    if (header->owner == &tc) {
      auto* block = reinterpret_cast<FreeBlock*>(header);
      block->next = tc.free_lists[header->size_class];
      tc.free_lists[header->size_class] = block;
      ++tc.stats.cached_blocks;
      tc.stats.cached_bytes += class_bytes(header->size_class);
      tc.stats.live_bytes -= static_cast<std::int64_t>(
          class_bytes(header->size_class) + sizeof(BlockHeader));
      --tc.stats.live_blocks;
      return;
    }
    ++tc.stats.foreign;
  }
  ::operator delete(static_cast<void*>(header),
                    std::align_val_t{alignof(BlockHeader)});
}

MessagePool::Stats MessagePool::stats() noexcept { return cache().stats; }

void MessagePool::trim() noexcept { cache().purge(); }

}  // namespace pgrid::net
