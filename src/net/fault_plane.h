#pragma once
// Adversarial fault plane for the simulated network.
//
// The base Network models only crash-death and uniform Bernoulli loss; real
// desktop grids also see partitions (including asymmetric one-way cuts),
// congested or lossy individual links, duplicated and reordered datagrams,
// and gray nodes that are alive but pathologically slow. The FaultPlane
// composes those failure classes into Network::send: the network asks it to
// judge() every message, and the verdict says drop/deliver, how many copies,
// and how much extra delay each copy suffers.
//
// Every decision is drawn from an Rng forked off the run seed, and heal
// times ride the simulator's event queue, so an entire fault schedule is
// reproducible from the seed alone — the property the chaos harness's
// failing-seed replay relies on.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace pgrid::net {

/// Extra loss and delay on one directed link (flaky last mile, congested
/// uplink). Delay is uniform in [extra_latency_min, extra_latency_max].
struct LinkFault {
  double loss = 0.0;
  sim::SimTime extra_latency_min = sim::SimTime::zero();
  sim::SimTime extra_latency_max = sim::SimTime::zero();
};

/// A gray (slow-but-alive) node: every message to or from it has its
/// sampled latency multiplied by `latency_scale` and is dropped with
/// probability `loss`. The node never looks dead — that is the point.
struct GrayFault {
  double latency_scale = 8.0;
  double loss = 0.0;
};

class FaultPlane {
 public:
  using PartitionId = std::uint32_t;
  static constexpr PartitionId kNoPartition = 0xffffffffu;

  FaultPlane(sim::Simulator& simulator, Rng rng);

  // --- partitions ----------------------------------------------------------
  /// Cut the links between `side_a` and `side_b`. Bidirectional by default;
  /// with `one_way` only a -> b traffic is blocked (asymmetric cut: a can
  /// still hear b). Returns a handle for heal().
  PartitionId cut(std::string name, std::vector<NodeAddr> side_a,
                  std::vector<NodeAddr> side_b, bool one_way = false);

  /// Reconnect a cut. Idempotent; healing twice is a no-op.
  void heal(PartitionId id);
  /// Schedule heal(id) `delay` from now on the simulator.
  void heal_after(PartitionId id, sim::SimTime delay);
  [[nodiscard]] bool partition_active(PartitionId id) const;
  [[nodiscard]] std::size_t active_partitions() const noexcept;

  // --- per-link faults -----------------------------------------------------
  void set_link(NodeAddr from, NodeAddr to, LinkFault fault,
                bool symmetric = true);
  void clear_link(NodeAddr from, NodeAddr to, bool symmetric = true);
  void clear_links() { links_.clear(); }

  // --- global congestion window --------------------------------------------
  /// Extra loss and a latency multiplier applied to every message (a
  /// network-wide congestion episode). Scale must be >= 1.
  void set_congestion(double extra_loss, double latency_scale);
  void clear_congestion() { set_congestion(0.0, 1.0); }

  // --- duplication and reordering ------------------------------------------
  /// Deliver a second copy of a message with probability `p` (applies only
  /// to message types that implement clone()).
  void set_duplication(double p);
  /// With probability `p`, add uniform extra delay in [0, window] — enough
  /// to reorder a message behind later sends.
  void set_reorder(double p, sim::SimTime window);

  // --- gray nodes ----------------------------------------------------------
  void set_gray(NodeAddr node, GrayFault fault);
  void clear_gray(NodeAddr node);
  [[nodiscard]] bool is_gray(NodeAddr node) const {
    return gray_.count(node) != 0;
  }
  [[nodiscard]] std::size_t gray_count() const noexcept { return gray_.size(); }

  /// Heal every partition and clear every override — the "all faults healed"
  /// barrier the chaos harness schedules at the end of its fault window.
  void clear_all();

  /// True iff no fault of any kind is currently armed.
  [[nodiscard]] bool quiescent() const noexcept;

  // --- the verdict ---------------------------------------------------------
  enum class DropCause : std::uint8_t { kNone, kPartition, kFault };

  struct Verdict {
    bool drop = false;
    DropCause cause = DropCause::kNone;
    int copies = 1;                 // 2 when the message is duplicated
    double latency_scale = 1.0;     // gray slowdown x congestion
    sim::SimTime extra_delay = sim::SimTime::zero();  // link + reorder jitter
    bool reordered = false;
  };

  /// Judge one send. `cloneable` gates duplication (non-cloneable messages
  /// cannot be copied). Consumes fault-plane randomness deterministically.
  Verdict judge(NodeAddr from, NodeAddr to, bool cloneable);

  /// Trace bus for fault lifecycle events (cut/heal/gray); not owned.
  void set_trace(obs::TraceBus* bus) noexcept { trace_ = bus; }

  // --- counters ------------------------------------------------------------
  [[nodiscard]] std::uint64_t partitions_cut() const noexcept {
    return partitions_cut_;
  }
  [[nodiscard]] std::uint64_t partitions_healed() const noexcept {
    return partitions_healed_;
  }

 private:
  struct Partition {
    std::string name;
    std::unordered_set<NodeAddr> side_a;
    std::unordered_set<NodeAddr> side_b;
    bool one_way = false;
    bool active = true;
  };

  [[nodiscard]] static std::uint64_t link_key(NodeAddr from,
                                              NodeAddr to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  [[nodiscard]] bool partition_blocks(NodeAddr from, NodeAddr to) const;

  sim::Simulator& sim_;
  Rng rng_;
  obs::TraceBus* trace_ = nullptr;

  std::vector<Partition> partitions_;
  std::size_t active_partitions_ = 0;
  std::unordered_map<std::uint64_t, LinkFault> links_;
  std::unordered_map<NodeAddr, GrayFault> gray_;
  double congestion_loss_ = 0.0;
  double congestion_scale_ = 1.0;
  double duplication_p_ = 0.0;
  double reorder_p_ = 0.0;
  sim::SimTime reorder_window_ = sim::SimTime::zero();

  std::uint64_t partitions_cut_ = 0;
  std::uint64_t partitions_healed_ = 0;
};

}  // namespace pgrid::net
