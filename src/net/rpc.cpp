#include "net/rpc.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pgrid::net {

RetryPolicy RetryPolicy::from_timeout(sim::SimTime timeout, int attempts) {
  RetryPolicy policy;
  policy.base_timeout = timeout;
  policy.timeout_factor = 2.0;
  policy.max_timeout = timeout * 4;
  policy.base_backoff = sim::SimTime::nanos(timeout.ns() / 4);
  policy.max_backoff = timeout;
  policy.attempts = attempts;
  return policy;
}

RpcEndpoint::RpcEndpoint(Network& network, NodeAddr self)
    : net_(network),
      self_(self),
      stream_(network.next_rpc_stream()),
      next_id_(stream_ << 32 | 1),
      rng_(network.fork_rng()) {}

RpcEndpoint::~RpcEndpoint() { cancel_all(); }

std::uint64_t RpcEndpoint::call(NodeAddr to, MessagePtr request,
                                sim::SimTime timeout, Continuation k) {
  PGRID_EXPECTS(request != nullptr);
  PGRID_EXPECTS(k != nullptr);
  const std::uint64_t id = next_id_++;
  request->rpc_id = id;
  request->is_reply = false;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcIssue, self_, to,
                    request->type(), id);

  const sim::EventId timeout_event =
      net_.simulator().schedule_in(timeout, [this, to, id] {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        Continuation cont = std::move(it->second.k);
        pending_.erase(it);
        ++timeouts_;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcTimeout, self_,
                          to, 0, id);
        cont(nullptr);
      });

  pending_.emplace(id, Pending{std::move(k), timeout_event});
  net_.send(self_, to, std::move(request));
  return id;
}

struct RpcEndpoint::RetryState {
  NodeAddr to = kNullAddr;
  std::function<MessagePtr()> make;
  Continuation k;
  RetryPolicy policy;
  int attempt = 0;
  sim::SimTime started;
  sim::SimTime prev_backoff;
};

void RpcEndpoint::call_retry(NodeAddr to, std::function<MessagePtr()> make,
                             const RetryPolicy& policy, Continuation k) {
  PGRID_EXPECTS(make != nullptr);
  PGRID_EXPECTS(k != nullptr);
  PGRID_EXPECTS(policy.attempts >= 1);
  PGRID_EXPECTS(policy.timeout_factor >= 1.0);
  auto st = std::make_shared<RetryState>();
  st->to = to;
  st->make = std::move(make);
  st->k = std::move(k);
  st->policy = policy;
  st->started = net_.simulator().now();
  st->prev_backoff = policy.base_backoff;
  retry_attempt(std::move(st));
}

void RpcEndpoint::retry_attempt(std::shared_ptr<RetryState> st) {
  const RetryPolicy& policy = st->policy;
  sim::SimTime timeout = sim::SimTime::nanos(static_cast<std::int64_t>(
      static_cast<double>(policy.base_timeout.ns()) *
      std::pow(policy.timeout_factor, st->attempt)));
  timeout = std::min(timeout, policy.max_timeout);
  if (policy.deadline > sim::SimTime::zero()) {
    // The deadline budget bounds the whole exchange: the final attempt's
    // timeout shrinks to fit, and an exhausted budget fails immediately.
    const sim::SimTime elapsed = net_.simulator().now() - st->started;
    const sim::SimTime remaining = policy.deadline - elapsed;
    if (remaining <= sim::SimTime::zero()) {
      st->k(nullptr);
      return;
    }
    timeout = std::min(timeout, remaining);
  }

  call(st->to, st->make(), timeout, [this, st](MessagePtr reply) mutable {
    const RetryPolicy& p = st->policy;
    const bool budget_left =
        p.deadline <= sim::SimTime::zero() ||
        net_.simulator().now() - st->started < p.deadline;
    if (reply != nullptr || st->attempt + 1 >= p.attempts || !budget_left) {
      st->k(std::move(reply));
      return;
    }
    ++st->attempt;
    // Decorrelated jitter: pause ~ U(base, 3 * previous pause), capped.
    const std::int64_t lo = p.base_backoff.ns();
    const std::int64_t hi =
        std::min(p.max_backoff.ns(), std::max(lo, st->prev_backoff.ns() * 3));
    const sim::SimTime pause =
        sim::SimTime::nanos(lo >= hi ? lo : rng_.range(lo, hi));
    st->prev_backoff = pause;
    auto event = std::make_shared<sim::EventId>(sim::kInvalidEvent);
    *event = net_.simulator().schedule_in(
        pause, [this, st = std::move(st), event] {
          backoff_waits_.erase(*event);
          retry_attempt(st);
        });
    backoff_waits_.insert(*event);
  });
}

void RpcEndpoint::reply(NodeAddr to, const Message& request,
                        MessagePtr response) {
  PGRID_EXPECTS(response != nullptr);
  PGRID_EXPECTS(request.rpc_id != 0);
  response->rpc_id = request.rpc_id;
  response->is_reply = true;
  net_.send(self_, to, std::move(response));
}

void RpcEndpoint::send(NodeAddr to, MessagePtr msg) {
  PGRID_EXPECTS(msg != nullptr);
  net_.send(self_, to, std::move(msg));
}

bool RpcEndpoint::consume_reply(MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (!msg->is_reply || msg->rpc_id == 0) return false;
  if ((msg->rpc_id >> 32) != stream_) return false;  // another endpoint's
  auto it = pending_.find(msg->rpc_id);
  if (it == pending_.end()) return true;  // late reply after timeout: drop
  Continuation cont = std::move(it->second.k);
  net_.simulator().cancel(it->second.timeout_event);
  pending_.erase(it);
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcComplete, self_,
                    obs::kNoActor, msg->type(), msg->rpc_id);
  cont(std::move(msg));
  return true;
}

void RpcEndpoint::cancel(std::uint64_t rpc_id) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;
  net_.simulator().cancel(it->second.timeout_event);
  pending_.erase(it);
}

void RpcEndpoint::cancel_all() {
  for (auto& [id, p] : pending_) {
    net_.simulator().cancel(p.timeout_event);
  }
  pending_.clear();
  // Also stop retry chains waiting out a backoff pause; without this a
  // crashed node would keep retransmitting from beyond the grave.
  for (const sim::EventId id : backoff_waits_) {
    net_.simulator().cancel(id);
  }
  backoff_waits_.clear();
}

}  // namespace pgrid::net
