#include "net/rpc.h"

#include <utility>

namespace pgrid::net {

RpcEndpoint::RpcEndpoint(Network& network, NodeAddr self)
    : net_(network),
      self_(self),
      stream_(network.next_rpc_stream()),
      next_id_(stream_ << 32 | 1) {}

RpcEndpoint::~RpcEndpoint() { cancel_all(); }

std::uint64_t RpcEndpoint::call(NodeAddr to, MessagePtr request,
                                sim::SimTime timeout, Continuation k) {
  PGRID_EXPECTS(request != nullptr);
  PGRID_EXPECTS(k != nullptr);
  const std::uint64_t id = next_id_++;
  request->rpc_id = id;
  request->is_reply = false;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcIssue, self_, to,
                    request->type(), id);

  const sim::EventId timeout_event =
      net_.simulator().schedule_in(timeout, [this, to, id] {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;
        Continuation cont = std::move(it->second.k);
        pending_.erase(it);
        ++timeouts_;
        PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcTimeout, self_,
                          to, 0, id);
        cont(nullptr);
      });

  pending_.emplace(id, Pending{std::move(k), timeout_event});
  net_.send(self_, to, std::move(request));
  return id;
}

void RpcEndpoint::call_retry(NodeAddr to, std::function<MessagePtr()> make,
                             sim::SimTime timeout, int attempts,
                             Continuation k) {
  PGRID_EXPECTS(make != nullptr);
  PGRID_EXPECTS(attempts >= 1);
  // Box the continuation so the retry chain can move it along.
  auto boxed = std::make_shared<Continuation>(std::move(k));
  // Build the request *before* the lambda captures `make` by move
  // (evaluation order between the two is unspecified otherwise).
  MessagePtr request = make();
  call(to, std::move(request), timeout,
       [this, to, make = std::move(make), timeout, attempts,
        boxed](MessagePtr reply) mutable {
         if (reply != nullptr || attempts <= 1) {
           (*boxed)(std::move(reply));
           return;
         }
         call_retry(to, std::move(make), timeout, attempts - 1,
                    [boxed](MessagePtr r) { (*boxed)(std::move(r)); });
       });
}

void RpcEndpoint::reply(NodeAddr to, const Message& request,
                        MessagePtr response) {
  PGRID_EXPECTS(response != nullptr);
  PGRID_EXPECTS(request.rpc_id != 0);
  response->rpc_id = request.rpc_id;
  response->is_reply = true;
  net_.send(self_, to, std::move(response));
}

void RpcEndpoint::send(NodeAddr to, MessagePtr msg) {
  PGRID_EXPECTS(msg != nullptr);
  net_.send(self_, to, std::move(msg));
}

bool RpcEndpoint::consume_reply(MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (!msg->is_reply || msg->rpc_id == 0) return false;
  if ((msg->rpc_id >> 32) != stream_) return false;  // another endpoint's
  auto it = pending_.find(msg->rpc_id);
  if (it == pending_.end()) return true;  // late reply after timeout: drop
  Continuation cont = std::move(it->second.k);
  net_.simulator().cancel(it->second.timeout_event);
  pending_.erase(it);
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcComplete, self_,
                    obs::kNoActor, msg->type(), msg->rpc_id);
  cont(std::move(msg));
  return true;
}

void RpcEndpoint::cancel(std::uint64_t rpc_id) {
  auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;
  net_.simulator().cancel(it->second.timeout_event);
  pending_.erase(it);
}

void RpcEndpoint::cancel_all() {
  for (auto& [id, p] : pending_) {
    net_.simulator().cancel(p.timeout_event);
  }
  pending_.clear();
}

}  // namespace pgrid::net
