#include "net/rpc.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pgrid::net {

RetryPolicy RetryPolicy::from_timeout(sim::SimTime timeout, int attempts) {
  RetryPolicy policy;
  policy.base_timeout = timeout;
  policy.timeout_factor = 2.0;
  policy.max_timeout = timeout * 4;
  policy.base_backoff = sim::SimTime::nanos(timeout.ns() / 4);
  policy.max_backoff = timeout;
  policy.attempts = attempts;
  return policy;
}

RpcEndpoint::RpcEndpoint(Network& network, NodeAddr self)
    : net_(network),
      self_(self),
      stream_(network.next_rpc_stream()),
      rng_(network.fork_rng_for(self)) {}

RpcEndpoint::~RpcEndpoint() { cancel_all(); }

RpcEndpoint::Pending* RpcEndpoint::find_pending(std::uint64_t rpc_id) noexcept {
  const auto slot = static_cast<std::uint16_t>(rpc_id & 0xffff);
  const auto gen = static_cast<std::uint16_t>((rpc_id >> 16) & 0xffff);
  if (slot >= pending_.size()) return nullptr;
  Pending& p = pending_[slot];
  return (p.live && p.generation == gen) ? &p : nullptr;
}

void RpcEndpoint::release_pending(std::uint16_t slot) noexcept {
  Pending& p = pending_[slot];
  p.k = nullptr;
  p.live = false;
  // A recycled slot's generation no longer matches stale correlation ids, so
  // a reply that outlives its call can never complete a newer one. (16-bit
  // generations wrap after 65536 reuses of one slot — far beyond any
  // message's in-flight lifetime.)
  if (++p.generation == 0) p.generation = 1;
  p.next_free = free_head_;
  free_head_ = slot;
  --outstanding_;
}

std::uint64_t RpcEndpoint::call(NodeAddr to, MessagePtr request,
                                sim::SimTime timeout, Continuation k) {
  PGRID_EXPECTS(request != nullptr);
  PGRID_EXPECTS(k != nullptr);
  std::uint16_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = pending_[slot].next_free;
  } else {
    PGRID_EXPECTS(pending_.size() < kMaxPending);
    pending_.emplace_back();
    slot = static_cast<std::uint16_t>(pending_.size() - 1);
  }
  Pending& p = pending_[slot];
  p.live = true;
  p.k = std::move(k);
  p.ctx = obs::TraceContext{};
#ifndef PGRID_OBS_DISABLED
  if (obs::TraceBus* bus = net_.trace(); bus != nullptr) p.ctx = bus->current();
#endif
  ++outstanding_;
  const std::uint64_t id =
      stream_ << 32 | std::uint64_t{p.generation} << 16 | slot;
  request->rpc_id = id;
  request->is_reply = false;
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcIssue, self_, to,
                    request->type(), id);

  p.timeout_event = net_.simulator().schedule_in(timeout, [this, to, id] {
    Pending* pending = find_pending(id);
    if (pending == nullptr) return;
    Continuation cont = std::move(pending->k);
#ifndef PGRID_OBS_DISABLED
    const obs::TraceContext caller_ctx = pending->ctx;
#endif
    release_pending(static_cast<std::uint16_t>(id & 0xffff));
    ++timeouts_;
    PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcTimeout, self_, to, 0,
                      id);
#ifndef PGRID_OBS_DISABLED
    obs::SpanScope scope(net_.trace(), caller_ctx);
#endif
    cont(nullptr);
  });

  net_.send(self_, to, std::move(request));
  return id;
}

struct RpcEndpoint::RetryState {
  NodeAddr to = kNullAddr;
  std::function<MessagePtr()> make;
  Continuation k;
  RetryPolicy policy;
  int attempt = 0;
  sim::SimTime started;
  sim::SimTime prev_backoff;
  /// Caller's span: re-installed for every attempt so retransmissions fired
  /// from backoff timers stay inside the sampled trace.
  obs::TraceContext ctx;
};

void RpcEndpoint::call_retry(NodeAddr to, std::function<MessagePtr()> make,
                             const RetryPolicy& policy, Continuation k) {
  PGRID_EXPECTS(make != nullptr);
  PGRID_EXPECTS(k != nullptr);
  PGRID_EXPECTS(policy.attempts >= 1);
  PGRID_EXPECTS(policy.timeout_factor >= 1.0);
  auto st = std::make_shared<RetryState>();
  st->to = to;
  st->make = std::move(make);
  st->k = std::move(k);
  st->policy = policy;
  st->started = net_.simulator().now();
  st->prev_backoff = policy.base_backoff;
#ifndef PGRID_OBS_DISABLED
  if (obs::TraceBus* bus = net_.trace(); bus != nullptr) {
    st->ctx = bus->current();
  }
#endif
  retry_attempt(std::move(st));
}

void RpcEndpoint::retry_attempt(std::shared_ptr<RetryState> st) {
#ifndef PGRID_OBS_DISABLED
  obs::SpanScope span_scope(net_.trace(), st->ctx);
#endif
  const RetryPolicy& policy = st->policy;
  sim::SimTime timeout = sim::SimTime::nanos(static_cast<std::int64_t>(
      static_cast<double>(policy.base_timeout.ns()) *
      std::pow(policy.timeout_factor, st->attempt)));
  timeout = std::min(timeout, policy.max_timeout);
  if (policy.deadline > sim::SimTime::zero()) {
    // The deadline budget bounds the whole exchange: the final attempt's
    // timeout shrinks to fit, and an exhausted budget fails immediately.
    const sim::SimTime elapsed = net_.simulator().now() - st->started;
    const sim::SimTime remaining = policy.deadline - elapsed;
    if (remaining <= sim::SimTime::zero()) {
      st->k(nullptr);
      return;
    }
    timeout = std::min(timeout, remaining);
  }

  call(st->to, st->make(), timeout, [this, st](MessagePtr reply) mutable {
    const RetryPolicy& p = st->policy;
    const bool budget_left =
        p.deadline <= sim::SimTime::zero() ||
        net_.simulator().now() - st->started < p.deadline;
    if (reply != nullptr || st->attempt + 1 >= p.attempts || !budget_left) {
      st->k(std::move(reply));
      return;
    }
    ++st->attempt;
    // Decorrelated jitter: pause ~ U(base, 3 * previous pause), capped.
    const std::int64_t lo = p.base_backoff.ns();
    const std::int64_t hi =
        std::min(p.max_backoff.ns(), std::max(lo, st->prev_backoff.ns() * 3));
    const sim::SimTime pause =
        sim::SimTime::nanos(lo >= hi ? lo : rng_.range(lo, hi));
    st->prev_backoff = pause;
    auto event = std::make_shared<sim::EventId>(sim::kInvalidEvent);
    *event = net_.simulator().schedule_in(
        pause, [this, st = std::move(st), event] {
          backoff_waits_.erase(*event);
          retry_attempt(st);
        });
    backoff_waits_.insert(*event);
  });
}

void RpcEndpoint::reply(NodeAddr to, const Message& request,
                        MessagePtr response) {
  PGRID_EXPECTS(response != nullptr);
  PGRID_EXPECTS(request.rpc_id != 0);
  response->rpc_id = request.rpc_id;
  response->is_reply = true;
  net_.send(self_, to, std::move(response));
}

void RpcEndpoint::send(NodeAddr to, MessagePtr msg) {
  PGRID_EXPECTS(msg != nullptr);
  net_.send(self_, to, std::move(msg));
}

bool RpcEndpoint::consume_reply(MessagePtr& msg) {
  PGRID_EXPECTS(msg != nullptr);
  if (!msg->is_reply || msg->rpc_id == 0) return false;
  if ((msg->rpc_id >> 32) != stream_) return false;  // another endpoint's
  Pending* p = find_pending(msg->rpc_id);
  if (p == nullptr) return true;  // late reply after timeout: drop
  Continuation cont = std::move(p->k);
  net_.simulator().cancel(p->timeout_event);
  release_pending(static_cast<std::uint16_t>(msg->rpc_id & 0xffff));
  PGRID_TRACE_EVENT(net_.trace(), obs::EventKind::kRpcComplete, self_,
                    obs::kNoActor, msg->type(), msg->rpc_id);
  cont(std::move(msg));
  return true;
}

void RpcEndpoint::cancel(std::uint64_t rpc_id) {
  Pending* p = find_pending(rpc_id);
  if (p == nullptr) return;
  net_.simulator().cancel(p->timeout_event);
  release_pending(static_cast<std::uint16_t>(rpc_id & 0xffff));
}

void RpcEndpoint::cancel_all() {
  for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
    if (!pending_[slot].live) continue;
    net_.simulator().cancel(pending_[slot].timeout_event);
    release_pending(static_cast<std::uint16_t>(slot));
  }
  // Also stop retry chains waiting out a backoff pause; without this a
  // crashed node would keep retransmitting from beyond the grave.
  for (const sim::EventId id : backoff_waits_) {
    net_.simulator().cancel(id);
  }
  backoff_waits_.clear();
}

}  // namespace pgrid::net
