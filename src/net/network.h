#pragma once
// Simulated point-to-point network.
//
// Delivers messages between registered handlers with sampled latency and
// optional loss. A message addressed to (or sent by) a dead node is dropped,
// which is exactly how crash failures manifest to the protocols above.
// Overlay routing is expressed as chains of point-to-point sends by the
// protocol layers; "direct connections" (the paper's heartbeat sockets) are
// single sends.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace pgrid::net {

class FaultPlane;
class ShardBus;

/// Latency model for one-way point-to-point delivery.
struct LatencyModel {
  /// Uniform in [min, max); set equal for a constant-latency network.
  sim::SimTime min = sim::SimTime::millis(20);
  sim::SimTime max = sim::SimTime::millis(80);

  /// Single validation point: a config with max < min is a programming
  /// error, caught here rather than as UB-adjacent wraparound inside the
  /// RNG range call. Network's constructor validates its model once.
  void validate() const { PGRID_EXPECTS(min <= max); }

  /// Uniform in [min, max) at nanosecond granularity: offset + below(width)
  /// covers {min .. max-1ns} exactly, including the width == 1ns edge where
  /// the only representable value is min.
  [[nodiscard]] sim::SimTime sample(Rng& rng) const {
    validate();
    if (min == max) return min;
    const auto lo = min.ns();
    const auto width = static_cast<std::uint64_t>(max.ns() - lo);
    return sim::SimTime::nanos(
        lo + static_cast<std::int64_t>(rng.below(width)));
  }
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_dead = 0;   // destination/source down
  std::uint64_t messages_dropped_loss = 0;   // random loss
  // Fault-plane outcomes. Duplicated copies also count as delivered, so
  // messages_delivered can exceed messages_sent under duplication.
  std::uint64_t messages_dropped_partition = 0;
  std::uint64_t messages_dropped_fault = 0;  // link/gray/congestion loss
  std::uint64_t messages_duplicated = 0;     // extra copies injected
  std::uint64_t messages_reordered = 0;      // reorder jitter applied
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  // Maintenance batching (DESIGN.md §16). Envelopes count once in
  // messages_sent/delivered; their inner messages count only in the
  // per-kind tables plus these rollups, so wire traffic and logical
  // traffic stay separately observable.
  std::uint64_t batches_sent = 0;
  std::uint64_t batch_parts_sent = 0;
  std::uint64_t batches_delivered = 0;
  std::uint64_t batch_parts_delivered = 0;

  /// Per-message-kind counters, indexed by the low bits of the type tag.
  /// All tag ranges in message.h fit in [0, kKindSlots) without aliasing.
  static constexpr std::size_t kKindSlots = 2048;
  std::array<std::uint64_t, kKindSlots> sent_by_kind{};
  std::array<std::uint64_t, kKindSlots> delivered_by_kind{};

  [[nodiscard]] std::uint64_t sent_of(std::uint16_t tag) const noexcept {
    return sent_by_kind[tag & (kKindSlots - 1)];
  }
  [[nodiscard]] std::uint64_t delivered_of(std::uint16_t tag) const noexcept {
    return delivered_by_kind[tag & (kKindSlots - 1)];
  }
};

class Network {
 public:
  Network(sim::Simulator& simulator, Rng rng, LatencyModel latency = {},
          double loss_probability = 0.0);
  ~Network();

  /// Register a handler and get its address. Handlers must outlive the
  /// network or be detached first.
  NodeAddr add_handler(MessageHandler* handler);

  /// Replace the handler at an existing address (node restart).
  void set_handler(NodeAddr addr, MessageHandler* handler);

  void set_alive(NodeAddr addr, bool alive);
  [[nodiscard]] bool alive(NodeAddr addr) const;

  /// Send a message; delivery is scheduled at now + latency. Messages from
  /// or to dead nodes are dropped (at send and delivery time respectively:
  /// a node that dies in flight still loses the message).
  void send(NodeAddr from, NodeAddr to, MessagePtr msg);

  /// Batch scopes (DESIGN.md §16; prefer the RAII BatchScope in batch.h).
  /// While a scope is open for `from`, its unicast sends are buffered and
  /// grouped by destination; the outermost close flushes one wire message
  /// per destination (plain send for singleton groups, Batch envelope
  /// otherwise). Scopes nest per sender. Delivery of an envelope re-opens a
  /// scope for the *receiver*, so replies emitted while handling the parts
  /// coalesce on the way back without any protocol-level cooperation.
  void open_batch(NodeAddr from);
  void close_batch(NodeAddr from);

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Attach (or detach, with nullptr) a trace bus; not owned. Protocol
  /// layers reach the run's bus through trace() so a single wiring point
  /// instruments the whole stack.
  void set_trace(obs::TraceBus* bus) noexcept;
  [[nodiscard]] obs::TraceBus* trace() const noexcept { return trace_; }

  /// The adversarial fault layer, created on first use (a network that
  /// never asks for it pays nothing per send).
  [[nodiscard]] FaultPlane& fault_plane();
  [[nodiscard]] bool has_fault_plane() const noexcept {
    return fault_ != nullptr;
  }

  /// Derive an independent RNG stream (RPC backoff jitter, tests).
  [[nodiscard]] Rng fork_rng() noexcept { return rng_.fork(++rng_forks_); }

  /// RNG stream for a per-address consumer (RpcEndpoint backoff jitter).
  /// Sequentially this is exactly fork_rng() — same shared counter, same
  /// stream, byte-identical runs. Sharded it derives from (bus seed, addr)
  /// so the stream does not depend on global construction order or on which
  /// shard's network the endpoint lives in.
  [[nodiscard]] Rng fork_rng_for(NodeAddr addr);

  [[nodiscard]] std::size_t size() const noexcept { return addr_count(); }

  /// Join this network to a cross-shard bus as shard `shard` (DESIGN.md
  /// §17). From then on the address space lives in the bus directory and
  /// send() routes cross-shard traffic through per-shard-pair mailboxes
  /// with provenance tie-break keys and per-sender RNG streams. Requires a
  /// pristine network: no handlers, no fault plane, no trace bus.
  void enable_sharding(ShardBus* bus, std::uint32_t shard);
  [[nodiscard]] bool sharded() const noexcept { return bus_ != nullptr; }

  /// Schedule a delivery parked by a remote shard (ShardBus::drain_into).
  /// `at` is absolute and, by the lookahead argument, never in this shard's
  /// past; `key` is the sender's provenance key.
  void deliver_remote(NodeAddr from, NodeAddr to, sim::SimTime at,
                      std::uint64_t key, MessagePtr msg);

  /// Allocate a unique RPC id stream. Several RpcEndpoints can share one
  /// address (e.g. the Chord layer and the grid layer of the same node);
  /// distinct streams keep their correlation ids disjoint.
  [[nodiscard]] std::uint64_t next_rpc_stream() noexcept {
    return next_rpc_stream_++;
  }

  /// Base per-message header charge for byte accounting.
  static constexpr std::size_t kHeaderBytes = 48;

 private:
  void deliver(NodeAddr from, NodeAddr to, sim::SimTime delay, MessagePtr msg);

  /// Sharded send tail: per-sender loss/latency draws, provenance key, then
  /// either a local keyed delivery or a mailbox handoff.
  void send_sharded(NodeAddr from, NodeAddr to, MessagePtr msg);

  /// Common delivery event for local keyed sends and drained remote ones.
  void schedule_keyed_delivery(NodeAddr from, NodeAddr to, sim::SimTime at,
                               std::uint64_t key, MessagePtr msg);

  // Address-space reads routed through the bus directory when sharded.
  [[nodiscard]] std::size_t addr_count() const noexcept;
  [[nodiscard]] bool addr_alive(NodeAddr addr) const;
  [[nodiscard]] MessageHandler* handler_of(NodeAddr addr) const;

  /// Hand a delivered message to the receiving handler, unpacking Batch
  /// envelopes (per-part kind accounting + receiver-side batch scope).
  void dispatch(NodeAddr from, NodeAddr to, MessagePtr msg);

  /// One destination's buffered messages within an open batch scope.
  struct PendingGroup {
    NodeAddr to;
    std::vector<MessagePtr> parts;
  };
  /// An open (possibly nested) batch scope for one sender. Groups keep
  /// first-send order so the flush sequence is deterministic.
  struct PendingBatch {
    NodeAddr from;
    int depth = 0;
    std::vector<PendingGroup> groups;
  };

  [[nodiscard]] PendingBatch* find_batch(NodeAddr from) noexcept;

  /// Re-derive the cached "plain delivery" predicate (DESIGN.md §13): true
  /// while no fault plane exists, no trace bus is attached, and base loss is
  /// zero — i.e. every per-send branch for those subsystems is statically
  /// dead. send() then takes a short path whose only work is stats, the
  /// alive check, and one latency sample; the RNG draw sequence is identical
  /// to the general path, so simulations are bit-equal either way.
  void refresh_fast_path() noexcept {
    plain_delivery_ =
        fault_ == nullptr && trace_ == nullptr && loss_probability_ == 0.0;
  }

  /// Latency sample with the model's bounds pre-validated and cached:
  /// exactly one rng_.below() draw when the window is non-degenerate,
  /// matching LatencyModel::sample draw-for-draw.
  [[nodiscard]] sim::SimTime sample_latency() noexcept {
    if (latency_width_ns_ == 0) return latency_.min;
    return sim::SimTime::nanos(latency_lo_ns_ + static_cast<std::int64_t>(
                                                    rng_.below(latency_width_ns_)));
  }

  sim::Simulator& sim_;
  Rng rng_;
  LatencyModel latency_;
  double loss_probability_;
  std::int64_t latency_lo_ns_ = 0;
  std::uint64_t latency_width_ns_ = 0;
  bool plain_delivery_ = false;
  std::vector<MessageHandler*> handlers_;
  std::vector<bool> alive_;
  NetworkStats stats_;
  obs::TraceBus* trace_ = nullptr;
  std::unique_ptr<FaultPlane> fault_;
  std::uint64_t next_rpc_stream_ = 1;
  std::uint64_t rng_forks_ = 0;
  ShardBus* bus_ = nullptr;
  std::uint32_t shard_ = 0;
  /// Open batch scopes. At most a handful exist at once (one per node
  /// currently inside a maintenance round), so linear scan beats a map.
  std::vector<PendingBatch> batches_;
};

}  // namespace pgrid::net
