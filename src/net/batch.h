#pragma once
// Maintenance-traffic batching (DESIGN.md §16): a per-(from, to) envelope
// that coalesces every unicast message a node emits toward the same
// destination within one synchronous scope — one maintenance round, one
// heartbeat fan-out — into a single wire message. Handlers never see the
// envelope: the network unpacks it at delivery, so protocol logic is
// untouched and per-kind statistics keep accounting the inner messages.
//
// Everything here is opt-in. With batching disabled nothing constructs a
// Batch and the fixed-seed event/RNG sequences are byte-identical to
// pre-batching builds.

#include <cstdint>
#include <vector>

#include "net/message.h"

namespace pgrid::net {

/// Feature gate threaded from GridConfig down to every layer that opens
/// batch scopes. Lives in net/ so chord/ and can/ can hold one without
/// depending on grid headers.
struct BatchingConfig {
  /// Master switch. Off (default): no envelopes, no cadence changes, no
  /// extra RNG draws — outputs stay byte-identical for a fixed seed.
  bool enabled = false;
  /// CAN quiet-neighbor decimation: each neighbor is contacted every
  /// `quiet_stride`-th maintenance round instead of every round, and the
  /// staleness/takeover deadlines are scaled by the same factor so the
  /// detection rule sees the same number of missed contacts. 1 keeps the
  /// per-round cadence (pure coalescing) — use that when failure-detection
  /// latency must match the unbatched protocol (e.g. chaos suites).
  std::uint32_t quiet_stride = 4;
};

/// The wire envelope. `parts` holds the coalesced inner messages in send
/// order; delivery unpacks them in that order. An envelope is judged by the
/// fault plane as one datagram: dropped whole, duplicated whole.
struct Batch final : Message {
  static constexpr std::uint16_t kType = kTagNetBase + 0;
  /// Per-part framing charge (type tag + length prefix + flags): what an
  /// inner message costs on the wire instead of a full kHeaderBytes header.
  static constexpr std::size_t kPartHeaderBytes = 8;

  Batch() : Message(kType) {}

  std::vector<MessagePtr> parts;

  [[nodiscard]] std::size_t payload_size() const noexcept override {
    std::size_t s = 0;
    for (const MessagePtr& p : parts) s += kPartHeaderBytes + p->payload_size();
    return s;
  }

  /// Deep copy for fault-plane duplication. A part whose clone() returns
  /// nullptr (non-cloneable message) is dropped from the copy, mirroring
  /// how the network already declines to duplicate such messages.
  [[nodiscard]] MessagePtr clone() const override {
    auto copy = std::make_unique<Batch>();
    copy->rpc_id = rpc_id;
    copy->is_reply = is_reply;
    copy->trace = trace;
    copy->parts.reserve(parts.size());
    for (const MessagePtr& p : parts) {
      if (MessagePtr pc = p->clone()) copy->parts.push_back(std::move(pc));
    }
    return copy;
  }
};

class Network;

/// RAII batch scope: while alive, every Network::send from `from` is
/// buffered and grouped by destination; destruction flushes one wire
/// message per destination (a plain send for singleton groups). Scopes
/// nest per sender — only the outermost flush emits traffic. `active =
/// false` makes the scope a no-op so call sites can stay branch-free.
class BatchScope {
 public:
  BatchScope(Network& net, NodeAddr from, bool active = true);
  ~BatchScope();

  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

 private:
  Network& net_;
  NodeAddr from_;
  bool active_;
};

}  // namespace pgrid::net
