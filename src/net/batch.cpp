#include "net/batch.h"

#include "net/network.h"

namespace pgrid::net {

BatchScope::BatchScope(Network& net, NodeAddr from, bool active)
    : net_(net), from_(from), active_(active) {
  if (active_) net_.open_batch(from_);
}

BatchScope::~BatchScope() {
  if (active_) net_.close_batch(from_);
}

}  // namespace pgrid::net
