#include "net/fault_plane.h"

#include <algorithm>
#include <utility>

namespace pgrid::net {

FaultPlane::FaultPlane(sim::Simulator& simulator, Rng rng)
    : sim_(simulator), rng_(rng) {}

FaultPlane::PartitionId FaultPlane::cut(std::string name,
                                        std::vector<NodeAddr> side_a,
                                        std::vector<NodeAddr> side_b,
                                        bool one_way) {
  PGRID_EXPECTS(!side_a.empty() && !side_b.empty());
  Partition p;
  p.name = std::move(name);
  p.side_a.insert(side_a.begin(), side_a.end());
  p.side_b.insert(side_b.begin(), side_b.end());
  p.one_way = one_way;
  partitions_.push_back(std::move(p));
  ++active_partitions_;
  ++partitions_cut_;
  const auto id = static_cast<PartitionId>(partitions_.size() - 1);
  PGRID_TRACE_EVENT(trace_, obs::EventKind::kFaultPartitionCut, obs::kNoActor,
                    obs::kNoActor, one_way ? 1 : 0, id,
                    static_cast<double>(side_a.size() + side_b.size()));
  return id;
}

void FaultPlane::heal(PartitionId id) {
  PGRID_EXPECTS(id < partitions_.size());
  if (!partitions_[id].active) return;
  partitions_[id].active = false;
  --active_partitions_;
  ++partitions_healed_;
  PGRID_TRACE_EVENT(trace_, obs::EventKind::kFaultPartitionHeal, obs::kNoActor,
                    obs::kNoActor, 0, id);
}

void FaultPlane::heal_after(PartitionId id, sim::SimTime delay) {
  PGRID_EXPECTS(id < partitions_.size());
  sim_.schedule_in(delay, [this, id] { heal(id); });
}

bool FaultPlane::partition_active(PartitionId id) const {
  PGRID_EXPECTS(id < partitions_.size());
  return partitions_[id].active;
}

std::size_t FaultPlane::active_partitions() const noexcept {
  return active_partitions_;
}

void FaultPlane::set_link(NodeAddr from, NodeAddr to, LinkFault fault,
                          bool symmetric) {
  PGRID_EXPECTS(fault.loss >= 0.0 && fault.loss <= 1.0);
  PGRID_EXPECTS(fault.extra_latency_min <= fault.extra_latency_max);
  links_[link_key(from, to)] = fault;
  if (symmetric) links_[link_key(to, from)] = fault;
}

void FaultPlane::clear_link(NodeAddr from, NodeAddr to, bool symmetric) {
  links_.erase(link_key(from, to));
  if (symmetric) links_.erase(link_key(to, from));
}

void FaultPlane::set_congestion(double extra_loss, double latency_scale) {
  PGRID_EXPECTS(extra_loss >= 0.0 && extra_loss <= 1.0);
  PGRID_EXPECTS(latency_scale >= 1.0);
  congestion_loss_ = extra_loss;
  congestion_scale_ = latency_scale;
}

void FaultPlane::set_duplication(double p) {
  PGRID_EXPECTS(p >= 0.0 && p <= 1.0);
  duplication_p_ = p;
}

void FaultPlane::set_reorder(double p, sim::SimTime window) {
  PGRID_EXPECTS(p >= 0.0 && p <= 1.0);
  reorder_p_ = p;
  reorder_window_ = window;
}

void FaultPlane::set_gray(NodeAddr node, GrayFault fault) {
  PGRID_EXPECTS(fault.latency_scale >= 1.0);
  PGRID_EXPECTS(fault.loss >= 0.0 && fault.loss <= 1.0);
  gray_[node] = fault;
  PGRID_TRACE_EVENT(trace_, obs::EventKind::kFaultGray, node, obs::kNoActor, 1,
                    0, fault.latency_scale);
}

void FaultPlane::clear_gray(NodeAddr node) {
  if (gray_.erase(node) != 0) {
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kFaultGray, node, obs::kNoActor,
                      0, 0);
  }
}

void FaultPlane::clear_all() {
  for (PartitionId id = 0; id < partitions_.size(); ++id) heal(id);
  links_.clear();
  while (!gray_.empty()) clear_gray(gray_.begin()->first);
  congestion_loss_ = 0.0;
  congestion_scale_ = 1.0;
  duplication_p_ = 0.0;
  reorder_p_ = 0.0;
  reorder_window_ = sim::SimTime::zero();
}

bool FaultPlane::quiescent() const noexcept {
  return active_partitions_ == 0 && links_.empty() && gray_.empty() &&
         congestion_loss_ == 0.0 && congestion_scale_ == 1.0 &&
         duplication_p_ == 0.0 && reorder_p_ == 0.0;
}

bool FaultPlane::partition_blocks(NodeAddr from, NodeAddr to) const {
  for (const Partition& p : partitions_) {
    if (!p.active) continue;
    const bool a_to_b = p.side_a.count(from) != 0 && p.side_b.count(to) != 0;
    if (a_to_b) return true;
    if (!p.one_way && p.side_b.count(from) != 0 && p.side_a.count(to) != 0) {
      return true;
    }
  }
  return false;
}

FaultPlane::Verdict FaultPlane::judge(NodeAddr from, NodeAddr to,
                                      bool cloneable) {
  Verdict v;
  if (active_partitions_ != 0 && partition_blocks(from, to)) {
    v.drop = true;
    v.cause = DropCause::kPartition;
    return v;
  }

  // Per-link fault: extra loss and delay.
  if (!links_.empty()) {
    const auto it = links_.find(link_key(from, to));
    if (it != links_.end()) {
      const LinkFault& f = it->second;
      if (f.loss > 0.0 && rng_.bernoulli(f.loss)) {
        v.drop = true;
        v.cause = DropCause::kFault;
        return v;
      }
      if (f.extra_latency_max > sim::SimTime::zero()) {
        const auto lo = f.extra_latency_min.ns();
        const auto hi = f.extra_latency_max.ns();
        v.extra_delay = v.extra_delay +
                        sim::SimTime::nanos(lo == hi ? lo : rng_.range(lo, hi));
      }
    }
  }

  // Gray endpoints: slowdown compounds when both ends are gray.
  if (!gray_.empty()) {
    for (const NodeAddr end : {from, to}) {
      const auto it = gray_.find(end);
      if (it == gray_.end()) continue;
      if (it->second.loss > 0.0 && rng_.bernoulli(it->second.loss)) {
        v.drop = true;
        v.cause = DropCause::kFault;
        return v;
      }
      v.latency_scale *= it->second.latency_scale;
    }
  }

  // Congestion window.
  if (congestion_loss_ > 0.0 && rng_.bernoulli(congestion_loss_)) {
    v.drop = true;
    v.cause = DropCause::kFault;
    return v;
  }
  v.latency_scale *= congestion_scale_;

  // Bounded reordering: extra jitter large enough to slip behind later sends.
  if (reorder_p_ > 0.0 && reorder_window_ > sim::SimTime::zero() &&
      rng_.bernoulli(reorder_p_)) {
    v.reordered = true;
    v.extra_delay =
        v.extra_delay + sim::SimTime::nanos(rng_.range(0, reorder_window_.ns()));
  }

  // Duplication (only meaningful for cloneable message types).
  if (duplication_p_ > 0.0 && cloneable && rng_.bernoulli(duplication_p_)) {
    v.copies = 2;
  }
  return v;
}

}  // namespace pgrid::net
