#include "net/network.h"

#include <utility>

namespace pgrid::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency,
                 double loss_probability)
    : sim_(simulator),
      rng_(rng),
      latency_(latency),
      loss_probability_(loss_probability) {
  PGRID_EXPECTS(loss_probability >= 0.0 && loss_probability < 1.0);
  PGRID_EXPECTS(latency.min <= latency.max);
}

NodeAddr Network::add_handler(MessageHandler* handler) {
  PGRID_EXPECTS(handler != nullptr);
  handlers_.push_back(handler);
  alive_.push_back(true);
  return static_cast<NodeAddr>(handlers_.size() - 1);
}

void Network::set_handler(NodeAddr addr, MessageHandler* handler) {
  PGRID_EXPECTS(addr < handlers_.size());
  handlers_[addr] = handler;
}

void Network::set_alive(NodeAddr addr, bool is_alive) {
  PGRID_EXPECTS(addr < alive_.size());
  alive_[addr] = is_alive;
}

bool Network::alive(NodeAddr addr) const {
  PGRID_EXPECTS(addr < alive_.size());
  return alive_[addr];
}

void Network::send(NodeAddr from, NodeAddr to, MessagePtr msg) {
  PGRID_EXPECTS(msg != nullptr);
  PGRID_EXPECTS(from < handlers_.size());
  PGRID_EXPECTS(to < handlers_.size());
  const std::uint16_t tag = msg->type();
  const std::size_t wire_bytes = kHeaderBytes + msg->payload_size();
  ++stats_.messages_sent;
  ++stats_.sent_by_kind[tag & (NetworkStats::kKindSlots - 1)];
  stats_.bytes_sent += wire_bytes;
  PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgSend, from, to, tag,
                    msg->rpc_id, static_cast<double>(wire_bytes));

  if (!alive_[from]) {
    ++stats_.messages_dropped_dead;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropDead, from, to, tag,
                      msg->rpc_id);
    return;
  }
  if (loss_probability_ > 0.0 && rng_.bernoulli(loss_probability_)) {
    ++stats_.messages_dropped_loss;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropLoss, from, to, tag,
                      msg->rpc_id);
    return;
  }

  const sim::SimTime delay = latency_.sample(rng_);
  // std::function requires copyable callables, so box the unique_ptr in a
  // shared_ptr; the box guarantees cleanup even if the event never fires.
  auto box = std::make_shared<MessagePtr>(std::move(msg));
  sim_.schedule_in(delay, [this, from, to, tag, wire_bytes, box] {
    if (!alive_[to]) {
      ++stats_.messages_dropped_dead;
      PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropDead, to, from, tag,
                        (*box)->rpc_id);
      return;
    }
    ++stats_.messages_delivered;
    ++stats_.delivered_by_kind[tag & (NetworkStats::kKindSlots - 1)];
    stats_.bytes_delivered += wire_bytes;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDeliver, to, from, tag,
                      (*box)->rpc_id, static_cast<double>(wire_bytes));
    handlers_[to]->on_message(from, std::move(*box));
  });
}

}  // namespace pgrid::net
