#include "net/network.h"

#include <utility>

#include "net/batch.h"
#include "net/fault_plane.h"
#include "net/shard_bus.h"

namespace pgrid::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency,
                 double loss_probability)
    : sim_(simulator),
      rng_(rng),
      latency_(latency),
      loss_probability_(loss_probability) {
  PGRID_EXPECTS(loss_probability >= 0.0 && loss_probability < 1.0);
  latency.validate();
  latency_lo_ns_ = latency_.min.ns();
  latency_width_ns_ = static_cast<std::uint64_t>(latency_.max.ns() - latency_lo_ns_);
  refresh_fast_path();
}

Network::~Network() = default;

NodeAddr Network::add_handler(MessageHandler* handler) {
  PGRID_EXPECTS(handler != nullptr);
  if (bus_ != nullptr) return bus_->register_handler(handler, shard_);
  handlers_.push_back(handler);
  alive_.push_back(true);
  return static_cast<NodeAddr>(handlers_.size() - 1);
}

void Network::set_handler(NodeAddr addr, MessageHandler* handler) {
  if (bus_ != nullptr) {
    bus_->set_handler(addr, handler);
    return;
  }
  PGRID_EXPECTS(addr < handlers_.size());
  handlers_[addr] = handler;
}

void Network::set_alive(NodeAddr addr, bool is_alive) {
  if (bus_ != nullptr) {
    bus_->set_alive(addr, is_alive);
    return;
  }
  PGRID_EXPECTS(addr < alive_.size());
  alive_[addr] = is_alive;
}

bool Network::alive(NodeAddr addr) const {
  if (bus_ != nullptr) return bus_->alive(addr);
  PGRID_EXPECTS(addr < alive_.size());
  return alive_[addr];
}

std::size_t Network::addr_count() const noexcept {
  return bus_ != nullptr ? bus_->addr_count() : handlers_.size();
}

bool Network::addr_alive(NodeAddr addr) const {
  return bus_ != nullptr ? bus_->alive(addr) : alive_[addr];
}

MessageHandler* Network::handler_of(NodeAddr addr) const {
  return bus_ != nullptr ? bus_->handler(addr) : handlers_[addr];
}

void Network::enable_sharding(ShardBus* bus, std::uint32_t shard) {
  PGRID_EXPECTS(bus != nullptr);
  PGRID_EXPECTS(bus_ == nullptr);
  // Sharded v1 carries the steady-state plane only: no fault plane, no trace
  // bus, and an empty local address space (the directory is the only one).
  PGRID_EXPECTS(handlers_.empty());
  PGRID_EXPECTS(fault_ == nullptr);
  PGRID_EXPECTS(trace_ == nullptr);
  bus_ = bus;
  shard_ = shard;
}

Rng Network::fork_rng_for(NodeAddr addr) {
  if (bus_ != nullptr) return bus_->fork_endpoint_rng(addr);
  return fork_rng();
}

void Network::set_trace(obs::TraceBus* bus) noexcept {
  PGRID_EXPECTS(bus == nullptr || bus_ == nullptr);  // no tracing when sharded
  trace_ = bus;
  if (fault_ != nullptr) fault_->set_trace(bus);
  refresh_fast_path();
}

FaultPlane& Network::fault_plane() {
  PGRID_EXPECTS(bus_ == nullptr);  // no adversarial plane when sharded
  if (fault_ == nullptr) {
    fault_ = std::make_unique<FaultPlane>(sim_, fork_rng());
    fault_->set_trace(trace_);
    refresh_fast_path();
  }
  return *fault_;
}

void Network::deliver(NodeAddr from, NodeAddr to, sim::SimTime delay,
                      MessagePtr msg) {
  const std::uint16_t tag = msg->type();
  const std::size_t wire_bytes = kHeaderBytes + msg->payload_size();
  // Move-through delivery: the event callback owns the datagram directly
  // (SmallFn accepts move-only captures), so the payload is never copied or
  // boxed between send and handler. If the event never fires the callback's
  // destructor still frees the message.
  sim_.schedule_in(
      delay, [this, from, to, tag, wire_bytes, msg = std::move(msg)]() mutable {
        if (!alive_[to]) {
          ++stats_.messages_dropped_dead;
          PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropDead, to, from,
                            tag, msg->rpc_id);
          return;
        }
        ++stats_.messages_delivered;
        ++stats_.delivered_by_kind[tag & (NetworkStats::kKindSlots - 1)];
        stats_.bytes_delivered += wire_bytes;
        PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDeliver, to, from, tag,
                          msg->rpc_id, static_cast<double>(wire_bytes));
#ifndef PGRID_OBS_DISABLED
        if (trace_ != nullptr && msg->trace.sampled()) {
          // End the hop span (its duration is the one-way latency) and run
          // the handler under the message's context, so every message it
          // sends becomes a child span — the causal chain crosses the hop.
          trace_->record_span(obs::EventKind::kSpanEnd, msg->trace, to, from,
                              tag, msg->rpc_id);
          obs::SpanScope scope(trace_, msg->trace);
          dispatch(from, to, std::move(msg));
          return;
        }
#endif
        dispatch(from, to, std::move(msg));
      });
}

void Network::dispatch(NodeAddr from, NodeAddr to, MessagePtr msg) {
  if (msg->type() == Batch::kType) {
    auto* batch = msg_cast<Batch>(msg.get());
    ++stats_.batches_delivered;
    stats_.batch_parts_delivered += batch->parts.size();
    // Unpack under a receiver-side scope: replies the handler emits while
    // working through the parts coalesce into one return envelope, so the
    // savings apply to both directions of an exchange for free.
    open_batch(to);
    for (MessagePtr& part : batch->parts) {
      ++stats_.delivered_by_kind[part->type() & (NetworkStats::kKindSlots - 1)];
      handler_of(to)->on_message(from, std::move(part));
    }
    close_batch(to);
    return;
  }
  handler_of(to)->on_message(from, std::move(msg));
}

Network::PendingBatch* Network::find_batch(NodeAddr from) noexcept {
  for (PendingBatch& b : batches_) {
    if (b.from == from) return &b;
  }
  return nullptr;
}

void Network::open_batch(NodeAddr from) {
  PGRID_EXPECTS(from < addr_count());
  if (PendingBatch* b = find_batch(from)) {
    ++b->depth;
    return;
  }
  batches_.push_back(PendingBatch{from, 1, {}});
}

void Network::close_batch(NodeAddr from) {
  PendingBatch* b = find_batch(from);
  PGRID_EXPECTS(b != nullptr);
  if (--b->depth > 0) return;
  // Steal the groups before erasing: the flush below re-enters send(),
  // which may push new scopes and reallocate batches_.
  std::vector<PendingGroup> groups = std::move(b->groups);
  batches_.erase(batches_.begin() + (b - batches_.data()));
  for (PendingGroup& g : groups) {
    if (g.parts.size() == 1) {
      // Singleton group: the envelope would only add overhead.
      send(from, g.to, std::move(g.parts[0]));
    } else {
      auto envelope = std::make_unique<Batch>();
      envelope->parts = std::move(g.parts);
      send(from, g.to, std::move(envelope));
    }
  }
}

void Network::send(NodeAddr from, NodeAddr to, MessagePtr msg) {
  PGRID_EXPECTS(msg != nullptr);
  PGRID_EXPECTS(from < addr_count());
  PGRID_EXPECTS(to < addr_count());

  // An open batch scope for this sender buffers the message instead of
  // putting it on the wire; accounting happens when the scope flushes.
  if (!batches_.empty()) {
    if (PendingBatch* b = find_batch(from)) {
      for (PendingGroup& g : b->groups) {
        if (g.to == to) {
          g.parts.push_back(std::move(msg));
          return;
        }
      }
      b->groups.push_back(PendingGroup{to, {}});
      b->groups.back().parts.push_back(std::move(msg));
      return;
    }
  }

  const std::uint16_t tag = msg->type();
  const std::size_t wire_bytes = kHeaderBytes + msg->payload_size();
  ++stats_.messages_sent;
  ++stats_.sent_by_kind[tag & (NetworkStats::kKindSlots - 1)];
  stats_.bytes_sent += wire_bytes;
  if (tag == Batch::kType) {
    // The envelope counts as one wire message; its parts keep per-kind
    // visibility so protocol mix breakdowns survive batching.
    const auto* batch = msg_cast<Batch>(msg.get());
    ++stats_.batches_sent;
    stats_.batch_parts_sent += batch->parts.size();
    for (const MessagePtr& part : batch->parts) {
      ++stats_.sent_by_kind[part->type() & (NetworkStats::kKindSlots - 1)];
    }
  }

  // Sharded tail: per-sender draws and mailbox routing (DESIGN.md §17). The
  // sequential paths below are untouched — a non-sharded network never takes
  // this branch, keeping its runs byte-identical.
  if (bus_ != nullptr) {
    send_sharded(from, to, std::move(msg));
    return;
  }

  // Plain-delivery fast path: no fault plane, no trace bus, zero base loss.
  // Every branch below is then a no-op, and the latency draw here consumes
  // the RNG identically to the general path — same simulation either way.
  if (plain_delivery_) {
    if (!alive_[from]) {
      ++stats_.messages_dropped_dead;
      return;
    }
    deliver(from, to, sample_latency(), std::move(msg));
    return;
  }

  PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgSend, from, to, tag,
                    msg->rpc_id, static_cast<double>(wire_bytes));

#ifndef PGRID_OBS_DISABLED
  // Causal propagation: a message sent while a sampled span is ambient
  // becomes a child span of it. The span begins here (hand-off to the
  // network); it ends at delivery — or never, making drops visible.
  if (trace_ != nullptr) {
    if (!msg->trace.sampled()) msg->trace = trace_->child_of(trace_->current());
    if (msg->trace.sampled()) {
      trace_->record_span(obs::EventKind::kSpanBegin, msg->trace, from, to,
                          tag, msg->rpc_id, static_cast<double>(wire_bytes));
    }
  }
#endif

  if (!alive_[from]) {
    ++stats_.messages_dropped_dead;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropDead, from, to, tag,
                      msg->rpc_id);
    return;
  }

  // The fault plane judges every message before the base loss model: a
  // partitioned or faulted link eats the datagram regardless of global loss.
  FaultPlane::Verdict verdict;
  MessagePtr duplicate;
  if (fault_ != nullptr) {
    verdict = fault_->judge(from, to, /*cloneable=*/true);
    if (verdict.drop) {
      if (verdict.cause == FaultPlane::DropCause::kPartition) {
        ++stats_.messages_dropped_partition;
        PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropPartition, from, to,
                          tag, msg->rpc_id);
      } else {
        ++stats_.messages_dropped_fault;
        PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropFault, from, to,
                          tag, msg->rpc_id);
      }
      return;
    }
    if (verdict.copies > 1) {
      duplicate = msg->clone();  // null for non-cloneable types: no copy
    }
    if (verdict.reordered) {
      ++stats_.messages_reordered;
      PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgReorder, from, to, tag,
                        msg->rpc_id, verdict.extra_delay.sec());
    }
  }

  if (loss_probability_ > 0.0 && rng_.bernoulli(loss_probability_)) {
    ++stats_.messages_dropped_loss;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDropLoss, from, to, tag,
                      msg->rpc_id);
    return;
  }

  const auto delay_once = [&] {
    const sim::SimTime base = sample_latency();
    return sim::SimTime::nanos(static_cast<std::int64_t>(
               static_cast<double>(base.ns()) * verdict.latency_scale)) +
           verdict.extra_delay;
  };

  if (duplicate != nullptr) {
    ++stats_.messages_duplicated;
    PGRID_TRACE_EVENT(trace_, obs::EventKind::kMsgDuplicate, from, to, tag,
                      msg->rpc_id);
    deliver(from, to, delay_once(), std::move(duplicate));
  }
  deliver(from, to, delay_once(), std::move(msg));
}

void Network::send_sharded(NodeAddr from, NodeAddr to, MessagePtr msg) {
  // Same decision order as the sequential general path (alive → loss →
  // latency), but every draw comes from the *sender's* stream: the sender's
  // send sequence is deterministic by induction over windows, so the draws —
  // unlike draws from a network-global stream — do not depend on how sends
  // from different nodes interleave across shards.
  if (!bus_->alive(from)) {
    ++stats_.messages_dropped_dead;
    return;
  }
  Rng& rng = bus_->sender_rng(from);
  if (loss_probability_ > 0.0 && rng.bernoulli(loss_probability_)) {
    ++stats_.messages_dropped_loss;
    return;
  }
  sim::SimTime lat = latency_.min;
  if (latency_width_ns_ != 0) {
    lat = sim::SimTime::nanos(
        latency_lo_ns_ +
        static_cast<std::int64_t>(rng.below(latency_width_ns_)));
  }
  const sim::SimTime at = sim_.now() + lat;
  const std::uint64_t key = bus_->next_key(from);
  const std::uint32_t dst_shard = bus_->shard_of(to);
  if (dst_shard == shard_) {
    schedule_keyed_delivery(from, to, at, key, std::move(msg));
    return;
  }
  // Cross-shard: park in the (src, dst) mailbox; the destination worker
  // drains it next round. Lookahead guarantees `at` lands at or beyond the
  // window barrier, never in the destination's past.
  bus_->enqueue(shard_, dst_shard,
                ShardBus::RemoteMessage{at, from, to, key, std::move(msg)});
}

void Network::schedule_keyed_delivery(NodeAddr from, NodeAddr to,
                                      sim::SimTime at, std::uint64_t key,
                                      MessagePtr msg) {
  const std::uint16_t tag = msg->type();
  const std::size_t wire_bytes = kHeaderBytes + msg->payload_size();
  sim_.schedule_at_keyed(
      at, key, [this, from, to, tag, wire_bytes, msg = std::move(msg)]() mutable {
        if (!bus_->alive(to)) {
          ++stats_.messages_dropped_dead;
          return;
        }
        ++stats_.messages_delivered;
        ++stats_.delivered_by_kind[tag & (NetworkStats::kKindSlots - 1)];
        stats_.bytes_delivered += wire_bytes;
        dispatch(from, to, std::move(msg));
      });
}

void Network::deliver_remote(NodeAddr from, NodeAddr to, sim::SimTime at,
                             std::uint64_t key, MessagePtr msg) {
  PGRID_EXPECTS(bus_ != nullptr);
  schedule_keyed_delivery(from, to, at, key, std::move(msg));
}

}  // namespace pgrid::net
