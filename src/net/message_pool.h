#pragma once
// Slab recycling for simulated datagrams (DESIGN.md §13).
//
// Every message on the simulated network is heap-allocated at the send site
// (make_unique<SomeMsg>() or clone() under fault-plane duplication) and freed
// when the receiving handler drops it — one new/delete pair per delivery,
// 54.8M pairs in the 2048-node CAN sweep cell. MessagePool intercepts that
// traffic at the Message class level (Message::operator new/delete route
// here), so a freed datagram's block goes onto a per-thread size-class free
// list and the next send of a similar-sized message pops it back off without
// touching the global allocator.
//
// Design points:
//  - Size classes in 64-byte steps up to 512 bytes cover every message type
//    in the repo (the largest, grid::JobToOwner, is ~250 bytes including
//    vtable and correlation header); larger blocks fall through to the
//    global allocator and are counted, not cached.
//  - The cache is thread-local because each simulator (and thus each
//    network's message traffic) is confined to one sweep thread. A 16-byte
//    header in front of each block records its owning thread cache and size
//    class; a block freed on a different thread — or after its owner's
//    thread-exit purge — is released to the global allocator instead of
//    being pushed onto a foreign free list. No locks anywhere.
//  - Recycling changes no observable behavior: allocation never fails any
//    differently, message bytes are fully constructed by the caller, and the
//    simulator's determinism does not depend on heap addresses.

#include <cstddef>
#include <cstdint>

namespace pgrid::net {

class MessagePool {
 public:
  /// Counters for the calling thread's cache (benchmarks and tests sample
  /// these; they are monotonically increasing except the cached_* gauges).
  struct Stats {
    std::uint64_t fresh = 0;     ///< served by the global allocator
    std::uint64_t reused = 0;    ///< served from a free list
    std::uint64_t oversize = 0;  ///< beyond the largest size class
    std::uint64_t foreign = 0;   ///< freed cross-thread / after purge
    std::size_t cached_blocks = 0;
    std::size_t cached_bytes = 0;
    /// Pooled blocks currently out with callers (allocated, not yet freed),
    /// headers included. Approximate under cross-thread frees — a block
    /// freed on another thread stays counted against its owner — and
    /// excludes oversize blocks (their size is not recorded).
    std::int64_t live_bytes = 0;
    std::int64_t live_blocks = 0;

    /// Total footprint attributable to the pool right now: blocks parked on
    /// free lists plus blocks in flight.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
      const std::int64_t live = live_bytes > 0 ? live_bytes : 0;
      return cached_bytes + static_cast<std::size_t>(live);
    }

    [[nodiscard]] double reuse_fraction() const noexcept {
      const auto total = fresh + reused;
      return total == 0 ? 0.0
                        : static_cast<double>(reused) /
                              static_cast<double>(total);
    }
  };

  static constexpr std::size_t kClassStep = 64;
  static constexpr std::size_t kClassCount = 8;  // 64..512 bytes
  static constexpr std::size_t kMaxPooledSize = kClassStep * kClassCount;

  /// Allocate a block of at least `size` bytes (called by
  /// Message::operator new). Never returns nullptr; throws std::bad_alloc
  /// on exhaustion like the global operator new.
  [[nodiscard]] static void* allocate(std::size_t size);

  /// Return a block obtained from allocate(). Safe from any thread and at
  /// any time (including after the owning thread's cache was torn down);
  /// only same-thread frees are recycled.
  static void deallocate(void* p) noexcept;

  [[nodiscard]] static Stats stats() noexcept;

  /// Drop every cached block back to the global allocator and zero the
  /// cached_* gauges (counters keep accumulating). Tests use this to bound
  /// cross-case interference; thread exit does it automatically.
  static void trim() noexcept;
};

}  // namespace pgrid::net
