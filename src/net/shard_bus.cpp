#include "net/shard_bus.h"

#include <utility>

#include "common/expects.h"
#include "net/network.h"

namespace pgrid::net {

ShardBus::ShardBus(std::size_t shards, std::uint64_t seed)
    : shards_(shards), seed_(seed) {
  PGRID_EXPECTS(shards >= 1);
  boxes_.resize(shards_ * shards_);
  nets_.resize(shards_, nullptr);
}

ShardBus::~ShardBus() = default;

void ShardBus::attach(std::uint32_t shard, Network& net) {
  PGRID_EXPECTS(shard < shards_);
  PGRID_EXPECTS(nets_[shard] == nullptr);
  nets_[shard] = &net;
  net.enable_sharding(this, shard);
}

NodeAddr ShardBus::register_handler(MessageHandler* handler,
                                    std::uint32_t shard) {
  PGRID_EXPECTS(handler != nullptr);
  PGRID_EXPECTS(shard < shards_);
  PGRID_EXPECTS(!frozen_);
  // Provenance keys pack the sender address into bits 32..62.
  PGRID_EXPECTS(handlers_.size() < (1u << 31));
  handlers_.push_back(handler);
  shard_of_.push_back(shard);
  alive_.push_back(true);
  return static_cast<NodeAddr>(handlers_.size() - 1);
}

void ShardBus::set_handler(NodeAddr addr, MessageHandler* handler) {
  PGRID_EXPECTS(addr < handlers_.size());
  handlers_[addr] = handler;
}

void ShardBus::set_alive(NodeAddr addr, bool alive) {
  PGRID_EXPECTS(addr < alive_.size());
  alive_[addr] = alive;
}

bool ShardBus::alive(NodeAddr addr) const {
  PGRID_EXPECTS(addr < alive_.size());
  return alive_[addr];
}

MessageHandler* ShardBus::handler(NodeAddr addr) const {
  PGRID_EXPECTS(addr < handlers_.size());
  return handlers_[addr];
}

std::uint32_t ShardBus::shard_of(NodeAddr addr) const {
  PGRID_EXPECTS(addr < shard_of_.size());
  return shard_of_[addr];
}

void ShardBus::freeze() {
  PGRID_EXPECTS(!frozen_);
  senders_.resize(handlers_.size());
  for (std::size_t a = 0; a < senders_.size(); ++a) {
    // Seeded from (bus seed, addr) only — never from a shared draw sequence —
    // so the stream is identical under every shard count.
    senders_[a].rng =
        Rng(hash_combine(mix64(seed_), mix64(static_cast<std::uint64_t>(a))));
  }
  frozen_ = true;
}

Rng& ShardBus::sender_rng(NodeAddr addr) {
  PGRID_EXPECTS(frozen_ && addr < senders_.size());
  return senders_[addr].rng;
}

std::uint64_t ShardBus::next_key(NodeAddr addr) {
  PGRID_EXPECTS(frozen_ && addr < senders_.size());
  SenderState& s = senders_[addr];
  PGRID_ASSERT(s.sends < 0xffffffffULL);  // 32-bit counter field
  return (1ULL << 63) | (static_cast<std::uint64_t>(addr) << 32) | ++s.sends;
}

Rng ShardBus::fork_endpoint_rng(NodeAddr addr) {
  PGRID_EXPECTS(addr < handlers_.size());
  if (senders_.size() < handlers_.size()) senders_.resize(handlers_.size());
  SenderState& s = senders_[addr];
  return Rng(hash_combine(hash_combine(mix64(seed_ + 1), mix64(addr)),
                          mix64(++s.endpoint_forks)));
}

void ShardBus::enqueue(std::uint32_t src, std::uint32_t dst, RemoteMessage m) {
  PGRID_EXPECTS(src < shards_ && dst < shards_);
  box(src, dst).push_back(std::move(m));
}

void ShardBus::drain_into(std::uint32_t dst) {
  PGRID_EXPECTS(dst < shards_);
  Network* net = nets_[dst];
  PGRID_EXPECTS(net != nullptr);
  std::uint64_t drained = 0;
  // Source-shard-major, FIFO within a box: a fixed order for a fixed shard
  // count. (Insertion order only shapes the destination heap, never the
  // execution order — provenance keys are a total order — so even this
  // ordering is cosmetic; it is kept deterministic for debuggability.)
  for (std::uint32_t src = 0; src < shards_; ++src) {
    std::vector<RemoteMessage>& b = box(src, dst);
    for (RemoteMessage& m : b) {
      net->deliver_remote(m.from, m.to, m.at, m.key, std::move(m.msg));
    }
    drained += b.size();
    b.clear();
  }
  if (drained != 0) handoffs_.fetch_add(drained, std::memory_order_relaxed);
}

}  // namespace pgrid::net
