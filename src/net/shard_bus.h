#pragma once
// Cross-shard message fabric for the sharded engine (DESIGN.md §17).
//
// One ShardBus backs a set of shard-local Networks. It owns what must be
// global in a sharded run:
//
//  - the address space: NodeAddr stays one flat namespace (addr == node
//    index, the invariant every layer relies on), so handler registration
//    goes through the bus's directory no matter which shard's Network the
//    handler registered with;
//  - per-shard-pair mailboxes: a cross-shard send parks the message in
//    box(src, dst) during a window's run phase; the destination worker
//    drains it into its own Simulator at the next round's drain phase. The
//    engine's barriers make each box strictly single-producer during runs
//    and single-consumer during drains — no locks, no atomics on the
//    message path;
//  - per-sender determinism state: the latency/loss RNG stream and the
//    send counter for every address. Seeded from (bus seed, addr) alone and
//    consumed in the sender's deterministic execution order, the draws — and
//    the provenance tie-break keys built from the counters — are identical
//    for every shard count, which is what makes sharded outputs a pure
//    function of (seed, config) rather than (seed, config, shards).
//
// Provenance keys: bit 63 set | sender addr (31 bits) | per-sender send
// counter (32 bits). Unique per message, reproducible from the trajectory,
// and ordered after every locally-scheduled event at the same timestamp (see
// Simulator::schedule_at_keyed).

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "sim/time.h"

namespace pgrid::net {

class Network;

class ShardBus {
 public:
  /// A message parked between windows: everything the destination needs to
  /// schedule the delivery exactly as if it had been local.
  struct RemoteMessage {
    sim::SimTime at;
    NodeAddr from = 0;
    NodeAddr to = 0;
    std::uint64_t key = 0;
    MessagePtr msg;
  };

  ShardBus(std::size_t shards, std::uint64_t seed);
  ~ShardBus();

  ShardBus(const ShardBus&) = delete;
  ShardBus& operator=(const ShardBus&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Wire a shard's Network to the bus (also flips the Network into sharded
  /// mode via Network::enable_sharding).
  void attach(std::uint32_t shard, Network& net);

  // --- global address directory (build-time registration, run-time reads) --
  NodeAddr register_handler(MessageHandler* handler, std::uint32_t shard);
  void set_handler(NodeAddr addr, MessageHandler* handler);
  void set_alive(NodeAddr addr, bool alive);
  [[nodiscard]] bool alive(NodeAddr addr) const;
  [[nodiscard]] MessageHandler* handler(NodeAddr addr) const;
  [[nodiscard]] std::uint32_t shard_of(NodeAddr addr) const;
  [[nodiscard]] std::size_t addr_count() const noexcept {
    return handlers_.size();
  }

  /// Freeze the address space after build: pre-sizes the per-sender tables
  /// so worker threads never touch a growing shared vector.
  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  // --- per-sender determinism state (owner-shard threads only, post-freeze) -
  [[nodiscard]] Rng& sender_rng(NodeAddr addr);
  [[nodiscard]] std::uint64_t next_key(NodeAddr addr);
  /// Addr-derived RPC endpoint stream (Network::fork_rng_for in sharded
  /// mode); several endpoints share one addr, hence the per-addr counter.
  [[nodiscard]] Rng fork_endpoint_rng(NodeAddr addr);

  // --- mailboxes (producer side during run phases, consumer during drains) -
  void enqueue(std::uint32_t src, std::uint32_t dst, RemoteMessage m);
  /// Schedule every message parked for shard `dst` into its Network, in
  /// deterministic (source shard, FIFO) order. Called on dst's worker.
  void drain_into(std::uint32_t dst);

  /// Cross-shard messages drained so far (relaxed; exact at barriers).
  [[nodiscard]] std::uint64_t handoffs() const noexcept {
    return handoffs_.load(std::memory_order_relaxed);
  }

 private:
  struct SenderState {
    Rng rng{0};
    std::uint64_t sends = 0;
    std::uint64_t endpoint_forks = 0;
  };

  [[nodiscard]] std::vector<RemoteMessage>& box(std::uint32_t src,
                                                std::uint32_t dst) {
    return boxes_[static_cast<std::size_t>(src) * shards_ + dst];
  }

  std::size_t shards_;
  std::uint64_t seed_;
  bool frozen_ = false;
  std::vector<MessageHandler*> handlers_;
  std::vector<std::uint32_t> shard_of_;
  std::vector<bool> alive_;
  std::vector<SenderState> senders_;
  std::vector<std::vector<RemoteMessage>> boxes_;
  std::vector<Network*> nets_;
  std::atomic<std::uint64_t> handoffs_{0};
};

}  // namespace pgrid::net
