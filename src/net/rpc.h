#pragma once
// Request/response correlation with timeouts over the simulated network.
//
// Every protocol in this repository (Chord lookups, CAN routing probes,
// RN-Tree searches, grid job transfer) is an asynchronous RPC exchange:
// the caller registers a continuation, the endpoint matches replies by
// correlation id, and a timeout fires the continuation with nullptr —
// which is how callers observe crashed peers.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {

class RpcEndpoint {
 public:
  /// Continuation: reply message, or nullptr on timeout.
  using Continuation = std::function<void(MessagePtr reply)>;

  RpcEndpoint(Network& network, NodeAddr self);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  /// Send `request` to `to`; invoke `k` with the reply or nullptr after
  /// `timeout`. Returns the correlation id (also usable to cancel).
  std::uint64_t call(NodeAddr to, MessagePtr request, sim::SimTime timeout,
                     Continuation k);

  /// Like call(), but retransmit up to `attempts` times (total) before
  /// reporting failure: one lost datagram must not condemn a live peer.
  /// `make` builds a fresh copy of the request for each transmission.
  void call_retry(NodeAddr to, std::function<MessagePtr()> make,
                  sim::SimTime timeout, int attempts, Continuation k);

  /// Send a reply correlated with `request` back to `to`.
  void reply(NodeAddr to, const Message& request, MessagePtr response);

  /// Fire-and-forget send (no correlation).
  void send(NodeAddr to, MessagePtr msg);

  /// Offer an incoming message; consumes it (returns true) iff it is a
  /// reply addressed to this endpoint's id stream. Replies for calls that
  /// already timed out are consumed and dropped; replies for other
  /// endpoints sharing the address are left for them.
  bool consume_reply(MessagePtr& msg);

  /// Drop an outstanding call without invoking its continuation.
  void cancel(std::uint64_t rpc_id);

  /// Drop all outstanding calls (node crash / shutdown).
  void cancel_all();

  [[nodiscard]] NodeAddr self() const noexcept { return self_; }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  struct Pending {
    Continuation k;
    sim::EventId timeout_event;
  };

  Network& net_;
  NodeAddr self_;
  std::uint64_t stream_;
  std::uint64_t next_id_;
  std::uint64_t timeouts_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace pgrid::net
