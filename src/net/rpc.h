#pragma once
// Request/response correlation with timeouts over the simulated network.
//
// Every protocol in this repository (Chord lookups, CAN routing probes,
// RN-Tree searches, grid job transfer) is an asynchronous RPC exchange:
// the caller registers a continuation, the endpoint matches replies by
// correlation id, and a timeout fires the continuation with nullptr —
// which is how callers observe crashed peers.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {

/// Retransmission policy for call_retry: exponentially growing per-attempt
/// timeouts, decorrelated-jitter pauses between attempts (so concurrent
/// callers hitting the same dead peer do not retransmit in lockstep), and an
/// optional per-call deadline budget across all attempts.
struct RetryPolicy {
  /// Timeout of attempt i is min(base_timeout * timeout_factor^i,
  /// max_timeout) — the classic growing RTO.
  sim::SimTime base_timeout = sim::SimTime::seconds(2.0);
  double timeout_factor = 2.0;
  sim::SimTime max_timeout = sim::SimTime::seconds(16.0);
  /// Pause before retransmit i+1 ~ U(base_backoff, 3 * previous pause),
  /// capped at max_backoff ("decorrelated jitter").
  sim::SimTime base_backoff = sim::SimTime::millis(250);
  sim::SimTime max_backoff = sim::SimTime::seconds(4.0);
  int attempts = 3;
  /// Total budget from the first transmission; once exceeded the call fails
  /// even if attempts remain. zero() disables the deadline.
  sim::SimTime deadline = sim::SimTime::zero();

  /// The policy the legacy (timeout, attempts) signature maps onto: growing
  /// timeouts and jittered pauses derived from the single timeout value.
  [[nodiscard]] static RetryPolicy from_timeout(sim::SimTime timeout,
                                                int attempts);
};

class RpcEndpoint {
 public:
  /// Continuation: reply message, or nullptr on timeout.
  using Continuation = std::function<void(MessagePtr reply)>;

  RpcEndpoint(Network& network, NodeAddr self);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  /// Send `request` to `to`; invoke `k` with the reply or nullptr after
  /// `timeout`. Returns the correlation id (also usable to cancel).
  std::uint64_t call(NodeAddr to, MessagePtr request, sim::SimTime timeout,
                     Continuation k);

  /// Like call(), but retransmit under `policy` before reporting failure:
  /// one lost datagram must not condemn a live peer. `make` builds a fresh
  /// copy of the request for each transmission.
  void call_retry(NodeAddr to, std::function<MessagePtr()> make,
                  const RetryPolicy& policy, Continuation k);

  /// Legacy fixed-timeout signature; maps onto RetryPolicy::from_timeout,
  /// so retransmits back off exponentially with jitter.
  void call_retry(NodeAddr to, std::function<MessagePtr()> make,
                  sim::SimTime timeout, int attempts, Continuation k) {
    call_retry(to, std::move(make), RetryPolicy::from_timeout(timeout, attempts),
               std::move(k));
  }

  /// Send a reply correlated with `request` back to `to`.
  void reply(NodeAddr to, const Message& request, MessagePtr response);

  /// Fire-and-forget send (no correlation).
  void send(NodeAddr to, MessagePtr msg);

  /// Offer an incoming message; consumes it (returns true) iff it is a
  /// reply addressed to this endpoint's id stream. Replies for calls that
  /// already timed out are consumed and dropped; replies for other
  /// endpoints sharing the address are left for them.
  bool consume_reply(MessagePtr& msg);

  /// Drop an outstanding call without invoking its continuation.
  void cancel(std::uint64_t rpc_id);

  /// Drop all outstanding calls (node crash / shutdown).
  void cancel_all();

  [[nodiscard]] NodeAddr self() const noexcept { return self_; }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_;
  }
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

  /// Bytes held by the pending-call slab and backoff set (memory
  /// accounting; capacity snapshot, nothing on the hot path).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pending_.capacity() * sizeof(Pending) +
           backoff_waits_.size() * (sizeof(sim::EventId) + 2 * sizeof(void*));
  }

 private:
  /// Pending calls live in a slab addressed by the correlation id itself:
  /// rpc_id = stream << 32 | generation << 16 | slot. Reply matching is an
  /// O(1) array probe with generation-tagged staleness (a late reply whose
  /// slot was recycled fails the generation check), mirroring the
  /// simulator's event pool. No per-call map node allocation.
  struct Pending {
    Continuation k;
    sim::EventId timeout_event = sim::kInvalidEvent;
    /// Caller's span at call() time: restored around the timeout
    /// continuation so retries and failure handling stay inside the sampled
    /// trace (a timer has no ambient context of its own).
    obs::TraceContext ctx;
    std::uint16_t generation = 1;
    bool live = false;
    std::uint16_t next_free = 0;
  };
  struct RetryState;

  static constexpr std::uint16_t kNoFreeSlot = 0xffff;
  static constexpr std::uint64_t kMaxPending = 0x10000;

  void retry_attempt(std::shared_ptr<RetryState> st);
  [[nodiscard]] Pending* find_pending(std::uint64_t rpc_id) noexcept;
  void release_pending(std::uint16_t slot) noexcept;

  Network& net_;
  NodeAddr self_;
  std::uint64_t stream_;
  std::uint64_t timeouts_ = 0;
  std::size_t outstanding_ = 0;
  Rng rng_;
  std::vector<Pending> pending_;
  std::uint16_t free_head_ = kNoFreeSlot;
  /// Pending between-attempt backoff pauses; cancelled with the calls.
  std::unordered_set<sim::EventId> backoff_waits_;
};

}  // namespace pgrid::net
