#pragma once
// Message base type for the simulated point-to-point network.
//
// Every protocol layer (Chord, CAN, RN-Tree, grid) defines message structs
// deriving from Message, each with a unique 16-bit type tag used for
// dispatch. Tags are partitioned per layer to catch cross-layer mixups.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/expects.h"
#include "net/message_pool.h"
#include "obs/trace_context.h"

namespace pgrid::net {

/// Dense node address (index into the network's handler table).
using NodeAddr = std::uint32_t;
inline constexpr NodeAddr kNullAddr = 0xffffffff;

/// Type-tag ranges per protocol layer.
inline constexpr std::uint16_t kTagChordBase = 0x100;
inline constexpr std::uint16_t kTagCanBase = 0x200;
inline constexpr std::uint16_t kTagRnTreeBase = 0x300;
inline constexpr std::uint16_t kTagGridBase = 0x400;
/// Network-layer envelopes (e.g. the maintenance Batch) — not a protocol.
inline constexpr std::uint16_t kTagNetBase = 0x600;
inline constexpr std::uint16_t kTagTestBase = 0x700;

class Message;
using MessagePtr = std::unique_ptr<Message>;

class Message {
 public:
  explicit Message(std::uint16_t type) noexcept : type_(type) {}
  virtual ~Message() = default;

  Message& operator=(const Message&) = delete;

  [[nodiscard]] std::uint16_t type() const noexcept { return type_; }

  /// Approximate wire size in bytes, for traffic accounting. Headers are
  /// charged by the network; subclasses add payload.
  [[nodiscard]] virtual std::size_t payload_size() const noexcept { return 0; }

  /// Deep copy of this datagram, including the correlation header — the
  /// fault plane uses it to model duplicate delivery. Message types opt in
  /// with PGRID_MESSAGE_CLONE; types that do not are never duplicated.
  [[nodiscard]] virtual MessagePtr clone() const { return nullptr; }

  /// RPC correlation id; 0 means "not part of an RPC exchange".
  std::uint64_t rpc_id = 0;
  /// True for RPC replies (routed to the caller's continuation).
  bool is_reply = false;
  /// Causal trace context (zero = unsampled). Stamped by Network::send when
  /// a sampled trace is active; clone() carries it across duplication, so a
  /// traced hop survives the fault plane.
  obs::TraceContext trace;

  /// Class-level allocation hooks: every datagram — make_unique at the send
  /// site, clone() under fault-plane duplication — is served from the
  /// thread-local MessagePool slab instead of the global allocator, and
  /// recycled when the receiving handler drops it. Subclasses inherit these,
  /// so no call site changes (DESIGN.md §13).
  static void* operator new(std::size_t size) {
    return MessagePool::allocate(size);
  }
  static void operator delete(void* p) noexcept { MessagePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    MessagePool::deallocate(p);
  }

 protected:
  /// Copying is reserved for clone() implementations.
  Message(const Message&) = default;

 private:
  std::uint16_t type_;
};

/// Drop into a Message subclass to make it duplicable by the fault plane.
#define PGRID_MESSAGE_CLONE(Type)                                 \
  [[nodiscard]] ::pgrid::net::MessagePtr clone() const override { \
    return std::make_unique<Type>(*this);                         \
  }

/// Checked downcast by type tag.
template <typename T>
[[nodiscard]] T* msg_cast(Message* m) noexcept {
  PGRID_ASSERT(m != nullptr && m->type() == T::kType);
  return static_cast<T*>(m);
}

template <typename T>
[[nodiscard]] const T* msg_cast(const Message* m) noexcept {
  PGRID_ASSERT(m != nullptr && m->type() == T::kType);
  return static_cast<const T*>(m);
}

/// Interface implemented by every addressable entity on the network.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(NodeAddr from, MessagePtr msg) = 0;
};

}  // namespace pgrid::net
