#pragma once
// Conservative-lookahead sharded execution of the discrete-event core
// (DESIGN.md §17).
//
// The engine owns one Simulator per shard and advances all of them in
// barrier-synchronized windows. Window length is the *lookahead* L — the
// minimum cross-shard link latency (LatencyModel has a positive floor). The
// conservative argument: with the window starting at the global minimum next
// event time W, every event executed this window fires at t ∈ [W, W + L), so
// any message it sends arrives at t + latency ≥ W + L — strictly inside a
// later window. Shards therefore never receive a message "in their past", and
// no rollback machinery is needed.
//
// Per round, every worker s:
//   1. drains its cross-shard inboxes (messages parked by the previous
//      round's senders) into its Simulator, then publishes its next event
//      time;
//   2. waits on barrier A, whose completion computes the global minimum W and
//      the window end min(W + L, horizon + 1ns) — or stops the run;
//   3. executes its queue up to the window end, parking cross-shard sends in
//      the destination's inbox; waits on barrier B.
// Empty stretches are skipped for free: W jumps to the next event anywhere in
// the system, so idle phases cost one barrier round, not horizon/L rounds.
//
// The engine is network-agnostic: cross-shard transport is injected as a
// drain hook (net::ShardBus supplies it in production; tests drive the
// barrier-window edge cases with synthetic hooks).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/small_fn.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace pgrid::sim {

class ShardedEngine {
 public:
  /// Called on worker thread `s` at the start of every round; must move all
  /// messages parked for shard `s` into shard(s)'s queue (schedule_at_keyed).
  using DrainHook = SmallFn<void(std::size_t)>;
  /// Optional per-worker-thread setup (e.g. pointing the logger's
  /// thread-local time source at the shard's clock).
  using ThreadInitHook = SmallFn<void(std::size_t)>;

  ShardedEngine(std::size_t shards, SimTime lookahead);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return sims_.size(); }
  [[nodiscard]] Simulator& shard(std::size_t s) { return *sims_[s]; }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  /// Engine clock: the horizon of the last completed run_until call (the
  /// per-shard clocks trail it by up to one window).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  void set_drain(DrainHook fn) { drain_ = std::move(fn); }
  void set_thread_init(ThreadInitHook fn) { thread_init_ = std::move(fn); }

  /// Advance every shard to `horizon` (events at t <= horizon execute, later
  /// ones stay queued — same contract as Simulator::run_until). Spawns one
  /// worker per shard; single-shard engines run inline with no barriers.
  /// Returns events executed across all shards.
  std::uint64_t run_until(SimTime horizon);

  // Aggregates across shards (cold; summed on demand).
  [[nodiscard]] std::uint64_t executed() const noexcept;
  [[nodiscard]] std::size_t queued() const noexcept;
  [[nodiscard]] std::size_t queue_high_water() const noexcept;
  [[nodiscard]] std::size_t tombstone_high_water() const noexcept;
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Barrier rounds completed — the denominator for per-window overhead in
  /// the simcore_micro shard benches.
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

 private:
  std::vector<std::unique_ptr<Simulator>> sims_;
  SimTime lookahead_;
  SimTime now_;
  DrainHook drain_;
  ThreadInitHook thread_init_;
  std::uint64_t windows_ = 0;
};

}  // namespace pgrid::sim
