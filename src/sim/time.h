#pragma once
// Simulated time as a strong type. Integer nanoseconds keep event ordering
// exact and platform-independent (no FP accumulation drift across a multi-
// hour simulated horizon).

#include <cstdint>

namespace pgrid::sim {

class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime nanos(std::int64_t ns) noexcept {
    return SimTime{ns};
  }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) noexcept {
    return SimTime{us * 1'000};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) noexcept {
    return SimTime{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{}; }
  /// Sentinel for "never" / unbounded horizons.
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double sec() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }

  constexpr SimTime& operator+=(SimTime d) noexcept { ns_ += d.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime d) noexcept { ns_ -= d.ns_; return *this; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) noexcept {
    return SimTime{a.ns_ * k};
  }
  friend constexpr bool operator==(SimTime, SimTime) noexcept = default;
  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

 private:
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace pgrid::sim
