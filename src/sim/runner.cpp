#include "sim/runner.h"

#include <algorithm>
#include <exception>
#include <mutex>

namespace pgrid::sim {

void parallel_for_cells(std::size_t cells, std::size_t threads, CellFn fn) {
  PGRID_EXPECTS(fn != nullptr);
  if (cells == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, cells);
  if (threads == 1) {
    for (std::size_t i = 0; i < cells; ++i) fn(i);
    return;
  }

  // A cell that throws on a worker thread must not std::terminate the whole
  // sweep: the first exception is captured, the remaining cells drain
  // unexecuted, and the exception resurfaces on the calling thread after
  // every worker has joined.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) first_error = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace pgrid::sim
