#include "sim/runner.h"

#include <algorithm>

namespace pgrid::sim {

void parallel_for_cells(std::size_t cells, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  PGRID_EXPECTS(fn != nullptr);
  if (cells == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, cells);
  if (threads == 1) {
    for (std::size_t i = 0; i < cells; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells) return;
        fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace pgrid::sim
