#include "sim/failure.h"

#include <utility>

namespace pgrid::sim {

FailureInjector::FailureInjector(Simulator& simulator, Rng rng,
                                 ChurnModel model, std::size_t member_count,
                                 CrashFn on_crash, RecoverFn on_recover)
    : sim_(simulator),
      rng_(rng),
      model_(model),
      on_crash_(std::move(on_crash)),
      on_recover_(std::move(on_recover)),
      up_(member_count, true),
      eligible_(member_count, false),
      pending_(member_count, kInvalidEvent) {
  PGRID_EXPECTS(on_crash_ != nullptr);
  for (std::size_t i = 0; i < member_count; ++i) {
    eligible_[i] = rng_.bernoulli(model_.churn_fraction);
  }
}

void FailureInjector::start() {
  // Arm even when lifetimes are disabled: a burst-only scenario still needs
  // running_ so its scheduled recoveries fire.
  if (running_) return;
  running_ = true;
  if (model_.mean_lifetime_sec <= 0.0) return;
  for (std::size_t i = 0; i < up_.size(); ++i) {
    if (eligible_[i]) schedule_crash(i);
  }
}

void FailureInjector::stop() {
  running_ = false;
  for (auto& id : pending_) {
    sim_.cancel(id);
    id = kInvalidEvent;
  }
}

bool FailureInjector::past_stop() const {
  return model_.stop_after_sec > 0.0 &&
         sim_.now() > SimTime::seconds(model_.stop_after_sec);
}

void FailureInjector::schedule_crash(std::size_t member) {
  const SimTime delay =
      SimTime::seconds(rng_.exponential(model_.mean_lifetime_sec));
  pending_[member] = sim_.schedule_in(delay, [this, member] {
    pending_[member] = kInvalidEvent;
    if (!running_ || past_stop() || !up_[member]) return;
    crash_now(member);
    if (model_.mean_downtime_sec > 0.0) schedule_recover(member);
  });
}

void FailureInjector::schedule_recover(std::size_t member) {
  const SimTime delay =
      SimTime::seconds(rng_.exponential(model_.mean_downtime_sec));
  pending_[member] = sim_.schedule_in(delay, [this, member] {
    pending_[member] = kInvalidEvent;
    if (!running_ || up_[member]) return;
    recover_now(member);
    if (model_.mean_lifetime_sec > 0.0 && eligible_[member]) {
      schedule_crash(member);
    }
  });
}

std::size_t FailureInjector::crash_burst(double fraction,
                                         double recover_after_sec) {
  PGRID_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::vector<std::size_t> up_members;
  up_members.reserve(up_.size());
  for (std::size_t i = 0; i < up_.size(); ++i) {
    if (up_[i]) up_members.push_back(i);
  }
  const auto count = static_cast<std::size_t>(
      static_cast<double>(up_members.size()) * fraction + 0.5);
  if (count == 0) return 0;
  rng_.shuffle(up_members);
  for (std::size_t v = 0; v < count; ++v) {
    const std::size_t member = up_members[v];
    // A pending lifetime/recovery event for the victim is now stale.
    sim_.cancel(pending_[member]);
    pending_[member] = kInvalidEvent;
    crash_now(member);
    if (recover_after_sec > 0.0) {
      const double jittered =
          recover_after_sec * (1.0 + 0.25 * rng_.uniform());
      pending_[member] =
          sim_.schedule_in(SimTime::seconds(jittered), [this, member] {
            pending_[member] = kInvalidEvent;
            if (!running_ || up_[member]) return;
            recover_now(member);
            if (model_.mean_lifetime_sec > 0.0 && eligible_[member]) {
              schedule_crash(member);
            }
          });
    }
  }
  return count;
}

std::size_t FailureInjector::crash_burst_members(
    const std::vector<std::size_t>& members, double recover_after_sec) {
  std::size_t crashed = 0;
  for (const std::size_t member : members) {
    PGRID_EXPECTS(member < up_.size());
    if (!up_[member]) continue;
    sim_.cancel(pending_[member]);
    pending_[member] = kInvalidEvent;
    crash_now(member);
    ++crashed;
    if (recover_after_sec > 0.0) {
      const double jittered =
          recover_after_sec * (1.0 + 0.25 * rng_.uniform());
      pending_[member] =
          sim_.schedule_in(SimTime::seconds(jittered), [this, member] {
            pending_[member] = kInvalidEvent;
            if (!running_ || up_[member]) return;
            recover_now(member);
            if (model_.mean_lifetime_sec > 0.0 && eligible_[member]) {
              schedule_crash(member);
            }
          });
    }
  }
  return crashed;
}

void FailureInjector::flap(const std::vector<std::size_t>& members,
                           double up_sec, double down_sec,
                           double duration_sec) {
  PGRID_EXPECTS(up_sec > 0.0 && down_sec > 0.0 && duration_sec > 0.0);
  const SimTime deadline = sim_.now() + SimTime::seconds(duration_sec);
  for (const std::size_t member : members) {
    PGRID_EXPECTS(member < up_.size());
    sim_.cancel(pending_[member]);
    pending_[member] = kInvalidEvent;
    flap_step(member, up_sec, down_sec, deadline);
  }
}

void FailureInjector::flap_step(std::size_t member, double up_sec,
                                double down_sec, SimTime deadline) {
  // Each step toggles the member after an exponential dwell in its current
  // state; past the deadline the chain ends, recovering the member if the
  // last toggle left it down.
  const double mean = up_[member] ? up_sec : down_sec;
  const SimTime dwell = SimTime::seconds(rng_.exponential(mean));
  pending_[member] = sim_.schedule_in(
      dwell, [this, member, up_sec, down_sec, deadline] {
        pending_[member] = kInvalidEvent;
        if (!running_) return;
        if (sim_.now() >= deadline) {
          if (!up_[member]) recover_now(member);
          return;
        }
        if (up_[member]) {
          crash_now(member);
        } else {
          recover_now(member);
        }
        flap_step(member, up_sec, down_sec, deadline);
      });
}

void FailureInjector::crash_now(std::size_t member) {
  PGRID_EXPECTS(member < up_.size());
  if (!up_[member]) return;
  up_[member] = false;
  ++crashes_;
  on_crash_(member);
}

void FailureInjector::recover_now(std::size_t member) {
  PGRID_EXPECTS(member < up_.size());
  if (up_[member]) return;
  up_[member] = true;
  ++recoveries_;
  if (on_recover_) on_recover_(member);
}

}  // namespace pgrid::sim
