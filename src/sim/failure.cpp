#include "sim/failure.h"

#include <utility>

namespace pgrid::sim {

FailureInjector::FailureInjector(Simulator& simulator, Rng rng,
                                 ChurnModel model, std::size_t member_count,
                                 CrashFn on_crash, RecoverFn on_recover)
    : sim_(simulator),
      rng_(rng),
      model_(model),
      on_crash_(std::move(on_crash)),
      on_recover_(std::move(on_recover)),
      up_(member_count, true),
      eligible_(member_count, false),
      pending_(member_count, kInvalidEvent) {
  PGRID_EXPECTS(on_crash_ != nullptr);
  for (std::size_t i = 0; i < member_count; ++i) {
    eligible_[i] = rng_.bernoulli(model_.churn_fraction);
  }
}

void FailureInjector::start() {
  if (running_ || model_.mean_lifetime_sec <= 0.0) return;
  running_ = true;
  for (std::size_t i = 0; i < up_.size(); ++i) {
    if (eligible_[i]) schedule_crash(i);
  }
}

void FailureInjector::stop() {
  running_ = false;
  for (auto& id : pending_) {
    sim_.cancel(id);
    id = kInvalidEvent;
  }
}

bool FailureInjector::past_stop() const {
  return model_.stop_after_sec > 0.0 &&
         sim_.now() > SimTime::seconds(model_.stop_after_sec);
}

void FailureInjector::schedule_crash(std::size_t member) {
  const SimTime delay =
      SimTime::seconds(rng_.exponential(model_.mean_lifetime_sec));
  pending_[member] = sim_.schedule_in(delay, [this, member] {
    pending_[member] = kInvalidEvent;
    if (!running_ || past_stop() || !up_[member]) return;
    crash_now(member);
    if (model_.mean_downtime_sec > 0.0) schedule_recover(member);
  });
}

void FailureInjector::schedule_recover(std::size_t member) {
  const SimTime delay =
      SimTime::seconds(rng_.exponential(model_.mean_downtime_sec));
  pending_[member] = sim_.schedule_in(delay, [this, member] {
    pending_[member] = kInvalidEvent;
    if (!running_ || up_[member]) return;
    recover_now(member);
    schedule_crash(member);
  });
}

void FailureInjector::crash_now(std::size_t member) {
  PGRID_EXPECTS(member < up_.size());
  if (!up_[member]) return;
  up_[member] = false;
  ++crashes_;
  on_crash_(member);
}

void FailureInjector::recover_now(std::size_t member) {
  PGRID_EXPECTS(member < up_.size());
  if (up_[member]) return;
  up_[member] = true;
  ++recoveries_;
  if (on_recover_) on_recover_(member);
}

}  // namespace pgrid::sim
