#include "sim/chaos.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>

#include "can/geometry.h"
#include "common/hash.h"
#include "grid/grid_system.h"
#include "net/fault_plane.h"
#include "workload/workload.h"

namespace pgrid::sim {

namespace {

/// One scheduled fault episode, fully drawn up front so the schedule is a
/// pure function of the seed.
struct FaultRound {
  enum class Kind {
    kPartition,
    kCrashBurst,
    kCongestion,
    kGray,
    kDuplication,
    kReorder,
    kCorrelatedBurst,
    kFlapping,
  };
  Kind kind = Kind::kPartition;
  double start_sec = 0.0;
  double duration_sec = 0.0;

  // Partition parameters.
  std::vector<net::NodeAddr> side_a;
  std::vector<net::NodeAddr> side_b;
  bool one_way = false;

  double fraction = 0.0;      // crash burst
  double loss = 0.0;          // congestion / gray
  double latency_scale = 1.0; // congestion / gray
  std::vector<net::NodeAddr> gray_nodes;
  double probability = 0.0;   // duplication / reorder
  double window_sec = 0.0;    // reorder
  double start_u = 0.0;       // correlated burst / flapping: arc position
  double up_sec = 0.0;        // flapping: mean up dwell
  double down_sec = 0.0;      // flapping: mean down dwell
};

std::vector<FaultRound> draw_schedule(const ChaosConfig& cfg, Rng& rng) {
  std::vector<FaultRound::Kind> classes;
  if (cfg.enable_partitions) classes.push_back(FaultRound::Kind::kPartition);
  if (cfg.enable_crashes) classes.push_back(FaultRound::Kind::kCrashBurst);
  if (cfg.enable_loss) classes.push_back(FaultRound::Kind::kCongestion);
  if (cfg.enable_gray) classes.push_back(FaultRound::Kind::kGray);
  if (cfg.enable_duplication) {
    classes.push_back(FaultRound::Kind::kDuplication);
  }
  if (cfg.enable_reorder) classes.push_back(FaultRound::Kind::kReorder);
  // New classes append after the legacy six: with them off (the default)
  // the class vector — and every draw below — is unchanged for old seeds.
  if (cfg.enable_correlated) {
    classes.push_back(FaultRound::Kind::kCorrelatedBurst);
  }
  if (cfg.enable_flapping) classes.push_back(FaultRound::Kind::kFlapping);

  std::vector<FaultRound> schedule;
  if (classes.empty()) return schedule;
  schedule.reserve(static_cast<std::size_t>(cfg.fault_rounds));
  for (int r = 0; r < cfg.fault_rounds; ++r) {
    FaultRound round;
    round.kind = classes[rng.index(classes.size())];
    round.start_sec = rng.uniform(5.0, cfg.fault_window_sec);
    round.duration_sec = rng.uniform(15.0, cfg.max_fault_duration_sec);
    switch (round.kind) {
      case FaultRound::Kind::kPartition: {
        for (std::size_t i = 0; i < cfg.nodes; ++i) {
          const auto addr = static_cast<net::NodeAddr>(i);
          (rng.bernoulli(0.5) ? round.side_a : round.side_b).push_back(addr);
        }
        // A one-sided draw is no partition at all; force a minimal split.
        if (round.side_a.empty()) {
          round.side_a.push_back(round.side_b.back());
          round.side_b.pop_back();
        }
        if (round.side_b.empty()) {
          round.side_b.push_back(round.side_a.back());
          round.side_a.pop_back();
        }
        round.one_way = rng.bernoulli(0.25);
        break;
      }
      case FaultRound::Kind::kCrashBurst:
        round.fraction = rng.uniform(0.1, 0.3);
        break;
      case FaultRound::Kind::kCongestion:
        round.loss = rng.uniform(0.05, 0.25);
        round.latency_scale = rng.uniform(1.0, 2.0);
        break;
      case FaultRound::Kind::kGray: {
        std::vector<net::NodeAddr> all;
        all.reserve(cfg.nodes);
        for (std::size_t i = 0; i < cfg.nodes; ++i) {
          all.push_back(static_cast<net::NodeAddr>(i));
        }
        rng.shuffle(all);
        const std::size_t count = 1 + rng.index(3);
        all.resize(std::min(count, all.size()));
        round.gray_nodes = std::move(all);
        round.latency_scale = rng.uniform(4.0, 10.0);
        round.loss = rng.uniform(0.0, 0.15);
        break;
      }
      case FaultRound::Kind::kDuplication:
        round.probability = rng.uniform(0.1, 0.4);
        break;
      case FaultRound::Kind::kReorder:
        round.probability = rng.uniform(0.1, 0.4);
        round.window_sec = rng.uniform(0.05, 0.4);
        break;
      case FaultRound::Kind::kCorrelatedBurst:
        round.fraction = rng.uniform(0.15, 0.35);
        round.start_u = rng.uniform();
        break;
      case FaultRound::Kind::kFlapping:
        round.fraction = rng.uniform(0.05, 0.2);
        round.start_u = rng.uniform();
        round.up_sec = rng.uniform(3.0, 10.0);
        round.down_sec = rng.uniform(2.0, 8.0);
        break;
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

void arm_schedule(const std::vector<FaultRound>& schedule,
                  grid::GridSystem& system, net::FaultPlane& fp) {
  Simulator& sim = system.simulator();
  int round_no = 0;
  for (const FaultRound& round : schedule) {
    ++round_no;
    const SimTime start = SimTime::seconds(round.start_sec);
    const SimTime end = SimTime::seconds(round.start_sec + round.duration_sec);
    switch (round.kind) {
      case FaultRound::Kind::kPartition:
        sim.schedule_in(start, [&fp, &round, round_no] {
          const auto id =
              fp.cut("round" + std::to_string(round_no), round.side_a,
                     round.side_b, round.one_way);
          fp.heal_after(id, SimTime::seconds(round.duration_sec));
        });
        break;
      case FaultRound::Kind::kCrashBurst:
        sim.schedule_in(start, [&system, &round] {
          system.churn()->crash_burst(round.fraction, round.duration_sec);
        });
        break;
      case FaultRound::Kind::kCongestion:
        sim.schedule_in(start, [&fp, &round] {
          fp.set_congestion(round.loss, round.latency_scale);
        });
        sim.schedule_in(end, [&fp] { fp.clear_congestion(); });
        break;
      case FaultRound::Kind::kGray:
        sim.schedule_in(start, [&fp, &round] {
          for (const net::NodeAddr n : round.gray_nodes) {
            fp.set_gray(n, net::GrayFault{round.latency_scale, round.loss});
          }
        });
        sim.schedule_in(end, [&fp, &round] {
          for (const net::NodeAddr n : round.gray_nodes) fp.clear_gray(n);
        });
        break;
      case FaultRound::Kind::kDuplication:
        sim.schedule_in(
            start, [&fp, &round] { fp.set_duplication(round.probability); });
        sim.schedule_in(end, [&fp] { fp.set_duplication(0.0); });
        break;
      case FaultRound::Kind::kReorder:
        sim.schedule_in(start, [&fp, &round] {
          fp.set_reorder(round.probability, SimTime::seconds(round.window_sec));
        });
        sim.schedule_in(end,
                        [&fp] { fp.set_reorder(0.0, SimTime::zero()); });
        break;
      case FaultRound::Kind::kCorrelatedBurst:
        // Victims are resolved at fire time against the then-current live
        // membership: a contiguous overlay arc/slab, not a uniform sample.
        sim.schedule_in(start, [&system, &round] {
          const auto victims =
              system.correlated_victims(round.fraction, round.start_u);
          system.churn()->crash_burst_members(victims, round.duration_sec);
        });
        break;
      case FaultRound::Kind::kFlapping:
        sim.schedule_in(start, [&system, &round] {
          const auto victims =
              system.correlated_victims(round.fraction, round.start_u);
          system.churn()->flap(victims, round.up_sec, round.down_sec,
                               round.duration_sec);
        });
        break;
    }
  }
}

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

void check_exactly_once(const std::vector<int>& terminal_count,
                        const std::vector<int>& completion_count,
                        ChaosReport* report) {
  for (std::size_t seq = 0; seq < terminal_count.size(); ++seq) {
    if (terminal_count[seq] != 1) {
      report->violations.push_back(
          format("job %zu reached a terminal state %d times (want 1)", seq,
                 terminal_count[seq]));
    }
    if (completion_count[seq] > 1) {
      report->violations.push_back(format(
          "job %zu completed %d times (duplicate result accepted twice)", seq,
          completion_count[seq]));
    }
  }
}

void check_chord_convergence(grid::GridSystem& system, ChaosReport* report) {
  std::vector<grid::GridNode*> live;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    grid::GridNode& n = system.node(i);
    if (n.running() && n.chord() != nullptr) live.push_back(&n);
  }
  if (live.size() < 2) return;
  std::sort(live.begin(), live.end(),
            [](const grid::GridNode* a, const grid::GridNode* b) {
              return a->id() < b->id();
            });
  for (std::size_t i = 0; i < live.size(); ++i) {
    const grid::GridNode& node = *live[i];
    const grid::GridNode& expected = *live[(i + 1) % live.size()];
    const chord::Peer actual = live[i]->chord()->successor();
    if (actual.addr != expected.addr()) {
      report->violations.push_back(format(
          "chord ring diverged: node %u's successor is addr %u, want the "
          "next live node %u",
          node.addr(), actual.addr, expected.addr()));
    }
  }
}

void check_can_coverage(grid::GridSystem& system, Rng probe_rng,
                        ChaosReport* report) {
  std::vector<grid::GridNode*> live;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    grid::GridNode& n = system.node(i);
    if (n.running() && n.can() != nullptr) live.push_back(&n);
  }
  if (live.empty()) return;
  constexpr int kProbes = 64;
  for (int p = 0; p < kProbes; ++p) {
    can::Point point(grid::kCanDims);
    for (std::size_t d = 0; d < grid::kCanDims; ++d) {
      point[d] = probe_rng.uniform();
    }
    int owners = 0;
    for (grid::GridNode* node : live) {
      if (node->can()->owns(point)) ++owners;
    }
    if (owners != 1) {
      report->violations.push_back(
          format("CAN zones do not tile: probe %s has %d owners (want 1)",
                 point.str().c_str(), owners));
    }
  }
}

void check_monitor_leaks(grid::GridSystem& system, ChaosReport* report) {
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    grid::GridNode& n = system.node(i);
    if (!n.running()) continue;
    for (const std::uint64_t seq : n.owned_seqs()) {
      report->violations.push_back(format(
          "monitor leak: node %u still owns job %llu after quiescence",
          n.addr(), static_cast<unsigned long long>(seq)));
    }
    for (const std::uint64_t seq : n.queued_seqs()) {
      report->violations.push_back(format(
          "queue leak: node %u still queues job %llu after quiescence",
          n.addr(), static_cast<unsigned long long>(seq)));
    }
  }
}

}  // namespace

std::string ChaosConfig::replay_command() const {
  std::string cmd =
      format("./build/examples/chaos_replay --kind=%s --seed=%llu "
             "--nodes=%zu --jobs=%zu",
             grid::matchmaker_name(kind),
             static_cast<unsigned long long>(seed), nodes, jobs);
  // Extended flags appear only when set, so legacy replay lines are
  // byte-identical to what the 24-run matrix always printed.
  if (enable_correlated) cmd += " --correlated";
  if (enable_flapping) cmd += " --flapping";
  if (self_healing) cmd += " --self-healing";
  if (batching) cmd += " --batching";
  return cmd;
}

std::string ChaosReport::summary() const {
  std::string line = format(
      "chaos kind=%s seed=%llu %s: completed=%llu/%zu abandoned=%llu "
      "dup_results=%llu crashes=%llu recoveries=%llu partitions=%llu/%llu "
      "drops(part=%llu fault=%llu) dup=%llu reorder=%llu t=%.0fs",
      grid::matchmaker_name(config.kind),
      static_cast<unsigned long long>(config.seed), ok ? "OK" : "VIOLATED",
      static_cast<unsigned long long>(stats.completed), config.jobs,
      static_cast<unsigned long long>(stats.abandoned),
      static_cast<unsigned long long>(stats.duplicate_results),
      static_cast<unsigned long long>(stats.crashes),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.partitions_cut),
      static_cast<unsigned long long>(stats.partitions_healed),
      static_cast<unsigned long long>(stats.dropped_partition),
      static_cast<unsigned long long>(stats.dropped_fault),
      static_cast<unsigned long long>(stats.duplicated),
      static_cast<unsigned long long>(stats.reordered),
      stats.sim_duration_sec);
  // Appended only in self-healing mode: the default matrix's summary lines
  // stay byte-identical.
  if (config.self_healing) {
    line += format(" phi(susp=%llu fp=%llu fn=%llu) repairs=%llu",
                   static_cast<unsigned long long>(stats.suspicions),
                   static_cast<unsigned long long>(stats.fp_evictions),
                   static_cast<unsigned long long>(stats.fn_evictions),
                   static_cast<unsigned long long>(stats.repairs));
  }
  return line;
}

bool parse_matchmaker(const std::string& name, grid::MatchmakerKind* out) {
  using grid::MatchmakerKind;
  static const std::map<std::string, MatchmakerKind> kNames = {
      {"centralized", MatchmakerKind::kCentralized},
      {"random", MatchmakerKind::kRandom},
      {"rn-tree", MatchmakerKind::kRnTree},
      {"rn_tree", MatchmakerKind::kRnTree},
      {"can", MatchmakerKind::kCanBasic},
      {"can-push", MatchmakerKind::kCanPush},
      {"can_push", MatchmakerKind::kCanPush},
      {"ttl-walk", MatchmakerKind::kTtlWalk},
      {"ttl_walk", MatchmakerKind::kTtlWalk},
  };
  const auto it = kNames.find(name);
  if (it == kNames.end()) return false;
  *out = it->second;
  return true;
}

ChaosReport run_chaos(const ChaosConfig& cfg) {
  ChaosReport report;
  report.config = cfg;

  workload::WorkloadSpec spec;
  spec.node_count = cfg.nodes;
  spec.job_count = cfg.jobs;
  spec.mean_runtime_sec = cfg.mean_runtime_sec;
  spec.mean_interarrival_sec = cfg.mean_interarrival_sec;
  spec.client_count = 2;
  spec.seed = cfg.seed;

  grid::GridConfig gcfg;
  gcfg.kind = cfg.kind;
  gcfg.seed = cfg.seed;
  // Generous generation budget: under heavy faults completion must win
  // eventually; abandonment would hide lost jobs from the leak check.
  gcfg.client.max_generations = 12;
  gcfg.client.resubmit_base_sec = 60.0;
  gcfg.client.resubmit_runtime_factor = 2.0;
  gcfg.obs.trace = cfg.trace;
  if (cfg.self_healing) {
    gcfg.node.phi.enabled = true;  // propagated to chord/can/rntree by build()
    gcfg.node.audit_period = SimTime::seconds(15.0);       // owner audits
    gcfg.node.can.audit_period = SimTime::seconds(15.0);   // tiling audits
    gcfg.node.rntree.token_lease = SimTime::seconds(10.0); // search leases
    gcfg.track_liveness = true;  // classify evictions as FP / late
  }
  if (cfg.batching) {
    gcfg.batching.enabled = true;
    // Stride 1 = pure coalescing: detection deadlines stay on the legacy
    // cadence, so the invariants judge batching itself, not a slower
    // failure detector.
    gcfg.batching.quiet_stride = 1;
  }

  grid::GridSystem system(gcfg, workload::generate(spec));
  system.build();
  // Churn model with no background crashes: the injector only executes the
  // schedule's bursts (and their recoveries).
  system.enable_churn(ChurnModel{});

  std::vector<int> terminal_count(cfg.jobs, 0);
  std::vector<int> completion_count(cfg.jobs, 0);
  for (std::size_t c = 0; c < system.client_count(); ++c) {
    system.client(c).on_job_terminal = [&terminal_count, &completion_count](
                                           std::uint64_t seq, bool ok) {
      ++terminal_count[seq];
      if (ok) ++completion_count[seq];
    };
  }

  // The whole schedule is a pure function of the seed.
  Rng chaos_rng(hash_combine(mix64(cfg.seed), 0x9e3779b97f4a7c15ULL));
  const std::vector<FaultRound> schedule = draw_schedule(cfg, chaos_rng);
  if (cfg.verbose) {
    static const char* kKindNames[] = {
        "partition",  "crash-burst",      "congestion", "gray",
        "duplication", "reorder",         "correlated-burst", "flapping"};
    for (const FaultRound& r : schedule) {
      std::fprintf(stderr,
                   "chaos-schedule %s t=[%.0f,%.0f] frac=%.2f loss=%.2f "
                   "scale=%.1f p=%.2f win=%.2f gray=%zu one_way=%d\n",
                   kKindNames[static_cast<int>(r.kind)], r.start_sec,
                   r.start_sec + r.duration_sec, r.fraction, r.loss,
                   r.latency_scale, r.probability, r.window_sec,
                   r.gray_nodes.size(), r.one_way ? 1 : 0);
    }
  }
  net::FaultPlane& fp = system.network().fault_plane();
  arm_schedule(schedule, system, fp);
  std::unique_ptr<PeriodicTask> heartbeat;
  if (cfg.verbose) {
    heartbeat = std::make_unique<PeriodicTask>(
        system.simulator(), SimTime::seconds(10.0), [&system] {
          std::size_t terminal = 0;
          for (std::size_t c = 0; c < system.client_count(); ++c) {
            terminal += system.client(c).completed() +
                        system.client(c).abandoned();
          }
          const net::NetworkStats& hb = system.net_stats();
          std::uint64_t lk_started = 0, lk_ok = 0, lk_failed = 0;
          double lk_hops = 0.0;
          for (std::size_t i = 0; i < system.node_count(); ++i) {
            if (system.node(i).chord() == nullptr) continue;
            const chord::ChordStats& cs = system.node(i).chord()->stats();
            lk_started += cs.lookups_started;
            lk_ok += cs.lookups_ok;
            lk_failed += cs.lookups_failed;
            lk_hops += cs.lookup_hops.sum();
          }
          std::fprintf(stderr,
                       "chaos-heartbeat t=%.0fs terminal=%zu sent=%llu "
                       "delivered=%llu dropped=%llu lookups=%llu/%llu/%llu "
                       "hops=%.0f\n",
                       system.simulator().now().sec(), terminal,
                       static_cast<unsigned long long>(hb.messages_sent),
                       static_cast<unsigned long long>(hb.messages_delivered),
                       static_cast<unsigned long long>(
                           hb.messages_dropped_partition +
                           hb.messages_dropped_fault +
                           hb.messages_dropped_loss +
                           hb.messages_dropped_dead),
                       static_cast<unsigned long long>(lk_started),
                       static_cast<unsigned long long>(lk_ok),
                       static_cast<unsigned long long>(lk_failed), lk_hops);
          for (std::size_t k = 0; k < net::NetworkStats::kKindSlots; ++k) {
            if (hb.sent_by_kind[k] > 5000) {
              std::fprintf(
                  stderr, "  kind=0x%zx sent=%llu\n", k,
                  static_cast<unsigned long long>(hb.sent_by_kind[k]));
            }
          }
        });
  }
  // Barrier: whatever the rounds left armed is cleared here, so the settle
  // period always starts from a fault-free network.
  const SimTime barrier = SimTime::seconds(
      cfg.fault_window_sec + cfg.max_fault_duration_sec + 5.0);
  system.simulator().schedule_in(barrier, [&fp] { fp.clear_all(); });

  system.run();
  // Settle counts from the barrier: if the workload finished early the sim
  // must still advance past it (and the rounds' own end events) before the
  // quiescence and convergence checks run.
  const double now_sec = system.simulator().now().sec();
  system.run_for(std::max(barrier.sec() - now_sec, 0.0) + cfg.settle_sec);

  // --- invariants ----------------------------------------------------------
  check_exactly_once(terminal_count, completion_count, &report);
  if (grid::uses_chord(cfg.kind)) check_chord_convergence(system, &report);
  if (grid::uses_can(cfg.kind)) {
    check_can_coverage(system, chaos_rng.fork(0x10ca1), &report);
  }
  const bool all_terminal =
      std::all_of(terminal_count.begin(), terminal_count.end(),
                  [](int c) { return c == 1; });
  if (all_terminal) check_monitor_leaks(system, &report);
  if (!fp.quiescent()) {
    report.violations.emplace_back(
        "fault plane still armed after the clear_all barrier");
  }

  report.ok = report.violations.empty();
  if (!report.ok) {
    report.replay_command = cfg.replay_command();
    if (cfg.trace && !cfg.trace_jsonl_path.empty() &&
        system.trace_bus() != nullptr) {
      system.trace_bus()->export_jsonl(cfg.trace_jsonl_path);
    }
  }

  ChaosStats& st = report.stats;
  for (std::size_t c = 0; c < system.client_count(); ++c) {
    st.completed += system.client(c).completed();
    st.abandoned += system.client(c).abandoned();
    st.duplicate_results += system.client(c).duplicate_results();
  }
  st.crashes = system.churn()->crashes();
  st.recoveries = system.churn()->recoveries();
  st.partitions_cut = fp.partitions_cut();
  st.partitions_healed = fp.partitions_healed();
  const net::NetworkStats& ns = system.net_stats();
  st.dropped_partition = ns.messages_dropped_partition;
  st.dropped_fault = ns.messages_dropped_fault;
  st.duplicated = ns.messages_duplicated;
  st.reordered = ns.messages_reordered;
  st.sim_duration_sec = system.simulator().now().sec();
  const grid::GridNodeStats agg = system.aggregate_node_stats();
  st.fp_evictions = agg.fp_evictions;
  st.fn_evictions = agg.fn_evictions;
  st.repairs = agg.owner_audit_repairs;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    grid::GridNode& n = system.node(i);
    if (n.chord() != nullptr) {
      st.suspicions += n.chord()->stats().suspicions;
      st.repairs += n.chord()->stats().succ_refreshes;
    }
    if (n.can() != nullptr) {
      st.suspicions += n.can()->stats().suspicions;
      st.repairs += n.can()->stats().gap_repairs;
    }
    if (n.rntree() != nullptr) {
      st.suspicions += n.rntree()->stats().suspicions;
      st.repairs += n.rntree()->stats().tokens_regenerated;
    }
  }
  return report;
}

}  // namespace pgrid::sim
