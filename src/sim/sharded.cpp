#include "sim/sharded.h"

#include <atomic>
#include <barrier>
#include <thread>

#include "common/expects.h"

namespace pgrid::sim {

ShardedEngine::ShardedEngine(std::size_t shards, SimTime lookahead)
    : lookahead_(lookahead) {
  PGRID_EXPECTS(shards >= 1);
  PGRID_EXPECTS(lookahead > SimTime::zero());
  sims_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
}

std::uint64_t ShardedEngine::executed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->executed();
  return n;
}

std::size_t ShardedEngine::queued() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->queued();
  return n;
}

std::size_t ShardedEngine::queue_high_water() const noexcept {
  // Sum of per-shard peaks: an upper bound on the global peak (the shard
  // maxima need not coincide in time), reported as the total working set.
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->queue_high_water();
  return n;
}

std::size_t ShardedEngine::tombstone_high_water() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->tombstone_high_water();
  return n;
}

std::size_t ShardedEngine::memory_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->memory_bytes();
  return n;
}

std::uint64_t ShardedEngine::run_until(SimTime horizon) {
  const std::size_t n = sims_.size();
  const std::uint64_t before = executed();

  if (n == 1) {
    // One shard: no cross-shard traffic can exist (every destination is
    // local), so the window machinery degenerates to a plain run. This is
    // the sequential reference point for the shard-count-independence tests.
    if (thread_init_ != nullptr) thread_init_(0);
    if (drain_ != nullptr) drain_(0);
    sims_[0]->run_until(horizon);
    ++windows_;
    if (horizon != SimTime::max()) {
      now_ = horizon;
    } else if (sims_[0]->now() > now_) {
      now_ = sims_[0]->now();
    }
    return executed() - before;
  }

  // Window state shared between the barrier-A completion (runs on exactly
  // one worker while all others are parked) and the workers; the barrier
  // sequencing is the only synchronization it needs.
  std::vector<SimTime> local_min(n, SimTime::max());
  SimTime window_end = SimTime::zero();
  std::atomic<bool> stop{false};

  auto on_window = [&]() noexcept {
    SimTime m = SimTime::max();
    for (const SimTime t : local_min) {
      if (t < m) m = t;
    }
    if (m == SimTime::max() || m > horizon) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    // Window [m, m + L): executed via run_until(end - 1ns), which is
    // inclusive. The horizon itself must be runnable, hence the +1ns clamp.
    SimTime end = (m > SimTime::max() - lookahead_) ? SimTime::max()
                                                    : m + lookahead_;
    if (horizon != SimTime::max() && end > horizon + SimTime::nanos(1)) {
      end = horizon + SimTime::nanos(1);
    }
    window_end = end;
    ++windows_;
  };

  std::barrier barrier_a(static_cast<std::ptrdiff_t>(n), on_window);
  std::barrier barrier_b(static_cast<std::ptrdiff_t>(n));

  auto worker = [&](std::size_t s) {
    if (thread_init_ != nullptr) thread_init_(s);
    for (;;) {
      // Inboxes were filled during the previous round's run phase; barrier B
      // ordered those writes before this read.
      if (drain_ != nullptr) drain_(s);
      local_min[s] = sims_[s]->next_time();
      barrier_a.arrive_and_wait();
      if (stop.load(std::memory_order_relaxed)) return;
      sims_[s]->run_until(window_end - SimTime::nanos(1));
      barrier_b.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t s = 0; s < n; ++s) threads.emplace_back(worker, s);
  for (std::thread& t : threads) t.join();

  // Clean-exit invariant: the stop decision follows a drain on every shard,
  // so no message is parked in an inbox — everything is in some shard's
  // queue (possibly beyond the horizon, same as the sequential contract).
  if (horizon != SimTime::max()) {
    now_ = horizon;
  } else {
    for (const auto& s : sims_) {
      if (s->now() > now_) now_ = s->now();
    }
  }
  return executed() - before;
}

}  // namespace pgrid::sim
