#pragma once
// Failure and churn injection (§2 "Resilience to failures").
//
// Decoupled from the grid layer: the injector schedules crash / recover /
// join events against abstract member indices and invokes user callbacks.
// The grid system wires those to node shutdown and (re)join protocols.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace pgrid::sim {

struct ChurnModel {
  /// Mean node lifetime before a crash; <= 0 disables crashes.
  double mean_lifetime_sec = 0.0;
  /// Mean downtime before the crashed node rejoins; <= 0 means crashed
  /// nodes never return.
  double mean_downtime_sec = 0.0;
  /// Fraction of members eligible to fail (the rest are stable); lets
  /// experiments keep a reliable core while churning the edge.
  double churn_fraction = 1.0;
  /// Stop injecting failures after this time; <= 0 means no limit.
  double stop_after_sec = 0.0;
};

class FailureInjector {
 public:
  using CrashFn = std::function<void(std::size_t member)>;
  using RecoverFn = std::function<void(std::size_t member)>;

  FailureInjector(Simulator& simulator, Rng rng, ChurnModel model,
                  std::size_t member_count, CrashFn on_crash,
                  RecoverFn on_recover);

  /// Arm the injector: samples initial lifetimes for eligible members.
  void start();
  void stop();

  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] bool is_up(std::size_t member) const {
    return up_.at(member);
  }

  /// Force a crash now (tests / targeted scenarios).
  void crash_now(std::size_t member);
  /// Force a recovery now.
  void recover_now(std::size_t member);

  /// Correlated mass failure: crash `fraction` of the currently-up members
  /// at once (rack power loss, datacenter cut). Victims are chosen
  /// uniformly from the up set, ignoring churn eligibility — a blackout
  /// does not respect the stable core. If `recover_after_sec > 0` each
  /// victim rejoins after that long, staggered by up to 25% jitter so the
  /// rejoin wave does not arrive as a single thundering herd. Returns the
  /// number of members actually crashed.
  std::size_t crash_burst(double fraction, double recover_after_sec = 0.0);

  /// Topology-correlated mass failure: crash exactly the given members (the
  /// caller picked them, e.g. a contiguous Chord arc or CAN slab via
  /// GridSystem::correlated_victims). Recovery staggering matches
  /// crash_burst. Returns the number actually crashed (already-down members
  /// are skipped).
  std::size_t crash_burst_members(const std::vector<std::size_t>& members,
                                  double recover_after_sec = 0.0);

  /// Rapid join-leave flapping: each of `members` enters a crash/recover
  /// cycle with mean up time `up_sec` and mean down time `down_sec`
  /// (exponential, independently jittered) until `duration_sec` elapses,
  /// after which any member still down is recovered. Members already down
  /// start with the recovery half-cycle.
  void flap(const std::vector<std::size_t>& members, double up_sec,
            double down_sec, double duration_sec);

 private:
  void schedule_crash(std::size_t member);
  void schedule_recover(std::size_t member);
  void flap_step(std::size_t member, double up_sec, double down_sec,
                 SimTime deadline);
  [[nodiscard]] bool past_stop() const;

  Simulator& sim_;
  Rng rng_;
  ChurnModel model_;
  CrashFn on_crash_;
  RecoverFn on_recover_;
  std::vector<bool> up_;
  std::vector<bool> eligible_;
  std::vector<EventId> pending_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  bool running_ = false;
};

}  // namespace pgrid::sim
