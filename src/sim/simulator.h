#pragma once
// Discrete-event simulation core: a cancellable, deterministic event queue.
//
// The paper evaluates its matchmaking frameworks with "an event-driven
// simulator" (§3.3); this is that substrate. Determinism contract: events at
// equal timestamps fire in scheduling order (FIFO tie-break via a sequence
// number), so a fixed seed reproduces a run exactly.
//
// Hot-path design (DESIGN.md §11): callbacks live in a slab-allocated event
// pool addressed by generation-tagged handles — an EventId packs (generation,
// slot index) so cancel/pending are O(1) array probes with stale-handle
// safety, and the small-buffer callback type (SmallFn) keeps the common
// captures off the heap entirely. Cancelled events leave tombstones in the
// binary heap; when tombstones outnumber live events the heap is rebuilt in
// O(n), bounding memory at O(live) even under cancel-heavy workloads (every
// successful RPC cancels its timeout).
//
// Timer lanes (DESIGN.md §13): most scheduled events are relative timers with
// one of a handful of fixed delays (RPC timeouts, maintenance periods). For a
// fixed delay d, now() + d is non-decreasing in scheduling order, so those
// events arrive already sorted — a plain FIFO per delay replaces the O(log n)
// heap sift with an O(1) push/pop. Delays repeated often enough get promoted
// to a lane; everything else (randomized network latencies, absolute times)
// stays in the heap. Popping takes the (at, seq)-minimum across the heap top
// and every lane front, so execution order — and therefore every simulation
// outcome — is bit-identical to the pure-heap implementation.

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/expects.h"
#include "common/small_fn.h"
#include "sim/time.h"

namespace pgrid::sim {

/// Handle for cancelling a scheduled event: (generation << 32) | slot index.
/// Value 0 is "invalid/none" (generations start at 1, so no live handle is 0).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = SmallFn<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` to run `delay` after the current time. Delays seen often
  /// enough are routed to an O(1) FIFO timer lane instead of the heap.
  EventId schedule_in(SimTime delay, Callback fn);

  /// Schedule with an explicit tie-break key in place of the internal
  /// sequence counter (sharded engine, DESIGN.md §17). Keys must have the
  /// top bit set — they live in the upper half of the (at, seq) order, so a
  /// keyed delivery at time t fires after every locally-scheduled event at t
  /// regardless of which shard count produced it — and must be unique per
  /// (at, key) pair. Always takes the heap path: keyed events would break
  /// the lanes' sorted-by-construction invariant.
  EventId schedule_at_keyed(SimTime at, std::uint64_t key, Callback fn);

  /// Fire time of the earliest pending event, or SimTime::max() when idle.
  /// Non-const: encountered tombstones are dropped, as in step().
  [[nodiscard]] SimTime next_time() noexcept;

  /// Cancel a pending event. Idempotent; cancelling a fired or invalid id is
  /// a no-op. Returns true iff the event was pending.
  bool cancel(EventId id);

  /// True iff the event is still pending. A handle whose slot has been
  /// recycled fails the generation check, so stale ids are always "not
  /// pending" rather than aliasing a newer event.
  [[nodiscard]] bool pending(EventId id) const noexcept {
    const std::uint32_t index = slot_of(id);
    return index < slots_.size() && slots_[index].generation == gen_of(id);
  }

  /// Run a single event; returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `horizon` is passed (events strictly
  /// after the horizon stay queued). Returns events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Run until the queue drains.
  std::uint64_t run() { return run_until(SimTime::max()); }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t queued() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Largest number of simultaneously pending (non-cancelled) events seen so
  /// far — the run's peak working set, sampled by the observability layer.
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return queue_high_water_;
  }

  /// Cancelled-but-not-yet-popped queue entries right now (heap tombstones
  /// plus lane tombstones), and the peak seen.
  /// queued() + tombstones() == heap_size() always.
  [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }
  [[nodiscard]] std::size_t tombstone_high_water() const noexcept {
    return tombstone_high_water_;
  }
  /// Total queue entries — heap plus lanes, live plus tombstones — and O(n)
  /// rebuilds performed.
  [[nodiscard]] std::size_t heap_size() const noexcept {
    return heap_.size() + lane_entries_;
  }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

  /// Bytes held by the event pool: slot slab, heap array, and timer-lane
  /// FIFOs (capacity where available, size for the deques). A capacity
  /// snapshot for the memory accountant — no hot-path bookkeeping.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t lane_bytes = 0;
    for (const Lane& lane : lanes_) lane_bytes += lane.q.size() * sizeof(Entry);
    return slots_.capacity() * sizeof(Slot) + heap_.capacity() * sizeof(Entry) +
           lanes_.capacity() * sizeof(Lane) + lane_bytes;
  }

 private:
  /// Pooled event state. A slot is live iff its generation matches the heap
  /// entry / handle that references it; freeing bumps the generation, which
  /// atomically invalidates every outstanding reference.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0;
  };

  /// Heap entry: ordering key plus the generation-tagged slot reference.
  /// Entries whose generation no longer matches their slot are tombstones.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Min-heap by (time, seq): comparator says "a fires after b". The heap
  /// is a hand-rolled 4-ary implicit heap rather than std::push_heap /
  /// std::pop_heap with this predicate: the standard algorithms take the
  /// comparator as a function pointer (an opaque call per comparison, the
  /// hottest frame in steady-state profiles), while the sift loops below
  /// inline it. 4-ary halves the tree depth versus binary, trading a few
  /// extra in-cache-line comparisons per level for half the dependent
  /// memory hops. Pop order is unchanged by heap shape: (at, seq) is a
  /// total order, so any valid heap yields the same pop sequence.
  static bool fires_after(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// FIFO of same-delay relative timers. Within one lane `at` and `seq` are
  /// both non-decreasing (now() never goes backwards), so the front is always
  /// the lane's minimum — no sifting needed. Cancelled entries tombstone in
  /// place and are dropped at the front on pop or swept by compaction.
  struct Lane {
    std::int64_t delay_ns;
    std::deque<Entry> q;
  };

  /// Direct-mapped promotion sketch: a delay value earns a lane after being
  /// scheduled kPromoteThreshold times in a row within its hash bucket. This
  /// keeps one-off and randomized delays (network latencies) in the heap
  /// while the recurring protocol constants — RPC timeouts, stabilize /
  /// update / heartbeat periods — each get a lane. Collisions only delay
  /// promotion; they never affect correctness.
  struct PromoCounter {
    std::int64_t delay_ns = -1;
    std::uint32_t count = 0;
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffff;
  static constexpr std::size_t kCompactionFloor = 64;
  static constexpr std::size_t kMaxLanes = 16;
  static constexpr std::uint32_t kPromoteThreshold = 64;
  static constexpr std::size_t kPromoBuckets = 64;

  static std::size_t promo_bucket(std::int64_t delay_ns) noexcept {
    // Fibonacci hash of the delay; 6 bits index kPromoBuckets.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(delay_ns) * 0x9E3779B97F4A7C15ULL) >> 58);
  }

  static std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept;
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void rebuild_heap() noexcept;
  void pop_heap_entry() noexcept;
  void maybe_compact();
  /// (at, seq)-minimum live entry across heap top and lane fronts, dropping
  /// any tombstones encountered there; nullptr if nothing is pending. `src`
  /// is set to the owning lane, or nullptr for the heap.
  const Entry* peek_next(Lane*& src) noexcept;
  void pop_next(Lane* src) noexcept;

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t queue_high_water_ = 0;
  std::size_t tombstone_high_water_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::vector<Lane> lanes_;
  std::size_t lane_entries_ = 0;  // total entries across all lane FIFOs
  std::array<PromoCounter, kPromoBuckets> promo_{};
};

/// RAII periodic task: reschedules itself every `period` until stopped or
/// destroyed. Used for Chord stabilization, RN-Tree aggregation pushes,
/// CAN load exchanges, and heartbeats.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, SimTime period, Simulator::Callback fn,
               SimTime initial_delay = SimTime::zero());
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void fire();

  Simulator& sim_;
  SimTime period_;
  Simulator::Callback fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace pgrid::sim
