#pragma once
// Discrete-event simulation core: a cancellable, deterministic event queue.
//
// The paper evaluates its matchmaking frameworks with "an event-driven
// simulator" (§3.3); this is that substrate. Determinism contract: events at
// equal timestamps fire in scheduling order (FIFO tie-break via a sequence
// number), so a fixed seed reproduces a run exactly.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/expects.h"
#include "sim/time.h"

namespace pgrid::sim {

/// Handle for cancelling a scheduled event. Value 0 is "invalid/none".
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` to run `delay` after the current time.
  EventId schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Idempotent; cancelling a fired or invalid id is
  /// a no-op. Returns true iff the event was pending.
  bool cancel(EventId id);

  /// True iff the event is still pending.
  [[nodiscard]] bool pending(EventId id) const {
    return live_.count(id) != 0;
  }

  /// Run a single event; returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `horizon` is passed (events strictly
  /// after the horizon stay queued). Returns events executed.
  std::uint64_t run_until(SimTime horizon);

  /// Run until the queue drains.
  std::uint64_t run() { return run_until(SimTime::max()); }

  [[nodiscard]] std::size_t queued() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Largest number of simultaneously pending (non-cancelled) events seen so
  /// far — the run's peak working set, sampled by the observability layer.
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return queue_high_water_;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;

    /// Min-heap by (time, seq): std::priority_queue is a max-heap, so invert.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t queue_high_water_ = 0;
  std::priority_queue<Entry> queue_;
  std::unordered_map<EventId, Callback> live_;
};

/// RAII periodic task: reschedules itself every `period` until stopped or
/// destroyed. Used for Chord stabilization, RN-Tree aggregation pushes,
/// CAN load exchanges, and heartbeats.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& simulator, SimTime period, Simulator::Callback fn,
               SimTime initial_delay = SimTime::zero());
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void fire();

  Simulator& sim_;
  SimTime period_;
  Simulator::Callback fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace pgrid::sim
