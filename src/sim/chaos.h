#pragma once
// Scenario-driven chaos harness: randomized fault schedules against a full
// desktop grid, with safety invariants checked after the dust settles.
//
// A chaos run builds a GridSystem, derives a fault schedule from the seed
// (partitions with scheduled heals, crash bursts, congestion/loss windows,
// gray nodes, duplication, reordering), runs the workload to completion plus
// a settle period, and then checks:
//   1. exactly-once completion — every job reaches a terminal state exactly
//      once, and duplicate Result deliveries never double-complete a job;
//   2. overlay re-convergence — after every fault heals, the Chord ring's
//      successor pointers walk the live nodes in Guid order, and the CAN
//      zones of live nodes tile the space (every probe point has exactly
//      one owner);
//   3. no monitor leaks — no live node still owns or queues a job once all
//      jobs are terminal.
// Any violation is reported with a one-line replay command that reproduces
// the failing schedule from its seed.

#include <cstdint>
#include <string>
#include <vector>

#include "grid/job.h"

namespace pgrid::sim {

struct ChaosConfig {
  grid::MatchmakerKind kind = grid::MatchmakerKind::kRnTree;
  std::uint64_t seed = 1;
  std::size_t nodes = 20;
  std::size_t jobs = 40;
  double mean_runtime_sec = 40.0;
  double mean_interarrival_sec = 5.0;

  /// Fault rounds are injected at seed-derived times inside
  /// [0, fault_window_sec]; each lasts up to max_fault_duration_sec. After
  /// the window a clear_all() barrier heals everything that remains.
  int fault_rounds = 6;
  double fault_window_sec = 500.0;
  double max_fault_duration_sec = 90.0;
  /// Quiet time after the run before invariants are checked (overlay
  /// maintenance needs a few periods to re-converge).
  double settle_sec = 300.0;

  // Fault-class toggles (all on by default; tests narrow them).
  bool enable_partitions = true;
  bool enable_crashes = true;
  bool enable_loss = true;
  bool enable_gray = true;
  bool enable_duplication = true;
  bool enable_reorder = true;
  // Extended fault classes — default OFF: the drawn schedule is a pure
  // function of (seed, enabled-class vector), so turning these on changes
  // every round of the run. Existing seeds stay reproducible with them off.
  /// Topology-correlated crash bursts: a contiguous Chord arc / CAN slab
  /// (15-35% of the live nodes) fails at once and rejoins later.
  bool enable_correlated = false;
  /// Rapid join-leave flapping: a contiguous 5-20% of the nodes cycles
  /// through short crash/recover dwells for the round's duration.
  bool enable_flapping = false;

  /// Self-healing mode: enable φ-accrual liveness on every layer plus the
  /// online anti-entropy machinery (owner audits, CAN gap audits, Chord
  /// successor-tail refresh, RN-tree token leases) and the liveness oracle
  /// that classifies evictions as false positives / late detections.
  bool self_healing = false;

  /// Maintenance batching (DESIGN.md §16) with quiet_stride pinned to 1:
  /// pure coalescing, so failure-detection cadence matches the unbatched
  /// protocol and the matrix exercises envelope loss/duplication under
  /// the same fault schedules. Default off: existing seeds reproduce.
  bool batching = false;

  /// Record a trace; on violation it is exported to trace_jsonl_path
  /// (when non-empty) for post-mortem.
  bool trace = false;
  std::string trace_jsonl_path;

  /// Print the drawn fault schedule and a sim-time progress heartbeat to
  /// stderr (debugging slow or stuck schedules).
  bool verbose = false;

  /// The command that replays exactly this schedule.
  [[nodiscard]] std::string replay_command() const;
};

struct ChaosStats {
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t duplicate_results = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions_cut = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_fault = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  double sim_duration_sec = 0.0;
  // Self-healing instrumentation (nonzero only with phi / audits enabled).
  std::uint64_t suspicions = 0;       // φ downgrades across all layers
  std::uint64_t repairs = 0;          // anti-entropy repairs across layers
  std::uint64_t fp_evictions = 0;     // evicted-but-alive (needs oracle)
  std::uint64_t fn_evictions = 0;     // detected later than the fixed rule
};

struct ChaosReport {
  ChaosConfig config;
  bool ok = true;
  /// Human-readable invariant violations (empty iff ok).
  std::vector<std::string> violations;
  /// Non-empty iff !ok: one command reproducing the failing schedule.
  std::string replay_command;
  ChaosStats stats;

  [[nodiscard]] std::string summary() const;
};

/// Run one chaos scenario to completion. Deterministic: the same config
/// (including seed) always produces the same report.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

/// Parse a matchmaker_name() string ("rn-tree", "can", "can-push", ...).
/// Returns false on unknown names.
[[nodiscard]] bool parse_matchmaker(const std::string& name,
                                    grid::MatchmakerKind* out);

}  // namespace pgrid::sim
