#pragma once
// Parallel experiment runner.
//
// Each simulation replicate is single-threaded and deterministic; a sweep of
// (configuration x replicate) cells is embarrassingly parallel. The runner
// distributes cells over a thread pool with a work-stealing counter and
// collects results in submission order, so parallel runs produce identical
// output to serial ones.

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/expects.h"

namespace pgrid::sim {

/// Run `fn(cell_index)` for every cell in [0, cells) on up to `threads`
/// workers (0 = hardware concurrency). `fn` must not touch shared mutable
/// state; results should be written to a pre-sized per-cell slot.
void parallel_for_cells(std::size_t cells, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// Convenience: run a sweep producing one result per cell.
template <typename Result, typename Fn>
std::vector<Result> run_sweep(std::size_t cells, std::size_t threads, Fn&& fn) {
  std::vector<Result> results(cells);
  parallel_for_cells(cells, threads, [&](std::size_t i) {
    results[i] = fn(i);
  });
  return results;
}

}  // namespace pgrid::sim
