#pragma once
// Parallel experiment runner.
//
// Each simulation replicate is single-threaded and deterministic; a sweep of
// (configuration x replicate) cells is embarrassingly parallel. The runner
// distributes cells over a thread pool with a work-stealing counter and
// collects results in submission order, so parallel runs produce identical
// output to serial ones.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/expects.h"
#include "common/small_fn.h"

namespace pgrid::sim {

/// Move-only cell callable: SmallFn instead of std::function, so sweep
/// lambdas may own move-only state (workload traces, open files) and small
/// captures stay off the heap.
using CellFn = SmallFn<void(std::size_t)>;

/// Run `fn(cell_index)` for every cell in [0, cells) on up to `threads`
/// workers (0 = hardware concurrency). `fn` is invoked concurrently, so it
/// must not touch shared mutable state; results should be written to a
/// pre-sized per-cell slot.
void parallel_for_cells(std::size_t cells, std::size_t threads, CellFn fn);

/// Convenience: run a sweep producing one result per cell.
template <typename Result, typename Fn>
std::vector<Result> run_sweep(std::size_t cells, std::size_t threads, Fn&& fn) {
  std::vector<Result> results(cells);
  parallel_for_cells(cells, threads, [&](std::size_t i) {
    results[i] = fn(i);
  });
  return results;
}

}  // namespace pgrid::sim
