#pragma once
// Shard partitioner: contiguous balanced arcs over a traversal order.
//
// The sharded engine (sharded.h, DESIGN.md §17) assigns every entity (grid
// node, client) to exactly one shard. Assignment is by *contiguous arcs of a
// sort order* — for grid nodes, Guid order — mirroring `correlated_victims`:
// overlay neighbours (Chord successors, CAN zone neighbours) are adjacent in
// that order, so most protocol traffic stays shard-local and only arc-boundary
// links cross shards.
//
// The plan is a pure function of (order, shards): fixed seed → fixed Guids →
// fixed order → fixed assignment, part of the sharded determinism contract.

#include <cstdint>
#include <vector>

#include "common/expects.h"

namespace pgrid::sim {

struct ShardPlan {
  std::uint32_t shards = 1;
  /// Entity index -> owning shard. Covers every entity exactly once.
  std::vector<std::uint32_t> shard_of;
  /// Arc s spans order[arc_begin[s]] .. order[arc_begin[s + 1]) — the
  /// contiguous run of the traversal order owned by shard s. Offsets are
  /// non-decreasing; trailing arcs are empty when shards > entities.
  std::vector<std::size_t> arc_begin;

  [[nodiscard]] std::size_t arc_size(std::uint32_t s) const noexcept {
    return arc_begin[s + 1] - arc_begin[s];
  }
};

/// Partition the entities listed in `order` (a permutation of 0..n-1, e.g.
/// node indices sorted by Guid) into `shards` contiguous arcs. The first
/// n % shards arcs take one extra entity, so arc sizes differ by at most one.
inline ShardPlan plan_shards(const std::vector<std::size_t>& order,
                             std::uint32_t shards) {
  PGRID_EXPECTS(shards >= 1);
  const std::size_t n = order.size();
  ShardPlan plan;
  plan.shards = shards;
  plan.shard_of.resize(n, 0);
  plan.arc_begin.resize(static_cast<std::size_t>(shards) + 1, 0);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t at = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    plan.arc_begin[s] = at;
    const std::size_t len = base + (s < extra ? 1 : 0);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t entity = order[at + i];
      PGRID_EXPECTS(entity < n);
      plan.shard_of[entity] = s;
    }
    at += len;
  }
  plan.arc_begin[shards] = at;
  PGRID_ENSURES(at == n);
  return plan;
}

}  // namespace pgrid::sim
