#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace pgrid::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  PGRID_EXPECTS(slots_.size() < kNoFreeSlot);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  // Bumping the generation invalidates every outstanding EventId and heap
  // entry referring to this incarnation; 0 is skipped so ids are never 0.
  if (++slot.generation == 0) slot.generation = 1;
  slot.next_free = free_head_;
  free_head_ = index;
  --live_;
}

// --- 4-ary implicit heap ----------------------------------------------------
// children of i are 4i+1 .. 4i+4, parent is (i-1)/4. The element being
// placed is held in a register and written once at its final position, so a
// sift is one store per level instead of a swap.

void Simulator::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!fires_after(heap_[parent], e)) break;  // parent fires no later
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    std::size_t child = (i << 2) + 1;
    if (child >= n) break;
    const std::size_t last = std::min(child + 4, n);
    std::size_t best = child;
    for (std::size_t c = child + 1; c < last; ++c) {
      if (fires_after(heap_[best], heap_[c])) best = c;
    }
    if (!fires_after(e, heap_[best])) break;  // e fires no later than children
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::rebuild_heap() noexcept {
  // Floyd bottom-up heapify: O(n).
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) >> 2; ; --i) {
    sift_down(i);
    if (i == 0) break;
  }
}

EventId Simulator::schedule_at(SimTime at, Callback fn) {
  PGRID_EXPECTS(at >= now_);
  PGRID_EXPECTS(fn != nullptr);
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, index, slot.generation});
  sift_up(heap_.size() - 1);
  ++live_;
  if (live_ > queue_high_water_) queue_high_water_ = live_;
  return static_cast<EventId>(slot.generation) << 32 | index;
}

EventId Simulator::schedule_at_keyed(SimTime at, std::uint64_t key,
                                     Callback fn) {
  PGRID_EXPECTS(at >= now_);
  PGRID_EXPECTS(fn != nullptr);
  PGRID_EXPECTS((key >> 63) == 1);  // keyed events order after local seqs
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  heap_.push_back(Entry{at, key, index, slot.generation});
  sift_up(heap_.size() - 1);
  ++live_;
  if (live_ > queue_high_water_) queue_high_water_ = live_;
  return static_cast<EventId>(slot.generation) << 32 | index;
}

SimTime Simulator::next_time() noexcept {
  Lane* src = nullptr;
  const Entry* next = peek_next(src);
  return next == nullptr ? SimTime::max() : next->at;
}

EventId Simulator::schedule_in(SimTime delay, Callback fn) {
  // Route recurring fixed delays to a FIFO lane: for a fixed d, now() + d is
  // non-decreasing across calls and seq is globally increasing, so a lane is
  // sorted by construction and push/pop are O(1). The EventId, seq, and slot
  // assignment are identical to the heap path, so which structure an event
  // sits in is invisible to the simulation.
  PGRID_EXPECTS(delay >= SimTime::zero());
  const std::int64_t d = delay.ns();
  Lane* lane = nullptr;
  for (Lane& l : lanes_) {
    if (l.delay_ns == d) {
      lane = &l;
      break;
    }
  }
  if (lane == nullptr) {
    if (lanes_.size() < kMaxLanes) {
      PromoCounter& p = promo_[promo_bucket(d)];
      if (p.delay_ns == d) {
        if (++p.count >= kPromoteThreshold) {
          lanes_.push_back(Lane{d, {}});
          lane = &lanes_.back();
        }
      } else {
        p.delay_ns = d;
        p.count = 1;
      }
    }
    if (lane == nullptr) return schedule_at(now_ + delay, std::move(fn));
  }
  PGRID_EXPECTS(fn != nullptr);
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  lane->q.push_back(Entry{now_ + delay, next_seq_++, index, slot.generation});
  ++lane_entries_;
  ++live_;
  if (live_ > queue_high_water_) queue_high_water_ = live_;
  return static_cast<EventId>(slot.generation) << 32 | index;
}

bool Simulator::cancel(EventId id) {
  if (!pending(id)) return false;
  release_slot(slot_of(id));
  // The heap entry stays behind as a tombstone (its generation no longer
  // matches the slot) and is skipped on pop; the callback and any captured
  // state are released immediately. Compaction bounds tombstone buildup.
  ++tombstones_;
  if (tombstones_ > tombstone_high_water_) tombstone_high_water_ = tombstones_;
  maybe_compact();
  return true;
}

void Simulator::pop_heap_entry() noexcept {
  const Entry back = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = back;
    sift_down(0);
  }
}

void Simulator::maybe_compact() {
  // Rebuild when tombstones dominate: O(n) filter + make_heap amortizes to
  // O(1) per cancel, and keeps the queue at O(live) entries. Pop order is
  // unchanged — (at, seq) is a total order, so heap layout is irrelevant and
  // erasing from a lane FIFO preserves its order. Lanes must be swept here
  // too: cancel-heavy phases that never execute events (so front-dropping
  // never runs) would otherwise grow a lane without bound.
  if (tombstones_ <= live_ || tombstones_ < kCompactionFloor) return;
  const auto dead = [this](const Entry& e) {
    return slots_[e.slot].generation != e.gen;
  };
  std::erase_if(heap_, dead);
  rebuild_heap();
  for (Lane& l : lanes_) {
    lane_entries_ -= l.q.size();
    std::erase_if(l.q, dead);
    lane_entries_ += l.q.size();
  }
  tombstones_ = 0;
  ++compactions_;
}

const Simulator::Entry* Simulator::peek_next(Lane*& src) noexcept {
  while (!heap_.empty() &&
         slots_[heap_.front().slot].generation != heap_.front().gen) {
    pop_heap_entry();  // tombstone from cancel()
    --tombstones_;
  }
  const Entry* best = heap_.empty() ? nullptr : heap_.data();
  src = nullptr;
  for (Lane& l : lanes_) {
    while (!l.q.empty()) {
      const Entry& front = l.q.front();
      if (slots_[front.slot].generation == front.gen) break;
      l.q.pop_front();
      --lane_entries_;
      --tombstones_;
    }
    if (l.q.empty()) continue;
    const Entry& front = l.q.front();
    if (best == nullptr || fires_after(*best, front)) {
      best = &front;
      src = &l;
    }
  }
  return best;
}

void Simulator::pop_next(Lane* src) noexcept {
  if (src == nullptr) {
    pop_heap_entry();
  } else {
    src->q.pop_front();
    --lane_entries_;
  }
}

bool Simulator::step() {
  Lane* src = nullptr;
  const Entry* next = peek_next(src);
  if (next == nullptr) return false;
  const Entry top = *next;
  pop_next(src);
  now_ = top.at;
  // Move the callback out and free the slot *before* invoking: the
  // callback may schedule (reusing this slot) or cancel other events.
  Slot& slot = slots_[top.slot];
  Callback fn = std::move(slot.fn);
  release_slot(top.slot);
  ++executed_;
  fn();
  return true;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  for (;;) {
    Lane* src = nullptr;
    const Entry* next = peek_next(src);
    if (next == nullptr || next->at > horizon) break;
    const Entry top = *next;
    pop_next(src);
    now_ = top.at;
    Slot& slot = slots_[top.slot];
    Callback fn = std::move(slot.fn);
    release_slot(top.slot);
    ++executed_;
    fn();
    ++n;
  }
  if (now_ < horizon && horizon != SimTime::max()) now_ = horizon;
  return n;
}

PeriodicTask::PeriodicTask(Simulator& simulator, SimTime period,
                           Simulator::Callback fn, SimTime initial_delay)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  PGRID_EXPECTS(period > SimTime::zero());
  PGRID_EXPECTS(fn_ != nullptr);
  pending_ = sim_.schedule_in(initial_delay, [this] { fire(); });
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::fire() {
  if (!running_) return;
  pending_ = sim_.schedule_in(period_, [this] { fire(); });
  fn_();
}

}  // namespace pgrid::sim
