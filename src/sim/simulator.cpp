#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace pgrid::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  PGRID_EXPECTS(slots_.size() < kNoFreeSlot);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  // Bumping the generation invalidates every outstanding EventId and heap
  // entry referring to this incarnation; 0 is skipped so ids are never 0.
  if (++slot.generation == 0) slot.generation = 1;
  slot.next_free = free_head_;
  free_head_ = index;
  --live_;
}

EventId Simulator::schedule_at(SimTime at, Callback fn) {
  PGRID_EXPECTS(at >= now_);
  PGRID_EXPECTS(fn != nullptr);
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  heap_.push_back(Entry{at, next_seq_++, index, slot.generation});
  std::push_heap(heap_.begin(), heap_.end(), fires_after);
  ++live_;
  if (live_ > queue_high_water_) queue_high_water_ = live_;
  return static_cast<EventId>(slot.generation) << 32 | index;
}

bool Simulator::cancel(EventId id) {
  if (!pending(id)) return false;
  release_slot(slot_of(id));
  // The heap entry stays behind as a tombstone (its generation no longer
  // matches the slot) and is skipped on pop; the callback and any captured
  // state are released immediately. Compaction bounds tombstone buildup.
  ++tombstones_;
  if (tombstones_ > tombstone_high_water_) tombstone_high_water_ = tombstones_;
  maybe_compact();
  return true;
}

void Simulator::pop_heap_entry() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), fires_after);
  heap_.pop_back();
}

void Simulator::maybe_compact() {
  // Rebuild when tombstones dominate: O(n) filter + make_heap amortizes to
  // O(1) per cancel, and keeps the heap at O(live) entries. Pop order is
  // unchanged — (at, seq) is a total order, so heap layout is irrelevant.
  if (tombstones_ <= live_ || tombstones_ < kCompactionFloor) return;
  std::erase_if(heap_, [this](const Entry& e) {
    return slots_[e.slot].generation != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), fires_after);
  tombstones_ = 0;
  ++compactions_;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    Slot& slot = slots_[top.slot];
    if (slot.generation != top.gen) {
      pop_heap_entry();  // tombstone from cancel()
      --tombstones_;
      continue;
    }
    pop_heap_entry();
    now_ = top.at;
    // Move the callback out and free the slot *before* invoking: the
    // callback may schedule (reusing this slot) or cancel other events.
    Callback fn = std::move(slot.fn);
    release_slot(top.slot);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Skip tombstones without advancing time.
    const Entry& top = heap_.front();
    if (slots_[top.slot].generation != top.gen) {
      pop_heap_entry();
      --tombstones_;
      continue;
    }
    if (top.at > horizon) break;
    step();
    ++n;
  }
  if (now_ < horizon && horizon != SimTime::max()) now_ = horizon;
  return n;
}

PeriodicTask::PeriodicTask(Simulator& simulator, SimTime period,
                           Simulator::Callback fn, SimTime initial_delay)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  PGRID_EXPECTS(period > SimTime::zero());
  PGRID_EXPECTS(fn_ != nullptr);
  pending_ = sim_.schedule_in(initial_delay, [this] { fire(); });
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::fire() {
  if (!running_) return;
  pending_ = sim_.schedule_in(period_, [this] { fire(); });
  fn_();
}

}  // namespace pgrid::sim
