#include "sim/simulator.h"

#include <utility>

namespace pgrid::sim {

EventId Simulator::schedule_at(SimTime at, Callback fn) {
  PGRID_EXPECTS(at >= now_);
  PGRID_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  live_.emplace(id, std::move(fn));
  if (live_.size() > queue_high_water_) queue_high_water_ = live_.size();
  return id;
}

bool Simulator::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop; the
  // callback (and any captured state) is released immediately.
  return live_.erase(id) != 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = live_.find(top.id);
    if (it == live_.end()) {
      queue_.pop();  // tombstone from cancel()
      continue;
    }
    queue_.pop();
    now_ = top.at;
    Callback fn = std::move(it->second);
    live_.erase(it);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip tombstones without advancing time.
    auto it = live_.find(queue_.top().id);
    if (it == live_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > horizon) break;
    step();
    ++n;
  }
  if (now_ < horizon && horizon != SimTime::max()) now_ = horizon;
  return n;
}

PeriodicTask::PeriodicTask(Simulator& simulator, SimTime period,
                           Simulator::Callback fn, SimTime initial_delay)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  PGRID_EXPECTS(period > SimTime::zero());
  PGRID_EXPECTS(fn_ != nullptr);
  pending_ = sim_.schedule_in(initial_delay, [this] { fire(); });
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::fire() {
  if (!running_) return;
  pending_ = sim_.schedule_in(period_, [this] { fire(); });
  fn_();
}

}  // namespace pgrid::sim
