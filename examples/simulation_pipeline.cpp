// Simulation -> analysis pipelines with DAG dependencies (§5 future work):
// "the system will have to distinguish between job types (simulation vs.
// analysis) and perform the jobs in the correct order ... We will
// investigate using existing software packages, such as Condor's DAGMan."
//
// This example runs several independent asteroid-simulation campaigns, each
// a three-stage pipeline:
//   generate initial conditions -> N x gravity simulations -> joint analysis
// The DagRunner (our DAGMan analogue) releases each stage only when its
// parents have completed.
//
//   ./simulation_pipeline [--campaigns=4] [--sims=6]

#include <cstdio>
#include <vector>

#include "common/config.h"
#include "grid/dag.h"
#include "grid/grid_system.h"

using namespace pgrid;

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const auto campaigns =
      static_cast<std::size_t>(config.get_int("campaigns", 4));
  const auto sims = static_cast<std::size_t>(config.get_int("sims", 6));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(config.get_int("seed", 99));

  // Each campaign: 1 generator + `sims` simulations + 1 analysis job.
  const std::size_t per_campaign = 1 + sims + 1;
  workload::WorkloadSpec spec;
  spec.node_count = 48;
  spec.job_count = campaigns * per_campaign;
  spec.seed = seed;
  workload::Workload w = workload::generate(spec);

  std::vector<grid::DagEdge> edges;
  for (std::size_t c = 0; c < campaigns; ++c) {
    const std::uint64_t base = c * per_campaign;
    const std::uint64_t generator = base;
    const std::uint64_t analysis = base + per_campaign - 1;
    w.jobs[generator].runtime_sec = 15.0;   // quick IC generation
    w.jobs[generator].constraints = {};
    w.jobs[analysis].runtime_sec = 45.0;    // joint statistics over outputs
    w.jobs[analysis].constraints = {};
    w.jobs[analysis].constraints.active[1] = true;  // analysis wants memory
    w.jobs[analysis].constraints.min[1] = 4.0;
    for (std::size_t s = 0; s < sims; ++s) {
      const std::uint64_t sim_job = base + 1 + s;
      w.jobs[sim_job].runtime_sec = 60.0 + 20.0 * static_cast<double>(s);
      w.jobs[sim_job].constraints = {};
      edges.push_back({generator, sim_job});   // sims need the ICs
      edges.push_back({sim_job, analysis});    // analysis needs every sim
    }
  }

  grid::GridConfig grid_config;
  grid_config.kind = grid::MatchmakerKind::kRnTree;
  grid_config.seed = seed;
  grid_config.manual_submission = true;  // the DAG runner releases jobs
  grid::GridSystem system(grid_config, w);
  grid::DagRunner dag(system, edges);

  std::printf("simulation_pipeline: %zu campaigns x (1 generator + %zu "
              "simulations + 1 analysis) on a 48-node grid\n\n",
              campaigns, sims);
  dag.start();
  system.run();

  std::printf("%-10s %-12s %12s %12s %12s\n", "campaign", "stage",
              "released(s)", "started(s)", "done(s)");
  for (std::size_t c = 0; c < campaigns; ++c) {
    const std::uint64_t base = c * per_campaign;
    const auto row = [&](std::uint64_t seq, const char* stage) {
      const auto& o = system.collector().job(seq);
      std::printf("%-10zu %-12s %12.1f %12.1f %12.1f\n", c, stage,
                  o.submit_sec, o.started_sec, o.completed_sec);
    };
    row(base, "generate");
    row(base + 1, "simulate[0]");
    row(base + per_campaign - 2, "simulate[N]");
    row(base + per_campaign - 1, "analysis");
  }

  std::printf("\nDAG: released %llu, completed %llu, failed %llu, "
              "cancelled %llu — %s\n",
              static_cast<unsigned long long>(dag.released()),
              static_cast<unsigned long long>(dag.completed()),
              static_cast<unsigned long long>(dag.failed()),
              static_cast<unsigned long long>(dag.cancelled()),
              dag.finished() ? "pipeline complete" : "incomplete");
  return dag.finished() && dag.failed() == 0 ? 0 : 1;
}
