// General-purpose experiment runner: the tool a downstream user reaches for
// first. Configures a whole grid experiment from the command line (or a
// key=value config file), runs it, prints a report with an ASCII wait-time
// histogram, and optionally exports per-job CSV, the exact workload trace
// for replay, a Chrome/Perfetto event trace, and a time-series CSV.
//
//   ./run_experiment --matchmaker=rn-tree --nodes=500 --jobs=2000
//   ./run_experiment --config=experiment.cfg --csv=jobs.csv --workload-out=wl.csv
//   ./run_experiment --replay=wl.csv --matchmaker=can   # same jobs, new scheme
//   ./run_experiment --trace --timeseries   # trace.json + timeseries.csv
//
// Recognized keys (defaults in parentheses): matchmaker (rn-tree), nodes
// (200), jobs (1000), runtime (100), interarrival (0.1), constraint (0.4),
// clustered-nodes (0), clustered-jobs (0), seed (1), churn-lifetime (0 =
// none), queue (fifo|fair-share), kill-factor (0), csv, workload-out,
// replay, config.
//
// Failure-detection keys: --heartbeat-period=sec (5) and
// --miss-threshold=n (3) tune the fixed-timeout monitor; --phi enables the
// φ-accrual detector on every layer, with --phi-suspect (2.0) and
// --phi-evict (3.0) thresholds in mean-gap units; --audit-period=sec (0 =
// off) enables the online anti-entropy audits (owner records, CAN tiling,
// RN-tree search-token leases) at that period.
//
// Batching keys (DESIGN.md §16): --batching coalesces same-destination
// maintenance traffic into one wire message per node pair per round;
// --batching-stride=N (1) decimates CAN quiet-neighbor contacts to every
// Nth round. Off by default: batching-off runs are byte-identical to
// pre-batching builds.
//
// Observability keys: --trace[=path] writes a Chrome trace_event JSON
// (default trace.json, load at https://ui.perfetto.dev), --trace-jsonl=path
// writes the raw events as JSONL, --trace-capacity=N sizes the event ring
// (default 1M; oldest events are overwritten past that),
// --trace-sample=N samples every N-th job submission into a cross-node
// causal span tree (implies --trace; the Perfetto export then shows
// per-hop latency trees with flow arrows), --timeseries[=path] writes
// per-interval gauges as CSV (default timeseries.csv), --sample-period=sec
// sets the interval (default 5), --metrics-out=path writes the final
// MetricsRegistry snapshot (counters, gauges, distributions) as CSV.

#include <cstdio>
#include <string>

#include "common/config.h"
#include "grid/grid_system.h"
#include "metrics/report.h"
#include "workload/trace.h"

using namespace pgrid;

namespace {

grid::MatchmakerKind parse_kind(const std::string& name) {
  if (name == "centralized") return grid::MatchmakerKind::kCentralized;
  if (name == "random") return grid::MatchmakerKind::kRandom;
  if (name == "can") return grid::MatchmakerKind::kCanBasic;
  if (name == "can-push") return grid::MatchmakerKind::kCanPush;
  return grid::MatchmakerKind::kRnTree;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  if (config.has("config") &&
      !config.load_file(config.get_string("config", ""))) {
    std::fprintf(stderr, "error: cannot read config file\n");
    return 2;
  }
  // CLI overrides the file. parse_args only understands key=value, so the
  // valueless forms of the observability switches come back as leftovers.
  for (const std::string& token : config.parse_args(argc, argv)) {
    if (token == "--trace") {
      config.set("trace", "1");
    } else if (token == "--timeseries") {
      config.set("timeseries", "1");
    } else if (token == "--phi") {
      config.set("phi", "1");
    } else if (token == "--batching") {
      config.set("batching", "1");
    } else {
      std::fprintf(stderr, "error: unrecognized argument %s\n", token.c_str());
      return 2;
    }
  }

  // --- workload: generate or replay ---------------------------------------
  workload::Workload w;
  if (config.has("replay")) {
    if (!workload::load_trace(config.get_string("replay", ""), &w)) {
      std::fprintf(stderr, "error: cannot load workload trace\n");
      return 2;
    }
    std::printf("replaying trace: %zu nodes, %zu jobs\n", w.spec.node_count,
                w.spec.job_count);
  } else {
    workload::WorkloadSpec spec;
    spec.node_count = static_cast<std::size_t>(config.get_int("nodes", 200));
    spec.job_count = static_cast<std::size_t>(config.get_int("jobs", 1000));
    spec.mean_runtime_sec = config.get_double("runtime", 100.0);
    spec.mean_interarrival_sec = config.get_double("interarrival", 0.1);
    spec.constraint_probability = config.get_double("constraint", 0.4);
    spec.node_mix = config.get_bool("clustered-nodes", false)
                        ? workload::Mix::kClustered
                        : workload::Mix::kMixed;
    spec.job_mix = config.get_bool("clustered-jobs", false)
                       ? workload::Mix::kClustered
                       : workload::Mix::kMixed;
    spec.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
    w = workload::generate(spec);
  }
  if (config.has("workload-out") &&
      !workload::save_trace(w, config.get_string("workload-out", ""))) {
    std::fprintf(stderr, "error: cannot write workload trace\n");
    return 2;
  }

  // --- grid configuration ---------------------------------------------------
  grid::GridConfig gc;
  gc.kind = parse_kind(config.get_string("matchmaker", "rn-tree"));
  gc.seed = static_cast<std::uint64_t>(config.get_int("seed", 1)) + 77;
  gc.light_maintenance = !config.has("churn-lifetime");
  if (config.get_string("queue", "fifo") == "fair-share") {
    gc.node.queue_policy = grid::QueuePolicy::kFairShare;
  }
  gc.node.runaway_kill_factor = config.get_double("kill-factor", 0.0);
  // --shards=N runs the conservative-lookahead sharded engine (DESIGN.md
  // §17). Overlay matchmakers only; incompatible with churn/trace/timeseries
  // (build_sharded rejects those combinations).
  gc.shards = static_cast<std::size_t>(config.get_int("shards", 0));

  // --- failure detection / anti-entropy ------------------------------------
  gc.node.heartbeat_period = sim::SimTime::seconds(
      config.get_double("heartbeat-period",
                        gc.node.heartbeat_period.sec()));
  gc.node.heartbeat_miss_threshold = static_cast<int>(config.get_int(
      "miss-threshold", gc.node.heartbeat_miss_threshold));
  if (config.get_bool("phi", false)) {
    gc.node.phi.enabled = true;  // build() propagates to chord/can/rntree
    gc.node.phi.suspect_threshold =
        config.get_double("phi-suspect", gc.node.phi.suspect_threshold);
    gc.node.phi.evict_threshold =
        config.get_double("phi-evict", gc.node.phi.evict_threshold);
  }
  // --batching coalesces same-destination maintenance traffic into one wire
  // message per node pair per round (DESIGN.md §16); --batching-stride tunes
  // the CAN quiet-neighbor decimation (1 = coalescing only).
  if (config.get_bool("batching", false)) {
    gc.batching.enabled = true;
    gc.batching.quiet_stride = static_cast<std::uint32_t>(config.get_int(
        "batching-stride", static_cast<std::int64_t>(gc.batching.quiet_stride)));
  }
  const double audit_sec = config.get_double("audit-period", 0.0);
  if (audit_sec > 0.0) {
    gc.node.audit_period = sim::SimTime::seconds(audit_sec);
    gc.node.can.audit_period = sim::SimTime::seconds(audit_sec);
    gc.node.rntree.token_lease = sim::SimTime::seconds(audit_sec);
  }

  // --- observability ----------------------------------------------------------
  if (config.has("trace") || config.has("trace-jsonl") ||
      config.has("trace-sample")) {
    gc.obs.trace = true;
    std::string chrome = config.get_string("trace", "");
    if (chrome == "1" || chrome == "true") chrome = "trace.json";
    // --trace-sample alone still needs an export to be useful.
    if (chrome.empty() && config.has("trace-sample") &&
        !config.has("trace-jsonl")) {
      chrome = "trace.json";
    }
    gc.obs.chrome_trace_path = chrome;
    gc.obs.jsonl_path = config.get_string("trace-jsonl", "");
    gc.obs.trace_capacity = static_cast<std::size_t>(
        config.get_int("trace-capacity",
                       static_cast<std::int64_t>(gc.obs.trace_capacity)));
    gc.obs.trace_sample_every =
        static_cast<std::uint64_t>(config.get_int("trace-sample", 0));
  }
  if (config.has("timeseries") || config.has("sample-period")) {
    std::string csv = config.get_string("timeseries", "1");
    if (csv == "1" || csv == "true") csv = "timeseries.csv";
    gc.obs.timeseries_csv_path = csv;
    gc.obs.sample_period_sec = config.get_double("sample-period", 5.0);
  }
  gc.obs.metrics_csv_path = config.get_string("metrics-out", "");

  grid::GridSystem system(gc, w);
  const double lifetime = config.get_double("churn-lifetime", 0.0);
  if (lifetime > 0.0) {
    sim::ChurnModel churn;
    churn.mean_lifetime_sec = lifetime;
    churn.mean_downtime_sec = config.get_double("churn-downtime", 120.0);
    churn.churn_fraction = config.get_double("churn-fraction", 0.5);
    system.enable_churn(churn);
  }

  std::printf("running: %s matchmaking, %zu nodes, %zu jobs%s\n",
              grid::matchmaker_name(gc.kind), w.spec.node_count,
              w.spec.job_count, lifetime > 0 ? ", with churn" : "");
  system.run();

  // --- report -----------------------------------------------------------------
  const auto& c = system.collector();
  const Samples waits = c.wait_times();
  std::printf("\n%s\n", c.summary().c_str());
  if (!waits.empty()) {
    std::printf("wait quantiles: p50=%.1fs p90=%.1fs p99=%.1fs max=%.1fs\n",
                waits.median(), waits.quantile(0.9), waits.quantile(0.99),
                waits.max());
  }
  std::printf("makespan: %.0fs   load (jobs/node) cv: %.2f\n",
              c.makespan_sec(), c.jobs_per_node().cv());
  std::printf("network: %llu msgs sent / %llu delivered (%.1f per job), "
              "%.1f MB sent / %.1f MB delivered\n",
              static_cast<unsigned long long>(
                  system.net_stats().messages_sent),
              static_cast<unsigned long long>(
                  system.net_stats().messages_delivered),
              static_cast<double>(system.net_stats().messages_sent) /
                  static_cast<double>(w.spec.job_count),
              static_cast<double>(system.net_stats().bytes_sent) / 1048576.0,
              static_cast<double>(system.net_stats().bytes_delivered) /
                  1048576.0);
  std::printf("profile: %s\n", system.profile().summary().c_str());
  const auto stats = system.aggregate_node_stats();
  if (stats.run_recoveries + stats.owner_recoveries + stats.jobs_killed_quota) {
    std::printf("recovery: %llu reruns, %llu owner handoffs, %llu quota kills\n",
                static_cast<unsigned long long>(stats.run_recoveries),
                static_cast<unsigned long long>(stats.owner_recoveries),
                static_cast<unsigned long long>(stats.jobs_killed_quota));
  }
  if (stats.owner_audit_repairs) {
    std::printf("anti-entropy: %llu owner records re-homed\n",
                static_cast<unsigned long long>(stats.owner_audit_repairs));
  }
  std::printf("\nwait-time distribution:\n%s",
              metrics::wait_histogram(c).c_str());

  if (config.has("csv")) {
    const std::string path = config.get_string("csv", "");
    if (!metrics::write_job_csv(c, path)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("\nper-job CSV written to %s\n", path.c_str());
  }

  if (!system.write_observability()) {
    std::fprintf(stderr, "error: cannot write observability outputs\n");
    return 2;
  }
  if (const obs::TraceBus* bus = system.trace_bus()) {
    std::printf("\ntrace: %llu events recorded, %llu overwritten (ring "
                "capacity %zu)\n",
                static_cast<unsigned long long>(bus->total_recorded()),
                static_cast<unsigned long long>(bus->dropped()),
                bus->capacity());
    if (!gc.obs.chrome_trace_path.empty()) {
      std::printf("trace: Chrome trace written to %s (load at "
                  "https://ui.perfetto.dev)\n",
                  gc.obs.chrome_trace_path.c_str());
    }
    if (!gc.obs.jsonl_path.empty()) {
      std::printf("trace: JSONL written to %s\n", gc.obs.jsonl_path.c_str());
    }
  }
  if (const obs::TimeSeriesSampler* ts = system.sampler()) {
    std::printf("timeseries: %zu samples x %zu columns written to %s\n",
                ts->row_count(), ts->column_count(),
                gc.obs.timeseries_csv_path.c_str());
  }
  if (const obs::TraceBus* bus = system.trace_bus();
      bus != nullptr && gc.obs.trace_sample_every > 0) {
    std::printf("trace: %llu causal traces sampled (1 in %llu submissions)\n",
                static_cast<unsigned long long>(bus->traces_started()),
                static_cast<unsigned long long>(gc.obs.trace_sample_every));
  }
  if (!gc.obs.metrics_csv_path.empty()) {
    std::printf("metrics: registry snapshot written to %s\n",
                gc.obs.metrics_csv_path.c_str());
  }
  return system.finished() ? 0 : 1;
}
