// Replay (or explore) one chaos schedule by seed.
//
// The chaos harness prints a command of this form whenever an invariant is
// violated; running it reproduces the exact fault schedule — same
// partitions, same crash bursts, same gray nodes — because everything is
// derived from the seed.
//
//   ./chaos_replay [--kind=rn-tree] [--seed=1] [--nodes=20] [--jobs=40]
//                  [--rounds=6] [--trace=1] [--correlated] [--flapping]
//                  [--self-healing] [--batching]
//
// --correlated / --flapping extend the drawn fault classes with
// topology-correlated crash bursts (a contiguous Chord arc / CAN slab) and
// rapid join-leave flapping; enabling them redraws the whole schedule, so
// they are part of the replay identity and appear in replay commands.
// --self-healing turns on φ-accrual liveness and the online anti-entropy
// audits on every node.
// --batching runs with maintenance batching on (quiet_stride pinned to 1 so
// the fault schedule and detection cadence are unchanged; see DESIGN.md §16).
//
// --matrix ignores the single-schedule flags and runs the standard 24-cell
// matrix (rn-tree/can/can-push x seeds 1..8) through parallel_for_cells;
// --extended appends the 12-cell self-healing matrix (x seeds 1..4, with
// correlated bursts and flapping). --threads=N sets the worker count
// (0 = hardware concurrency). Per-cell verdict lines print in cell order and
// are byte-identical for every thread count, so CI can diff a --threads=1
// pass against a parallel one.
//
// Exits 0 when every invariant holds; on violation prints the violations,
// writes chaos_<kind>_<seed>.jsonl if tracing, and exits 1.

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/chaos.h"
#include "sim/runner.h"

using namespace pgrid;

int main(int argc, char** argv) {
  Config config;
  // parse_args only understands key=value; the valueless switch forms the
  // harness prints in replay commands come back as leftovers.
  for (const std::string& token : config.parse_args(argc, argv)) {
    if (token == "--correlated") {
      config.set("correlated", "1");
    } else if (token == "--flapping") {
      config.set("flapping", "1");
    } else if (token == "--self-healing") {
      config.set("self-healing", "1");
    } else if (token == "--batching") {
      config.set("batching", "1");
    } else if (token == "--matrix") {
      config.set("matrix", "1");
    } else if (token == "--extended") {
      config.set("extended", "1");
    } else {
      std::fprintf(stderr, "chaos_replay: unrecognized argument %s\n",
                   token.c_str());
      return 2;
    }
  }

  if (config.get_bool("matrix", false)) {
    struct Cell {
      grid::MatchmakerKind kind;
      std::uint64_t seed;
      bool ext;
    };
    std::vector<Cell> cells;
    for (const grid::MatchmakerKind k :
         {grid::MatchmakerKind::kRnTree, grid::MatchmakerKind::kCanBasic,
          grid::MatchmakerKind::kCanPush}) {
      for (std::uint64_t s = 1; s <= 8; ++s) cells.push_back({k, s, false});
    }
    if (config.get_bool("extended", false)) {
      for (const grid::MatchmakerKind k :
           {grid::MatchmakerKind::kRnTree, grid::MatchmakerKind::kCanBasic,
            grid::MatchmakerKind::kCanPush}) {
        for (std::uint64_t s = 1; s <= 4; ++s) cells.push_back({k, s, true});
      }
    }
    std::vector<sim::ChaosReport> reports(cells.size());
    sim::parallel_for_cells(
        cells.size(),
        static_cast<std::size_t>(config.get_int("threads", 0)),
        [&](std::size_t i) {
          sim::ChaosConfig cell;
          cell.kind = cells[i].kind;
          cell.seed = cells[i].seed;
          if (cells[i].ext) {
            cell.enable_correlated = true;
            cell.enable_flapping = true;
            cell.self_healing = true;
          }
          reports[i] = sim::run_chaos(cell);
        });
    bool all_ok = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s\n", reports[i].summary().c_str());
      if (!reports[i].ok) {
        all_ok = false;
        for (const std::string& v : reports[i].violations) {
          std::printf("  VIOLATION: %s\n", v.c_str());
        }
        std::printf("  replay: %s\n", reports[i].replay_command.c_str());
      }
    }
    return all_ok ? 0 : 1;
  }

  sim::ChaosConfig cfg;
  const std::string kind = config.get_string("kind", "rn-tree");
  if (!sim::parse_matchmaker(kind, &cfg.kind)) {
    std::fprintf(stderr,
                 "chaos_replay: unknown --kind=%s (try rn-tree, can, "
                 "can-push, ttl-walk, centralized, random)\n",
                 kind.c_str());
    return 2;
  }
  cfg.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  cfg.nodes = static_cast<std::size_t>(config.get_int("nodes", 20));
  cfg.jobs = static_cast<std::size_t>(config.get_int("jobs", 40));
  cfg.fault_rounds = static_cast<int>(config.get_int("rounds", 6));
  cfg.enable_correlated = config.get_bool("correlated", false);
  cfg.enable_flapping = config.get_bool("flapping", false);
  cfg.self_healing = config.get_bool("self-healing", false);
  cfg.batching = config.get_bool("batching", false);
  cfg.trace = config.get_bool("trace", false);
  cfg.verbose = config.get_bool("verbose", false);
  if (cfg.trace) {
    cfg.trace_jsonl_path = "chaos_" + kind + "_" +
                           std::to_string(cfg.seed) + ".jsonl";
  }

  const sim::ChaosReport report = sim::run_chaos(cfg);
  std::printf("%s\n", report.summary().c_str());
  if (!report.ok) {
    for (const std::string& v : report.violations) {
      std::printf("  VIOLATION: %s\n", v.c_str());
    }
    std::printf("  replay: %s\n", report.replay_command.c_str());
    if (!cfg.trace_jsonl_path.empty()) {
      std::printf("  trace:  %s\n", cfg.trace_jsonl_path.c_str());
    }
    return 1;
  }
  return 0;
}
