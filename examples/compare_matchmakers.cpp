// Side-by-side comparison of every matchmaking framework on one identical
// workload — a miniature of the paper's whole evaluation, handy for getting
// a feel for the trade-offs before running the full benches.
//
//   ./compare_matchmakers [--nodes=150] [--jobs=900] [--constraint=0.4]
//                         [--clustered=0] [--threads=N]

#include <cstdio>
#include <vector>

#include "common/config.h"
#include "grid/grid_system.h"
#include "sim/runner.h"

using namespace pgrid;

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);

  workload::WorkloadSpec spec;
  spec.node_count = static_cast<std::size_t>(config.get_int("nodes", 150));
  spec.job_count = static_cast<std::size_t>(config.get_int("jobs", 900));
  spec.constraint_probability = config.get_double("constraint", 0.4);
  const bool clustered = config.get_bool("clustered", false);
  spec.node_mix =
      clustered ? workload::Mix::kClustered : workload::Mix::kMixed;
  spec.job_mix = spec.node_mix;
  spec.mean_runtime_sec = 60.0;
  spec.mean_interarrival_sec = 0.4;
  spec.seed = static_cast<std::uint64_t>(config.get_int("seed", 5));
  const workload::Workload w = workload::generate(spec);

  const std::vector<grid::MatchmakerKind> kinds{
      grid::MatchmakerKind::kCentralized, grid::MatchmakerKind::kRandom,
      grid::MatchmakerKind::kRnTree, grid::MatchmakerKind::kCanBasic,
      grid::MatchmakerKind::kCanPush};

  std::printf("compare_matchmakers: %zu nodes, %zu jobs, %s workload, "
              "constraint prob %.1f — identical job stream for all schemes\n\n",
              spec.node_count, spec.job_count,
              workload::mix_name(spec.node_mix), spec.constraint_probability);

  struct Row {
    double wait_avg, wait_sd, wait_p99, hops, msgs_per_job, load_cv;
    std::size_t completed;
  };
  const auto rows = sim::run_sweep<Row>(
      kinds.size(), static_cast<std::size_t>(config.get_int("threads", 0)),
      [&](std::size_t i) {
        grid::GridConfig gc;
        gc.kind = kinds[i];
        gc.seed = spec.seed + 100;
        gc.light_maintenance = true;
        gc.client.resubmit_base_sec = 1e9;  // steady state: no resubmission
        gc.horizon_slack_sec = 100000.0;
        grid::GridSystem system(gc, w);
        system.run();
        const auto& c = system.collector();
        const Samples waits = c.wait_times();
        Row row{};
        row.wait_avg = waits.empty() ? 0 : waits.mean();
        row.wait_sd = waits.empty() ? 0 : waits.stdev();
        row.wait_p99 = waits.empty() ? 0 : waits.quantile(0.99);
        const Samples inj = c.injection_hops();
        const Samples match = c.matchmaking_hops();
        row.hops = (inj.empty() ? 0 : inj.mean()) +
                   (match.empty() ? 0 : match.mean());
        row.msgs_per_job =
            static_cast<double>(system.net_stats().messages_sent) /
            static_cast<double>(spec.job_count);
        row.load_cv = c.jobs_per_node().cv();
        row.completed = c.completed_count();
        return row;
      });

  std::printf("%-13s %9s %9s %9s %9s %10s %9s %10s\n", "matchmaker",
              "wait-avg", "wait-sd", "wait-p99", "hops/job", "msgs/job",
              "load-cv", "completed");
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-13s %9.1f %9.1f %9.1f %9.2f %10.0f %9.3f %7zu/%zu\n",
                grid::matchmaker_name(kinds[i]), r.wait_avg, r.wait_sd,
                r.wait_p99, r.hops, r.msgs_per_job, r.load_cv, r.completed,
                spec.job_count);
  }

  std::printf("\nreading the table: 'centralized' is the omniscient target; "
              "'random' shows\nwhat ignoring load costs; the P2P schemes pay "
              "hops and messages for\ndecentralization. CAN struggles most "
              "when jobs are lightly constrained and\nnodes heterogeneous "
              "(try --constraint=0.4 vs --constraint=0.8, "
              "--clustered=1).\n");
  return 0;
}
