// Quickstart: the smallest complete use of the library.
//
// Builds a 32-node desktop grid with RN-Tree matchmaking over Chord,
// submits a handful of jobs through a client, and walks the Fig. 1 flow:
//   1. the client inserts each job at a random injection node,
//   2. the injection node hashes the job to a GUID and routes it to its
//      owner node through the Chord DHT,
//   3. the owner's RN-Tree search finds candidate run nodes,
//   4. the job is dispatched to the least-loaded candidate's FIFO queue,
//   5. heartbeats monitor execution,
//   6. the result returns to the client.
//
//   ./quickstart [--nodes=32] [--jobs=10] [--matchmaker=rn-tree]

#include <cstdio>

#include "common/config.h"
#include "grid/grid_system.h"

using namespace pgrid;

namespace {

grid::MatchmakerKind parse_kind(const std::string& name) {
  if (name == "centralized") return grid::MatchmakerKind::kCentralized;
  if (name == "random") return grid::MatchmakerKind::kRandom;
  if (name == "can") return grid::MatchmakerKind::kCanBasic;
  if (name == "can-push") return grid::MatchmakerKind::kCanPush;
  return grid::MatchmakerKind::kRnTree;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);

  // 1. Describe the machines and the job stream.
  workload::WorkloadSpec spec;
  spec.node_count = static_cast<std::size_t>(config.get_int("nodes", 32));
  spec.job_count = static_cast<std::size_t>(config.get_int("jobs", 10));
  spec.mean_runtime_sec = 30.0;
  spec.mean_interarrival_sec = 2.0;
  spec.constraint_probability = 0.4;  // lightly constrained jobs
  spec.client_count = 1;
  spec.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  const workload::Workload w = workload::generate(spec);

  // 2. Pick a matchmaking framework and assemble the system.
  grid::GridConfig grid_config;
  grid_config.kind = parse_kind(config.get_string("matchmaker", "rn-tree"));
  grid_config.seed = spec.seed;
  grid::GridSystem system(grid_config, w);

  std::printf("p2pgrid quickstart: %zu nodes, %zu jobs, %s matchmaking\n\n",
              spec.node_count, spec.job_count,
              grid::matchmaker_name(grid_config.kind));

  // 3. Run the simulated grid until every job has terminated.
  system.run();

  // 4. Inspect per-job outcomes.
  std::printf("%-5s %-26s %10s %10s %10s %6s\n", "job", "constraints",
              "wait(s)", "run(s)", "total(s)", "node");
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    const auto& outcome = system.collector().job(j);
    std::printf("%-5zu %-26s %10.1f %10.1f %10.1f %6u\n", j,
                w.jobs[j].constraints.str().c_str(), outcome.wait_sec(),
                w.jobs[j].runtime_sec,
                outcome.completed_sec - outcome.submit_sec, outcome.run_node);
  }

  std::printf("\nsummary: %s\n", system.collector().summary().c_str());
  std::printf("network: %llu messages, %.1f KB\n",
              static_cast<unsigned long long>(
                  system.net_stats().messages_sent),
              static_cast<double>(system.net_stats().bytes_sent) / 1024.0);
  return system.finished() ? 0 : 1;
}
