// Churn and recovery demonstration (§2 "Resilience to failures").
//
// Runs a CAN-based grid while nodes continuously crash and rejoin, and
// narrates what the robustness machinery did: heartbeat-detected run-node
// deaths (owner re-matches the job), owner deaths (the run node re-homes
// monitoring through the overlay), and double failures (the client's
// resubmission backstop).
//
// On top of the steady background churn, a correlated crash burst (a power
// event or a lab closing for the night) can be injected at a chosen time:
//
//   ./churn_recovery [--nodes=100] [--jobs=300] [--lifetime=400]
//                    [--burst=0.25] [--burst-at=300] [--burst-down=120]

#include <cstdio>

#include "common/config.h"
#include "grid/grid_system.h"

using namespace pgrid;

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const auto nodes = static_cast<std::size_t>(config.get_int("nodes", 100));
  const auto jobs = static_cast<std::size_t>(config.get_int("jobs", 300));
  const double lifetime = config.get_double("lifetime", 400.0);

  workload::WorkloadSpec spec;
  spec.node_count = nodes;
  spec.job_count = jobs;
  spec.mean_runtime_sec = 60.0;
  spec.mean_interarrival_sec = 0.5;
  spec.seed = static_cast<std::uint64_t>(config.get_int("seed", 11));

  grid::GridConfig grid_config;
  grid_config.kind = grid::MatchmakerKind::kCanBasic;
  grid_config.seed = spec.seed;
  grid_config.node.heartbeat_period = sim::SimTime::seconds(4.0);
  grid_config.node.heartbeat_miss_threshold = 3;
  grid_config.client.resubmit_base_sec = 240.0;
  grid_config.client.max_generations = 8;

  grid::GridSystem system(grid_config, workload::generate(spec));
  system.build();

  sim::ChurnModel churn;
  churn.mean_lifetime_sec = lifetime;
  churn.mean_downtime_sec = 90.0;
  churn.churn_fraction = 0.6;  // 60% of machines are flaky desktops
  system.enable_churn(churn);

  // Optional correlated crash burst riding on top of the background churn.
  const double burst = config.get_double("burst", 0.0);
  const double burst_at = config.get_double("burst-at", 300.0);
  const double burst_down = config.get_double("burst-down", 120.0);
  if (burst > 0.0) {
    system.simulator().schedule_in(
        sim::SimTime::seconds(burst_at), [&system, burst, burst_down] {
          const std::size_t hit =
              system.churn()->crash_burst(burst, burst_down);
          std::printf("t=%6.0fs  *** crash burst: %zu nodes down for %.0f s "
                      "***\n",
                      system.simulator().now().sec(), hit, burst_down);
        });
  }

  std::printf("churn_recovery: %zu nodes (60%% flaky, mean lifetime %.0f s, "
              "mean downtime 90 s), %zu jobs, CAN matchmaking\n",
              nodes, lifetime, jobs);
  if (burst > 0.0) {
    std::printf("plus a %.0f%% crash burst at t=%.0fs (down %.0f s)\n",
                100.0 * burst, burst_at, burst_down);
  }
  std::printf("\n");

  // Periodic progress narration while the grid churns.
  double next_report = 120.0;
  while (!system.finished() &&
         system.simulator().now().sec() < 50000.0) {
    system.run_for(30.0);
    if (system.simulator().now().sec() >= next_report) {
      next_report += 120.0;
      std::size_t up = 0;
      for (std::size_t i = 0; i < system.node_count(); ++i) {
        up += system.node_running(i) ? 1 : 0;
      }
      const auto stats = system.aggregate_node_stats();
      std::printf("t=%6.0fs  up=%3zu/%zu  completed=%4zu/%zu  "
                  "rerun=%llu  owner-handoffs=%llu  resubmits=%llu\n",
                  system.simulator().now().sec(), up, nodes,
                  system.collector().completed_count(), jobs,
                  static_cast<unsigned long long>(stats.run_recoveries),
                  static_cast<unsigned long long>(stats.owner_recoveries),
                  static_cast<unsigned long long>(
                      system.collector().total_resubmissions()));
    }
  }

  const auto& c = system.collector();
  const auto stats = system.aggregate_node_stats();
  std::printf("\n--- outcome -------------------------------------------\n");
  std::printf("crashes injected:        %llu\n",
              static_cast<unsigned long long>(system.churn()->crashes()));
  std::printf("nodes recovered:         %llu\n",
              static_cast<unsigned long long>(system.churn()->recoveries()));
  std::printf("jobs completed:          %zu/%zu (%.1f%%)\n",
              c.completed_count(), jobs,
              100.0 * static_cast<double>(c.completed_count()) /
                  static_cast<double>(jobs));
  std::printf("run-node deaths healed:  %llu (owner re-matched the job)\n",
              static_cast<unsigned long long>(stats.run_recoveries));
  std::printf("owner deaths healed:     %llu (run node re-homed monitoring)\n",
              static_cast<unsigned long long>(stats.owner_recoveries));
  std::printf("client resubmissions:    %llu (double-failure backstop)\n",
              static_cast<unsigned long long>(c.total_resubmissions()));
  const Samples waits = c.wait_times();
  if (!waits.empty()) {
    std::printf("wait time avg/median/p99: %.1f / %.1f / %.1f s\n",
                waits.mean(), waits.median(), waits.quantile(0.99));
  }
  return c.completed_count() * 100 >= jobs * 95 ? 0 : 1;
}
