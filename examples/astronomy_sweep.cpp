// Astronomy parameter sweep — the paper's motivating application class
// (§1): "finding habitable planets through N-body simulations, formation of
// asteroid binaries through gravity simulations", run as a batch of
// independent, compute-bound jobs with KB-scale I/O.
//
// This example models a gravity-simulation sweep over (particle count,
// integration steps): each cell of the sweep becomes one grid job whose
// compute demand scales as particles * log2(particles) * steps (a
// tree-code N-body cost model). Memory requirements grow with the particle
// count, so larger cells are constrained to bigger machines — exercising
// constrained matchmaking exactly as the paper intends.
//
//   ./astronomy_sweep [--particles=6] [--steps=4] [--matchmaker=rn-tree]

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "grid/grid_system.h"

using namespace pgrid;

int main(int argc, char** argv) {
  Config config;
  config.parse_args(argc, argv);
  const auto particle_cells =
      static_cast<std::size_t>(config.get_int("particles", 6));
  const auto step_cells = static_cast<std::size_t>(config.get_int("steps", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(config.get_int("seed", 2026));

  // The shared observatory pool: 64 heterogeneous desktops.
  workload::WorkloadSpec spec;
  spec.node_count = 64;
  spec.node_mix = workload::Mix::kMixed;
  spec.job_count = particle_cells * step_cells;
  spec.seed = seed;
  workload::Workload w = workload::generate(spec);

  // Replace the generated jobs with the sweep cells.
  struct SweepCell {
    std::size_t particles;
    std::size_t steps;
  };
  std::vector<SweepCell> cells;
  w.jobs.clear();
  double submit_clock = 0.0;
  for (std::size_t pi = 0; pi < particle_cells; ++pi) {
    for (std::size_t si = 0; si < step_cells; ++si) {
      const std::size_t particles = 1000u << pi;   // 1k .. 32k bodies
      const std::size_t steps = 250u * (si + 1);   // 250 .. 1000 steps
      cells.push_back({particles, steps});

      workload::JobSpec job;
      // Tree-code cost model: O(n log n) per step, calibrated so the
      // smallest cell runs ~20 s on a 1 GHz reference machine.
      const double n = static_cast<double>(particles);
      job.runtime_sec = 20.0 * (n * std::log2(n)) /
                        (1000.0 * std::log2(1000.0)) *
                        (static_cast<double>(steps) / 250.0);
      // Memory footprint grows with the particle count; big cells need
      // big-memory nodes (>= 2 GB above 8k bodies, >= 8 GB above 16k).
      if (particles > 16000) {
        job.constraints.active[1] = true;
        job.constraints.min[1] = 8.0;
      } else if (particles > 8000) {
        job.constraints.active[1] = true;
        job.constraints.min[1] = 2.0;
      }
      // Simulation snapshots want some scratch disk.
      job.constraints.active[2] = true;
      job.constraints.min[2] = 50.0;
      job.arrival_sec = submit_clock;
      submit_clock += 1.0;  // the astronomer scripts one submit per second
      job.client = 0;
      w.jobs.push_back(job);
    }
  }
  w.spec.job_count = w.jobs.size();

  grid::GridConfig grid_config;
  grid_config.kind = grid::MatchmakerKind::kRnTree;
  if (config.get_string("matchmaker", "rn-tree") == "can") {
    grid_config.kind = grid::MatchmakerKind::kCanBasic;
  }
  grid_config.seed = seed;
  grid::GridSystem system(grid_config, w);

  std::printf("asteroid-binary formation sweep: %zu cells on a %zu-node "
              "desktop grid (%s matchmaking)\n\n",
              w.jobs.size(), spec.node_count,
              grid::matchmaker_name(grid_config.kind));
  system.run();

  std::printf("%-10s %-8s %12s %12s %10s %6s\n", "particles", "steps",
              "compute(s)", "wait(s)", "total(s)", "node");
  double serial_total = 0.0;
  double makespan = 0.0;
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    const auto& outcome = system.collector().job(j);
    std::printf("%-10zu %-8zu %12.1f %12.1f %10.1f %6u\n", cells[j].particles,
                cells[j].steps, w.jobs[j].runtime_sec, outcome.wait_sec(),
                outcome.completed_sec - outcome.submit_sec, outcome.run_node);
    serial_total += w.jobs[j].runtime_sec;
    makespan = std::max(makespan, outcome.completed_sec);
  }

  std::printf("\nserial compute: %.0f s; grid makespan: %.0f s; speedup: "
              "%.1fx across %zu machines\n",
              serial_total, makespan, serial_total / makespan,
              spec.node_count);
  std::printf("completed %zu/%zu cells\n",
              system.collector().completed_count(), w.jobs.size());
  return system.finished() ? 0 : 1;
}
