// Sharded execution (DESIGN.md §17): partitioner properties, the
// barrier-window edge cases of the conservative-lookahead engine (driven
// through synthetic drain hooks, no network), and the determinism contract —
// a fixed (seed, config) produces bit-identical per-job outcomes for every
// shard count, and the sequential engine agrees on the aggregate invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "grid/grid_system.h"
#include "metrics/metrics.h"
#include "sim/shard_plan.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "workload/workload.h"

namespace {

using namespace pgrid;

// --- plan_shards: contiguous balanced arcs ----------------------------------

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

TEST(ShardPlan, CoversEveryEntityExactlyOnceInContiguousArcs) {
  for (std::size_t n : {1u, 2u, 7u, 64u, 129u}) {
    for (std::uint32_t shards : {1u, 2u, 3u, 8u}) {
      // A non-trivial permutation (reverse order) — the plan follows the
      // traversal order, not the entity indices.
      std::vector<std::size_t> order(n);
      for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
      const sim::ShardPlan plan = sim::plan_shards(order, shards);
      ASSERT_EQ(plan.shards, shards);
      ASSERT_EQ(plan.shard_of.size(), n);
      ASSERT_EQ(plan.arc_begin.size(), shards + 1u);
      EXPECT_EQ(plan.arc_begin.front(), 0u);
      EXPECT_EQ(plan.arc_begin.back(), n);
      // Arc s owns exactly the contiguous slice order[arc_begin[s]..next).
      for (std::uint32_t s = 0; s < shards; ++s) {
        ASSERT_LE(plan.arc_begin[s], plan.arc_begin[s + 1]);
        for (std::size_t i = plan.arc_begin[s]; i < plan.arc_begin[s + 1];
             ++i) {
          EXPECT_EQ(plan.shard_of[order[i]], s)
              << "n=" << n << " shards=" << shards << " pos=" << i;
        }
      }
      for (std::uint32_t s : plan.shard_of) EXPECT_LT(s, shards);
    }
  }
}

TEST(ShardPlan, ArcSizesDifferByAtMostOneAndFrontArcsTakeExtra) {
  const sim::ShardPlan plan = sim::plan_shards(identity_order(10), 4);
  // 10 = 4 * 2 + 2: the first two arcs get the extra entity.
  EXPECT_EQ(plan.arc_size(0), 3u);
  EXPECT_EQ(plan.arc_size(1), 3u);
  EXPECT_EQ(plan.arc_size(2), 2u);
  EXPECT_EQ(plan.arc_size(3), 2u);

  for (std::size_t n : {5u, 31u, 100u}) {
    for (std::uint32_t shards : {2u, 3u, 7u}) {
      const sim::ShardPlan p = sim::plan_shards(identity_order(n), shards);
      std::size_t lo = n, hi = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        lo = std::min(lo, p.arc_size(s));
        hi = std::max(hi, p.arc_size(s));
      }
      EXPECT_LE(hi - lo, 1u) << "n=" << n << " shards=" << shards;
    }
  }
}

TEST(ShardPlan, MoreShardsThanEntitiesLeavesTrailingArcsEmpty) {
  const sim::ShardPlan plan = sim::plan_shards(identity_order(3), 5);
  EXPECT_EQ(plan.arc_size(0), 1u);
  EXPECT_EQ(plan.arc_size(1), 1u);
  EXPECT_EQ(plan.arc_size(2), 1u);
  EXPECT_EQ(plan.arc_size(3), 0u);
  EXPECT_EQ(plan.arc_size(4), 0u);
  EXPECT_EQ(plan.arc_begin.back(), 3u);
}

// --- ShardedEngine barrier-window edges -------------------------------------

// Synthetic cross-shard transport: senders park (arrival, flag) pairs for a
// destination shard; the engine's drain hook moves them into that shard's
// queue at the start of the next round. This is the ShardBus contract with
// everything except the timing stripped away.
struct SyntheticMail {
  struct Parked {
    sim::SimTime at;
    bool* fired;
    double* fired_at_sec;
  };
  std::vector<std::vector<Parked>> inbox;
  std::mutex mu;

  explicit SyntheticMail(std::size_t shards) : inbox(shards) {}

  void park(std::size_t to, sim::SimTime at, bool* fired,
            double* fired_at_sec) {
    const std::lock_guard<std::mutex> lock(mu);
    inbox[to].push_back({at, fired, fired_at_sec});
  }

  void drain_into(std::size_t s, sim::Simulator& sim) {
    std::vector<Parked> batch;
    {
      const std::lock_guard<std::mutex> lock(mu);
      batch.swap(inbox[s]);
    }
    for (const Parked& p : batch) {
      sim.schedule_at(p.at, [&sim, p] {
        *p.fired = true;
        *p.fired_at_sec = sim.now().sec();
      });
    }
  }
};

TEST(ShardedEngine, MessageAtExactLookaheadHorizonArrivesOnTime) {
  // The tightest legal cross-shard message: sent at t, arriving at t + L.
  // The conservative argument needs it to land in a strictly later window;
  // the receiver must still execute it at exactly t + L.
  const sim::SimTime lookahead = sim::SimTime::millis(20);
  sim::ShardedEngine engine(2, lookahead);
  SyntheticMail mail(2);
  engine.set_drain([&](std::size_t s) { mail.drain_into(s, engine.shard(s)); });

  bool fired = false;
  double fired_at_sec = -1.0;
  const sim::SimTime send_time = sim::SimTime::seconds(1);
  engine.shard(0).schedule_at(send_time, [&] {
    mail.park(1, send_time + lookahead, &fired, &fired_at_sec);
  });

  const std::uint64_t executed = engine.run_until(sim::SimTime::seconds(2));
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(fired_at_sec, (send_time + lookahead).sec());
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(engine.executed(), 2u);
}

TEST(ShardedEngine, IdleStretchesCostOneWindowNotHorizonOverLookahead) {
  // Events 999 s apart with a 20 ms lookahead: a naive fixed-step schedule
  // would need ~50k windows; W jumps to the global minimum next event, so
  // the whole run takes a handful of barrier rounds.
  sim::ShardedEngine engine(2, sim::SimTime::millis(20));
  bool a = false, b = false;
  engine.shard(0).schedule_at(sim::SimTime::seconds(1), [&] { a = true; });
  engine.shard(1).schedule_at(sim::SimTime::seconds(1000), [&] { b = true; });

  engine.run_until(sim::SimTime::seconds(1000));
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_LE(engine.windows(), 3u);
}

TEST(ShardedEngine, RunUntilIsInclusiveOfHorizonAcrossShards) {
  // Same contract as Simulator::run_until: events at t == horizon execute,
  // events one tick later stay queued for the next leg.
  sim::ShardedEngine engine(2, sim::SimTime::millis(20));
  const sim::SimTime horizon = sim::SimTime::seconds(5);
  bool at_horizon = false, past_horizon = false;
  engine.shard(1).schedule_at(horizon, [&] { at_horizon = true; });
  engine.shard(0).schedule_at(horizon + sim::SimTime::nanos(1),
                              [&] { past_horizon = true; });

  engine.run_until(horizon);
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
  EXPECT_EQ(engine.queued(), 1u);
  EXPECT_EQ(engine.now(), horizon);

  // The straggler runs on the next leg — multi-leg runs resume cleanly.
  engine.run_until(horizon + sim::SimTime::seconds(1));
  EXPECT_TRUE(past_horizon);
  EXPECT_EQ(engine.queued(), 0u);
}

TEST(ShardedEngine, SingleShardRunsInlineWithDrain) {
  // One shard degenerates to a plain sequential run (the reference point for
  // shard-count independence); the drain hook still fires so parked input
  // from a previous leg is not stranded.
  sim::ShardedEngine engine(1, sim::SimTime::millis(20));
  SyntheticMail mail(1);
  engine.set_drain([&](std::size_t s) { mail.drain_into(s, engine.shard(s)); });
  bool fired = false;
  double fired_at_sec = -1.0;
  mail.park(0, sim::SimTime::seconds(3), &fired, &fired_at_sec);

  engine.run_until(sim::SimTime::seconds(10));
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(fired_at_sec, 3.0);
}

TEST(ShardedEngine, ThreadInitRunsOncePerWorker) {
  sim::ShardedEngine engine(3, sim::SimTime::millis(20));
  std::mutex mu;
  std::vector<std::size_t> inited;
  engine.set_thread_init([&](std::size_t s) {
    const std::lock_guard<std::mutex> lock(mu);
    inited.push_back(s);
  });
  engine.shard(2).schedule_at(sim::SimTime::seconds(1), [] {});
  engine.run_until(sim::SimTime::seconds(1));
  std::sort(inited.begin(), inited.end());
  EXPECT_EQ(inited, (std::vector<std::size_t>{0, 1, 2}));
}

// --- fixed-seed determinism: shard-count independence ------------------------

workload::Workload small_workload() {
  workload::WorkloadSpec spec;
  spec.node_count = 48;
  spec.job_count = 160;
  spec.mean_runtime_sec = 30.0;
  spec.mean_interarrival_sec = 0.05;
  spec.constraint_probability = 0.2;
  spec.client_count = 4;
  spec.seed = 11;
  return workload::generate(spec);
}

grid::GridConfig sharded_config(grid::MatchmakerKind kind, std::size_t shards) {
  grid::GridConfig gc;
  gc.kind = kind;
  gc.seed = 7;
  gc.light_maintenance = true;
  gc.shards = shards;
  return gc;
}

void expect_jobs_identical(const metrics::Collector& ref,
                           const metrics::Collector& got,
                           std::size_t job_count, const char* label) {
  for (std::uint64_t seq = 0; seq < job_count; ++seq) {
    const metrics::JobOutcome& a = ref.job(seq);
    const metrics::JobOutcome& b = got.job(seq);
    SCOPED_TRACE(std::string(label) + " seq=" + std::to_string(seq));
    EXPECT_EQ(a.submit_sec, b.submit_sec);
    EXPECT_EQ(a.owner_sec, b.owner_sec);
    EXPECT_EQ(a.matched_sec, b.matched_sec);
    EXPECT_EQ(a.started_sec, b.started_sec);
    EXPECT_EQ(a.completed_sec, b.completed_sec);
    EXPECT_EQ(a.match_hops, b.match_hops);
    EXPECT_EQ(a.injection_hops, b.injection_hops);
    EXPECT_EQ(a.resubmissions, b.resubmissions);
    EXPECT_EQ(a.requeues, b.requeues);
    EXPECT_EQ(a.run_node, b.run_node);
    EXPECT_EQ(a.start_node, b.start_node);
    EXPECT_EQ(a.unmatched, b.unmatched);
  }
}

TEST(ShardedGrid, FixedSeedOutcomesIdenticalAcrossShardCounts) {
  for (const grid::MatchmakerKind kind :
       {grid::MatchmakerKind::kRnTree, grid::MatchmakerKind::kCanBasic}) {
    const workload::Workload w = small_workload();
    grid::GridSystem reference(sharded_config(kind, 1), w);
    reference.build();
    reference.run();

    for (const std::size_t shards : {2u, 3u, 4u}) {
      grid::GridSystem system(sharded_config(kind, shards), w);
      system.build();
      system.run();
      SCOPED_TRACE("shards=" + std::to_string(shards));
      EXPECT_EQ(reference.collector().completed_count(),
                system.collector().completed_count());
      EXPECT_EQ(reference.sim_events(), system.sim_events());
      EXPECT_EQ(reference.net_stats().messages_sent,
                system.net_stats().messages_sent);
      EXPECT_EQ(reference.net_stats().bytes_sent,
                system.net_stats().bytes_sent);
      expect_jobs_identical(reference.collector(), system.collector(),
                            w.jobs.size(),
                            kind == grid::MatchmakerKind::kRnTree ? "rn-tree"
                                                                  : "can");
      EXPECT_DOUBLE_EQ(reference.collector().makespan_sec(),
                       system.collector().makespan_sec());
      EXPECT_DOUBLE_EQ(reference.collector().wait_stats().mean(),
                       system.collector().wait_stats().mean());
    }
  }
}

TEST(ShardedGrid, SequentialAndShardedAgreeOnCompletionInvariants) {
  // The two engines draw RNG streams differently, so trajectories differ —
  // but with zero loss and no churn both must complete the whole workload,
  // and job identity (submission schedule) is engine-independent.
  const workload::Workload w = small_workload();
  grid::GridSystem seq(sharded_config(grid::MatchmakerKind::kRnTree, 0), w);
  seq.build();
  seq.run();
  grid::GridSystem shd(sharded_config(grid::MatchmakerKind::kRnTree, 2), w);
  shd.build();
  shd.run();

  ASSERT_EQ(seq.collector().job_count(), shd.collector().job_count());
  EXPECT_EQ(seq.collector().completed_count(), w.jobs.size());
  EXPECT_EQ(shd.collector().completed_count(), w.jobs.size());
  EXPECT_EQ(seq.collector().unmatched_count(), 0u);
  EXPECT_EQ(shd.collector().unmatched_count(), 0u);
  for (std::uint64_t seq_no = 0; seq_no < w.jobs.size(); ++seq_no) {
    EXPECT_EQ(seq.collector().job(seq_no).submit_sec,
              shd.collector().job(seq_no).submit_sec);
  }
}

}  // namespace
