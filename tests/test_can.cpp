// CAN protocol: instant wiring invariants, greedy routing vs the oracle,
// join protocol, load exchange, per-dimension load propagation.

#include <gtest/gtest.h>

#include "can/space.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::can {
namespace {

Point random_point(Rng& rng, std::size_t dims) {
  Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
  return p;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1, CanConfig config = CanConfig{})
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        space(net, config, Rng{seed + 1000}),
        rng(seed + 2000) {}

  sim::Simulator simulator;
  net::Network net;
  CanSpace space;
  Rng rng;

  void build(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      space.add_host(Guid::of(std::uint64_t{0xBEEF} + i * 31),
                     random_point(rng, space.config().dims));
    }
    space.wire_instantly();
  }

  struct RouteResult {
    Peer owner;
    int hops = -1;
    bool completed = false;
  };
  RouteResult route_from(std::size_t host, const Point& target) {
    RouteResult out;
    space.host(host).node().route(target, [&](Peer owner, int hops) {
      out.owner = owner;
      out.hops = hops;
      out.completed = true;
    });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(180));
    return out;
  }

  void settle(double seconds) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(seconds));
  }
};

TEST(CanWiring, ZonesTileSpaceAndPointsHaveOneOwner) {
  Fixture fx;
  fx.build(64);
  EXPECT_TRUE(fx.space.zones_tile_space());
  for (int t = 0; t < 200; ++t) {
    const Point p = random_point(fx.rng, fx.space.config().dims);
    EXPECT_TRUE(fx.space.oracle_owner(p).valid());
  }
}

TEST(CanWiring, EveryNodeOwnsItsRepresentativePoint) {
  // split_for keeps each party's point in its own zone, so after instant
  // wiring each node must own its own representative point — the property
  // the matchmaking layer relies on ("node coordinates = capabilities").
  Fixture fx{3};
  fx.build(128);
  for (std::size_t i = 0; i < 128; ++i) {
    const CanNode& node = fx.space.host(i).node();
    EXPECT_TRUE(node.owns(node.rep_point())) << i;
  }
}

TEST(CanWiring, NeighborTablesAreSymmetric) {
  Fixture fx{4};
  fx.build(48);
  for (std::size_t i = 0; i < 48; ++i) {
    const CanNode& a = fx.space.host(i).node();
    for (const auto& [naddr, ns] : a.neighbors()) {
      // Find the neighbor and check it lists us back.
      bool reciprocal = false;
      for (std::size_t j = 0; j < 48; ++j) {
        const CanNode& b = fx.space.host(j).node();
        if (b.addr() != naddr) continue;
        reciprocal = b.neighbors().find(a.addr()) != b.neighbors().end();
      }
      EXPECT_TRUE(reciprocal);
    }
  }
}

TEST(CanRoute, ResolvesToOracleOwner) {
  Fixture fx{5};
  fx.build(100);
  for (int t = 0; t < 50; ++t) {
    const Point target = random_point(fx.rng, fx.space.config().dims);
    const auto res = fx.route_from(fx.rng.index(100), target);
    ASSERT_TRUE(res.completed) << t;
    ASSERT_TRUE(res.owner.valid()) << t;
    EXPECT_EQ(res.owner.id, fx.space.oracle_owner(target).id) << t;
  }
}

TEST(CanRoute, LocalHitIsZeroHops) {
  Fixture fx{6};
  fx.build(32);
  const CanNode& node = fx.space.host(7).node();
  const auto res = fx.route_from(7, node.rep_point());
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.owner.addr, node.addr());
  EXPECT_EQ(res.hops, 0);
}

TEST(CanRoute, HopsScaleAsDTimesNthRoot) {
  // CAN path length averages (d/4) * N^(1/d); allow a loose factor.
  CanConfig config;
  config.dims = 3;
  Fixture fx{7, config};
  fx.build(216);  // 6^3
  double total = 0;
  constexpr int kRoutes = 60;
  for (int t = 0; t < kRoutes; ++t) {
    const auto res = fx.route_from(fx.rng.index(216), random_point(fx.rng, 3));
    ASSERT_TRUE(res.completed);
    total += res.hops;
  }
  const double mean = total / kRoutes;
  // (3/4) * 216^(1/3) = 4.5 expected.
  EXPECT_LT(mean, 12.0);
  EXPECT_GT(mean, 1.0);
}

TEST(CanJoin, ProtocolJoinSplitsOwnersZone) {
  Fixture fx{8};
  fx.build(16);
  EXPECT_TRUE(fx.space.zones_tile_space());
  auto& joiner = fx.space.add_host(Guid::of(std::uint64_t{0x777}),
                                   random_point(fx.rng, 4));
  const CanNode& boot = fx.space.host(0).node();
  bool ok = false;
  joiner.node().join(Peer{boot.addr(), boot.id()}, [&](bool r) { ok = r; });
  fx.settle(60);
  ASSERT_TRUE(ok);
  EXPECT_EQ(joiner.node().zones().size(), 1u);
  EXPECT_TRUE(joiner.node().owns(joiner.node().rep_point()));
  EXPECT_TRUE(fx.space.zones_tile_space());
  EXPECT_FALSE(joiner.node().neighbors().empty());
}

TEST(CanJoin, SequentialProtocolJoinsBuildWholeSpace) {
  Fixture fx{9};
  auto& first = fx.space.add_host(Guid::of(std::uint64_t{1}),
                                  random_point(fx.rng, 4));
  first.node().create();
  const Peer boot{first.node().addr(), first.node().id()};
  for (std::size_t i = 2; i <= 20; ++i) {
    auto& host = fx.space.add_host(Guid::of(i), random_point(fx.rng, 4));
    bool ok = false;
    host.node().join(boot, [&](bool r) { ok = r; });
    fx.settle(30);
    ASSERT_TRUE(ok) << "join " << i;
  }
  fx.settle(30);
  EXPECT_TRUE(fx.space.zones_tile_space());
  // Routing works across the organically grown space.
  for (int t = 0; t < 20; ++t) {
    const Point target = random_point(fx.rng, 4);
    const auto res = fx.route_from(fx.rng.index(20), target);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.owner.id, fx.space.oracle_owner(target).id);
  }
}

TEST(CanLoad, LoadPropagatesToNeighbors) {
  Fixture fx{10};
  fx.build(32);
  CanNode& loaded = fx.space.host(3).node();
  loaded.set_load(42.0);
  fx.settle(10);  // a few update periods
  for (std::size_t i = 0; i < 32; ++i) {
    const CanNode& other = fx.space.host(i).node();
    const auto it = other.neighbors().find(loaded.addr());
    if (it != other.neighbors().end()) {
      EXPECT_DOUBLE_EQ(it->second.load, 42.0);
    }
  }
}

TEST(CanLoad, DimensionalLoadReportsFlowDownward) {
  // Two nodes splitting the space along some dimension: the lower node
  // must eventually hear a load report for that dimension.
  CanConfig config;
  config.dims = 2;
  Fixture fx{11, config};
  auto& low = fx.space.add_host(Guid::of(std::uint64_t{1}), Point{0.25, 0.5});
  auto& high = fx.space.add_host(Guid::of(std::uint64_t{2}), Point{0.75, 0.5});
  fx.space.wire_instantly();
  high.node().set_load(8.0);
  fx.settle(15);
  // The split separates them along dim 0; low is below high.
  EXPECT_DOUBLE_EQ(low.node().upstream_load(0), 8.0);
  // Nothing above `high` in dim 0, so it has heard nothing.
  EXPECT_LT(high.node().upstream_load(0), 0.0);
}

// Property sweep: routing matches the oracle across sizes and dims.
struct SweepParam {
  std::size_t nodes;
  std::size_t dims;
};

class CanSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CanSweep, RoutesMatchOracle) {
  CanConfig config;
  config.dims = GetParam().dims;
  Fixture fx{GetParam().nodes * 7 + GetParam().dims, config};
  fx.build(GetParam().nodes);
  EXPECT_TRUE(fx.space.zones_tile_space());
  for (int t = 0; t < 15; ++t) {
    const Point target = random_point(fx.rng, config.dims);
    const auto res =
        fx.route_from(fx.rng.index(GetParam().nodes), target);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.owner.id, fx.space.oracle_owner(target).id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDims, CanSweep,
    ::testing::Values(SweepParam{2, 2}, SweepParam{5, 2}, SweepParam{16, 2},
                      SweepParam{64, 2}, SweepParam{16, 3}, SweepParam{64, 3},
                      SweepParam{128, 4}, SweepParam{32, 6}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.nodes) + "d" +
             std::to_string(info.param.dims);
    });

}  // namespace
}  // namespace pgrid::can
