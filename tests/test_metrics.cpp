// Metrics collector: lifecycle recording, summary statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.h"

namespace pgrid::metrics {
namespace {

using sim::SimTime;

TEST(Collector, LifecycleTimestamps) {
  Collector c(3, 4);
  c.on_submit(0, SimTime::seconds(1.0));
  c.on_owner(0, SimTime::seconds(1.2), 4);
  c.on_matched(0, SimTime::seconds(1.5), 3, 2);
  c.on_started(0, SimTime::seconds(2.0));
  c.on_completed(0, SimTime::seconds(12.0));

  const JobOutcome& j = c.job(0);
  EXPECT_DOUBLE_EQ(j.submit_sec, 1.0);
  EXPECT_DOUBLE_EQ(j.wait_sec(), 1.0);
  EXPECT_EQ(j.match_hops, 3);
  EXPECT_EQ(j.injection_hops, 4);
  EXPECT_EQ(j.run_node, 2u);
  EXPECT_TRUE(j.completed());
  EXPECT_EQ(c.completed_count(), 1u);
  EXPECT_EQ(c.started_count(), 1u);
  EXPECT_DOUBLE_EQ(c.makespan_sec(), 12.0);
}

TEST(Collector, FirstSubmitAndStartWin) {
  Collector c(1, 1);
  c.on_submit(0, SimTime::seconds(1.0));
  c.on_submit(0, SimTime::seconds(5.0));  // resubmission does not reset
  c.on_started(0, SimTime::seconds(7.0));
  c.on_started(0, SimTime::seconds(9.0));  // duplicate execution
  EXPECT_DOUBLE_EQ(c.job(0).wait_sec(), 6.0);
}

TEST(Collector, WaitTimesOnlyCoverStartedJobs) {
  Collector c(3, 1);
  c.on_submit(0, SimTime::seconds(0.0));
  c.on_started(0, SimTime::seconds(4.0));
  c.on_submit(1, SimTime::seconds(0.0));
  c.on_started(1, SimTime::seconds(8.0));
  c.on_submit(2, SimTime::seconds(0.0));  // never started
  const Samples waits = c.wait_times();
  EXPECT_EQ(waits.count(), 2u);
  EXPECT_DOUBLE_EQ(waits.mean(), 6.0);
  // Sample (N−1) estimator: deviations ±2 over two samples → sqrt(8/1).
  EXPECT_DOUBLE_EQ(waits.stdev(), std::sqrt(8.0));
}

TEST(Collector, CountersAccumulate) {
  Collector c(2, 2);
  c.on_resubmit(0);
  c.on_resubmit(0);
  c.on_requeue(1);
  c.on_unmatched(1);
  EXPECT_EQ(c.total_resubmissions(), 2u);
  EXPECT_EQ(c.total_requeues(), 1u);
  EXPECT_EQ(c.unmatched_count(), 1u);
}

TEST(Collector, PerNodeLoadAccounting) {
  Collector c(4, 3);
  for (std::uint64_t j = 0; j < 4; ++j) {
    c.on_submit(j, SimTime::seconds(0.0));
    c.on_matched(j, SimTime::seconds(1.0), 0, j % 2);  // nodes 0 and 1 only
    c.on_started(j, SimTime::seconds(1.0));
  }
  c.add_node_busy(0, 10.0);
  c.add_node_busy(0, 5.0);
  c.add_node_busy(1, 3.0);
  const RunningStats jobs = c.jobs_per_node();
  EXPECT_EQ(jobs.count(), 3u);
  EXPECT_DOUBLE_EQ(jobs.max(), 2.0);
  EXPECT_DOUBLE_EQ(jobs.min(), 0.0);  // node 2 idle
  const RunningStats busy = c.busy_per_node();
  EXPECT_DOUBLE_EQ(busy.max(), 15.0);
  EXPECT_DOUBLE_EQ(busy.sum(), 18.0);
}

TEST(Collector, SummaryMentionsCompletion) {
  Collector c(2, 1);
  c.on_submit(0, SimTime::seconds(0.0));
  c.on_started(0, SimTime::seconds(2.0));
  c.on_completed(0, SimTime::seconds(3.0));
  const std::string s = c.summary();
  EXPECT_NE(s.find("completed 1/2"), std::string::npos);
}

TEST(Collector, MatchHopsKeepFirstMatch) {
  Collector c(1, 2);
  c.on_matched(0, SimTime::seconds(1.0), 5, 0);
  c.on_matched(0, SimTime::seconds(2.0), 9, 1);  // re-dispatch after failure
  EXPECT_EQ(c.job(0).match_hops, 5);
  EXPECT_EQ(c.job(0).run_node, 1u);  // run node reflects the latest
}

// The streaming collector must report the same aggregates as batch mode for
// the same event sequence — including the tricky paths: duplicate events
// (first wins), re-dispatch (last injection hops win), unmatched and
// never-started jobs.
TEST(Collector, StreamingMatchesBatchAggregates) {
  auto drive = [](Collector& c) {
    // Job 0: clean lifecycle.
    c.on_submit(0, SimTime::seconds(0.0));
    c.on_owner(0, SimTime::seconds(0.5), 2);
    c.on_matched(0, SimTime::seconds(1.0), 3, 1);
    c.on_started(0, SimTime::seconds(2.0));
    c.on_completed(0, SimTime::seconds(10.0));
    // Job 1: duplicate submit/start (first wins), requeue, re-dispatch with
    // new injection hops (last wins), then completes.
    c.on_submit(1, SimTime::seconds(1.0));
    c.on_submit(1, SimTime::seconds(9.0));
    c.on_owner(1, SimTime::seconds(1.5), 4);
    c.on_matched(1, SimTime::seconds(2.0), 6, 2);
    c.on_requeue(1);
    c.on_resubmit(1);
    c.on_owner(1, SimTime::seconds(5.0), 1);
    c.on_matched(1, SimTime::seconds(6.0), 2, 0);
    c.on_started(1, SimTime::seconds(7.0));
    c.on_started(1, SimTime::seconds(8.0));
    c.on_completed(1, SimTime::seconds(20.0));
    // Job 2: submitted, never matched.
    c.on_submit(2, SimTime::seconds(3.0));
    c.on_unmatched(2);
    // Job 3: started but never completes (killed / lost).
    c.on_submit(3, SimTime::seconds(4.0));
    c.on_matched(3, SimTime::seconds(5.0), 1, 0);
    c.on_started(3, SimTime::seconds(6.0));
    c.add_node_busy(0, 12.0);
    c.add_node_busy(1, 8.0);
  };
  Collector batch(4, 3, /*streaming=*/false);
  Collector stream(4, 3, /*streaming=*/true);
  drive(batch);
  drive(stream);
  ASSERT_FALSE(batch.streaming());
  ASSERT_TRUE(stream.streaming());

  EXPECT_EQ(stream.job_count(), batch.job_count());
  EXPECT_EQ(stream.completed_count(), batch.completed_count());
  EXPECT_EQ(stream.started_count(), batch.started_count());
  EXPECT_EQ(stream.unmatched_count(), batch.unmatched_count());
  EXPECT_EQ(stream.total_resubmissions(), batch.total_resubmissions());
  EXPECT_EQ(stream.total_requeues(), batch.total_requeues());
  EXPECT_DOUBLE_EQ(stream.makespan_sec(), batch.makespan_sec());

  const RunningStats bw = batch.wait_stats();
  const RunningStats sw = stream.wait_stats();
  EXPECT_EQ(sw.count(), bw.count());
  EXPECT_DOUBLE_EQ(sw.mean(), bw.mean());
  EXPECT_DOUBLE_EQ(sw.sample_stdev(), bw.sample_stdev());

  const RunningStats bm = batch.match_hops_stats();
  const RunningStats sm = stream.match_hops_stats();
  EXPECT_EQ(sm.count(), bm.count());
  EXPECT_DOUBLE_EQ(sm.mean(), bm.mean());

  const RunningStats bi = batch.injection_hops_stats();
  const RunningStats si = stream.injection_hops_stats();
  EXPECT_EQ(si.count(), bi.count());
  EXPECT_DOUBLE_EQ(si.mean(), bi.mean());

  const Histogram bh = batch.wait_histogram();
  const Histogram sh = stream.wait_histogram();
  ASSERT_EQ(sh.bucket_count(), bh.bucket_count());
  for (std::size_t i = 0; i < bh.bucket_count(); ++i) {
    EXPECT_EQ(sh.bucket(i), bh.bucket(i)) << "bucket " << i;
  }

  // Streaming retires completed jobs: only job 3 (started, unfinished) and
  // nothing else stays in flight, so memory tracks the backlog.
  EXPECT_GT(stream.memory_bytes(), 0u);
}

// Per-job accessors stay available in batch mode and the streaming
// constructor does not reserve the per-job vector.
TEST(Collector, StreamingModeSkipsPerJobRecords) {
  Collector stream(1000000, 4, /*streaming=*/true);
  stream.on_submit(17, SimTime::seconds(1.0));
  stream.on_started(17, SimTime::seconds(2.0));
  stream.on_completed(17, SimTime::seconds(3.0));
  EXPECT_EQ(stream.job_count(), 1000000u);
  EXPECT_EQ(stream.completed_count(), 1u);
  // O(buckets + in-flight), nowhere near 10^6 job records.
  EXPECT_LT(stream.memory_bytes(), 100000u);
}

}  // namespace
}  // namespace pgrid::metrics
