// Simulated network: latency, liveness drops, loss, accounting.

#include <gtest/gtest.h>

#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {
namespace {

struct TestMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 1;
  explicit TestMsg(int v) : Message(kType), value(v) {}
  int value;
  [[nodiscard]] std::size_t payload_size() const noexcept override { return 4; }
};

struct Recorder final : MessageHandler {
  struct Delivery {
    NodeAddr from;
    int value;
    sim::SimTime at;
  };
  explicit Recorder(sim::Simulator& simulator) : sim(&simulator) {}
  void on_message(NodeAddr from, MessagePtr msg) override {
    const auto* m = msg_cast<TestMsg>(msg.get());
    deliveries.push_back({from, m->value, sim->now()});
  }
  sim::Simulator* sim;
  std::vector<Delivery> deliveries;
};

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  LatencyModel latency{sim::SimTime::millis(10), sim::SimTime::millis(10)};
  Network net{simulator, Rng{1}, latency};
  Recorder a{simulator}, b{simulator};
  NodeAddr addr_a = net.add_handler(&a);
  NodeAddr addr_b = net.add_handler(&b);
};

TEST_F(NetworkTest, DeliversWithLatency) {
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(42));
  EXPECT_TRUE(b.deliveries.empty());  // nothing before the clock advances
  simulator.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].from, addr_a);
  EXPECT_EQ(b.deliveries[0].value, 42);
  EXPECT_EQ(b.deliveries[0].at, sim::SimTime::millis(10));
}

TEST_F(NetworkTest, SelfSendWorks) {
  net.send(addr_a, addr_a, std::make_unique<TestMsg>(7));
  simulator.run();
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries[0].value, 7);
}

TEST_F(NetworkTest, DeadDestinationDropsAtDelivery) {
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(1));
  net.set_alive(addr_b, false);
  simulator.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(net.stats().messages_dropped_dead, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, DeadSourceDropsAtSend) {
  net.set_alive(addr_a, false);
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(1));
  simulator.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(net.stats().messages_dropped_dead, 1u);
}

TEST_F(NetworkTest, RevivedNodeReceivesAgain) {
  net.set_alive(addr_b, false);
  net.set_alive(addr_b, true);
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(9));
  simulator.run();
  EXPECT_EQ(b.deliveries.size(), 1u);
}

TEST_F(NetworkTest, NodeDyingInFlightLosesMessage) {
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(5));
  simulator.schedule_at(sim::SimTime::millis(5),
                        [&] { net.set_alive(addr_b, false); });
  simulator.run();
  EXPECT_TRUE(b.deliveries.empty());
}

TEST_F(NetworkTest, ByteAccountingChargesHeaderPlusPayload) {
  net.send(addr_a, addr_b, std::make_unique<TestMsg>(1));
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().bytes_sent, Network::kHeaderBytes + 4);
}

TEST(NetworkLoss, LossRateIsRespected) {
  sim::Simulator simulator;
  LatencyModel latency{sim::SimTime::millis(1), sim::SimTime::millis(1)};
  Network net(simulator, Rng{3}, latency, 0.25);
  Recorder sink{simulator};
  const NodeAddr src = net.add_handler(&sink);
  const NodeAddr dst = net.add_handler(&sink);
  for (int i = 0; i < 10000; ++i) {
    net.send(src, dst, std::make_unique<TestMsg>(i));
  }
  simulator.run();
  const double delivered = static_cast<double>(sink.deliveries.size());
  EXPECT_NEAR(delivered / 10000.0, 0.75, 0.02);
  EXPECT_EQ(net.stats().messages_dropped_loss + sink.deliveries.size(), 10000u);
}

TEST(NetworkLatency, UniformRangeSampled) {
  sim::Simulator simulator;
  LatencyModel latency{sim::SimTime::millis(20), sim::SimTime::millis(80)};
  Network net(simulator, Rng{4}, latency);
  Recorder sink{simulator};
  const NodeAddr src = net.add_handler(&sink);
  const NodeAddr dst = net.add_handler(&sink);
  for (int i = 0; i < 2000; ++i) {
    net.send(src, dst, std::make_unique<TestMsg>(i));
  }
  simulator.run();
  ASSERT_EQ(sink.deliveries.size(), 2000u);
  double mean = 0;
  for (const auto& d : sink.deliveries) {
    EXPECT_GE(d.at, sim::SimTime::millis(20));
    EXPECT_LT(d.at, sim::SimTime::millis(80));
    mean += d.at.sec();
  }
  EXPECT_NEAR(mean / 2000.0, 0.050, 0.002);
}

// Regression for the [min, max) edge cases: a 1ns-wide window has exactly
// one representable value (min), and min == max is the constant-latency
// degenerate case. Neither may consult the RNG out of range.
TEST(NetworkLatency, OneNanosecondWindowAlwaysReturnsMin) {
  Rng rng{7};
  const LatencyModel hair{sim::SimTime::nanos(100), sim::SimTime::nanos(101)};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(hair.sample(rng), sim::SimTime::nanos(100));
  }
  Rng rng2{8};
  const LatencyModel point{sim::SimTime::millis(3), sim::SimTime::millis(3)};
  EXPECT_EQ(point.sample(rng2), sim::SimTime::millis(3));
}

TEST(NetworkLatency, InvertedBoundsAreRejected) {
  Rng rng{9};
  const LatencyModel inverted{sim::SimTime::millis(80),
                              sim::SimTime::millis(20)};
  EXPECT_DEATH(static_cast<void>(inverted.sample(rng)), "min <= max");
  sim::Simulator simulator;
  EXPECT_DEATH(Network(simulator, Rng{10}, inverted), "min <= max");
}

}  // namespace
}  // namespace pgrid::net
