// CAN under failures: takeover reclaims dead zones, routing recovers,
// zone merge-on-takeover, crashed node rejoin.

#include <gtest/gtest.h>

#include "can/space.h"
#include "net/fault_plane.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::can {
namespace {

Point random_point(Rng& rng, std::size_t dims) {
  Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
  return p;
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1, CanConfig config = CanConfig{})
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        space(net, config, Rng{seed + 1}),
        rng(seed + 2) {}

  sim::Simulator simulator;
  net::Network net;
  CanSpace space;
  Rng rng;

  void build(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      space.add_host(Guid::of(std::uint64_t{0xF00D} + i * 13),
                     random_point(rng, space.config().dims));
    }
    space.wire_instantly();
  }

  void settle(double seconds) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(seconds));
  }

  Peer route_from(std::size_t host, const Point& target) {
    Peer owner = kNoPeer;
    space.host(host).node().route(target, [&](Peer o, int) { owner = o; });
    settle(180);
    return owner;
  }

  /// Total volume owned by live nodes.
  double live_volume() const {
    double v = 0.0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (space.crashed(i)) continue;
      for (const Zone& z : space.host(i).node().zones()) v += z.volume();
    }
    return v;
  }
};

TEST(CanTakeover, SingleFailureZoneIsReclaimed) {
  Fixture fx;
  fx.build(32);
  const Zone dead_zone = fx.space.host(5).node().zones().front();
  fx.space.crash(5);
  fx.settle(60);  // timeout detection + takeover timer
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
  // Some live node now owns the dead zone's center.
  const Point probe = dead_zone.center();
  const Peer owner = fx.space.oracle_owner(probe);
  ASSERT_TRUE(owner.valid());
  EXPECT_NE(owner.addr, fx.space.host(5).addr());
}

TEST(CanTakeover, RoutingWorksAfterFailure) {
  Fixture fx{2};
  fx.build(48);
  fx.space.crash(11);
  fx.space.crash(23);
  fx.settle(90);
  for (int t = 0; t < 25; ++t) {
    const Point target = random_point(fx.rng, 4);
    const Peer owner = fx.route_from(0, target);
    ASSERT_TRUE(owner.valid()) << t;
    EXPECT_EQ(owner.id, fx.space.oracle_owner(target).id) << t;
  }
}

TEST(CanTakeover, ExactlyOneClaimant) {
  Fixture fx{3};
  fx.build(40);
  const auto before = [&] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < 40; ++i) {
      total += fx.space.host(i).node().stats().takeovers;
    }
    return total;
  };
  const auto t0 = before();
  fx.space.crash(17);
  fx.settle(120);
  EXPECT_EQ(before() - t0, 1u);  // one neighbor claimed, others stood down
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
}

TEST(CanTakeover, SoleSurvivorReclaimsWholeSpace) {
  // Two nodes: one dies; the survivor's takeover leaves it owning the whole
  // cube (as two complementary zones — claims are not coalesced).
  Fixture fx{4};
  fx.build(2);
  fx.space.crash(1);
  fx.settle(60);
  const CanNode& survivor = fx.space.host(0).node();
  double volume = 0.0;
  for (const Zone& z : survivor.zones()) volume += z.volume();
  EXPECT_DOUBLE_EQ(volume, 1.0);
  EXPECT_TRUE(survivor.owns(Point{0.1, 0.1, 0.1, 0.1}));
  EXPECT_TRUE(survivor.owns(Point{0.9, 0.9, 0.9, 0.9}));
}

TEST(CanTakeover, MultipleScatteredFailures) {
  Fixture fx{5};
  fx.build(64);
  fx.space.crash(3);
  fx.space.crash(31);
  fx.space.crash(55);
  fx.settle(150);
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
  for (int t = 0; t < 15; ++t) {
    const Point target = random_point(fx.rng, 4);
    const Peer owner = fx.route_from(1, target);
    ASSERT_TRUE(owner.valid());
    EXPECT_EQ(owner.id, fx.space.oracle_owner(target).id);
  }
}

TEST(CanTakeover, CrashedNodeRejoins) {
  Fixture fx{6};
  fx.build(24);
  fx.space.crash(9);
  fx.settle(90);
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
  fx.space.restart(9);
  fx.settle(90);
  const CanNode& back = fx.space.host(9).node();
  EXPECT_FALSE(back.zones().empty());
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
  // Routes to its representative point land somewhere valid.
  const Peer owner = fx.route_from(0, back.rep_point());
  ASSERT_TRUE(owner.valid());
  EXPECT_EQ(owner.id, fx.space.oracle_owner(back.rep_point()).id);
}

TEST(CanPartitionHeal, DoubleClaimsReconcileAfterHeal) {
  // Both sides of a partition take over the other side's zones; after the
  // heal every contested region has two claimants. The lost-peer probes plus
  // the lower-GUID-wins subtraction must restore an exact tiling.
  Fixture fx{8};
  fx.build(16);
  std::vector<net::NodeAddr> side_a, side_b;
  for (std::size_t i = 0; i < fx.space.size(); ++i) {
    (i % 2 == 0 ? side_a : side_b).push_back(fx.space.host(i).addr());
  }
  net::FaultPlane& fp = fx.net.fault_plane();
  const auto id = fp.cut("split", side_a, side_b);
  fx.settle(120);  // suspicion + takeover on both sides
  fp.heal(id);
  fx.settle(240);  // probes re-link the sides, conflicts subtract away
  EXPECT_TRUE(fx.space.zones_tile_space());
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
}

TEST(CanPartitionHeal, OneWayCutReconcilesToo) {
  // Asymmetric cut: only one side suspects the other, so only one side
  // double-claims; reconciliation must still converge after the heal.
  Fixture fx{9};
  fx.build(12);
  std::vector<net::NodeAddr> side_a, side_b;
  for (std::size_t i = 0; i < fx.space.size(); ++i) {
    (i < 6 ? side_a : side_b).push_back(fx.space.host(i).addr());
  }
  net::FaultPlane& fp = fx.net.fault_plane();
  const auto id = fp.cut("oneway", side_a, side_b, /*one_way=*/true);
  fx.settle(120);
  fp.heal(id);
  fx.settle(240);
  EXPECT_TRUE(fx.space.zones_tile_space());
  EXPECT_NEAR(fx.live_volume(), 1.0, 1e-9);
}

TEST(CanTakeover, RouteDuringOutageEventuallyResolvesViaRetries) {
  Fixture fx{7};
  fx.build(48);
  // Crash a node and immediately route toward its zone.
  const Point probe = fx.space.host(20).node().rep_point();
  fx.space.crash(20);
  int ok = 0;
  for (int t = 0; t < 5; ++t) {
    const Peer owner = fx.route_from(1, probe);
    if (owner.valid()) ++ok;
    fx.settle(30);
  }
  // Early attempts may fail (zone unclaimed), but after takeover all succeed.
  const Peer final_owner = fx.route_from(1, probe);
  EXPECT_TRUE(final_owner.valid());
  EXPECT_GE(ok, 1);
}

}  // namespace
}  // namespace pgrid::can
