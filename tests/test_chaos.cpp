// Chaos matrix: randomized fault schedules against every P2P matchmaker,
// with the harness's safety invariants (exactly-once completion, overlay
// re-convergence, no monitor leaks) checked after every run.
//
// Each (matchmaker, seed) cell is an independent schedule of partitions,
// crash bursts, congestion, gray nodes, duplication, and reordering. A
// failing cell prints the replay command so the schedule can be reproduced
// outside the test binary.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "grid/job.h"
#include "sim/chaos.h"
#include "sim/runner.h"

namespace pgrid {
namespace {

using grid::MatchmakerKind;

class ChaosMatrix
    : public testing::TestWithParam<std::tuple<MatchmakerKind, int>> {};

TEST_P(ChaosMatrix, InvariantsHoldUnderRandomFaultSchedule) {
  sim::ChaosConfig cfg;
  cfg.kind = std::get<0>(GetParam());
  cfg.seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  const sim::ChaosReport report = sim::run_chaos(cfg);
  EXPECT_TRUE(report.ok) << report.summary();
  for (const std::string& v : report.violations) {
    ADD_FAILURE() << "invariant violated: " << v
                  << "\n  replay: " << report.replay_command;
  }
  // The workload must actually finish: abandoned jobs would let the leak
  // check pass vacuously.
  EXPECT_EQ(report.stats.completed, cfg.jobs);
  EXPECT_EQ(report.stats.abandoned, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosMatrix,
    testing::Combine(testing::Values(MatchmakerKind::kRnTree,
                                     MatchmakerKind::kCanBasic,
                                     MatchmakerKind::kCanPush),
                     testing::Range(1, 21)),
    [](const testing::TestParamInfo<ChaosMatrix::ParamType>& info) {
      std::string name = grid::matchmaker_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Extended matrix: topology-correlated crash bursts and join-leave flapping
// added to the drawn fault classes, with the self-healing machinery
// (φ-accrual liveness, owner audits, CAN gap audits, token leases) active.
// The invariants do not weaken: exactly-once completion, overlay
// re-convergence, and no monitor leaks must hold through arc/slab-wide
// blackouts and rapid membership oscillation.
class SelfHealingChaosMatrix
    : public testing::TestWithParam<std::tuple<MatchmakerKind, int>> {};

TEST_P(SelfHealingChaosMatrix, InvariantsHoldUnderCorrelatedFaults) {
  sim::ChaosConfig cfg;
  cfg.kind = std::get<0>(GetParam());
  cfg.seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  cfg.enable_correlated = true;
  cfg.enable_flapping = true;
  cfg.self_healing = true;
  const sim::ChaosReport report = sim::run_chaos(cfg);
  EXPECT_TRUE(report.ok) << report.summary();
  for (const std::string& v : report.violations) {
    ADD_FAILURE() << "invariant violated: " << v
                  << "\n  replay: " << report.replay_command;
  }
  EXPECT_EQ(report.stats.completed, cfg.jobs);
  EXPECT_EQ(report.stats.abandoned, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SelfHealingChaosMatrix,
    testing::Combine(testing::Values(MatchmakerKind::kRnTree,
                                     MatchmakerKind::kCanBasic,
                                     MatchmakerKind::kCanPush),
                     testing::Range(1, 5)),
    [](const testing::TestParamInfo<SelfHealingChaosMatrix::ParamType>& info) {
      std::string name = grid::matchmaker_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Batched matrix: the same invariants with maintenance batching on
// (quiet_stride pinned to 1 inside run_chaos, so the drawn fault schedule
// and the failure-detection cadence are identical to the plain matrix —
// what changes is that maintenance traffic rides Batch envelopes, which the
// fault plane drops/duplicates whole). Existing cells above are untouched.
class BatchedChaosMatrix
    : public testing::TestWithParam<std::tuple<MatchmakerKind, int>> {};

TEST_P(BatchedChaosMatrix, InvariantsHoldWithBatchedMaintenance) {
  sim::ChaosConfig cfg;
  cfg.kind = std::get<0>(GetParam());
  cfg.seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  cfg.batching = true;
  const sim::ChaosReport report = sim::run_chaos(cfg);
  EXPECT_TRUE(report.ok) << report.summary();
  for (const std::string& v : report.violations) {
    ADD_FAILURE() << "invariant violated: " << v
                  << "\n  replay: " << report.replay_command;
  }
  EXPECT_EQ(report.stats.completed, cfg.jobs);
  EXPECT_EQ(report.stats.abandoned, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, BatchedChaosMatrix,
    testing::Combine(testing::Values(MatchmakerKind::kRnTree,
                                     MatchmakerKind::kCanBasic,
                                     MatchmakerKind::kCanPush),
                     testing::Range(1, 5)),
    [](const testing::TestParamInfo<BatchedChaosMatrix::ParamType>& info) {
      std::string name = grid::matchmaker_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// The full standard matrix (24 cells: 3 kinds x seeds 1..8) plus the
// extended self-healing matrix (12 cells: 3 kinds x seeds 1..4), run through
// parallel_for_cells and again serially: chaos runs are confined to their
// worker thread (thread-local logger clock and message pool), so verdicts
// and stats must be identical however cells map onto threads. Closes the
// roadmap item on running the chaos matrices through the parallel runner.
TEST(Chaos, ParallelMatrixVerdictsMatchSerial) {
  struct Cell {
    MatchmakerKind kind;
    std::uint64_t seed;
    bool extended;
  };
  std::vector<Cell> cells;
  for (const MatchmakerKind kind :
       {MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic,
        MatchmakerKind::kCanPush}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      cells.push_back({kind, seed, false});
    }
  }
  for (const MatchmakerKind kind :
       {MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic,
        MatchmakerKind::kCanPush}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      cells.push_back({kind, seed, true});
    }
  }
  const auto run_cell = [&cells](std::size_t i) {
    sim::ChaosConfig cfg;
    cfg.kind = cells[i].kind;
    cfg.seed = cells[i].seed;
    if (cells[i].extended) {
      cfg.enable_correlated = true;
      cfg.enable_flapping = true;
      cfg.self_healing = true;
    }
    return sim::run_chaos(cfg);
  };

  std::vector<sim::ChaosReport> parallel(cells.size());
  // Explicit thread count: single-core CI hosts would otherwise degenerate
  // to one worker and compare serial against serial.
  sim::parallel_for_cells(cells.size(), 4, [&](std::size_t i) {
    parallel[i] = run_cell(i);
  });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::ChaosReport serial = run_cell(i);
    SCOPED_TRACE(serial.config.replay_command());
    EXPECT_EQ(serial.ok, parallel[i].ok);
    EXPECT_EQ(serial.summary(), parallel[i].summary());
    EXPECT_EQ(serial.stats.completed, parallel[i].stats.completed);
    EXPECT_EQ(serial.stats.crashes, parallel[i].stats.crashes);
    EXPECT_EQ(serial.stats.dropped_partition,
              parallel[i].stats.dropped_partition);
    EXPECT_EQ(serial.stats.duplicated, parallel[i].stats.duplicated);
    EXPECT_EQ(serial.stats.reordered, parallel[i].stats.reordered);
    EXPECT_TRUE(parallel[i].ok) << parallel[i].summary();
  }
}

TEST(Chaos, BatchingFlagAppearsInReplayCommand) {
  sim::ChaosConfig cfg;
  cfg.batching = true;
  EXPECT_NE(cfg.replay_command().find("--batching"), std::string::npos);
  sim::ChaosConfig legacy;
  EXPECT_EQ(legacy.replay_command().find("--batching"), std::string::npos);
}

TEST(Chaos, ExtendedClassesAreDeterministic) {
  sim::ChaosConfig cfg;
  cfg.kind = MatchmakerKind::kCanBasic;
  cfg.seed = 7;
  cfg.enable_correlated = true;
  cfg.enable_flapping = true;
  cfg.self_healing = true;
  const sim::ChaosReport a = sim::run_chaos(cfg);
  const sim::ChaosReport b = sim::run_chaos(cfg);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stats.crashes, b.stats.crashes);
  EXPECT_EQ(a.stats.suspicions, b.stats.suspicions);
  EXPECT_EQ(a.stats.repairs, b.stats.repairs);
  EXPECT_EQ(a.stats.fp_evictions, b.stats.fp_evictions);
}

TEST(Chaos, ExtendedFlagsAppearInReplayCommand) {
  sim::ChaosConfig cfg;
  cfg.kind = MatchmakerKind::kRnTree;
  cfg.seed = 31;
  cfg.enable_correlated = true;
  cfg.enable_flapping = true;
  cfg.self_healing = true;
  const std::string cmd = cfg.replay_command();
  EXPECT_NE(cmd.find("--correlated"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--flapping"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--self-healing"), std::string::npos) << cmd;
  // Default config advertises none of them: existing replay commands keep
  // reproducing their original schedules.
  sim::ChaosConfig legacy;
  const std::string legacy_cmd = legacy.replay_command();
  EXPECT_EQ(legacy_cmd.find("--correlated"), std::string::npos) << legacy_cmd;
  EXPECT_EQ(legacy_cmd.find("--flapping"), std::string::npos) << legacy_cmd;
  EXPECT_EQ(legacy_cmd.find("--self-healing"), std::string::npos)
      << legacy_cmd;
}

TEST(Chaos, DeterministicReport) {
  sim::ChaosConfig cfg;
  cfg.kind = MatchmakerKind::kCanPush;
  cfg.seed = 42;
  const sim::ChaosReport a = sim::run_chaos(cfg);
  const sim::ChaosReport b = sim::run_chaos(cfg);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.crashes, b.stats.crashes);
  EXPECT_EQ(a.stats.dropped_partition, b.stats.dropped_partition);
  EXPECT_EQ(a.stats.dropped_fault, b.stats.dropped_fault);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.stats.reordered, b.stats.reordered);
}

TEST(Chaos, ReplayCommandNamesTheSchedule) {
  sim::ChaosConfig cfg;
  cfg.kind = MatchmakerKind::kRnTree;
  cfg.seed = 977;
  cfg.nodes = 12;
  cfg.jobs = 17;
  const std::string cmd = cfg.replay_command();
  EXPECT_NE(cmd.find("--kind=rn-tree"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--seed=977"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--nodes=12"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--jobs=17"), std::string::npos) << cmd;
}

TEST(Chaos, ParseMatchmakerRoundTrips) {
  for (const MatchmakerKind kind :
       {MatchmakerKind::kCentralized, MatchmakerKind::kRandom,
        MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic,
        MatchmakerKind::kCanPush, MatchmakerKind::kTtlWalk}) {
    MatchmakerKind parsed{};
    ASSERT_TRUE(sim::parse_matchmaker(grid::matchmaker_name(kind), &parsed))
        << grid::matchmaker_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  MatchmakerKind parsed{};
  EXPECT_FALSE(sim::parse_matchmaker("no-such-matchmaker", &parsed));
}

}  // namespace
}  // namespace pgrid
