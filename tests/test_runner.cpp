// Parallel experiment runner: coverage, ordering of results, thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/runner.h"

namespace pgrid::sim {
namespace {

TEST(Runner, EveryCellRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_cells(1000, 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, ZeroCellsIsNoop) {
  parallel_for_cells(0, 4, [](std::size_t) { FAIL(); });
}

TEST(Runner, SingleThreadPathMatches) {
  std::vector<int> serial;
  parallel_for_cells(10, 1, [&](std::size_t i) {
    serial.push_back(static_cast<int>(i));
  });
  // Single-threaded execution preserves cell order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(serial, expected);
}

TEST(Runner, ResultsLandInSubmissionOrder) {
  const auto results = run_sweep<int>(64, 8, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(Runner, MoreThreadsThanCellsIsFine) {
  std::atomic<int> total{0};
  parallel_for_cells(3, 100, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(Runner, WorkerExceptionRethrownAfterJoin) {
  // A throwing cell on a worker thread used to hit std::terminate; now the
  // first exception is rethrown on the calling thread after the pool joins.
  std::atomic<int> ran{0};
  try {
    parallel_for_cells(64, 4, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("cell 5 failed");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the cell exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 5 failed");
  }
  // The failure stops new cells from starting, so the sweep drains early.
  EXPECT_LT(ran.load(), 64);
}

TEST(Runner, SerialPathPropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_cells(3, 1,
                         [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
}

TEST(Runner, HardwareConcurrencyDefault) {
  std::atomic<int> total{0};
  parallel_for_cells(50, 0, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 50);
}

}  // namespace
}  // namespace pgrid::sim
