// Robustness under random message loss: RPC timeouts and protocol retries
// must preserve correctness when the network silently eats messages.

#include <gtest/gtest.h>

#include "chord/ring.h"
#include "grid/grid_system.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid {
namespace {

TEST(Loss, ChordLookupsSurviveFivePercentLoss) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1},
                       net::LatencyModel{sim::SimTime::millis(20),
                                         sim::SimTime::millis(80)},
                       /*loss_probability=*/0.05);
  chord::ChordRing ring(network, chord::ChordConfig{}, Rng{2});
  for (std::size_t i = 0; i < 64; ++i) {
    ring.add_host(Guid::of(std::uint64_t{0xFEED} + i * 7919));
  }
  ring.wire_instantly();

  Rng rng{3};
  int ok = 0;
  constexpr int kLookups = 40;
  for (int t = 0; t < kLookups; ++t) {
    const Guid key{rng.next()};
    chord::Peer got = chord::kNoPeer;
    ring.host(rng.index(64)).node().lookup(key, [&](chord::Peer p, int) {
      got = p;
    });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(120));
    if (got.valid()) {
      // When a lookup succeeds it must be *correct*, not just complete.
      EXPECT_EQ(got.id, ring.oracle_successor(key).id);
      ++ok;
    }
  }
  // Retries route around lost messages; the vast majority succeeds.
  EXPECT_GE(ok, kLookups * 8 / 10);
}

TEST(Loss, GridCompletesAllJobsUnderLoss) {
  workload::WorkloadSpec spec;
  spec.node_count = 16;
  spec.job_count = 40;
  spec.mean_runtime_sec = 15.0;
  spec.mean_interarrival_sec = 0.5;
  spec.constraint_probability = 0.4;
  spec.seed = 4;

  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kRnTree;
  config.seed = 5;
  config.loss_probability = 0.03;
  config.client.resubmit_base_sec = 120.0;
  grid::GridSystem system(config, workload::generate(spec));
  system.run();
  ASSERT_TRUE(system.finished());
  // Lost submissions / dispatches / results are all recovered by RPC
  // timeouts, heartbeats, or client resubmission.
  EXPECT_EQ(system.collector().completed_count(), 40u);
}

TEST(Loss, HeartbeatsTolerateLossWithoutFalseRecovery) {
  // Loss below the miss threshold must not trigger run-node replacement:
  // with threshold 3 and 10% loss, three consecutive losses are rare.
  workload::WorkloadSpec spec;
  spec.node_count = 8;
  spec.job_count = 10;
  spec.mean_runtime_sec = 60.0;
  spec.mean_interarrival_sec = 0.5;
  spec.constraint_probability = 0.0;
  spec.seed = 6;

  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kCentralized;
  config.seed = 7;
  config.loss_probability = 0.10;
  config.node.heartbeat_miss_threshold = 3;
  grid::GridSystem system(config, workload::generate(spec));
  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 10u);
  // A few spurious requeues are tolerable; a storm is a bug.
  EXPECT_LE(system.collector().total_requeues(), 3u);
}

}  // namespace
}  // namespace pgrid
