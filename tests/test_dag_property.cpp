// Property tests for the DAG runner: random DAGs of varying shapes always
// execute in topological order and always terminate.

#include <gtest/gtest.h>

#include "grid/dag.h"
#include "grid/grid_system.h"

namespace pgrid::grid {
namespace {

struct DagParam {
  std::size_t jobs;
  double edge_probability;
  std::uint64_t seed;
};

class RandomDagSweep : public ::testing::TestWithParam<DagParam> {};

TEST_P(RandomDagSweep, TopologicalOrderAlwaysRespected) {
  const DagParam param = GetParam();

  workload::WorkloadSpec spec;
  spec.node_count = 10;
  spec.job_count = param.jobs;
  spec.mean_runtime_sec = 5.0;
  spec.constraint_probability = 0.0;
  spec.seed = param.seed;
  workload::Workload w = workload::generate(spec);
  for (auto& job : w.jobs) job.runtime_sec = 5.0;

  // Random DAG: edges only from lower to higher index (acyclic by
  // construction), sampled with the given density.
  Rng rng{param.seed * 31 + 7};
  std::vector<DagEdge> edges;
  for (std::uint64_t a = 0; a < param.jobs; ++a) {
    for (std::uint64_t b = a + 1; b < param.jobs; ++b) {
      if (rng.bernoulli(param.edge_probability)) {
        edges.push_back({a, b});
      }
    }
  }

  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = param.seed;
  config.manual_submission = true;
  config.light_maintenance = true;
  GridSystem system(config, w);
  DagRunner dag(system, edges);
  dag.start();
  system.run();

  ASSERT_TRUE(dag.finished());
  EXPECT_EQ(dag.completed(), param.jobs);
  EXPECT_EQ(dag.cancelled(), 0u);
  // Every edge respected: child starts after parent completes.
  for (const DagEdge& e : edges) {
    const auto& parent = system.collector().job(e.parent);
    const auto& child = system.collector().job(e.child);
    ASSERT_TRUE(parent.completed());
    ASSERT_TRUE(child.started());
    EXPECT_GE(child.started_sec, parent.completed_sec)
        << e.parent << " -> " << e.child;
  }
  // Depth is monotone along edges.
  for (const DagEdge& e : edges) {
    EXPECT_LT(dag.depths()[e.parent], dag.depths()[e.child]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomDagSweep,
    ::testing::Values(DagParam{5, 0.5, 1},    // dense tiny
                      DagParam{12, 0.3, 2},   // medium
                      DagParam{20, 0.15, 3},  // sparse
                      DagParam{20, 0.0, 4},   // no edges: all parallel
                      DagParam{8, 1.0, 5},    // total order: fully serial
                      DagParam{30, 0.1, 6}),
    [](const ::testing::TestParamInfo<DagParam>& info) {
      return "j" + std::to_string(info.param.jobs) + "s" +
             std::to_string(info.param.seed);
    });

TEST(RandomDag, FullySerialChainMatchesSumOfRuntimes) {
  workload::WorkloadSpec spec;
  spec.node_count = 5;
  spec.job_count = 6;
  spec.constraint_probability = 0.0;
  spec.seed = 9;
  workload::Workload w = workload::generate(spec);
  for (auto& job : w.jobs) job.runtime_sec = 10.0;

  std::vector<DagEdge> chain;
  for (std::uint64_t j = 0; j + 1 < 6; ++j) chain.push_back({j, j + 1});

  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = 9;
  config.manual_submission = true;
  config.light_maintenance = true;
  GridSystem system(config, w);
  DagRunner dag(system, chain);
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  // 6 x 10 s of serial compute plus small per-stage protocol overhead.
  const double makespan = system.collector().makespan_sec();
  EXPECT_GE(makespan, 60.0);
  EXPECT_LT(makespan, 75.0);
}

}  // namespace
}  // namespace pgrid::grid
