// Config parsing: file format, CLI overrides, typed getters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.h"

namespace pgrid {
namespace {

TEST(Config, TypedGettersWithFallbacks) {
  Config c;
  c.set("nodes", "1000");
  c.set("rate", "0.25");
  c.set("mode", "mixed");
  c.set("push", "true");
  EXPECT_EQ(c.get_int("nodes", 1), 1000);
  EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(c.get_string("mode", "x"), "mixed");
  EXPECT_TRUE(c.get_bool("push", false));
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* v : {"1", "true", "yes", "on"}) {
    c.set("flag", v);
    EXPECT_TRUE(c.get_bool("flag", false)) << v;
  }
  for (const char* v : {"0", "false", "no", "off", "banana"}) {
    c.set("flag", v);
    EXPECT_FALSE(c.get_bool("flag", true)) << v;
  }
}

TEST(Config, ParseArgsStripsDashes) {
  Config c;
  const char* argv[] = {"prog", "--nodes=256", "seed=9", "stray", "--flag"};
  const auto leftover = c.parse_args(5, argv);
  EXPECT_EQ(c.get_int("nodes", 0), 256);
  EXPECT_EQ(c.get_int("seed", 0), 9);
  ASSERT_EQ(leftover.size(), 2u);
  EXPECT_EQ(leftover[0], "stray");
  EXPECT_EQ(leftover[1], "--flag");
}

TEST(Config, LoadFileWithCommentsAndBlanks) {
  const std::string path = testing::TempDir() + "/p2pgrid_config_test.cfg";
  {
    std::ofstream out(path);
    out << "# experiment defaults\n"
        << "nodes = 512   # inline comment\n"
        << "\n"
        << "  jobs=2000\n"
        << "label = fig2 run\n";
  }
  Config c;
  ASSERT_TRUE(c.load_file(path));
  EXPECT_EQ(c.get_int("nodes", 0), 512);
  EXPECT_EQ(c.get_int("jobs", 0), 2000);
  EXPECT_EQ(c.get_string("label", ""), "fig2 run");
  std::remove(path.c_str());
}

TEST(Config, LoadMissingFileFails) {
  Config c;
  EXPECT_FALSE(c.load_file("/nonexistent/path/nothing.cfg"));
}

TEST(Config, LaterSettingsWin) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace pgrid
