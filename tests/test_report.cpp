// Result export: per-job CSV and the ASCII wait-time histogram.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/report.h"

namespace pgrid::metrics {
namespace {

using sim::SimTime;

Collector sample_collector() {
  Collector c(3, 2);
  c.on_submit(0, SimTime::seconds(0.0));
  c.on_owner(0, SimTime::seconds(0.2), 3);
  c.on_matched(0, SimTime::seconds(0.5), 2, 1);
  c.on_started(0, SimTime::seconds(1.0));
  c.on_completed(0, SimTime::seconds(11.0));
  c.on_submit(1, SimTime::seconds(0.5));
  c.on_started(1, SimTime::seconds(21.0));
  c.on_completed(1, SimTime::seconds(30.0));
  c.on_submit(2, SimTime::seconds(1.0));  // never started
  c.on_unmatched(2);
  return c;
}

TEST(Report, CsvHasHeaderAndOneRowPerJob) {
  const Collector c = sample_collector();
  const std::string path = testing::TempDir() + "/p2pgrid_report_test.csv";
  ASSERT_TRUE(write_job_csv(c, path));

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("seq,submit_sec"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(Report, CsvEncodesOutcomeFields) {
  const Collector c = sample_collector();
  const std::string path = testing::TempDir() + "/p2pgrid_report_test2.csv";
  ASSERT_TRUE(write_job_csv(c, path));
  std::ifstream in(path);
  std::stringstream all;
  all << in.rdbuf();
  const std::string text = all.str();
  // Job 0's wait (1.0s) and run node appear; job 2 is flagged unmatched.
  EXPECT_NE(text.find("0,0.000,0.200,0.500,1.000,11.000,1.000,3,2,1,0,0,0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find(",1\n"), std::string::npos);  // unmatched flag
  std::remove(path.c_str());
}

TEST(Report, CsvFailsOnBadPath) {
  const Collector c = sample_collector();
  EXPECT_FALSE(write_job_csv(c, "/nonexistent/dir/report.csv"));
}

TEST(Report, HistogramCoversStartedJobs) {
  const Collector c = sample_collector();
  const std::string art = wait_histogram(c, 4);
  // 4 buckets rendered, two samples total (waits 1.0 and 20.5).
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Report, HistogramHandlesEmptyCollector) {
  Collector c(2, 1);
  EXPECT_EQ(wait_histogram(c), "(no started jobs)\n");
}

}  // namespace
}  // namespace pgrid::metrics
