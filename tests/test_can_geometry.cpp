// CAN geometry: points, zones, splits, merges, the neighbor relation.

#include <gtest/gtest.h>

#include <cmath>

#include "can/geometry.h"
#include "common/rng.h"

namespace pgrid::can {
namespace {

TEST(Point, DominanceOverRealDims) {
  const Point a{0.5, 0.5, 0.9};  // last dim is "virtual"
  const Point b{0.5, 0.4, 0.95};
  EXPECT_TRUE(a.dominates(b, 2));
  EXPECT_FALSE(b.dominates(a, 2));
  EXPECT_TRUE(a.exceeds_somewhere(b, 2));
  EXPECT_FALSE(b.exceeds_somewhere(a, 2));
  // Equal points dominate but do not exceed.
  EXPECT_TRUE(a.dominates(a, 2));
  EXPECT_FALSE(a.exceeds_somewhere(a, 2));
}

TEST(Point, Distance) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.distance_to(b), 5.0);
  EXPECT_DOUBLE_EQ(a.distance_to(a), 0.0);
}

TEST(Zone, WholeCube) {
  const Zone w = Zone::whole(3);
  EXPECT_DOUBLE_EQ(w.volume(), 1.0);
  EXPECT_TRUE(w.contains(Point{0.0, 0.0, 0.0}));
  EXPECT_TRUE(w.contains(Point{0.999, 0.5, 0.0}));
  EXPECT_FALSE(w.contains(Point{1.0, 0.5, 0.0}));  // half-open
}

TEST(Zone, SplitHalvesVolume) {
  const Zone w = Zone::whole(2);
  const auto [lo, hi] = w.split(0);
  EXPECT_DOUBLE_EQ(lo.volume(), 0.5);
  EXPECT_DOUBLE_EQ(hi.volume(), 0.5);
  EXPECT_TRUE(lo.contains(Point{0.25, 0.5}));
  EXPECT_TRUE(hi.contains(Point{0.75, 0.5}));
  EXPECT_FALSE(lo.contains(Point{0.5, 0.5}));  // midpoint goes to upper half
  EXPECT_TRUE(hi.contains(Point{0.5, 0.5}));
  EXPECT_TRUE(lo.abuts(hi));
}

TEST(Zone, SplitForSeparatesPoints) {
  const Zone w = Zone::whole(2);
  const Point keeper{0.2, 0.2};
  const Point joiner{0.8, 0.8};
  const auto [mine, theirs] = w.split_for(keeper, joiner);
  EXPECT_TRUE(mine.contains(keeper));
  EXPECT_TRUE(theirs.contains(joiner));
  EXPECT_FALSE(mine.overlaps(theirs));
  EXPECT_DOUBLE_EQ(mine.volume() + theirs.volume(), 1.0);
}

TEST(Zone, SplitForSkipsNonSeparatingDimension) {
  const Zone w = Zone::whole(2);
  // Identical x: the split must use dimension 1.
  const Point keeper{0.5, 0.2};
  const Point joiner{0.5, 0.8};
  const auto [mine, theirs] = w.split_for(keeper, joiner);
  EXPECT_TRUE(mine.contains(keeper));
  EXPECT_TRUE(theirs.contains(joiner));
}

TEST(Zone, SplitForCoincidentPointsStillSplits) {
  const Zone w = Zone::whole(3);
  const Point p{0.3, 0.3, 0.3};
  const auto [mine, theirs] = w.split_for(p, p);
  EXPECT_TRUE(mine.contains(p));
  EXPECT_FALSE(theirs.contains(p));
  EXPECT_DOUBLE_EQ(mine.volume() + theirs.volume(), 1.0);
}

TEST(Zone, AbutsRequiresSharedFace) {
  // [0,.5)x[0,.5) and [.5,1)x[0,.5): share a face.
  const Zone a{Point{0.0, 0.0}, Point{0.5, 0.5}};
  const Zone b{Point{0.5, 0.0}, Point{1.0, 0.5}};
  EXPECT_TRUE(a.abuts(b));
  EXPECT_TRUE(b.abuts(a));
  // Diagonal zones touch only at a corner: not neighbors.
  const Zone c{Point{0.5, 0.5}, Point{1.0, 1.0}};
  EXPECT_FALSE(a.abuts(c));
  // Overlapping zones are not neighbors either.
  const Zone d{Point{0.25, 0.0}, Point{0.75, 0.5}};
  EXPECT_FALSE(a.abuts(d));
  // A zone does not abut itself.
  EXPECT_FALSE(a.abuts(a));
}

TEST(Zone, AbutsWithPartialFaceOverlap) {
  // Sharing part of a face still counts.
  const Zone a{Point{0.0, 0.0}, Point{0.5, 1.0}};
  const Zone b{Point{0.5, 0.25}, Point{1.0, 0.5}};
  EXPECT_TRUE(a.abuts(b));
}

TEST(Zone, DistanceToPoint) {
  const Zone z{Point{0.25, 0.25}, Point{0.5, 0.5}};
  EXPECT_DOUBLE_EQ(z.distance_to(Point{0.3, 0.3}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(z.distance_to(Point{0.0, 0.3}), 0.25);  // one axis away
  EXPECT_NEAR(z.distance_to(Point{0.1, 0.1}),
              std::sqrt(2 * 0.15 * 0.15), 1e-12);  // corner
}

TEST(Zone, TryMergeSiblings) {
  const Zone w = Zone::whole(2);
  const auto [lo, hi] = w.split(1);
  Zone merged;
  ASSERT_TRUE(lo.try_merge(hi, &merged));
  EXPECT_EQ(merged, w);
  ASSERT_TRUE(hi.try_merge(lo, &merged));
  EXPECT_EQ(merged, w);
}

TEST(Zone, TryMergeRejectsNonSiblings) {
  // Touching but with different extents in the other dimension.
  const Zone a{Point{0.0, 0.0}, Point{0.5, 0.5}};
  const Zone b{Point{0.5, 0.0}, Point{1.0, 1.0}};
  Zone merged;
  EXPECT_FALSE(a.try_merge(b, &merged));
  // Disjoint, non-touching.
  const Zone c{Point{0.75, 0.0}, Point{1.0, 0.5}};
  EXPECT_FALSE(a.try_merge(c, &merged));
  // Identical zones are not a merge.
  EXPECT_FALSE(a.try_merge(a, &merged));
}

// Property: a random split sequence produces a perfect tiling.
TEST(ZoneProperty, RandomSplitSequenceTilesSpace) {
  Rng rng{17};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dims = 2 + rng.index(3);
    std::vector<Zone> zones{Zone::whole(dims)};
    for (int s = 0; s < 100; ++s) {
      const auto zi = rng.index(zones.size());
      const auto d = rng.index(dims);
      if (zones[zi].extent(d) < 1e-6) continue;
      const auto [lo, hi] = zones[zi].split(d);
      zones[zi] = lo;
      zones.push_back(hi);
    }
    double total = 0.0;
    for (const Zone& z : zones) total += z.volume();
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Random points are owned by exactly one zone.
    for (int p = 0; p < 200; ++p) {
      Point pt(dims);
      for (std::size_t d = 0; d < dims; ++d) pt[d] = rng.uniform();
      int owners = 0;
      for (const Zone& z : zones) owners += z.contains(pt) ? 1 : 0;
      EXPECT_EQ(owners, 1);
    }
  }
}

// Property: abuts() is symmetric on random split tilings.
TEST(ZoneProperty, AbutsIsSymmetric) {
  Rng rng{23};
  std::vector<Zone> zones{Zone::whole(3)};
  for (int s = 0; s < 60; ++s) {
    const auto zi = rng.index(zones.size());
    const auto d = rng.index(3u);
    const auto [lo, hi] = zones[zi].split(d);
    zones[zi] = lo;
    zones.push_back(hi);
  }
  for (std::size_t i = 0; i < zones.size(); ++i) {
    for (std::size_t j = 0; j < zones.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(zones[i].abuts(zones[j]), zones[j].abuts(zones[i]));
    }
  }
}

}  // namespace
}  // namespace pgrid::can
