// Chord under failures: successor-list repair, routing around dead nodes,
// predecessor cleanup, rejoin after crash.

#include <gtest/gtest.h>

#include "chord/ring.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::chord {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1)
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        ring(net, ChordConfig{}, Rng{seed + 1}) {}

  sim::Simulator simulator;
  net::Network net;
  ChordRing ring;

  void build(std::size_t n, std::uint64_t salt = 0xC0FFEE) {
    for (std::size_t i = 0; i < n; ++i) {
      ring.add_host(Guid::of(salt + i * 104729));
    }
    ring.wire_instantly();
  }

  void settle(double seconds) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(seconds));
  }

  Peer lookup_from(std::size_t host, Guid key, int* hops_out = nullptr) {
    Peer result = kNoPeer;
    ring.host(host).node().lookup(key, [&](Peer r, int h) {
      result = r;
      if (hops_out) *hops_out = h;
    });
    settle(120);
    return result;
  }
};

TEST(ChordFailure, SuccessorListSurvivesSuccessorCrash) {
  Fixture fx;
  fx.build(16);
  ChordNode& node = fx.ring.host(0).node();
  const Peer old_succ = node.successor();

  // Find and crash the successor.
  for (std::size_t i = 0; i < 16; ++i) {
    if (fx.ring.host(i).node().addr() == old_succ.addr) {
      fx.ring.crash(i);
      break;
    }
  }
  fx.settle(30);  // stabilization detects the death and repairs

  const Peer new_succ = node.successor();
  ASSERT_TRUE(new_succ.valid());
  EXPECT_NE(new_succ.addr, old_succ.addr);
  // The new successor is the oracle's next live node after us.
  EXPECT_EQ(new_succ.id,
            fx.ring.oracle_successor(Guid{node.id().value() + 1}).id);
}

TEST(ChordFailure, LookupsRouteAroundDeadNodes) {
  Fixture fx{2};
  fx.build(64);
  // Crash 8 random nodes (not node 0, our prober).
  Rng rng{42};
  for (int k = 0; k < 8; ++k) {
    fx.ring.crash(1 + rng.index(63));
  }
  fx.settle(60);
  for (int t = 0; t < 25; ++t) {
    const Guid key{rng.next()};
    const Peer got = fx.lookup_from(0, key);
    ASSERT_TRUE(got.valid()) << "lookup " << t;
    EXPECT_EQ(got.id, fx.ring.oracle_successor(key).id) << "lookup " << t;
  }
}

TEST(ChordFailure, LookupBeforeRepairStillSucceedsViaRetries) {
  Fixture fx{3};
  fx.build(64);
  Rng rng{43};
  // Crash nodes and immediately look up, before stabilization can repair.
  for (int k = 0; k < 6; ++k) {
    fx.ring.crash(1 + rng.index(63));
  }
  int successes = 0;
  for (int t = 0; t < 20; ++t) {
    const Guid key{rng.next()};
    const Peer got = fx.lookup_from(0, key);
    if (got.valid()) {
      EXPECT_EQ(got.id, fx.ring.oracle_successor(key).id);
      ++successes;
    }
  }
  // Retries route around stale fingers; nearly all lookups should land.
  EXPECT_GE(successes, 17);
}

TEST(ChordFailure, PredecessorClearedAfterCrash) {
  Fixture fx{4};
  fx.build(8);
  ChordNode& node = fx.ring.host(0).node();
  const Peer pred = node.predecessor();
  ASSERT_TRUE(pred.valid());
  for (std::size_t i = 0; i < 8; ++i) {
    if (fx.ring.host(i).node().addr() == pred.addr) {
      fx.ring.crash(i);
      break;
    }
  }
  fx.settle(30);
  // check_predecessor pings it and clears; a new predecessor may then be
  // installed by the (live) actual predecessor's notify.
  EXPECT_NE(node.predecessor().addr, pred.addr);
}

TEST(ChordFailure, CrashedNodeRejoins) {
  Fixture fx{5};
  fx.build(24);
  const Guid id9 = fx.ring.host(9).node().id();
  fx.ring.crash(9);
  fx.settle(60);
  // While down, its keys belong to its old successor.
  const Peer interim = fx.lookup_from(0, id9);
  ASSERT_TRUE(interim.valid());
  EXPECT_NE(interim.id, id9);

  fx.ring.restart(9);
  fx.settle(180);  // rejoin + stabilize + fix fingers
  const Peer after = fx.lookup_from(0, id9);
  ASSERT_TRUE(after.valid());
  EXPECT_EQ(after.id, id9);
}

TEST(ChordFailure, MassiveFailureHalfRingSurvives) {
  Fixture fx{6};
  fx.build(64);
  // Crash every other node simultaneously.
  for (std::size_t i = 1; i < 64; i += 2) {
    fx.ring.crash(i);
  }
  fx.settle(240);
  Rng rng{7};
  int ok = 0;
  for (int t = 0; t < 20; ++t) {
    const Guid key{rng.next()};
    const Peer got = fx.lookup_from(0, key);
    if (got.valid() && got.id == fx.ring.oracle_successor(key).id) ++ok;
  }
  EXPECT_GE(ok, 18);
}

TEST(ChordFailure, IsolatedSurvivorBecomesSingleton) {
  Fixture fx{8};
  fx.build(4);
  fx.ring.crash(1);
  fx.ring.crash(2);
  fx.ring.crash(3);
  fx.settle(120);
  ChordNode& survivor = fx.ring.host(0).node();
  ASSERT_TRUE(survivor.successor().valid());
  EXPECT_EQ(survivor.successor().addr, survivor.addr());
  const Peer got = fx.lookup_from(0, Guid{0xDEAD});
  EXPECT_EQ(got.addr, survivor.addr());
}

}  // namespace
}  // namespace pgrid::chord
