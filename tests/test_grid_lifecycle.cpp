// End-to-end grid lifecycle: jobs submitted -> owned -> matched -> executed
// -> results returned, across all five matchmakers, plus FIFO semantics,
// constraint enforcement, and determinism.

#include <gtest/gtest.h>

#include "grid/grid_system.h"

namespace pgrid::grid {
namespace {

workload::Workload tiny_workload(std::uint64_t seed = 7,
                                 std::size_t nodes = 24,
                                 std::size_t jobs = 60) {
  workload::WorkloadSpec spec;
  spec.node_count = nodes;
  spec.job_count = jobs;
  spec.mean_runtime_sec = 20.0;
  spec.mean_interarrival_sec = 0.5;
  spec.constraint_probability = 0.4;
  spec.client_count = 2;
  spec.seed = seed;
  return workload::generate(spec);
}

GridConfig base_config(MatchmakerKind kind, std::uint64_t seed = 1) {
  GridConfig config;
  config.kind = kind;
  config.seed = seed;
  config.light_maintenance = true;
  return config;
}

class AllMatchmakers : public ::testing::TestWithParam<MatchmakerKind> {};

TEST_P(AllMatchmakers, AllJobsCompleteAndReturnResults) {
  GridSystem system(base_config(GetParam()), tiny_workload());
  system.run();
  ASSERT_TRUE(system.finished()) << matchmaker_name(GetParam());
  const auto& collector = system.collector();
  EXPECT_EQ(collector.completed_count(), 60u);
  EXPECT_EQ(collector.started_count(), 60u);
  // A decentralized matchmaker may occasionally exhaust its attempts for a
  // generation (the client's resubmission is the designed recovery path);
  // it must stay rare, and every job must still complete.
  EXPECT_LE(collector.unmatched_count(), 2u);
  // Every job waited a non-negative, finite time.
  const Samples waits = collector.wait_times();
  EXPECT_EQ(waits.count(), 60u);
  EXPECT_GE(waits.min(), 0.0);
}

TEST_P(AllMatchmakers, NoJobLandsOnAnIneligibleNode) {
  // The first criterion of matchmaking (§2): constraints must be met.
  GridSystem system(base_config(GetParam(), 3), tiny_workload(9));
  system.run();
  ASSERT_TRUE(system.finished());
  const auto& w = system.workload();
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    const auto& outcome = system.collector().job(j);
    ASSERT_TRUE(outcome.started());
    EXPECT_TRUE(w.jobs[j].constraints.satisfied_by(
        w.node_caps[outcome.run_node]))
        << "job " << j << " ran on ineligible node " << outcome.run_node;
  }
}

TEST_P(AllMatchmakers, DeterministicAcrossRuns) {
  auto run_once = [] {
    GridSystem system(base_config(GetParam(), 11), tiny_workload(13));
    system.run();
    std::vector<double> waits;
    for (std::size_t j = 0; j < 60; ++j) {
      waits.push_back(system.collector().job(j).wait_sec());
    }
    return waits;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllMatchmakers,
    ::testing::Values(MatchmakerKind::kCentralized, MatchmakerKind::kRandom,
                      MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic,
                      MatchmakerKind::kCanPush),
    [](const ::testing::TestParamInfo<MatchmakerKind>& info) {
      std::string name = matchmaker_name(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(GridLifecycle, FifoOrderOnASingleNode) {
  // One node, several jobs: they must execute in arrival (dispatch) order.
  workload::WorkloadSpec spec;
  spec.node_count = 1;
  spec.job_count = 5;
  spec.mean_runtime_sec = 10.0;
  spec.mean_interarrival_sec = 0.1;
  spec.constraint_probability = 0.0;
  spec.client_count = 1;
  spec.seed = 2;
  GridSystem system(base_config(MatchmakerKind::kCentralized),
                    workload::generate(spec));
  system.run();
  ASSERT_TRUE(system.finished());
  double prev_start = -1.0;
  for (std::size_t j = 0; j < 5; ++j) {
    const auto& outcome = system.collector().job(j);
    EXPECT_GT(outcome.started_sec, prev_start);
    prev_start = outcome.started_sec;
  }
  // One job at a time: total busy time equals the serialized sum.
  EXPECT_EQ(system.node(0).stats().jobs_executed, 5u);
}

TEST(GridLifecycle, WaitIncludesQueueingDelay) {
  // Load one node with back-to-back jobs: later jobs wait longer.
  workload::WorkloadSpec spec;
  spec.node_count = 1;
  spec.job_count = 4;
  spec.mean_runtime_sec = 50.0;
  spec.mean_interarrival_sec = 0.1;
  spec.constraint_probability = 0.0;
  spec.client_count = 1;
  spec.seed = 3;
  GridConfig config = base_config(MatchmakerKind::kCentralized);
  config.client.resubmit_base_sec = 10000.0;  // no resubmissions in this test
  GridSystem system(config, workload::generate(spec));
  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  EXPECT_LT(c.job(0).wait_sec(), 2.0);     // head of queue: network delay only
  EXPECT_GT(c.job(3).wait_sec(), 30.0);    // waited for predecessors
}

TEST(GridLifecycle, CentralizedBalancesBetterThanRandom) {
  // The premise of Fig. 2's comparison: global least-loaded placement beats
  // random placement on wait-time dispersion under load.
  const auto run_kind = [](MatchmakerKind kind) {
    workload::WorkloadSpec spec;
    spec.node_count = 20;
    spec.job_count = 400;
    spec.mean_runtime_sec = 30.0;
    spec.mean_interarrival_sec = 0.2;  // heavy: ~7.5x nominal capacity
    spec.constraint_probability = 0.0;
    spec.seed = 5;
    GridSystem system(GridConfig{.kind = kind, .seed = 9,
                                 .light_maintenance = true},
                      workload::generate(spec));
    system.run();
    return system.collector().wait_times().mean();
  };
  const double central = run_kind(MatchmakerKind::kCentralized);
  const double random = run_kind(MatchmakerKind::kRandom);
  EXPECT_LT(central, random);
}

TEST(GridLifecycle, NodeStatsAccumulate) {
  GridSystem system(base_config(MatchmakerKind::kCentralized),
                    tiny_workload());
  system.run();
  const GridNodeStats total = system.aggregate_node_stats();
  EXPECT_EQ(total.jobs_executed, 60u);
  EXPECT_EQ(total.owner_recoveries, 0u);  // no failures in this run
  EXPECT_EQ(total.run_recoveries, 0u);
}

TEST(GridLifecycle, NetworkTrafficIsAccounted) {
  GridSystem system(base_config(MatchmakerKind::kRnTree), tiny_workload());
  system.run();
  EXPECT_GT(system.net_stats().messages_sent, 100u);
  EXPECT_GT(system.net_stats().bytes_sent,
            system.net_stats().messages_sent * net::Network::kHeaderBytes);
}

TEST(GridLifecycle, InjectionHopsRecordedForOverlayKinds) {
  GridSystem rn(base_config(MatchmakerKind::kRnTree), tiny_workload());
  rn.run();
  ASSERT_TRUE(rn.finished());
  // RN injection = Chord lookup + random walk: some jobs must have hops.
  EXPECT_GT(rn.collector().injection_hops().mean(), 0.5);

  GridSystem central(base_config(MatchmakerKind::kCentralized),
                     tiny_workload());
  central.run();
  EXPECT_DOUBLE_EQ(central.collector().injection_hops().mean(), 0.0);
}

}  // namespace
}  // namespace pgrid::grid
