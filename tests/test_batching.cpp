// Maintenance-traffic batching (DESIGN.md §16): envelope semantics at the
// network layer (coalescing, nesting, accounting, deep clone) and off-vs-on
// behavioral equivalence of the full grid for every overlay matchmaker.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "grid/grid_system.h"
#include "net/batch.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {
namespace {

struct PartMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 9;
  explicit PartMsg(int v) : Message(kType), value(v) {}
  int value;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 4;
  }
  PGRID_MESSAGE_CLONE(PartMsg)
};

struct OtherMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 10;
  OtherMsg() : Message(kType) {}
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 1;
  }
  PGRID_MESSAGE_CLONE(OtherMsg)
};

struct Recorder final : MessageHandler {
  void on_message(NodeAddr from, MessagePtr msg) override {
    froms.push_back(from);
    types.push_back(msg->type());
  }
  std::vector<NodeAddr> froms;
  std::vector<std::uint16_t> types;
};

class BatchScopeTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  Network net{simulator, Rng{1}};
  Recorder a, b, c;
  NodeAddr addr_a = net.add_handler(&a);
  NodeAddr addr_b = net.add_handler(&b);
  NodeAddr addr_c = net.add_handler(&c);
};

TEST_F(BatchScopeTest, CoalescesSameDestinationSingletonGoesPlain) {
  {
    const BatchScope scope(net, addr_a);
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(1));
    net.send(addr_a, addr_c, std::make_unique<PartMsg>(2));
    net.send(addr_a, addr_b, std::make_unique<OtherMsg>());
    // Buffered until the scope closes: nothing has hit the wire yet.
    EXPECT_EQ(net.stats().messages_sent, 0u);
  }
  simulator.run();
  // b's two messages shared one envelope; c's singleton went as-is.
  EXPECT_EQ(net.stats().batches_sent, 1u);
  EXPECT_EQ(net.stats().batch_parts_sent, 2u);
  EXPECT_EQ(net.stats().messages_sent, 2u);  // envelope + plain
  EXPECT_EQ(net.stats().batches_delivered, 1u);
  EXPECT_EQ(net.stats().batch_parts_delivered, 2u);
  // The handler sees the inner messages, in send order, never the envelope.
  ASSERT_EQ(b.types.size(), 2u);
  EXPECT_EQ(b.types[0], PartMsg::kType);
  EXPECT_EQ(b.types[1], OtherMsg::kType);
  ASSERT_EQ(c.types.size(), 1u);
  EXPECT_EQ(c.types[0], PartMsg::kType);
}

TEST_F(BatchScopeTest, PerKindStatsChargeInnerMessages) {
  {
    const BatchScope scope(net, addr_a);
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(1));
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(2));
    net.send(addr_a, addr_b, std::make_unique<OtherMsg>());
  }
  simulator.run();
  EXPECT_EQ(net.stats().sent_of(PartMsg::kType), 2u);
  EXPECT_EQ(net.stats().sent_of(OtherMsg::kType), 1u);
  EXPECT_EQ(net.stats().sent_of(Batch::kType), 1u);
  EXPECT_EQ(net.stats().delivered_of(PartMsg::kType), 2u);
  EXPECT_EQ(net.stats().delivered_of(OtherMsg::kType), 1u);
  // Wire-level counters see exactly one message.
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(BatchScopeTest, NestedScopesFlushAtOutermostClose) {
  {
    const BatchScope outer(net, addr_a);
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(1));
    {
      const BatchScope inner(net, addr_a);
      net.send(addr_a, addr_b, std::make_unique<PartMsg>(2));
    }
    // Inner close must not flush: the outer scope is still open.
    EXPECT_EQ(net.stats().messages_sent, 0u);
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(3));
  }
  simulator.run();
  EXPECT_EQ(net.stats().batches_sent, 1u);
  EXPECT_EQ(net.stats().batch_parts_sent, 3u);
  ASSERT_EQ(b.types.size(), 3u);
}

TEST_F(BatchScopeTest, InactiveScopeIsPassThrough) {
  {
    const BatchScope scope(net, addr_a, /*active=*/false);
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(1));
    net.send(addr_a, addr_b, std::make_unique<PartMsg>(2));
    // No buffering: both messages hit the wire immediately.
    EXPECT_EQ(net.stats().messages_sent, 2u);
  }
  simulator.run();
  EXPECT_EQ(net.stats().batches_sent, 0u);
  ASSERT_EQ(b.types.size(), 2u);
}

TEST_F(BatchScopeTest, IndependentSendersDoNotShareScopes) {
  {
    const BatchScope scope(net, addr_a);
    net.send(addr_a, addr_c, std::make_unique<PartMsg>(1));
    // b has no open scope; its send is ordinary.
    net.send(addr_b, addr_c, std::make_unique<PartMsg>(2));
    EXPECT_EQ(net.stats().messages_sent, 1u);
  }
  simulator.run();
  EXPECT_EQ(net.stats().batches_sent, 0u);  // singleton group flushed plain
  ASSERT_EQ(c.types.size(), 2u);
}

TEST(BatchEnvelopeTest, CloneDeepCopiesParts) {
  Batch original;
  original.parts.push_back(std::make_unique<PartMsg>(5));
  original.parts.push_back(std::make_unique<OtherMsg>());
  const MessagePtr copy = original.clone();
  ASSERT_NE(copy, nullptr);
  const auto* batch = msg_cast<Batch>(copy.get());
  ASSERT_EQ(batch->parts.size(), 2u);
  EXPECT_NE(batch->parts[0].get(), original.parts[0].get());
  EXPECT_EQ(msg_cast<PartMsg>(batch->parts[0].get())->value, 5);
  // Payload accounting covers per-part framing plus part payloads.
  EXPECT_EQ(batch->payload_size(), original.payload_size());
  EXPECT_EQ(original.payload_size(),
            2 * Batch::kPartHeaderBytes + 4 + 1);
}

}  // namespace
}  // namespace pgrid::net

namespace pgrid::grid {
namespace {

workload::Workload small_workload(std::uint64_t seed = 7) {
  workload::WorkloadSpec spec;
  spec.node_count = 32;
  spec.job_count = 96;
  spec.mean_runtime_sec = 20.0;
  spec.mean_interarrival_sec = 0.5;
  spec.constraint_probability = 0.4;
  spec.client_count = 2;
  spec.seed = seed;
  return workload::generate(spec);
}

GridConfig batching_config(MatchmakerKind kind, bool batching) {
  GridConfig config;
  config.kind = kind;
  config.seed = 3;
  config.light_maintenance = true;
  config.batching.enabled = batching;
  return config;
}

struct RunOutcome {
  std::vector<std::uint64_t> completed;  // job seqs that finished ok
  double wait_avg = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint64_t batches_sent = 0;
};

RunOutcome run_once(MatchmakerKind kind, bool batching) {
  GridSystem system(batching_config(kind, batching), small_workload());
  system.run();
  RunOutcome out;
  const auto& c = system.collector();
  for (std::uint64_t j = 0; j < 96; ++j) {
    if (c.job(j).completed()) out.completed.push_back(j);
  }
  const RunningStats waits = c.wait_stats();
  out.wait_avg = waits.count() > 0 ? waits.mean() : 0.0;
  out.messages_sent = system.net_stats().messages_sent;
  out.batches_sent = system.net_stats().batches_sent;
  return out;
}

class BatchingEquivalence : public ::testing::TestWithParam<MatchmakerKind> {};

// Batching is a transport optimization: with it on, the same jobs must
// complete, wait times must stay in the same regime, and wire traffic must
// strictly shrink (the whole point).
TEST_P(BatchingEquivalence, SameCompletionsLessTraffic) {
  const RunOutcome off = run_once(GetParam(), false);
  const RunOutcome on = run_once(GetParam(), true);

  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.batches_sent, 0u);
  EXPECT_GT(on.batches_sent, 0u);
  EXPECT_LT(on.messages_sent, off.messages_sent);
  // Waits may shift a little (message timing differs) but must stay in the
  // same regime; the overlays are far from overload at this scale.
  EXPECT_NEAR(on.wait_avg, off.wait_avg,
              std::max(5.0, 0.5 * std::max(on.wait_avg, off.wait_avg)));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BatchingEquivalence,
    ::testing::Values(MatchmakerKind::kRnTree, MatchmakerKind::kCanBasic,
                      MatchmakerKind::kCanPush),
    [](const ::testing::TestParamInfo<MatchmakerKind>& info) {
      std::string name = matchmaker_name(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The determinism contract: batching *on* is itself fully deterministic for
// a fixed seed (the off-path byte-identity is covered by the golden-output
// suites; this covers the new code path).
TEST(BatchingDeterminism, BatchedRunsAreReproducible) {
  const RunOutcome first = run_once(MatchmakerKind::kCanBasic, true);
  const RunOutcome second = run_once(MatchmakerKind::kCanBasic, true);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.messages_sent, second.messages_sent);
  EXPECT_EQ(first.batches_sent, second.batches_sent);
  EXPECT_EQ(first.wait_avg, second.wait_avg);
}

}  // namespace
}  // namespace pgrid::grid
