// GUID and circular-interval arithmetic: the correctness bedrock under
// Chord routing and the RN-Tree region algebra.

#include <gtest/gtest.h>

#include <set>

#include "common/guid.h"
#include "common/hash.h"
#include "common/rng.h"

namespace pgrid {
namespace {

TEST(Guid, DerivationIsDeterministic) {
  EXPECT_EQ(Guid::of("node-1"), Guid::of("node-1"));
  EXPECT_NE(Guid::of("node-1"), Guid::of("node-2"));
  EXPECT_EQ(Guid::of(std::uint64_t{42}), Guid::of(std::uint64_t{42}));
}

TEST(Guid, StrFormatsAsHex) {
  EXPECT_EQ(Guid{0}.str(), "0000000000000000");
  EXPECT_EQ(Guid{0xdeadbeefULL}.str(), "00000000deadbeef");
}

TEST(Guid, ClockwiseDistanceWraps) {
  const Guid a{10};
  const Guid b{3};
  EXPECT_EQ(a.clockwise_to(b), static_cast<std::uint64_t>(-7));
  EXPECT_EQ(b.clockwise_to(a), 7u);
  EXPECT_EQ(a.clockwise_to(a), 0u);
}

TEST(Interval, OpenClosedBasic) {
  // (10, 20]
  EXPECT_FALSE(in_interval_oc(Guid{10}, Guid{10}, Guid{20}));
  EXPECT_TRUE(in_interval_oc(Guid{11}, Guid{10}, Guid{20}));
  EXPECT_TRUE(in_interval_oc(Guid{20}, Guid{10}, Guid{20}));
  EXPECT_FALSE(in_interval_oc(Guid{21}, Guid{10}, Guid{20}));
  EXPECT_FALSE(in_interval_oc(Guid{5}, Guid{10}, Guid{20}));
}

TEST(Interval, OpenClosedWrapsAroundZero) {
  // (2^64-5, 3]
  const Guid a{static_cast<std::uint64_t>(-5)};
  const Guid b{3};
  EXPECT_TRUE(in_interval_oc(Guid{0}, a, b));
  EXPECT_TRUE(in_interval_oc(Guid{3}, a, b));
  EXPECT_TRUE(in_interval_oc(Guid{static_cast<std::uint64_t>(-1)}, a, b));
  EXPECT_FALSE(in_interval_oc(a, a, b));
  EXPECT_FALSE(in_interval_oc(Guid{4}, a, b));
}

TEST(Interval, DegenerateMeansWholeRing) {
  // Chord convention: (a, a] is the entire ring — a single node owns all keys.
  const Guid a{77};
  EXPECT_TRUE(in_interval_oc(Guid{0}, a, a));
  EXPECT_TRUE(in_interval_oc(Guid{78}, a, a));
  EXPECT_FALSE(in_interval_oc(a, a, a));  // open at a itself

  // (a, a) is the ring minus the endpoint.
  EXPECT_TRUE(in_interval_oo(Guid{78}, a, a));
  EXPECT_FALSE(in_interval_oo(a, a, a));
}

TEST(Interval, OpenOpenBasic) {
  EXPECT_FALSE(in_interval_oo(Guid{20}, Guid{10}, Guid{20}));
  EXPECT_TRUE(in_interval_oo(Guid{19}, Guid{10}, Guid{20}));
  EXPECT_FALSE(in_interval_oo(Guid{10}, Guid{10}, Guid{20}));
}

// Property: for random (a, b, x), exactly one of x in (a,b] and x in (b,a]
// holds, unless x == a or x == b (boundary cases handled separately).
TEST(Interval, PartitionProperty) {
  Rng rng{123};
  for (int trial = 0; trial < 10000; ++trial) {
    const Guid a{rng.next()}, b{rng.next()}, x{rng.next()};
    if (a == b || x == a || x == b) continue;
    EXPECT_NE(in_interval_oc(x, a, b), in_interval_oc(x, b, a))
        << "a=" << a.value() << " b=" << b.value() << " x=" << x.value();
  }
}

TEST(Hash, MixAvalanchesAndIsInjectiveOnSmallSet) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, KeyDistributionIsRoughlyUniform) {
  // Bucket 64k hashed strings into 16 bins; each should be near 4096.
  std::array<int, 16> bins{};
  for (int i = 0; i < 65536; ++i) {
    const auto h = hash_key("key-" + std::to_string(i));
    ++bins[h >> 60];
  }
  for (int count : bins) {
    EXPECT_GT(count, 3600);
    EXPECT_LT(count, 4600);
  }
}

}  // namespace
}  // namespace pgrid
