// RPC endpoint: correlation, timeouts, late replies, multiple endpoints
// sharing an address.

#include <gtest/gtest.h>

#include <set>

#include "net/fault_plane.h"
#include "net/message.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace pgrid::net {
namespace {

struct Echo final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 2;
  explicit Echo(int v) : Message(kType), value(v) {}
  int value;
  PGRID_MESSAGE_CLONE(Echo)
};

/// Server that echoes every request back, optionally with a handler delay.
struct EchoServer final : MessageHandler {
  EchoServer(Network& network) : rpc(network, network.add_handler(this)) {}
  void on_message(NodeAddr from, MessagePtr msg) override {
    if (rpc.consume_reply(msg)) return;
    ++served;
    const auto* m = msg_cast<Echo>(msg.get());
    if (!mute && m->rpc_id != 0) {
      rpc.reply(from, *m, std::make_unique<Echo>(m->value * 2));
    }
  }
  RpcEndpoint rpc;
  int served = 0;
  bool mute = false;
};

class RpcTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  Network net{simulator, Rng{1},
              LatencyModel{sim::SimTime::millis(5), sim::SimTime::millis(5)}};
  EchoServer client{net};
  EchoServer server{net};
};

TEST_F(RpcTest, RoundTripInvokesContinuationWithReply) {
  int got = -1;
  client.rpc.call(server.rpc.self(), std::make_unique<Echo>(21),
                  sim::SimTime::seconds(1), [&](MessagePtr reply) {
                    ASSERT_NE(reply, nullptr);
                    got = msg_cast<Echo>(reply.get())->value;
                  });
  EXPECT_EQ(client.rpc.outstanding(), 1u);
  simulator.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(client.rpc.outstanding(), 0u);
  EXPECT_EQ(server.served, 1);
}

TEST_F(RpcTest, TimeoutDeliversNullptr) {
  server.mute = true;
  bool timed_out = false;
  client.rpc.call(server.rpc.self(), std::make_unique<Echo>(1),
                  sim::SimTime::millis(100), [&](MessagePtr reply) {
                    timed_out = (reply == nullptr);
                  });
  simulator.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(client.rpc.timeouts(), 1u);
}

TEST_F(RpcTest, LateReplyAfterTimeoutIsDropped) {
  // Round trip takes 10ms (5ms each way) but the timeout is 8ms.
  int called = 0;
  bool got_null = false;
  client.rpc.call(server.rpc.self(), std::make_unique<Echo>(1),
                  sim::SimTime::millis(8), [&](MessagePtr reply) {
                    ++called;
                    got_null = (reply == nullptr);
                  });
  simulator.run();
  EXPECT_EQ(called, 1);  // continuation fires exactly once (the timeout)
  EXPECT_TRUE(got_null);
  EXPECT_EQ(server.served, 1);  // server did process the request
}

TEST_F(RpcTest, ConcurrentCallsCorrelateCorrectly) {
  std::vector<int> results(10, -1);
  for (int i = 0; i < 10; ++i) {
    client.rpc.call(server.rpc.self(), std::make_unique<Echo>(i),
                    sim::SimTime::seconds(1), [&results, i](MessagePtr reply) {
                      ASSERT_NE(reply, nullptr);
                      results[static_cast<size_t>(i)] =
                          msg_cast<Echo>(reply.get())->value;
                    });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * 2);
  }
}

TEST_F(RpcTest, CancelSuppressesContinuation) {
  bool fired = false;
  const auto id = client.rpc.call(server.rpc.self(), std::make_unique<Echo>(1),
                                  sim::SimTime::seconds(1),
                                  [&](MessagePtr) { fired = true; });
  client.rpc.cancel(id);
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(client.rpc.outstanding(), 0u);
}

TEST_F(RpcTest, CancelAllOnCrash) {
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    client.rpc.call(server.rpc.self(), std::make_unique<Echo>(i),
                    sim::SimTime::seconds(1), [&](MessagePtr) { ++fired; });
  }
  client.rpc.cancel_all();
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST_F(RpcTest, FireAndForgetSend) {
  client.rpc.send(server.rpc.self(), std::make_unique<Echo>(3));
  simulator.run();
  EXPECT_EQ(server.served, 1);
}

TEST_F(RpcTest, CallRetrySucceedsFirstTry) {
  int got = 0, factory_calls = 0;
  client.rpc.call_retry(server.rpc.self(),
                        [&]() -> MessagePtr {
                          ++factory_calls;
                          return std::make_unique<Echo>(5);
                        },
                        sim::SimTime::millis(100), 3, [&](MessagePtr reply) {
                          ASSERT_NE(reply, nullptr);
                          got = msg_cast<Echo>(reply.get())->value;
                        });
  simulator.run();
  EXPECT_EQ(got, 10);
  EXPECT_EQ(factory_calls, 1);  // no retransmission needed
}

TEST_F(RpcTest, CallRetryRetransmitsThroughMutedPeriod) {
  // The server ignores the first two transmissions, then answers.
  server.mute = true;
  int transmissions = 0;
  int got = -1;
  client.rpc.call_retry(
      server.rpc.self(),
      [&]() -> MessagePtr {
        if (++transmissions == 3) server.mute = false;  // third one lands
        return std::make_unique<Echo>(7);
      },
      sim::SimTime::millis(100), 5, [&](MessagePtr reply) {
        ASSERT_NE(reply, nullptr);
        got = msg_cast<Echo>(reply.get())->value;
      });
  simulator.run();
  EXPECT_EQ(got, 14);
  EXPECT_EQ(transmissions, 3);
}

TEST_F(RpcTest, CallRetryGivesUpAfterAllAttempts) {
  server.mute = true;
  int transmissions = 0;
  bool failed = false;
  client.rpc.call_retry(server.rpc.self(),
                        [&]() -> MessagePtr {
                          ++transmissions;
                          return std::make_unique<Echo>(1);
                        },
                        sim::SimTime::millis(50), 3, [&](MessagePtr reply) {
                          failed = (reply == nullptr);
                        });
  simulator.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(transmissions, 3);
  EXPECT_EQ(client.rpc.timeouts(), 3u);
}

TEST_F(RpcTest, CallRetryOvercomesSustainedLoss) {
  // 40% loss each way makes single-shot calls fail often; the growing-RTO
  // retransmit schedule must still push nearly every call through.
  net.fault_plane().set_congestion(0.4, 1.0);
  constexpr int kCalls = 20;
  int ok = 0, failed = 0;
  for (int i = 0; i < kCalls; ++i) {
    RetryPolicy policy;
    policy.base_timeout = sim::SimTime::millis(50);
    policy.base_backoff = sim::SimTime::millis(10);
    policy.max_backoff = sim::SimTime::millis(50);
    policy.attempts = 8;
    client.rpc.call_retry(
        server.rpc.self(), [i]() -> MessagePtr { return std::make_unique<Echo>(i); },
        policy, [&](MessagePtr reply) { (reply != nullptr ? ok : failed)++; });
  }
  simulator.run();
  EXPECT_EQ(ok + failed, kCalls);
  EXPECT_GE(ok, kCalls - 2);
  // The loss was real: some transmissions died and forced retries.
  EXPECT_GT(net.stats().messages_dropped_fault, 0u);
  EXPECT_GT(client.rpc.timeouts(), 0u);
}

TEST_F(RpcTest, CallRetryDuplicatedRepliesFireContinuationOnce) {
  net.fault_plane().set_duplication(1.0);  // every message sent twice
  int fired = 0;
  int got = -1;
  client.rpc.call_retry(
      server.rpc.self(), []() -> MessagePtr { return std::make_unique<Echo>(9); },
      sim::SimTime::millis(100), 3, [&](MessagePtr reply) {
        ++fired;
        ASSERT_NE(reply, nullptr);
        got = msg_cast<Echo>(reply.get())->value;
      });
  simulator.run();
  EXPECT_EQ(fired, 1);  // twin replies are consumed, not re-delivered
  EXPECT_EQ(got, 18);
  EXPECT_GT(net.stats().messages_duplicated, 0u);
}

TEST_F(RpcTest, CallRetryLateReplyToEarlierAttemptIsNotMisdelivered) {
  // Round trip is 10ms; attempt 1 times out at 8ms, so its reply arrives
  // while attempt 2 is outstanding. The stale reply must be swallowed and
  // attempt 2's own reply must complete the call — exactly one firing.
  RetryPolicy policy;
  policy.base_timeout = sim::SimTime::millis(8);
  policy.timeout_factor = 4.0;  // attempt 2 waits long enough
  policy.base_backoff = sim::SimTime::millis(1);
  policy.max_backoff = sim::SimTime::millis(1);
  policy.attempts = 3;
  int transmissions = 0;
  int fired = 0;
  int got = -1;
  client.rpc.call_retry(server.rpc.self(),
                        [&]() -> MessagePtr {
                          ++transmissions;
                          return std::make_unique<Echo>(11);
                        },
                        policy, [&](MessagePtr reply) {
                          ++fired;
                          ASSERT_NE(reply, nullptr);
                          got = msg_cast<Echo>(reply.get())->value;
                        });
  simulator.run();
  EXPECT_EQ(transmissions, 2);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(got, 22);
  EXPECT_EQ(server.served, 2);  // both attempts reached the server
}

TEST_F(RpcTest, CallRetryDeadlineCutsAttemptsShort) {
  server.mute = true;
  RetryPolicy policy;
  policy.base_timeout = sim::SimTime::millis(50);
  policy.base_backoff = sim::SimTime::millis(10);
  policy.max_backoff = sim::SimTime::millis(10);
  policy.attempts = 10;
  policy.deadline = sim::SimTime::millis(150);
  int transmissions = 0;
  bool failed = false;
  const auto t0 = simulator.now();
  client.rpc.call_retry(server.rpc.self(),
                        [&]() -> MessagePtr {
                          ++transmissions;
                          return std::make_unique<Echo>(1);
                        },
                        policy,
                        [&](MessagePtr reply) { failed = (reply == nullptr); });
  simulator.run();
  EXPECT_TRUE(failed);
  EXPECT_LT(transmissions, 10);  // the budget, not the attempt count, ended it
  EXPECT_GE(transmissions, 1);
  // The call concluded within the deadline plus one attempt's timeout.
  EXPECT_LE((simulator.now() - t0).sec(), 0.5);
}

TEST_F(RpcTest, CallRetryGapsGrowWithTheTimeout) {
  // Fixed backoff isolates the exponential RTO: successive retransmission
  // gaps must widen as the per-attempt timeout doubles.
  server.mute = true;
  RetryPolicy policy;
  policy.base_timeout = sim::SimTime::millis(50);
  policy.timeout_factor = 2.0;
  policy.base_backoff = sim::SimTime::millis(100);
  policy.max_backoff = sim::SimTime::millis(100);
  policy.attempts = 3;
  std::vector<sim::SimTime> sent;
  client.rpc.call_retry(server.rpc.self(),
                        [&]() -> MessagePtr {
                          sent.push_back(simulator.now());
                          return std::make_unique<Echo>(1);
                        },
                        policy, [](MessagePtr) {});
  simulator.run();
  ASSERT_EQ(sent.size(), 3u);
  const auto gap1 = sent[1] - sent[0];
  const auto gap2 = sent[2] - sent[1];
  EXPECT_GT(gap2.ns(), gap1.ns());
}

/// Two endpoints on the same address must not steal each other's replies.
struct DualEndpointHost final : MessageHandler {
  explicit DualEndpointHost(Network& network)
      : addr(network.add_handler(this)),
        layer1(network, addr),
        layer2(network, addr) {}
  void on_message(NodeAddr from, MessagePtr msg) override {
    if (layer1.consume_reply(msg)) return;
    if (layer2.consume_reply(msg)) return;
    // Echo server role for requests:
    const auto* m = msg_cast<Echo>(msg.get());
    layer1.reply(from, *m, std::make_unique<Echo>(m->value + 100));
  }
  NodeAddr addr;
  RpcEndpoint layer1;
  RpcEndpoint layer2;
};

TEST(RpcMultiEndpoint, DisjointIdStreams) {
  sim::Simulator simulator;
  Network net{simulator, Rng{2},
              LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(1)}};
  DualEndpointHost a{net};
  DualEndpointHost b{net};
  int got1 = 0, got2 = 0;
  a.layer1.call(b.addr, std::make_unique<Echo>(1), sim::SimTime::seconds(1),
                [&](MessagePtr reply) {
                  ASSERT_NE(reply, nullptr);
                  got1 = msg_cast<Echo>(reply.get())->value;
                });
  a.layer2.call(b.addr, std::make_unique<Echo>(2), sim::SimTime::seconds(1),
                [&](MessagePtr reply) {
                  ASSERT_NE(reply, nullptr);
                  got2 = msg_cast<Echo>(reply.get())->value;
                });
  simulator.run();
  EXPECT_EQ(got1, 101);
  EXPECT_EQ(got2, 102);
}

// The pending-call slab recycles slots; correlation ids carry a generation
// tag so every call still gets a unique id and slot reuse can never route a
// reply to the wrong continuation.
TEST_F(RpcTest, SlabReuseKeepsCorrelationIdsUnique) {
  std::set<std::uint64_t> ids;
  int completed = 0;
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t id =
        client.rpc.call(server.rpc.self(), std::make_unique<Echo>(round),
                        sim::SimTime::seconds(1), [&](MessagePtr reply) {
                          ASSERT_NE(reply, nullptr);
                          ++completed;
                        });
    EXPECT_TRUE(ids.insert(id).second) << "correlation id reused live";
    simulator.run();  // complete the call; its slot is recycled next round
    EXPECT_EQ(client.rpc.outstanding(), 0u);
  }
  EXPECT_EQ(completed, 1000);
  EXPECT_EQ(ids.size(), 1000u);
}

TEST_F(RpcTest, StaleReplyForRecycledSlotIsDropped) {
  // First call times out (mute server): its slot is freed. A second call
  // then occupies the same slot with a bumped generation. The late reply to
  // the first call must not complete the second.
  server.mute = true;
  bool first_timed_out = false;
  client.rpc.call(server.rpc.self(), std::make_unique<Echo>(1),
                  sim::SimTime::millis(8),
                  [&](MessagePtr reply) { first_timed_out = reply == nullptr; });
  simulator.run();
  ASSERT_TRUE(first_timed_out);
  server.mute = false;
  int second_value = -1;
  client.rpc.call(server.rpc.self(), std::make_unique<Echo>(50),
                  sim::SimTime::seconds(1), [&](MessagePtr reply) {
                    ASSERT_NE(reply, nullptr);
                    second_value = msg_cast<Echo>(reply.get())->value;
                  });
  simulator.run();
  EXPECT_EQ(second_value, 100);
  EXPECT_EQ(server.served, 2);
}

// Ownership contract at the delivery boundary: the handler receives the
// moved MessagePtr exactly once per delivered datagram, and keeping it
// alive past the handler (as RPC continuations do) must be safe even
// though freed blocks are recycled by the message pool.
TEST(RpcDelivery, HandlerOwnsEachDeliveredMessageExactlyOnce) {
  sim::Simulator simulator;
  Network net{simulator, Rng{5},
              LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(1)}};
  struct Keeper final : MessageHandler {
    std::vector<MessagePtr> kept;
    void on_message(NodeAddr /*from*/, MessagePtr msg) override {
      ASSERT_NE(msg, nullptr);
      kept.push_back(std::move(msg));
    }
  };
  Keeper sink;
  const NodeAddr sink_addr = net.add_handler(&sink);
  Keeper src;
  const NodeAddr src_addr = net.add_handler(&src);
  constexpr int kSends = 12;
  for (int i = 0; i < kSends; ++i) {
    net.send(src_addr, sink_addr, std::make_unique<Echo>(i));
  }
  simulator.run();
  ASSERT_EQ(sink.kept.size(), static_cast<std::size_t>(kSends));
  // Distinct live allocations, payloads intact: pool reuse may only hand
  // out blocks whose previous occupant was already destroyed.
  std::set<const Message*> distinct;
  for (int i = 0; i < kSends; ++i) {
    distinct.insert(sink.kept[static_cast<std::size_t>(i)].get());
    EXPECT_EQ(msg_cast<Echo>(sink.kept[static_cast<std::size_t>(i)].get())->value,
              i);
  }
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kSends));
}

TEST_F(RpcTest, OutstandingTracksSlabOccupancy) {
  server.mute = true;
  for (int i = 0; i < 16; ++i) {
    client.rpc.call(server.rpc.self(), std::make_unique<Echo>(i),
                    sim::SimTime::seconds(1), [](MessagePtr) {});
  }
  EXPECT_EQ(client.rpc.outstanding(), 16u);
  // Each call holds one timeout event; the 16 request datagrams are also
  // still in flight as delivery events.
  EXPECT_EQ(simulator.queued(), 32u);
  client.rpc.cancel_all();
  EXPECT_EQ(client.rpc.outstanding(), 0u);
  // cancel_all released exactly the timeout events; deliveries remain.
  EXPECT_EQ(simulator.queued(), 16u);
  simulator.run();
  EXPECT_EQ(client.rpc.outstanding(), 0u);
}

}  // namespace
}  // namespace pgrid::net
