// Workload generator: the paper's clustered/mixed and light/heavy axes,
// Poisson arrivals, satisfiability, trace round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "workload/trace.h"
#include "workload/workload.h"

namespace pgrid::workload {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.node_count = 100;
  spec.job_count = 500;
  spec.seed = 42;
  return spec;
}

TEST(Workload, ShapeMatchesSpec) {
  const Workload w = generate(small_spec());
  EXPECT_EQ(w.node_caps.size(), 100u);
  EXPECT_EQ(w.jobs.size(), 500u);
}

TEST(Workload, DeterministicForSeed) {
  const Workload a = generate(small_spec());
  const Workload b = generate(small_spec());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrival_sec, b.jobs[j].arrival_sec);
    EXPECT_EQ(a.jobs[j].runtime_sec, b.jobs[j].runtime_sec);
    EXPECT_EQ(a.jobs[j].constraints, b.jobs[j].constraints);
  }
  WorkloadSpec other = small_spec();
  other.seed = 43;
  const Workload c = generate(other);
  bool any_diff = false;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    any_diff |= a.jobs[j].arrival_sec != c.jobs[j].arrival_sec;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, ArrivalsAreSortedWithExpectedRate) {
  const Workload w = generate(small_spec());
  double prev = 0.0;
  for (const JobSpec& job : w.jobs) {
    EXPECT_GE(job.arrival_sec, prev);
    prev = job.arrival_sec;
  }
  // 500 arrivals at 0.1 s mean spacing: total ~50 s.
  EXPECT_NEAR(w.jobs.back().arrival_sec, 50.0, 15.0);
}

TEST(Workload, RuntimesMatchConfiguredMean) {
  WorkloadSpec spec = small_spec();
  spec.job_count = 5000;
  const Workload w = generate(spec);
  double total = 0.0;
  for (const JobSpec& job : w.jobs) {
    EXPECT_GT(job.runtime_sec, 0.0);
    total += job.runtime_sec;
  }
  EXPECT_NEAR(total / 5000.0, 100.0, 5.0);
}

TEST(Workload, LightConstraintAverageIsOnePointTwo) {
  WorkloadSpec spec = small_spec();
  spec.job_count = 5000;
  spec.constraint_probability = 0.4;  // paper's "lightly constrained"
  const Workload w = generate(spec);
  double total = 0.0;
  for (const JobSpec& job : w.jobs) {
    total += static_cast<double>(job.constraints.count());
  }
  EXPECT_NEAR(total / 5000.0, 1.2, 0.06);
}

TEST(Workload, HeavyConstraintAverageIsTwoPointFour) {
  WorkloadSpec spec = small_spec();
  spec.job_count = 5000;
  spec.constraint_probability = 0.8;  // paper's "heavily constrained"
  const Workload w = generate(spec);
  double total = 0.0;
  for (const JobSpec& job : w.jobs) {
    total += static_cast<double>(job.constraints.count());
  }
  EXPECT_NEAR(total / 5000.0, 2.4, 0.06);
}

TEST(Workload, ClusteredNodesFormFewClasses) {
  WorkloadSpec spec = small_spec();
  spec.node_mix = Mix::kClustered;
  spec.node_classes = 5;
  const Workload w = generate(spec);
  std::set<std::string> distinct;
  for (const auto& caps : w.node_caps) distinct.insert(caps.str());
  EXPECT_LE(distinct.size(), 5u);
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Workload, MixedNodesAreDiverse) {
  WorkloadSpec spec = small_spec();
  spec.node_mix = Mix::kMixed;
  spec.node_count = 200;
  const Workload w = generate(spec);
  std::set<std::string> distinct;
  for (const auto& caps : w.node_caps) distinct.insert(caps.str());
  EXPECT_GT(distinct.size(), 30u);
}

TEST(Workload, ClusteredJobsShareConstraintClasses) {
  WorkloadSpec spec = small_spec();
  spec.job_mix = Mix::kClustered;
  spec.job_classes = 4;
  spec.constraint_probability = 0.8;
  const Workload w = generate(spec);
  std::set<std::string> distinct;
  for (const JobSpec& job : w.jobs) distinct.insert(job.constraints.str());
  EXPECT_LE(distinct.size(), 4u);
}

TEST(Workload, EveryJobIsSatisfiable) {
  for (const Quadrant& q : paper_quadrants()) {
    for (double p : {0.4, 0.8}) {
      WorkloadSpec spec = small_spec();
      spec.node_mix = q.node_mix;
      spec.job_mix = q.job_mix;
      spec.constraint_probability = p;
      const Workload w = generate(spec);
      EXPECT_TRUE(w.all_jobs_satisfiable()) << q.label << " p=" << p;
    }
  }
}

TEST(Workload, ClientsAssignedWithinRange) {
  WorkloadSpec spec = small_spec();
  spec.client_count = 3;
  const Workload w = generate(spec);
  std::set<std::uint32_t> clients;
  for (const JobSpec& job : w.jobs) {
    ASSERT_LT(job.client, 3u);
    clients.insert(job.client);
  }
  EXPECT_EQ(clients.size(), 3u);
}

TEST(WorkloadTrace, RoundTripPreservesEverything) {
  WorkloadSpec spec = small_spec();
  spec.node_mix = Mix::kClustered;
  spec.constraint_probability = 0.8;
  const Workload original = generate(spec);
  const std::string path = testing::TempDir() + "/p2pgrid_trace_test.csv";
  ASSERT_TRUE(save_trace(original, path));

  Workload loaded;
  ASSERT_TRUE(load_trace(path, &loaded));
  EXPECT_EQ(loaded.spec.node_count, original.spec.node_count);
  EXPECT_EQ(loaded.spec.node_mix, original.spec.node_mix);
  EXPECT_EQ(loaded.spec.constraint_probability,
            original.spec.constraint_probability);
  ASSERT_EQ(loaded.node_caps.size(), original.node_caps.size());
  for (std::size_t i = 0; i < loaded.node_caps.size(); ++i) {
    EXPECT_EQ(loaded.node_caps[i], original.node_caps[i]);
  }
  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  for (std::size_t j = 0; j < loaded.jobs.size(); ++j) {
    EXPECT_EQ(loaded.jobs[j].arrival_sec, original.jobs[j].arrival_sec);
    EXPECT_EQ(loaded.jobs[j].runtime_sec, original.jobs[j].runtime_sec);
    EXPECT_EQ(loaded.jobs[j].client, original.jobs[j].client);
    EXPECT_EQ(loaded.jobs[j].constraints, original.jobs[j].constraints);
  }
  std::remove(path.c_str());
}

TEST(WorkloadTrace, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/p2pgrid_trace_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("this is not a trace\n", f);
    std::fclose(f);
  }
  Workload w;
  EXPECT_FALSE(load_trace(path, &w));
  EXPECT_FALSE(load_trace("/nonexistent/file.csv", &w));
  std::remove(path.c_str());
}

TEST(WorkloadQuadrants, FourInPresentationOrder) {
  const auto& quadrants = paper_quadrants();
  ASSERT_EQ(quadrants.size(), 4u);
  EXPECT_EQ(quadrants[0].node_mix, Mix::kClustered);
  EXPECT_EQ(quadrants[3].node_mix, Mix::kMixed);
  EXPECT_STREQ(mix_name(Mix::kClustered), "clustered");
  EXPECT_STREQ(mix_name(Mix::kMixed), "mixed");
}

}  // namespace
}  // namespace pgrid::workload
