// Observability: trace bus ring semantics, exporter well-formedness, the
// time-series sampler, and the NetworkStats per-kind counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "grid/grid_system.h"
#include "metrics/report.h"
#include "net/message.h"
#include "net/network.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace pgrid::obs {
namespace {

using sim::SimTime;

/// Minimal JSON syntax check: balanced braces/brackets outside strings,
/// properly terminated strings and escapes. Not a validator, but enough to
/// catch the classic exporter bugs (trailing commas aside).
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream all;
  all << in.rdbuf();
  return all.str();
}

TEST(TraceBus, TimestampsFollowSimTime) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 64);
  for (int i = 1; i <= 3; ++i) {
    simulator.schedule_in(SimTime::seconds(static_cast<double>(i)),
                          [&bus, i] {
                            bus.record(EventKind::kJobSubmit, 0, kNoActor, 0,
                                       static_cast<std::uint64_t>(i));
                          });
  }
  simulator.run();
  ASSERT_EQ(bus.size(), 3u);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    EXPECT_EQ(bus.at(i).t_ns,
              SimTime::seconds(static_cast<double>(i + 1)).ns());
    EXPECT_EQ(bus.at(i).a, i + 1);
    if (i > 0) EXPECT_GE(bus.at(i).t_ns, bus.at(i - 1).t_ns);
  }
}

TEST(TraceBus, RingOverwritesOldestAndCountsDropped) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    bus.record(EventKind::kMsgSend, 1, 2, 0, i);
  }
  EXPECT_EQ(bus.size(), 4u);
  EXPECT_EQ(bus.capacity(), 4u);
  EXPECT_EQ(bus.total_recorded(), 10u);
  EXPECT_EQ(bus.dropped(), 6u);
  // at() walks oldest-first over what survived: events 6..9.
  for (std::size_t i = 0; i < bus.size(); ++i) {
    EXPECT_EQ(bus.at(i).a, 6u + i);
  }
}

TEST(TraceBus, DisabledRecordsNothing) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 16);
  bus.set_enabled(false);
  bus.record(EventKind::kMsgSend, 1);
  PGRID_TRACE_EVENT(&bus, EventKind::kMsgDeliver, 2);
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_recorded(), 0u);
  // The macro's whole point: a null bus is a no-op, not a crash.
  TraceBus* null_bus = nullptr;
  PGRID_TRACE_EVENT(null_bus, EventKind::kMsgDeliver, 2);
}

TEST(TraceBus, ChromeTraceExportIsWellFormed) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 64);
  bus.set_actor_name(0, "node \"zero\"");  // name needing escaping
  bus.set_actor_name(1, "node 1");
  bus.record(EventKind::kJobSubmit, 0, kNoActor, 0, 7);
  bus.record(EventKind::kMsgSend, 0, 1, 42, 1, 52.0);
  bus.record(EventKind::kJobComplete, 1, kNoActor, 0, 7, 3.5);  // X slice
  bus.record(EventKind::kJobKilled, 0, kNoActor, 0, 8, 1.0);    // X slice

  const std::string path = testing::TempDir() + "/p2pgrid_trace_test.json";
  ASSERT_TRUE(bus.export_chrome_trace(path));
  const std::string text = slurp(path);
  std::remove(path.c_str());

  EXPECT_TRUE(json_balanced(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // job slice
  EXPECT_NE(text.find("node \\\"zero\\\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceBus, JsonlExportOneValidObjectPerEvent) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 64);
  bus.record(EventKind::kRpcIssue, 3, 4, 17, 99);
  bus.record(EventKind::kRpcTimeout, 3, 4, 0, 99);
  const std::string path = testing::TempDir() + "/p2pgrid_trace_test.jsonl";
  ASSERT_TRUE(bus.export_jsonl(path));
  std::ifstream in(path);
  std::string line;
  std::string last;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_EQ(line.front(), '{');
    last = line;
    ++lines;
  }
  std::remove(path.c_str());
  // One object per event plus a trailing summary line.
  EXPECT_EQ(lines, bus.size() + 1);
  EXPECT_NE(last.find("\"summary\":true"), std::string::npos) << last;
  EXPECT_NE(last.find("\"dropped\":0"), std::string::npos) << last;
}

TEST(Sampler, RowCountMatchesFixedHorizon) {
  sim::Simulator simulator;
  TimeSeriesSampler sampler(simulator, SimTime::seconds(1.0));
  sampler.add_gauge("t", [&simulator] { return simulator.now().sec(); });
  sampler.start();
  simulator.run_until(SimTime::seconds(10.0));
  sampler.stop();
  // One row at t=0, then one per second: 11 rows over a 10 s horizon.
  ASSERT_EQ(sampler.row_count(), 11u);
  ASSERT_EQ(sampler.column_count(), 1u);
  for (std::size_t r = 0; r < sampler.row_count(); ++r) {
    EXPECT_DOUBLE_EQ(sampler.row_time_sec(r), static_cast<double>(r));
    EXPECT_DOUBLE_EQ(sampler.value(r, 0), static_cast<double>(r));
  }
}

TEST(Sampler, RateColumnReportsPerSecondDelta) {
  sim::Simulator simulator;
  TimeSeriesSampler sampler(simulator, SimTime::seconds(2.0));
  double counter = 0.0;
  simulator.schedule_in(SimTime::seconds(0.5), [&counter] { counter = 6.0; });
  simulator.schedule_in(SimTime::seconds(2.5), [&counter] { counter = 16.0; });
  sampler.add_rate("rate", [&counter] { return counter; });
  sampler.start();
  simulator.run_until(SimTime::seconds(4.0));
  ASSERT_EQ(sampler.row_count(), 3u);
  EXPECT_DOUBLE_EQ(sampler.value(0, 0), 0.0);  // nothing to difference yet
  EXPECT_DOUBLE_EQ(sampler.value(1, 0), 3.0);  // +6 over 2 s
  EXPECT_DOUBLE_EQ(sampler.value(2, 0), 5.0);  // +10 over 2 s
}

TEST(Sampler, CsvExportHasHeaderAndRows) {
  sim::Simulator simulator;
  TimeSeriesSampler sampler(simulator, SimTime::seconds(1.0));
  sampler.add_gauge("ones", [] { return 1.0; });
  sampler.start();
  simulator.run_until(SimTime::seconds(3.0));
  const std::string path = testing::TempDir() + "/p2pgrid_ts_test.csv";
  ASSERT_TRUE(sampler.export_csv(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "t_sec,ones");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  std::remove(path.c_str());
  EXPECT_EQ(rows, sampler.row_count());
}

// --- NetworkStats per-kind counters ----------------------------------------

struct KindMsg final : net::Message {
  static constexpr std::uint16_t kType = net::kTagTestBase + 9;
  KindMsg() : Message(kType) {}
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 10;
  }
};

struct Sink final : net::MessageHandler {
  void on_message(net::NodeAddr, net::MessagePtr) override { ++received; }
  int received = 0;
};

TEST(NetworkStats, PerKindCountersAndDeliveredBytes) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{7},
                       net::LatencyModel{SimTime::millis(1), SimTime::millis(1)});
  Sink a, b;
  const net::NodeAddr addr_a = network.add_handler(&a);
  const net::NodeAddr addr_b = network.add_handler(&b);
  for (int i = 0; i < 3; ++i) {
    network.send(addr_a, addr_b, std::make_unique<KindMsg>());
  }
  simulator.run();
  EXPECT_EQ(b.received, 3);
  const net::NetworkStats& s = network.stats();
  EXPECT_EQ(s.sent_of(KindMsg::kType), 3u);
  EXPECT_EQ(s.delivered_of(KindMsg::kType), 3u);
  EXPECT_EQ(s.sent_of(KindMsg::kType + 1), 0u);
  // Nothing was dropped, so every sent byte arrived.
  EXPECT_GT(s.bytes_sent, 0u);
  EXPECT_EQ(s.bytes_delivered, s.bytes_sent);
  EXPECT_EQ(s.bytes_sent, 3u * (net::Network::kHeaderBytes + 10));
}

TEST(NetworkStats, DroppedMessagesAreNotCountedDelivered) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{7},
                       net::LatencyModel{SimTime::millis(1), SimTime::millis(1)});
  Sink a, b;
  const net::NodeAddr addr_a = network.add_handler(&a);
  const net::NodeAddr addr_b = network.add_handler(&b);
  network.set_alive(addr_b, false);
  network.send(addr_a, addr_b, std::make_unique<KindMsg>());
  simulator.run();
  const net::NetworkStats& s = network.stats();
  EXPECT_EQ(s.sent_of(KindMsg::kType), 1u);
  EXPECT_EQ(s.delivered_of(KindMsg::kType), 0u);
  EXPECT_EQ(s.bytes_delivered, 0u);
}

// --- end-to-end: a traced grid run ------------------------------------------

TEST(GridObservability, TracedRunRecordsOrderedJobLifecycle) {
#ifdef PGRID_OBS_DISABLED
  GTEST_SKIP() << "observability call sites compiled out";
#endif
  workload::WorkloadSpec spec;
  spec.node_count = 10;
  spec.job_count = 20;
  spec.mean_runtime_sec = 5.0;
  spec.mean_interarrival_sec = 0.2;
  spec.seed = 11;
  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kRnTree;
  config.light_maintenance = true;
  config.obs.trace = true;
  config.obs.trace_capacity = 1u << 18;
  config.obs.sample_period_sec = 5.0;
  grid::GridSystem system(config, workload::generate(spec));
  system.run();

  TraceBus* bus = system.trace_bus();
  ASSERT_NE(bus, nullptr);
  EXPECT_GT(bus->total_recorded(), 0u);
  std::size_t submits = 0;
  std::size_t completes = 0;
  for (std::size_t i = 0; i < bus->size(); ++i) {
    if (i > 0) EXPECT_GE(bus->at(i).t_ns, bus->at(i - 1).t_ns);
    if (bus->at(i).kind == EventKind::kJobSubmit) ++submits;
    if (bus->at(i).kind == EventKind::kJobComplete) ++completes;
  }
  EXPECT_EQ(submits, spec.job_count);
  EXPECT_EQ(completes, spec.job_count);

  TimeSeriesSampler* sampler = system.sampler();
  ASSERT_NE(sampler, nullptr);
  EXPECT_GT(sampler->row_count(), 1u);
  EXPECT_GT(sampler->column_count(), 1u);
}

TEST(GridObservability, UntracedRunHasNoBus) {
  workload::WorkloadSpec spec;
  spec.node_count = 5;
  spec.job_count = 5;
  spec.mean_runtime_sec = 1.0;
  spec.seed = 3;
  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kCentralized;
  config.light_maintenance = true;
  grid::GridSystem system(config, workload::generate(spec));
  system.run();
  EXPECT_EQ(system.trace_bus(), nullptr);
  EXPECT_EQ(system.sampler(), nullptr);
}

}  // namespace
}  // namespace pgrid::obs

// --- wait_histogram degenerate case -----------------------------------------

namespace pgrid::metrics {
namespace {

using sim::SimTime;

TEST(Report, WaitHistogramAllEqualWaitsGetsOneFullBucket) {
  Collector c(3, 1);
  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    c.on_submit(seq, SimTime::seconds(static_cast<double>(seq)));
    c.on_started(seq, SimTime::seconds(static_cast<double>(seq) + 2.0));
    c.on_completed(seq, SimTime::seconds(static_cast<double>(seq) + 4.0));
  }
  const std::string h = wait_histogram(c);
  // One bucket holding every sample, not `buckets` empty slivers.
  EXPECT_EQ(std::count(h.begin(), h.end(), '|'), 1) << h;
  EXPECT_NE(h.find("3 |"), std::string::npos) << h;
}

TEST(Report, WaitHistogramAllZeroWaits) {
  Collector c(2, 1);
  for (std::uint64_t seq = 0; seq < 2; ++seq) {
    c.on_submit(seq, SimTime::seconds(1.0));
    c.on_started(seq, SimTime::seconds(1.0));  // zero wait
    c.on_completed(seq, SimTime::seconds(2.0));
  }
  const std::string h = wait_histogram(c);
  EXPECT_EQ(std::count(h.begin(), h.end(), '|'), 1) << h;
  EXPECT_NE(h.find("2 |"), std::string::npos) << h;
}

}  // namespace
}  // namespace pgrid::metrics
