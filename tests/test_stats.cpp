// Statistics kernels: Welford streaming stats, exact quantiles, histograms.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace pgrid {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stdev(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stdev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{1};
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10, 3);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
  RunningStats s;
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Samples, MeanStdevMatchRunningStats) {
  Rng rng{2};
  Samples s;
  RunningStats r;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(10.0);
    s.add(x);
    r.add(x);
  }
  EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
  // Samples::stdev is the N−1 sample estimator; RunningStats offers both.
  EXPECT_NEAR(s.stdev(), r.sample_stdev(), 1e-9);
}

// Regression: pins the estimator conventions. Samples::stdev (what benches
// report as replicate spread) divides by N−1; RunningStats::variance keeps
// population (N) semantics with sample_variance() alongside.
TEST(Samples, StdevIsSampleEstimator) {
  Samples s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // Sum of squared deviations is 32: population variance 4, sample 32/7.
  EXPECT_DOUBLE_EQ(s.stdev(), std::sqrt(32.0 / 7.0));

  RunningStats r;
  for (double x : s.values()) r.add(x);
  EXPECT_DOUBLE_EQ(r.variance(), 4.0);
  EXPECT_DOUBLE_EQ(r.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(r.sample_stdev(), s.stdev());
}

TEST(RunningStats, SampleVarianceDegenerateCases) {
  RunningStats r;
  EXPECT_EQ(r.sample_variance(), 0.0);  // empty
  r.add(3.0);
  EXPECT_EQ(r.sample_variance(), 0.0);  // single sample: undefined, report 0
  r.add(5.0);
  EXPECT_DOUBLE_EQ(r.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(r.variance(), 1.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // first bucket (inclusive low edge)
  h.add(1.99);   // first bucket
  h.add(2.0);    // second bucket
  h.add(9.999);  // last bucket
  h.add(10.0);   // overflow (exclusive high edge)
  h.add(42.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, NanCountsAsOverflowNotUndefinedBehavior) {
  // NaN fails both range guards; it must never reach the float->size_t
  // bucket cast. It lands in the overflow tail so totals still reconcile.
  Histogram h(0.0, 10.0, 5);
  h.add(std::nan(""));
  h.add(-std::nan(""));
  h.add(5.0);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace pgrid
