// MessagePool: slab recycling of simulated datagrams (DESIGN.md §13).
// Recycling must be invisible to the protocols — same payload accounting,
// same clone semantics, safe frees from any thread — while actually reusing
// blocks in steady state.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "net/fault_plane.h"
#include "net/message.h"
#include "net/message_pool.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {
namespace {

struct SmallMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 0x30;
  explicit SmallMsg(std::uint64_t v) : Message(kType), value(v) {}
  std::uint64_t value;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return 8;
  }
  PGRID_MESSAGE_CLONE(SmallMsg)
};

struct VectorMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 0x31;
  explicit VectorMsg(std::size_t n) : Message(kType), items(n, 0x5a) {}
  std::vector<std::uint8_t> items;
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return items.size();
  }
  PGRID_MESSAGE_CLONE(VectorMsg)
};

/// Larger than the biggest size class: must fall through to the global
/// allocator (inline storage, not heap-backed like VectorMsg's vector).
struct OversizeMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 0x32;
  OversizeMsg() : Message(kType) {}
  std::uint8_t blob[MessagePool::kMaxPooledSize] = {};
  [[nodiscard]] std::size_t payload_size() const noexcept override {
    return sizeof blob;
  }
};

struct Keeper final : MessageHandler {
  std::vector<MessagePtr> kept;
  void on_message(NodeAddr /*from*/, MessagePtr msg) override {
    kept.push_back(std::move(msg));
  }
};

TEST(MessagePool, FreedBlockIsReusedForNextAllocation) {
  MessagePool::trim();
  const auto before = MessagePool::stats();
  auto first = std::make_unique<SmallMsg>(1);
  first.reset();  // block goes to the free list
  auto second = std::make_unique<SmallMsg>(2);
  const auto after = MessagePool::stats();
  EXPECT_GE(after.fresh - before.fresh, 1u);
  EXPECT_GE(after.reused - before.reused, 1u);
  EXPECT_EQ(second->value, 2u);
}

TEST(MessagePool, ReuseAcrossTypesOfTheSameClassKeepsPayloadsIntact) {
  MessagePool::trim();
  // A recycled block must behave exactly like a fresh one: full
  // construction, correct payload accounting, no header bleed-through.
  for (int round = 0; round < 64; ++round) {
    auto small = std::make_unique<SmallMsg>(static_cast<std::uint64_t>(round));
    EXPECT_EQ(small->payload_size(), 8u);
    EXPECT_EQ(small->value, static_cast<std::uint64_t>(round));
    small.reset();
    auto vec = std::make_unique<VectorMsg>(static_cast<std::size_t>(round));
    EXPECT_EQ(vec->payload_size(), static_cast<std::size_t>(round));
    for (std::uint8_t b : vec->items) EXPECT_EQ(b, 0x5a);
  }
  const auto stats = MessagePool::stats();
  EXPECT_GT(stats.reused, 0u);
}

TEST(MessagePool, CloneIsADistinctRecyclableBlock) {
  MessagePool::trim();
  auto original = std::make_unique<VectorMsg>(16);
  MessagePtr copy = original->clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_NE(copy.get(), original.get());
  auto* typed = msg_cast<VectorMsg>(copy.get());
  EXPECT_EQ(typed->payload_size(), 16u);
  // Freeing the clone then allocating again reuses its block.
  const auto before = MessagePool::stats();
  copy.reset();
  auto next = std::make_unique<VectorMsg>(16);
  const auto after = MessagePool::stats();
  EXPECT_GE(after.reused - before.reused, 1u);
}

TEST(MessagePool, OversizeMessagesBypassTheCache) {
  MessagePool::trim();
  const auto before = MessagePool::stats();
  auto big = std::make_unique<OversizeMsg>();
  EXPECT_EQ(big->payload_size(), MessagePool::kMaxPooledSize);
  big.reset();
  const auto after = MessagePool::stats();
  EXPECT_GE(after.oversize - before.oversize, 1u);
  // Oversize blocks are never cached.
  EXPECT_EQ(after.cached_bytes, before.cached_bytes);
}

TEST(MessagePool, CrossThreadFreeIsSafeAndNotRecycledLocally) {
  MessagePool::trim();
  // Allocate here, free on another thread: the block's owner mark does not
  // match the freeing thread's cache, so it must go back to the global
  // allocator (counted as foreign there), not onto the wrong free list.
  auto msg = std::make_unique<SmallMsg>(7);
  std::uint64_t foreign_on_worker = 0;
  std::thread worker([&] {
    const auto before = MessagePool::stats();
    msg.reset();
    const auto after = MessagePool::stats();
    foreign_on_worker = after.foreign - before.foreign;
  });
  worker.join();
  EXPECT_EQ(foreign_on_worker, 1u);
}

TEST(MessagePool, TrimReleasesEveryCachedBlock) {
  {
    std::vector<MessagePtr> batch;
    for (int i = 0; i < 32; ++i) {
      batch.push_back(std::make_unique<SmallMsg>(static_cast<std::uint64_t>(i)));
    }
  }  // all 32 blocks land on the free lists
  EXPECT_GT(MessagePool::stats().cached_blocks, 0u);
  MessagePool::trim();
  EXPECT_EQ(MessagePool::stats().cached_blocks, 0u);
  EXPECT_EQ(MessagePool::stats().cached_bytes, 0u);
}

TEST(MessagePool, DuplicatedDeliveriesAreDistinctLiveMessages) {
  // Fault-plane duplication clones every datagram: both copies must be
  // independently owned, delivered, and freed — recycling one while the
  // twin is still in flight would alias live messages.
  sim::Simulator simulator;
  Network net{simulator, Rng{3},
              LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(4)}};
  net.fault_plane().set_duplication(1.0);
  Keeper sink;
  const NodeAddr sink_addr = net.add_handler(&sink);
  Keeper src;
  const NodeAddr src_addr = net.add_handler(&src);
  constexpr int kSends = 8;
  for (int i = 0; i < kSends; ++i) {
    net.send(src_addr, sink_addr, std::make_unique<SmallMsg>(
                                      static_cast<std::uint64_t>(i)));
  }
  simulator.run();
  ASSERT_EQ(sink.kept.size(), static_cast<std::size_t>(2 * kSends));
  EXPECT_EQ(net.stats().messages_duplicated, static_cast<std::uint64_t>(kSends));
  // Every delivered copy is a distinct allocation with the right payload.
  for (std::size_t i = 0; i < sink.kept.size(); ++i) {
    for (std::size_t j = i + 1; j < sink.kept.size(); ++j) {
      EXPECT_NE(sink.kept[i].get(), sink.kept[j].get());
    }
  }
  std::vector<int> seen(kSends, 0);
  for (const MessagePtr& m : sink.kept) {
    ++seen[static_cast<std::size_t>(msg_cast<SmallMsg>(m.get())->value)];
  }
  for (int count : seen) EXPECT_EQ(count, 2);
  sink.kept.clear();  // frees recycle without double-free (ASan-checked)
}

TEST(MessagePool, SteadyStateTrafficReusesBlocks) {
  // A closed message loop settles into ~100% reuse: the pool is the point
  // of the whole exercise, so regress on the fraction, not just safety.
  MessagePool::trim();
  sim::Simulator simulator;
  Network net{simulator, Rng{4},
              LatencyModel{sim::SimTime::millis(1), sim::SimTime::millis(1)}};
  struct Bouncer final : MessageHandler {
    Network& net;
    NodeAddr self = kNullAddr;
    NodeAddr peer = kNullAddr;
    int remaining = 0;
    explicit Bouncer(Network& n) : net(n) { self = net.add_handler(this); }
    void on_message(NodeAddr /*from*/, MessagePtr msg) override {
      if (remaining-- <= 0) return;
      const auto* m = msg_cast<SmallMsg>(msg.get());
      net.send(self, peer, std::make_unique<SmallMsg>(m->value + 1));
    }
  };
  Bouncer a{net}, b{net};
  a.peer = b.self;
  b.peer = a.self;
  a.remaining = b.remaining = 2000;
  const auto before = MessagePool::stats();
  net.send(a.self, b.self, std::make_unique<SmallMsg>(0));
  simulator.run();
  const auto after = MessagePool::stats();
  const auto fresh = after.fresh - before.fresh;
  const auto reused = after.reused - before.reused;
  EXPECT_GT(reused, 0u);
  // At most a handful of fresh blocks (the loop's in-flight window).
  EXPECT_LT(fresh, 16u);
  EXPECT_GT(static_cast<double>(reused) /
                static_cast<double>(fresh + reused),
            0.99);
}

}  // namespace
}  // namespace pgrid::net
